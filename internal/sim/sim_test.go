package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(20, func() { fired = true })
	e.Schedule(10, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want horizon 12", e.Now())
	}
	// Remaining events still fire on resume.
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("resume missed events: %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt promptly: count=%d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var cancel func()
	cancel = e.Ticker(10, 5, func(at Time) {
		ticks = append(ticks, at)
		if len(ticks) == 4 {
			cancel()
		}
	})
	e.RunUntil(1000)
	want := []Time{10, 15, 20, 25}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Ticker(0, 0, func(Time) {})
}

func TestNextHourBoundary(t *testing.T) {
	cases := []struct{ origin, t, want Time }{
		{0, 0, Hour},
		{0, 1, Hour},
		{0, 3599.9, Hour},
		{0, 3600, 2 * Hour},
		{100, 100, 100 + Hour},
		{100, 3699.9, 100 + Hour},
		{100, 3700, 100 + 2*Hour},
		{500, 200, 500 + Hour}, // t before origin
	}
	for _, c := range cases {
		if got := NextHourBoundary(c.origin, c.t); got != c.want {
			t.Errorf("NextHourBoundary(%v,%v) = %v, want %v", c.origin, c.t, got, c.want)
		}
	}
}

func TestNextHourBoundaryProperty(t *testing.T) {
	f := func(o, dt uint16) bool {
		origin := Time(o)
		tt := origin + Time(dt)
		b := NextHourBoundary(origin, tt)
		if b <= tt {
			return false
		}
		// b-origin must be a whole number of hours.
		n := (b - origin) / Hour
		return n == float64(int64(n)) && b-tt <= Hour
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHeapProperty drives the engine with a large random schedule and checks
// events fire in non-decreasing time order.
func TestHeapProperty(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(99))
	var times []Time
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(100000))
		times = append(times, at)
		e.Schedule(at, func() {})
	}
	var fired []Time
	// Wrap: re-register with observers.
	e2 := NewEngine()
	for _, at := range times {
		at := at
		e2.Schedule(at, func() { fired = append(fired, at) })
	}
	e2.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("events fired out of order")
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	if e2.Processed() != uint64(len(times)) {
		t.Fatalf("Processed = %d", e2.Processed())
	}
}

func TestDynamicScheduling(t *testing.T) {
	// Events scheduling further events, a chain of 1000.
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 1000 {
			e.After(1, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if n != 1000 {
		t.Fatalf("chain length = %d", n)
	}
	if e.Now() != 999 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestPostOrderingMatchesSchedule(t *testing.T) {
	// Post and Schedule events at the same instant fire in submission
	// order, regardless of which API scheduled them.
	e := NewEngine()
	var got []int
	e.Post(10, func() { got = append(got, 0) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.PostAfter(10, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("wrong order: %v", got)
	}
}

func TestPostChainRecyclesEvents(t *testing.T) {
	// A long chain of posted events should recycle structs through the
	// free list rather than growing it without bound.
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 10000 {
			e.PostAfter(1, step)
		}
	}
	e.Post(0, step)
	e.Run()
	if n != 10000 {
		t.Fatalf("chain length = %d", n)
	}
	// Only one pooled event is ever in flight, so the free list should
	// hold no more than the preallocated slab.
	if len(e.free) > freelistSeed {
		t.Fatalf("free list grew to %d (seed %d)", len(e.free), freelistSeed)
	}
}

func TestCancelUnaffectedByRecycling(t *testing.T) {
	// Handles returned by Schedule must stay valid for Cancel even while
	// pooled events are being recycled around them.
	e := NewEngine()
	fired := false
	canceled := false
	ev := e.Schedule(50, func() { canceled = true })
	for i := 0; i < 100; i++ {
		e.Post(Time(i), func() {})
	}
	e.Post(25, func() { e.Cancel(ev) })
	e.Post(60, func() { fired = true })
	e.Run()
	if canceled {
		t.Fatal("canceled event fired")
	}
	if !fired {
		t.Fatal("later event did not fire")
	}
}

func TestFreeListGrowsGeometrically(t *testing.T) {
	// A burst of in-flight pooled events far beyond the seed should be
	// served by O(log n) doubling slab refills, not one allocation per
	// event, and the structs all recycle once the burst drains.
	e := NewEngine()
	const burst = 1000
	for i := 0; i < burst; i++ {
		e.Post(Time(i), func() {})
	}
	if e.slabSize < 512 {
		t.Fatalf("slabSize = %d after %d in-flight events, want >= 512", e.slabSize, burst)
	}
	e.Run()
	if len(e.free) < burst {
		t.Fatalf("free list holds %d events after drain, want >= %d", len(e.free), burst)
	}
}

func TestFreeListSlabCap(t *testing.T) {
	// Slab growth is capped so one pathological burst cannot commit
	// unbounded memory in a single refill.
	e := NewEngine()
	for i := 0; i < 5*maxSlabSize; i++ {
		e.Post(Time(i), func() {})
	}
	if e.slabSize != maxSlabSize {
		t.Fatalf("slabSize = %d, want capped at %d", e.slabSize, maxSlabSize)
	}
	e.Run()
}

func TestSteadyStateEventLoopZeroAllocs(t *testing.T) {
	// The event machinery underneath the hot loops (price chains, billing,
	// checkpoint daemons — see BenchmarkSchedulerMonth) must not allocate
	// per event once warm: pooled events recycle through the free list and
	// the heap stays at capacity.
	e := NewEngine()
	var fired int
	var step func()
	step = func() {
		fired++
		e.PostAfter(1, step)
	}
	for i := 0; i < 32; i++ {
		e.Post(Time(i), step)
	}
	horizon := Time(1000)
	e.RunUntil(horizon)
	allocs := testing.AllocsPerRun(5, func() {
		horizon += 1000
		e.RunUntil(horizon)
	})
	if allocs != 0 {
		t.Fatalf("steady-state event loop allocated %.2f per window, want 0", allocs)
	}
}
