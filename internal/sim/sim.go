// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in seconds and a pending
// event heap. Events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-break by sequence number), which makes every run
// fully deterministic given deterministic event handlers.
//
// The kernel is intentionally single-threaded: the cloud-provider, market
// and scheduler models all run inside one event loop, which is both faster
// and easier to reason about than goroutine-per-entity designs for this
// workload (hundreds of thousands of tiny events).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"spothost/internal/obs"
	"spothost/internal/trace"
)

// Time is a virtual timestamp in seconds since the start of the simulation.
type Time = float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	pooled   bool // no external handle: recycle after firing
	index    int  // heap index, -1 once popped
}

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pending eventHeap
	stopped bool
	// processed counts events executed, exposed for tests and reports.
	processed uint64
	// free recycles Event structs of fired Post events. Only handle-less
	// (pooled) events return here, so a recycled struct can never alias a
	// *Event a caller still holds; both Schedule and Post draw from it.
	// Refills allocate slabs that double in size (slabSize, capped at
	// maxSlabSize), so an engine whose in-flight working set outgrows the
	// seed reaches zero-alloc steady state after O(log n) slab allocations
	// instead of one allocation per event.
	free     []*Event
	slabSize int
	// ctx, when non-nil, is polled every pollEvery executed events; a
	// canceled context halts the run loop and is reported by Err. Polling
	// between events (never mid-event) keeps the event order — and hence
	// the simulation's determinism — independent of when cancel arrives.
	ctx       context.Context
	ctxErr    error
	pollEvery uint64
	// rec, when non-nil, is the run's trace recorder. The engine only
	// carries it — models sharing the engine (provider, scheduler, fleet)
	// read it via Recorder() so one plumbing point reaches every layer. A
	// nil recorder no-ops every trace call.
	rec *trace.Recorder
	// ob, when non-nil, is the run's telemetry recorder (internal/obs).
	// Same carrier pattern as rec: the engine only holds it, models read
	// it via Obs() and guard on nil at each hook.
	ob *obs.Recorder
}

// CancelPollInterval is the default number of executed events between
// context-cancellation polls. A month-long run executes hundreds of
// thousands of events, so a canceled run aborts within a tiny fraction of
// its remaining work (one "event batch") at a per-event cost too small to
// measure.
const CancelPollInterval = 1024

// freelistSeed is the number of Event structs in the first slab; the hot
// loop's working set (in-flight fire-and-forget events) rarely exceeds it,
// so steady-state Post traffic allocates nothing.
const freelistSeed = 64

// maxSlabSize caps the geometric slab growth so a pathological burst does
// not commit unbounded memory in one step.
const maxSlabSize = 8192

// NewEngine returns an empty engine with its clock at 0 and a preallocated
// event free-list.
func NewEngine() *Engine {
	e := &Engine{}
	e.refill()
	return e
}

// NewEngineAt returns an empty engine with its clock already advanced to t.
// It is the entry point for forked simulations: a run restored from a
// mid-horizon checkpoint schedules its rearm events at absolute times >= t,
// so the engine must start there rather than replaying [0, t).
func NewEngineAt(t Time) *Engine {
	e := NewEngine()
	e.now = t
	return e
}

// refill grows the free list by one slab, doubling the slab size (up to
// maxSlabSize) on each refill.
func (e *Engine) refill() {
	if e.slabSize == 0 {
		e.slabSize = freelistSeed
	} else if e.slabSize < maxSlabSize {
		e.slabSize *= 2
	}
	slab := make([]Event, e.slabSize)
	for i := range slab {
		e.free = append(e.free, &slab[i])
	}
}

// acquire returns an Event from the free list, refilling it with a fresh
// slab when empty.
func (e *Engine) acquire(at Time, fn func(), pooled bool) *Event {
	n := len(e.free)
	if n == 0 {
		e.refill()
		n = len(e.free)
	}
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	*ev = Event{at: at, seq: e.seq, fn: fn, pooled: pooled}
	e.seq++
	return ev
}

// release returns a pooled event's struct to the free list.
func (e *Engine) release(ev *Event) {
	*ev = Event{} // drop the fn closure so it can be collected
	e.free = append(e.free, ev)
}

// SetRecorder attaches a trace recorder to the engine (nil detaches).
// Models built on the engine read it back via Recorder at each
// instrumentation point, so attach before — or after — constructing them.
func (e *Engine) SetRecorder(r *trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder, nil when tracing is off.
// The nil recorder is a valid no-op receiver, so callers use the result
// unconditionally.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// SetObs attaches a telemetry recorder to the engine (nil detaches);
// models read it back via Obs at each hook, exactly like SetRecorder.
func (e *Engine) SetObs(o *obs.Recorder) { e.ob = o }

// Obs returns the attached telemetry recorder, nil when telemetry is
// off. Hooks guard on nil before building arguments, so the disabled
// path costs nothing.
func (e *Engine) Obs() *obs.Recorder { return e.ob }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events (including canceled ones not yet
// reaped) waiting in the queue.
func (e *Engine) Pending() int { return len(e.pending) }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug, and silently
// clamping would hide it.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	ev := e.schedule(at, fn, false)
	return ev
}

// After runs fn after delay d from the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Post runs fn at absolute virtual time at, like Schedule, but returns no
// handle: the event cannot be canceled, and in exchange its Event struct
// is recycled through the engine's free list after it fires. Hot loops
// that never cancel (price steps, billing ticks, migration deadlines)
// should Post rather than Schedule to avoid one allocation per event.
func (e *Engine) Post(at Time, fn func()) {
	e.schedule(at, fn, true)
}

// PostAfter runs fn after delay d from the current time, without a handle
// (see Post). Negative delays panic.
func (e *Engine) PostAfter(d Duration, fn func()) {
	e.schedule(e.now+d, fn, true)
}

func (e *Engine) schedule(at Time, fn func(), pooled bool) *Event {
	if math.IsNaN(at) {
		panic("sim: Schedule at NaN")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	ev := e.acquire(at, fn, pooled)
	heap.Push(&e.pending, ev)
	return ev
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a harmless no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	// The event stays in the heap and is skipped when popped; removing it
	// eagerly keeps the heap small when cancellation is common.
	if ev.index >= 0 && ev.index < len(e.pending) && e.pending[ev.index] == ev {
		heap.Remove(&e.pending, ev.index)
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetContext arms the engine's cancellation check: while ctx is live the
// run loops poll ctx.Err() every CancelPollInterval executed events (see
// SetCancelPollInterval) and halt when it is non-nil. A nil ctx disarms
// the check. Setting a context clears any previously recorded Err.
func (e *Engine) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		// A nil Done channel means the context can never be canceled —
		// context.Background(), context.TODO(), or any uncancelable wrapper
		// (e.g. context.WithValue over Background): skip the poll entirely.
		ctx = nil
	}
	e.ctx = ctx
	e.ctxErr = nil
	if e.pollEvery == 0 {
		e.pollEvery = CancelPollInterval
	}
}

// SetCancelPollInterval overrides how many events execute between context
// polls (the "event batch" a canceled run may still execute). Non-positive
// n restores CancelPollInterval.
func (e *Engine) SetCancelPollInterval(n int) {
	if n <= 0 {
		e.pollEvery = CancelPollInterval
		return
	}
	e.pollEvery = uint64(n)
}

// Err reports why the last run halted early: the context's error when the
// run was canceled, nil otherwise (including after Stop).
func (e *Engine) Err() error { return e.ctxErr }

// canceled polls the armed context, recording its error and halting the
// loop when it is done.
func (e *Engine) canceled() bool {
	if e.ctx == nil {
		return false
	}
	if err := e.ctx.Err(); err != nil {
		e.ctxErr = err
		e.stopped = true
		return true
	}
	return false
}

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (e *Engine) step(limit Time) bool {
	for len(e.pending) > 0 {
		next := e.pending[0]
		if next.canceled {
			heap.Pop(&e.pending)
			continue
		}
		if next.at > limit {
			return false
		}
		heap.Pop(&e.pending)
		e.now = next.at
		e.processed++
		fn := next.fn
		if next.pooled {
			// Nothing outside the engine references a pooled event, so its
			// struct can be reused by the next acquire. Recycle before fn
			// runs so an event scheduled by fn can claim it immediately.
			e.release(next)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the
// context set via SetContext is canceled.
func (e *Engine) Run() {
	e.stopped = false
	if e.canceled() {
		return
	}
	mark := e.processed
	for !e.stopped && e.step(math.Inf(1)) {
		if e.ctx != nil && e.processed-mark >= e.pollEvery {
			mark = e.processed
			if e.canceled() {
				return
			}
		}
	}
}

// RunUntil executes events with timestamps <= horizon, then advances the
// clock to exactly horizon. Events scheduled beyond the horizon remain
// pending. A run halted by Stop or by context cancellation (see
// SetContext; check Err) leaves the clock at the last executed event.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	if e.canceled() {
		return
	}
	mark := e.processed
	for !e.stopped && e.step(horizon) {
		if e.ctx != nil && e.processed-mark >= e.pollEvery {
			mark = e.processed
			if e.canceled() {
				return
			}
		}
	}
	if !e.stopped && horizon > e.now {
		e.now = horizon
	}
}

// RunUntilCtx runs like RunUntil under ctx and returns the context's error
// when the run was canceled before reaching the horizon, nil otherwise. It
// is the cancelable entry point the serving layer uses: a month-long
// simulation aborts within one cancellation-poll batch of events (default
// CancelPollInterval) after ctx is canceled.
func (e *Engine) RunUntilCtx(ctx context.Context, horizon Time) error {
	e.SetContext(ctx)
	e.RunUntil(horizon)
	return e.Err()
}

// Ticker invokes fn every period, starting at start, until the returned
// cancel function is called. fn receives the tick time.
func (e *Engine) Ticker(start Time, period Duration, fn func(Time)) (cancel func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	stopped := false
	var tick func()
	at := start
	var ev *Event
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		at += period
		ev = e.Schedule(at, tick)
	}
	ev = e.Schedule(at, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}

// NextHourBoundary returns the earliest multiple of Hour that is strictly
// greater than t, measured from origin. It is used for billing-hour clocks
// that start at instance launch rather than at time zero.
func NextHourBoundary(origin, t Time) Time {
	if t < origin {
		return origin + Hour
	}
	elapsed := t - origin
	n := math.Floor(elapsed/Hour) + 1
	return origin + n*Hour
}
