package sim

import (
	"context"
	"errors"
	"testing"
)

// chain posts a self-perpetuating event every second, forever.
func chain(e *Engine) {
	var tick func()
	tick = func() { e.PostAfter(Second, tick) }
	e.PostAfter(Second, tick)
}

func TestRunUntilCtxCancelMidRun(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetCancelPollInterval(64)

	// Cancel from inside an event handler: deterministic, no timers.
	fired := false
	e.Schedule(500, func() { fired = true; cancel() })

	err := e.RunUntilCtx(ctx, 365*Day)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !fired {
		t.Fatal("cancel event never fired")
	}
	// The engine must stop within one poll batch of the cancel, not run
	// out the year-long horizon.
	if e.Now() > 500+64+1 {
		t.Fatalf("engine ran to %v after cancel at 500 (poll interval 64)", e.Now())
	}
	if e.Err() == nil {
		t.Fatal("Err() lost the cancellation")
	}
}

func TestRunUntilCtxPreCanceled(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunUntilCtx(ctx, Day); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if e.Processed() != 0 {
		t.Fatalf("processed %d events under a pre-canceled context", e.Processed())
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v despite cancellation", e.Now())
	}
}

func TestRunUntilCtxBackgroundIdentical(t *testing.T) {
	// A background context must not change behavior or results.
	run := func(ctx context.Context) (Time, uint64) {
		e := NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				e.PostAfter(Second, tick)
			}
		}
		e.PostAfter(Second, tick)
		if ctx == nil {
			e.RunUntil(2000)
		} else if err := e.RunUntilCtx(ctx, 2000); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Processed()
	}
	plainNow, plainN := run(nil)
	ctxNow, ctxN := run(context.Background())
	if plainNow != ctxNow || plainN != ctxN {
		t.Fatalf("background ctx changed the run: (%v,%d) vs (%v,%d)",
			plainNow, plainN, ctxNow, ctxN)
	}
}

func TestDeadlineExceededReported(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	e.SetCancelPollInterval(16)
	e.Schedule(100, cancel)
	e.RunUntil(Day)
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err = %v", e.Err())
	}
	// Re-arming with a live context clears the recorded error.
	e.SetContext(context.TODO())
	if e.Err() != nil {
		t.Fatalf("Err survived SetContext: %v", e.Err())
	}
}
