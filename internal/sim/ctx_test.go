package sim

import (
	"context"
	"errors"
	"testing"
)

// chain posts a self-perpetuating event every second, forever.
func chain(e *Engine) {
	var tick func()
	tick = func() { e.PostAfter(Second, tick) }
	e.PostAfter(Second, tick)
}

func TestRunUntilCtxCancelMidRun(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetCancelPollInterval(64)

	// Cancel from inside an event handler: deterministic, no timers.
	fired := false
	e.Schedule(500, func() { fired = true; cancel() })

	err := e.RunUntilCtx(ctx, 365*Day)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !fired {
		t.Fatal("cancel event never fired")
	}
	// The engine must stop within one poll batch of the cancel, not run
	// out the year-long horizon.
	if e.Now() > 500+64+1 {
		t.Fatalf("engine ran to %v after cancel at 500 (poll interval 64)", e.Now())
	}
	if e.Err() == nil {
		t.Fatal("Err() lost the cancellation")
	}
}

func TestRunUntilCtxPreCanceled(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunUntilCtx(ctx, Day); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if e.Processed() != 0 {
		t.Fatalf("processed %d events under a pre-canceled context", e.Processed())
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v despite cancellation", e.Now())
	}
}

func TestRunUntilCtxBackgroundIdentical(t *testing.T) {
	// A background context must not change behavior or results.
	run := func(ctx context.Context) (Time, uint64) {
		e := NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				e.PostAfter(Second, tick)
			}
		}
		e.PostAfter(Second, tick)
		if ctx == nil {
			e.RunUntil(2000)
		} else if err := e.RunUntilCtx(ctx, 2000); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Processed()
	}
	plainNow, plainN := run(nil)
	ctxNow, ctxN := run(context.Background())
	if plainNow != ctxNow || plainN != ctxN {
		t.Fatalf("background ctx changed the run: (%v,%d) vs (%v,%d)",
			plainNow, plainN, ctxNow, ctxN)
	}
}

// uncancelableKey is the context key used to build wrapped-but-uncancelable
// contexts in tests.
type uncancelableKey struct{}

func TestSetContextUncancelableFastPath(t *testing.T) {
	// The never-canceled fast path must trigger on Done() == nil, not on
	// identity with context.Background()/TODO(): a WithValue wrapper over
	// Background is equally uncancelable but compares unequal to both.
	cases := map[string]context.Context{
		"background": context.Background(),
		"todo":       context.TODO(),
		"withvalue":  context.WithValue(context.Background(), uncancelableKey{}, "x"),
		"nested":     context.WithValue(context.WithValue(context.Background(), uncancelableKey{}, 1), uncancelableKey{}, 2),
	}
	for name, ctx := range cases {
		e := NewEngine()
		e.SetContext(ctx)
		if e.ctx != nil {
			t.Errorf("%s: SetContext kept an uncancelable context armed (polls for nothing)", name)
		}
	}

	// A cancelable context must stay armed...
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	if e.ctx == nil {
		t.Fatal("SetContext dropped a cancelable context")
	}
	// ...including when wrapped in values (Done passes through the wrapper).
	e.SetContext(context.WithValue(ctx, uncancelableKey{}, "x"))
	if e.ctx == nil {
		t.Fatal("SetContext dropped a value-wrapped cancelable context")
	}
	// And a wrapped-uncancelable run still completes with no error.
	e2 := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			e2.PostAfter(Second, tick)
		}
	}
	e2.PostAfter(Second, tick)
	if err := e2.RunUntilCtx(context.WithValue(context.Background(), uncancelableKey{}, "y"), 200); err != nil {
		t.Fatalf("RunUntilCtx under uncancelable wrapper: %v", err)
	}
	if n != 100 {
		t.Fatalf("run stopped early: %d ticks", n)
	}
}

func TestDeadlineExceededReported(t *testing.T) {
	e := NewEngine()
	chain(e)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	e.SetCancelPollInterval(16)
	e.Schedule(100, cancel)
	e.RunUntil(Day)
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err = %v", e.Err())
	}
	// Re-arming with a live context clears the recorded error.
	e.SetContext(context.TODO())
	if e.Err() != nil {
		t.Fatalf("Err survived SetContext: %v", e.Err())
	}
}
