// Package catalog is the typed source of truth for instance types: what
// hardware each type carries (vCPU, memory, capacity units) and what it
// costs on demand, plus the AutoSpotting-style compatible-replacement
// matcher — "at least as powerful as the anchor type, as cheap as
// possible right now" — ranking candidates over the types × markets
// cross product by effective ($/capacity-unit-hour) spot price.
//
// The catalog generalizes the four-size table the paper evaluates
// (market.DefaultTypes) without changing it: Legacy() reproduces those
// four entries bit-for-bit, and Default() extends them with
// compute-optimized, memory-optimized, burstable and double-extra-large
// shapes so a fleet can trade instance size against current spot prices.
// Capacity units are powers of two, so per-unit normalization (price x
// 1/units) is exact in floating point and a single-unit catalog reduces
// bit-identically to the unit-free legacy arithmetic.
package catalog

import (
	"fmt"
	"sort"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// Entry describes one instance type: its hardware capacity and its
// baseline on-demand price (regional factors apply on top, exactly as in
// market.TypeSpec).
type Entry struct {
	Name market.InstanceType
	// VCPU and MemoryGB define the compatibility partial order: a
	// candidate can replace an anchor only when both are >= the anchor's.
	VCPU     int
	MemoryGB float64
	// Units is the type's capacity in abstract packing units (the
	// fleet's planning currency). Powers of two only, so spot/Units is
	// exact float arithmetic.
	Units int
	// OnDemand is the baseline on-demand $/hour before the regional
	// factor.
	OnDemand float64
}

// PerUnitOnDemand returns the baseline on-demand price per capacity
// unit.
func (e Entry) PerUnitOnDemand() float64 { return e.OnDemand / float64(e.Units) }

// InvUnits returns 1/Units — exact for the power-of-two unit counts New
// enforces, so price*InvUnits == price/Units bit-for-bit.
func (e Entry) InvUnits() float64 { return 1 / float64(e.Units) }

// Catalog is an immutable, validated set of instance types. Entry order
// is preserved from construction (it feeds the market generator, whose
// output is keyed by sorted market ID anyway); lookups go through an
// index.
type Catalog struct {
	entries []Entry
	byName  map[market.InstanceType]Entry
}

// New validates the entries and builds a catalog. Every entry must have
// a unique non-empty name, at least one vCPU, positive memory, a
// power-of-two unit count and a positive on-demand price.
func New(entries []Entry) (*Catalog, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("catalog: no entries")
	}
	c := &Catalog{byName: make(map[market.InstanceType]Entry, len(entries))}
	for i, e := range entries {
		switch {
		case e.Name == "":
			return nil, fmt.Errorf("catalog: entry %d has no name", i)
		case e.VCPU < 1:
			return nil, fmt.Errorf("catalog: type %q has %d vCPU, want >= 1", e.Name, e.VCPU)
		case e.MemoryGB <= 0:
			return nil, fmt.Errorf("catalog: type %q has non-positive memory %v", e.Name, e.MemoryGB)
		case e.Units < 1 || e.Units&(e.Units-1) != 0:
			return nil, fmt.Errorf("catalog: type %q has %d units, want a power of two", e.Name, e.Units)
		case e.OnDemand <= 0:
			return nil, fmt.Errorf("catalog: type %q has non-positive on-demand price %v", e.Name, e.OnDemand)
		}
		if _, dup := c.byName[e.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate type %q", e.Name)
		}
		c.byName[e.Name] = e
		c.entries = append(c.entries, e)
	}
	return c, nil
}

// MustNew is New for static catalogs that cannot fail.
func MustNew(entries []Entry) *Catalog {
	c, err := New(entries)
	if err != nil {
		panic(err)
	}
	return c
}

// Legacy returns the paper's four-size catalog: exactly the entries of
// market.DefaultTypes with VCPU = Units. A fleet over this catalog (or
// any single type of it) behaves bit-identically to the pre-catalog
// controller — the toggle-equivalence tests pin that.
func Legacy() *Catalog {
	return MustNew([]Entry{
		{Name: "small", VCPU: 1, MemoryGB: 1.7, Units: 1, OnDemand: 0.06},
		{Name: "medium", VCPU: 2, MemoryGB: 3.75, Units: 2, OnDemand: 0.12},
		{Name: "large", VCPU: 4, MemoryGB: 7.5, Units: 4, OnDemand: 0.24},
		{Name: "xlarge", VCPU: 8, MemoryGB: 15, Units: 8, OnDemand: 0.48},
	})
}

// Default returns the ten-type catalog the heterogeneity experiments
// run on: the four legacy general-purpose sizes (identical numbers)
// plus 2015-era-shaped variants — compute-optimized (more vCPU per
// unit, less memory, cheaper per unit), memory-optimized (double
// memory, dearer per unit), a double-extra-large with a scale discount,
// and a burstable type too small to replace anything but itself.
// Crossed with the four default regions this is a 40-market universe,
// ~10x the single-type fleet's.
func Default() *Catalog {
	return MustNew([]Entry{
		{Name: "small", VCPU: 1, MemoryGB: 1.7, Units: 1, OnDemand: 0.06},
		{Name: "medium", VCPU: 2, MemoryGB: 3.75, Units: 2, OnDemand: 0.12},
		{Name: "large", VCPU: 4, MemoryGB: 7.5, Units: 4, OnDemand: 0.24},
		{Name: "xlarge", VCPU: 8, MemoryGB: 15, Units: 8, OnDemand: 0.48},
		{Name: "c-large", VCPU: 8, MemoryGB: 3.75, Units: 4, OnDemand: 0.21},
		{Name: "c-xlarge", VCPU: 16, MemoryGB: 7.5, Units: 8, OnDemand: 0.42},
		{Name: "m-large", VCPU: 4, MemoryGB: 15, Units: 4, OnDemand: 0.26},
		{Name: "m-xlarge", VCPU: 8, MemoryGB: 30, Units: 8, OnDemand: 0.52},
		{Name: "xxlarge", VCPU: 16, MemoryGB: 30, Units: 16, OnDemand: 0.88},
		{Name: "t-small", VCPU: 1, MemoryGB: 0.6, Units: 1, OnDemand: 0.035},
	})
}

// FromTypes bridges a market.TypeSpec table (e.g. one parsed from a
// price file) into a catalog, taking VCPU = Units.
func FromTypes(types []market.TypeSpec) (*Catalog, error) {
	entries := make([]Entry, 0, len(types))
	for _, ts := range types {
		entries = append(entries, Entry{
			Name: ts.Name, VCPU: ts.Units, MemoryGB: ts.MemoryGB,
			Units: ts.Units, OnDemand: ts.OnDemand,
		})
	}
	return New(entries)
}

// Entries returns the catalog's entries in construction order. Callers
// must not modify the result.
func (c *Catalog) Entries() []Entry { return c.entries }

// Len returns the number of types.
func (c *Catalog) Len() int { return len(c.entries) }

// Lookup returns the entry named t, with ok=false when absent.
func (c *Catalog) Lookup(t market.InstanceType) (Entry, bool) {
	e, ok := c.byName[t]
	return e, ok
}

// TypeSpecs converts the catalog to the market generator's type table,
// preserving entry order. Legacy().TypeSpecs() equals
// market.DefaultTypes() exactly, so universes generated through the
// catalog are bit-identical to pre-catalog ones.
func (c *Catalog) TypeSpecs() []market.TypeSpec {
	out := make([]market.TypeSpec, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, market.TypeSpec{
			Name: e.Name, Units: e.Units, MemoryGB: e.MemoryGB, OnDemand: e.OnDemand,
		})
	}
	return out
}

// Compatible reports whether cand can stand in for anchor: at least as
// many vCPUs and at least as much memory (the AutoSpotting
// "at-least-as-powerful" rule). Units deliberately do not participate —
// they are the planning currency, not a hardware floor.
func Compatible(anchor, cand Entry) bool {
	return cand.VCPU >= anchor.VCPU && cand.MemoryGB >= anchor.MemoryGB
}

// CompatibleTypes returns the entries that can replace anchor, in
// catalog order. The anchor itself is always included.
func (c *Catalog) CompatibleTypes(anchor market.InstanceType) ([]Entry, error) {
	a, ok := c.byName[anchor]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown instance type %q", anchor)
	}
	var out []Entry
	for _, e := range c.entries {
		if Compatible(a, e) {
			out = append(out, e)
		}
	}
	return out, nil
}

// CompatibleMarkets returns every market of the set whose instance type
// the catalog knows and can replace anchor, sorted by market ID — the
// candidate universe a fleet anchored at that type places over.
func (c *Catalog) CompatibleMarkets(set *market.Set, anchor market.InstanceType) ([]market.ID, error) {
	a, ok := c.byName[anchor]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown instance type %q", anchor)
	}
	var out []market.ID
	for _, id := range set.IDs() {
		e, known := c.byName[id.Type]
		if known && Compatible(a, e) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("catalog: no market in the set is compatible with %q", anchor)
	}
	return out, nil
}

// Candidate is one ranked replacement offer: a compatible instance type
// in a market, priced at a moment in time.
type Candidate struct {
	ID    market.ID
	Entry Entry
	// Spot is the market's spot price at the ranking instant; PerUnit is
	// Spot normalized by the type's capacity units — the ranking key.
	Spot    float64
	PerUnit float64
	// OnDemand is the market's fixed on-demand price.
	OnDemand float64
}

// RankAt ranks every compatible (type, market) pair of the set by
// effective per-unit spot price at time t, cheapest first, ties broken
// by market ID. This is the matcher's reference answer — the fleet's
// hot path reproduces its argmin through the per-unit weighted envelope
// instead of calling it per decision.
func (c *Catalog) RankAt(set *market.Set, anchor market.InstanceType, t sim.Time) ([]Candidate, error) {
	ids, err := c.CompatibleMarkets(set, anchor)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, len(ids))
	for _, id := range ids {
		e := c.byName[id.Type]
		spot := set.Trace(id).PriceAt(t)
		out = append(out, Candidate{
			ID:       id,
			Entry:    e,
			Spot:     spot,
			PerUnit:  spot * e.InvUnits(),
			OnDemand: set.OnDemand(id),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PerUnit != out[j].PerUnit {
			return out[i].PerUnit < out[j].PerUnit
		}
		return out[i].ID.String() < out[j].ID.String()
	})
	return out, nil
}
