package catalog

import (
	"math/rand"
	"reflect"
	"testing"

	"spothost/internal/market"
	"spothost/internal/sim"
)

func TestLegacyMatchesDefaultTypes(t *testing.T) {
	if got, want := Legacy().TypeSpecs(), market.DefaultTypes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Legacy().TypeSpecs() = %+v, want market.DefaultTypes() %+v", got, want)
	}
}

func TestDefaultIncludesLegacyUnchanged(t *testing.T) {
	def := Default()
	for _, ts := range market.DefaultTypes() {
		e, ok := def.Lookup(ts.Name)
		if !ok {
			t.Fatalf("default catalog missing legacy type %q", ts.Name)
		}
		if e.Units != ts.Units || e.MemoryGB != ts.MemoryGB || e.OnDemand != ts.OnDemand {
			t.Fatalf("legacy type %q drifted: %+v vs %+v", ts.Name, e, ts)
		}
	}
	if def.Len() < 10 {
		t.Fatalf("default catalog has %d types, want >= 10", def.Len())
	}
}

func TestNewValidation(t *testing.T) {
	base := Entry{Name: "a", VCPU: 1, MemoryGB: 1, Units: 1, OnDemand: 0.1}
	cases := []struct {
		name string
		mut  func(*Entry)
	}{
		{"empty name", func(e *Entry) { e.Name = "" }},
		{"zero vcpu", func(e *Entry) { e.VCPU = 0 }},
		{"negative memory", func(e *Entry) { e.MemoryGB = -1 }},
		{"zero units", func(e *Entry) { e.Units = 0 }},
		{"non power-of-two units", func(e *Entry) { e.Units = 3 }},
		{"zero price", func(e *Entry) { e.OnDemand = 0 }},
	}
	for _, tc := range cases {
		e := base
		tc.mut(&e)
		if _, err := New([]Entry{e}); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, e)
		}
	}
	if _, err := New(nil); err == nil {
		t.Error("New accepted an empty catalog")
	}
	if _, err := New([]Entry{base, base}); err == nil {
		t.Error("New accepted a duplicate name")
	}
	if _, err := New([]Entry{base}); err != nil {
		t.Errorf("New rejected a valid entry: %v", err)
	}
}

func TestInvUnitsExact(t *testing.T) {
	for _, e := range Default().Entries() {
		for _, p := range []float64{0.0123, 0.06, 1.7320508, 15} {
			if p*e.InvUnits() != p/float64(e.Units) {
				t.Fatalf("%s: p*InvUnits != p/Units for p=%v", e.Name, p)
			}
		}
	}
}

func TestCompatibleTypes(t *testing.T) {
	def := Default()
	got, err := def.CompatibleTypes("small")
	if err != nil {
		t.Fatal(err)
	}
	names := map[market.InstanceType]bool{}
	for _, e := range got {
		names[e.Name] = true
	}
	// t-small has less memory than small: cheapest per unit, but not a
	// legal replacement.
	if names["t-small"] {
		t.Error("t-small reported compatible with small despite smaller memory")
	}
	if len(got) != def.Len()-1 {
		t.Errorf("small should be replaceable by every type but t-small, got %d of %d", len(got), def.Len())
	}
	// m-large (4 vCPU) cannot replace c-large (8 vCPU) despite more memory.
	cl, _ := def.Lookup("c-large")
	ml, _ := def.Lookup("m-large")
	if Compatible(cl, ml) {
		t.Error("m-large reported compatible with c-large despite fewer vCPUs")
	}
	if _, err := def.CompatibleTypes("quantum"); err == nil {
		t.Error("unknown anchor accepted")
	}
}

// catalogSet generates a universe over the full default catalog.
func catalogSet(t testing.TB, seed int64) *market.Set {
	t.Helper()
	cfg := market.DefaultConfig(seed)
	cfg.Types = Default().TypeSpecs()
	cfg.Horizon = 2 * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestRankAtProperties is the matcher's property test: every returned
// candidate is at least as powerful as the anchor, candidates are sorted
// by effective per-unit price (ties by ID), and the result matches a
// brute-force scan over the full types × markets grid.
func TestRankAtProperties(t *testing.T) {
	def := Default()
	set := catalogSet(t, 5)
	rng := rand.New(rand.NewSource(99))
	anchors := []market.InstanceType{"small", "medium", "large", "xlarge", "c-large", "m-large", "t-small"}
	for trial := 0; trial < 200; trial++ {
		anchor := anchors[rng.Intn(len(anchors))]
		a, _ := def.Lookup(anchor)
		at := sim.Time(rng.Float64() * float64(2*sim.Day))
		ranked, err := def.RankAt(set, anchor, at)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) == 0 {
			t.Fatalf("anchor %s: empty ranking", anchor)
		}
		for i, c := range ranked {
			if c.Entry.VCPU < a.VCPU || c.Entry.MemoryGB < a.MemoryGB {
				t.Fatalf("anchor %s: candidate %s weaker than anchor", anchor, c.ID)
			}
			if want := c.Spot / float64(c.Entry.Units); c.PerUnit != want {
				t.Fatalf("anchor %s: candidate %s PerUnit %v != spot/units %v", anchor, c.ID, c.PerUnit, want)
			}
			if i > 0 {
				prev := ranked[i-1]
				if c.PerUnit < prev.PerUnit {
					t.Fatalf("anchor %s: ranking not sorted at %d", anchor, i)
				}
				if c.PerUnit == prev.PerUnit && c.ID.String() < prev.ID.String() {
					t.Fatalf("anchor %s: ID tie-break violated at %d", anchor, i)
				}
			}
		}

		// Brute force: every (type, market) cell of the grid.
		naive := map[market.ID]float64{}
		for _, id := range set.IDs() {
			e, known := def.Lookup(id.Type)
			if !known || !Compatible(a, e) {
				continue
			}
			naive[id] = set.Trace(id).PriceAt(at) / float64(e.Units)
		}
		if len(naive) != len(ranked) {
			t.Fatalf("anchor %s: ranked %d candidates, naive grid has %d", anchor, len(ranked), len(naive))
		}
		bestPer, bestID := -1.0, market.ID{}
		for id, per := range naive {
			if bestPer < 0 || per < bestPer || (per == bestPer && id.String() < bestID.String()) {
				bestPer, bestID = per, id
			}
		}
		for _, c := range ranked {
			per, ok := naive[c.ID]
			if !ok || per != c.PerUnit {
				t.Fatalf("anchor %s: candidate %s disagrees with naive scan", anchor, c.ID)
			}
		}
		if ranked[0].ID != bestID || ranked[0].PerUnit != bestPer {
			t.Fatalf("anchor %s at %v: argmin %s (%v) != naive argmin %s (%v)",
				anchor, at, ranked[0].ID, ranked[0].PerUnit, bestID, bestPer)
		}
	}
}

func TestCompatibleMarketsSorted(t *testing.T) {
	def := Default()
	set := catalogSet(t, 7)
	ids, err := def.CompatibleMarkets(set, "xlarge")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		e, _ := def.Lookup(id.Type)
		if e.VCPU < 8 || e.MemoryGB < 15 {
			t.Fatalf("market %s weaker than xlarge anchor", id)
		}
		if i > 0 && ids[i-1].String() >= id.String() {
			t.Fatalf("markets not sorted at %d", i)
		}
	}
	// xlarge is replaceable by xlarge, m-xlarge, xxlarge in 4 regions.
	if want := 3 * 4; len(ids) != want {
		t.Fatalf("xlarge anchor: %d compatible markets, want %d", len(ids), want)
	}
	if _, err := def.CompatibleMarkets(set, "nope"); err == nil {
		t.Error("unknown anchor accepted")
	}
}

func TestFromTypes(t *testing.T) {
	c, err := FromTypes(market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.TypeSpecs(), market.DefaultTypes()) {
		t.Fatal("FromTypes round-trip drifted")
	}
}
