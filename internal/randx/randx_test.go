package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, "market/us-east-1a/small")
	b := Derive(42, "market/us-east-1a/small")
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("derived streams diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestDeriveIndependentLabels(t *testing.T) {
	a := Derive(42, "a")
	b := Derive(42, "b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different labels look identical (%d/100 equal)", same)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	a := Derive(1, "x")
	b := Derive(2, "x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("different root seeds produced identical streams")
	}
}

func TestStreamDeriveSub(t *testing.T) {
	root := NewStream(7)
	a := root.Derive("vm-1")
	root2 := NewStream(7)
	b := root2.Derive("vm-1")
	if a.Float64() != b.Float64() {
		t.Fatal("sub-derivation not deterministic")
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(95)
	}
	mean := sum / n
	if math.Abs(mean-95) > 2 {
		t.Fatalf("Exp(95) sample mean = %v", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := NewStream(1)
	if got := s.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := s.Exp(-3); got != 0 {
		t.Fatalf("Exp(-3) = %v, want 0", got)
	}
}

func TestLognormalMeanCV(t *testing.T) {
	s := NewStream(3)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.LognormalMeanCV(100, 0.3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-100) > 1.5 {
		t.Fatalf("mean = %v, want ~100", mean)
	}
	if math.Abs(sd/mean-0.3) > 0.02 {
		t.Fatalf("cv = %v, want ~0.3", sd/mean)
	}
}

func TestLognormalMeanCVDegenerate(t *testing.T) {
	s := NewStream(3)
	if got := s.LognormalMeanCV(0, 0.3); got != 0 {
		t.Fatalf("mean 0 should yield 0, got %v", got)
	}
	if got := s.LognormalMeanCV(50, 0); got != 50 {
		t.Fatalf("cv 0 should yield the mean, got %v", got)
	}
}

func TestParetoSupport(t *testing.T) {
	s := NewStream(5)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	s := NewStream(9)
	f := func(u uint8) bool {
		xm := 1.0 + float64(u%7)
		max := xm * 10
		v := s.BoundedPareto(xm, 1.2, max)
		return v >= xm*(1-1e-9) && v <= max*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	s := NewStream(2)
	if got := s.BoundedPareto(5, 2, 3); got != 5 {
		t.Fatalf("max <= xm should return xm, got %v", got)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := NewStream(11)
	for i := 0; i < 20000; i++ {
		v := s.TruncNormal(10, 50, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal escaped bounds: %v", v)
		}
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	s := NewStream(11)
	v := s.TruncNormal(0, 1, 5, -5)
	if v < -5 || v > 5 {
		t.Fatalf("swapped bounds not handled: %v", v)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(13)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %v", v)
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := NewStream(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) hit rate %v", p)
	}
}

func TestEmpirical(t *testing.T) {
	s := NewStream(19)
	if got := s.Empirical(nil); got != 0 {
		t.Fatalf("empty Empirical = %v", got)
	}
	vals := []float64{1, 2, 3}
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Empirical(vals)
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("Empirical returned foreign value %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Empirical missed values: %v", seen)
	}
}
