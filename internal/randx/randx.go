// Package randx provides seeded random streams and the probability
// distributions used throughout the spothost simulators.
//
// Every stochastic component of the simulation draws from its own Stream,
// derived deterministically from a root seed and a component label, so a
// simulation run is reproducible bit-for-bit from its root seed regardless
// of the order in which components are constructed.
package randx

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// countingSource wraps the core math/rand source and counts how many raw
// 64-bit steps it has produced. Counting at the source level (rather than
// the variate level) makes a stream's position checkpointable even through
// rejection sampling: every Int63/Uint64 call advances the underlying
// generator by exactly one step, so (seed, n) fully determines the state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// State is a serializable snapshot of a Stream's position: the seed it was
// created with and the number of raw source steps consumed since. Restore
// rebuilds a stream that continues the exact same variate sequence.
type State struct {
	Seed int64
	N    uint64
}

// Stream is a deterministic source of random variates. It wraps math/rand
// with a private source so independent components never share state.
type Stream struct {
	rng  *rand.Rand
	src  *countingSource
	seed int64
}

// NewStream returns a stream seeded directly with seed.
func NewStream(seed int64) *Stream {
	s64, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8.
		panic("randx: rand.NewSource is not a Source64")
	}
	cs := &countingSource{src: s64}
	return &Stream{rng: rand.New(cs), src: cs, seed: seed}
}

// State returns the stream's current position for later Restore.
func (s *Stream) State() State {
	return State{Seed: s.seed, N: s.src.n}
}

// Restore rebuilds a stream at the given position: the same seed, advanced
// by the same number of raw source steps. The restored stream produces the
// identical variate sequence the original would from that point on.
func Restore(st State) *Stream {
	s := NewStream(st.Seed)
	for s.src.n < st.N {
		s.src.Uint64()
	}
	return s
}

// Derive returns a new stream whose seed is a deterministic function of the
// root seed and a component label. Streams derived with different labels are
// statistically independent for simulation purposes.
func Derive(root int64, label string) *Stream {
	h := fnv.New64a()
	// Mix the root seed into the hash byte-by-byte.
	var b [8]byte
	u := uint64(root)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return NewStream(int64(h.Sum64()))
}

// Derive returns a sub-stream of s labelled by label, mixing the stream's
// own next value with the label. Useful for fanning a stream out to many
// dynamically created entities.
func (s *Stream) Derive(label string) *Stream {
	return Derive(s.rng.Int63(), label)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return s.rng.Int63() }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Exp returns an exponential variate with the given mean. A non-positive
// mean yields 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Lognormal returns a lognormal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Stream) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.rng.NormFloat64())
}

// LognormalMeanCV returns a lognormal variate parameterized by its own mean
// and coefficient of variation (stddev/mean), which is more convenient when
// calibrating to measured latencies. A non-positive mean yields 0; a
// non-positive cv collapses to the constant mean.
func (s *Stream) LognormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.Lognormal(mu, math.Sqrt(sigma2))
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0.
// The mean is xm*alpha/(alpha-1) for alpha > 1.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto variate truncated (by resampling the CDF)
// to [xm, max].
func (s *Stream) BoundedPareto(xm, alpha, max float64) float64 {
	if max <= xm {
		return xm
	}
	// Inverse-CDF of the bounded Pareto distribution.
	u := s.rng.Float64()
	l := math.Pow(xm, alpha)
	h := math.Pow(max, alpha)
	return math.Pow(-(u*h-u*l-h)/(h*l), -1/alpha)
}

// TruncNormal returns a normal(mean, sd) variate truncated to [lo, hi] by
// rejection, falling back to clamping after a bounded number of attempts so
// it can never loop forever under pathological parameters.
func (s *Stream) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		v := mean + sd*s.rng.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.rng.Float64() < p
}

// Empirical samples uniformly from a fixed set of observed values. It is
// used to replay measured latency samples. An empty set yields 0.
func (s *Stream) Empirical(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	return values[s.rng.Intn(len(values))]
}
