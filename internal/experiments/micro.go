package experiments

import (
	"fmt"
	"sort"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/stats"
	"spothost/internal/vm"
)

// Table1Result reproduces Table 1: mean instance start-up times by region
// and purchase model, measured by exercising the provider.
type Table1Result struct {
	// Rows maps region class -> [on-demand mean, spot mean] in seconds.
	Regions  []string
	OnDemand map[string]float64
	Spot     map[string]float64
	Samples  int
}

// Table1 requests batches of instances in a flat-price universe and
// measures request-to-running latency.
func Table1(opts Options) (Table1Result, error) {
	opts = opts.normalize()
	const samples = 80

	regions := []market.Region{"us-east-1a", "us-west-1a", "eu-west-1a"}
	var traces []*market.Trace
	onDemand := map[market.ID]float64{}
	for _, r := range regions {
		id := market.ID{Region: r, Type: "small"}
		tr, err := market.NewTrace(id, []market.Point{{T: 0, Price: 0.01}}, 10*sim.Day)
		if err != nil {
			return Table1Result{}, err
		}
		traces = append(traces, tr)
		onDemand[id] = 0.06
	}
	set, err := market.NewSet(traces, onDemand)
	if err != nil {
		return Table1Result{}, err
	}

	res := Table1Result{
		OnDemand: map[string]float64{},
		Spot:     map[string]float64{},
		Samples:  samples,
	}
	for _, seedBase := range opts.Seeds[:1] {
		eng := sim.NewEngine()
		cp := opts.Cloud
		cp.Seed = seedBase
		prov := cloud.NewProvider(eng, set, cp)
		type acc struct{ od, spot stats.Welford }
		accs := map[string]*acc{}
		for _, r := range regions {
			cls := cloud.StartupClass(r)
			accs[cls] = &acc{}
			id := market.ID{Region: r, Type: "small"}
			for i := 0; i < samples; i++ {
				// Stagger requests so they don't all bill forever.
				at := sim.Time(i) * 20
				eng.Schedule(at, func() {
					reqAt := eng.Now()
					in, err := prov.RequestOnDemand(id, cloud.Callbacks{
						OnRunning: func(in *cloud.Instance) {
							accs[cls].od.Add(eng.Now() - reqAt)
							_ = prov.Terminate(in)
						},
					})
					_ = in
					if err != nil {
						panic(err)
					}
					reqAt2 := eng.Now()
					_, err = prov.RequestSpot(id, 0.06, cloud.Callbacks{
						OnRunning: func(in *cloud.Instance) {
							accs[cls].spot.Add(eng.Now() - reqAt2)
							_ = prov.Terminate(in)
						},
					})
					if err != nil {
						panic(err)
					}
				})
			}
		}
		if err := eng.RunUntilCtx(opts.Context, 5*sim.Day); err != nil {
			return Table1Result{}, err
		}
		for cls, a := range accs {
			res.OnDemand[cls] = a.od.Mean()
			res.Spot[cls] = a.spot.Mean()
		}
	}
	for cls := range res.OnDemand {
		res.Regions = append(res.Regions, cls)
	}
	sort.Strings(res.Regions)
	return res, nil
}

// Render prints Table 1.
func (r Table1Result) Render() string {
	rows := [][]string{
		{"On-demand"}, {"Spot"},
	}
	header := []string{"Instance type"}
	for _, reg := range r.Regions {
		header = append(header, reg+" (s)")
		rows[0] = append(rows[0], fmt.Sprintf("%.2f", r.OnDemand[reg]))
		rows[1] = append(rows[1], fmt.Sprintf("%.2f", r.Spot[reg]))
	}
	return renderTable(fmt.Sprintf("Table 1: mean start-up time (%d samples/cell)", r.Samples),
		header, rows)
}

// Table2Result reproduces Table 2: migration mechanism overheads for a
// 2 GB VM, intra- and cross-region.
type Table2Result struct {
	// Intra-region rows: live migration duration and checkpoint seconds
	// per GB, per region.
	IntraRegions []market.Region
	LiveIntra    map[market.Region]float64
	CkptPerGB    float64
	// Cross-region rows: live migration duration and disk copy seconds
	// per GB, per pair.
	Pairs     [][2]market.Region
	LiveCross map[string]float64
	DiskPerGB map[string]float64
}

// Table2 evaluates the calibrated mechanism models on the paper's 2 GB
// benchmark VM.
func Table2(opts Options) (Table2Result, error) {
	opts = opts.normalize()
	// The paper's measurement VM: 2 GB of RAM, near idle.
	spec := vm.Spec{MemoryGB: 2, DirtyRateMBps: 2, DiskGB: 1, Units: 1}
	p := opts.VM

	res := Table2Result{
		IntraRegions: []market.Region{"us-east-1a", "us-west-1a", "eu-west-1a"},
		LiveIntra:    map[market.Region]float64{},
		LiveCross:    map[string]float64{},
		DiskPerGB:    map[string]float64{},
		CkptPerGB:    p.FullCheckpointTime(vm.Spec{MemoryGB: 1, Units: 1}),
	}
	for _, r := range res.IntraRegions {
		res.LiveIntra[r] = vm.LiveMigrationTimeline(spec, p.LiveBandwidthMBps, p).Duration
	}
	res.Pairs = [][2]market.Region{
		{"us-east-1a", "us-west-1a"},
		{"us-east-1a", "eu-west-1a"},
		{"us-west-1a", "eu-west-1a"},
	}
	for _, pr := range res.Pairs {
		link := p.Link(pr[0], pr[1])
		key := vm.WANKey(pr[0], pr[1])
		res.LiveCross[key] = vm.LiveMigrationTimeline(spec, link.LiveBandwidthMBps, p).Duration
		res.DiskPerGB[key] = 1024 / link.DiskCopyMBps
	}
	return res, nil
}

// Render prints Table 2.
func (r Table2Result) Render() string {
	var rows [][]string
	for _, reg := range r.IntraRegions {
		rows = append(rows, []string{
			"Inside " + string(market.RegionClass(reg)),
			fmt.Sprintf("%.1f", r.LiveIntra[reg]),
			fmt.Sprintf("%.1f", r.CkptPerGB),
			"-",
		})
	}
	for _, pr := range r.Pairs {
		key := vm.WANKey(pr[0], pr[1])
		rows = append(rows, []string{
			fmt.Sprintf("%s to %s", market.RegionClass(pr[0]), market.RegionClass(pr[1])),
			fmt.Sprintf("%.1f", r.LiveCross[key]),
			"-",
			fmt.Sprintf("%.1f", r.DiskPerGB[key]),
		})
	}
	return renderTable("Table 2: migration mechanism overheads (2 GB VM)",
		[]string{"path", "live migrate (s)", "checkpoint (s/GB)", "disk copy (s/GB)"}, rows)
}
