package experiments

import (
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	r, err := Ablations(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BidMultiple) != 4 || len(r.CkptBound) != 4 ||
		len(r.Hysteresis) != 4 || len(r.Stability) != 4 {
		t.Fatalf("sweep sizes: %d/%d/%d/%d",
			len(r.BidMultiple), len(r.CkptBound), len(r.Hysteresis), len(r.Stability))
	}

	// Bid multiple: k=4 should suffer no more forced migrations than
	// k=1.5, at similar cost.
	low, high := r.BidMultiple[0].Report, r.BidMultiple[len(r.BidMultiple)-1].Report
	if high.ForcedPerHour() > low.ForcedPerHour() {
		t.Errorf("higher bid increased forced rate: %.4f vs %.4f",
			high.ForcedPerHour(), low.ForcedPerHour())
	}
	if high.NormalizedCost() > low.NormalizedCost()*1.25 {
		t.Errorf("higher bid should not cost much more: %.3f vs %.3f",
			high.NormalizedCost(), low.NormalizedCost())
	}

	// Checkpoint bound: tau=30 must not *reduce* downtime vs tau=1.
	tight, loose := r.CkptBound[0].Report, r.CkptBound[len(r.CkptBound)-1].Report
	if loose.DowntimeSeconds < tight.DowntimeSeconds*0.9 {
		t.Errorf("loose bound reduced downtime: %.1f vs %.1f",
			loose.DowntimeSeconds, tight.DowntimeSeconds)
	}

	// Hysteresis: zero hysteresis churns at least as much as 0.4.
	churny, calm := r.Hysteresis[0].Report, r.Hysteresis[len(r.Hysteresis)-1].Report
	if churny.Migrations.Total() < calm.Migrations.Total() {
		t.Errorf("hysteresis sweep inverted: %d vs %d migrations",
			churny.Migrations.Total(), calm.Migrations.Total())
	}

	// Stability: lambda=2 should not migrate more than lambda=0.
	greedy, stable := r.Stability[0].Report, r.Stability[len(r.Stability)-1].Report
	if stable.Migrations.Total() > greedy.Migrations.Total() {
		t.Errorf("stability penalty increased migrations: %d vs %d",
			stable.Migrations.Total(), greedy.Migrations.Total())
	}

	out := r.Render()
	for _, want := range []string{"bid multiple", "checkpoint bound", "hysteresis", "stability penalty"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
