package experiments

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// RobustnessRow is one policy's outcome under one price regime.
type RobustnessRow struct {
	Policy   sched.Bidding
	Banded   metrics.Report // 2010-2012-style banded reserve prices
	Spiky    metrics.Report // banded + demand spikes
	Baseline metrics.Report // the default calibrated generator
}

// RobustnessResult stress-tests the paper's conclusions under the
// alternative price regime of Agmon Ben-Yehuda et al. (2013): a banded
// dynamic reserve price that never exceeds on-demand. The claims should
// degrade gracefully — in a calm market all policies converge and nothing
// migrates; in spiky regimes the paper's separations reappear.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// Robustness runs the three policies under three price regimes.
func Robustness(opts Options) (RobustnessResult, error) {
	opts = opts.normalize()
	home := market.ID{Region: opts.Region, Type: "small"}

	makeSets := func(seed int64) (banded, spiky, baseline *market.Set, err error) {
		rcfg := market.DefaultReserveConfig(seed)
		rcfg.Horizon = opts.Horizon
		if banded, err = market.GenerateReserve(rcfg); err != nil {
			return
		}
		rcfg.SpikesPerDay = 3
		if spiky, err = market.GenerateReserve(rcfg); err != nil {
			return
		}
		mc := opts.Market
		mc.Seed = seed
		baseline, err = market.Generate(mc)
		return
	}

	var res RobustnessResult
	for _, b := range []sched.Bidding{sched.Reactive, sched.Proactive, sched.PureSpot} {
		row := RobustnessRow{Policy: b}
		var bandedRs, spikyRs, baseRs []metrics.Report
		for _, seed := range opts.Seeds {
			banded, spiky, baseline, err := makeSets(seed)
			if err != nil {
				return res, err
			}
			cfg, err := sched.DefaultConfig(home, opts.Market.Types)
			if err != nil {
				return res, err
			}
			cfg.Bidding = b
			cfg.Mechanism = vm.CKPTLazyLive
			cfg.VMParams = opts.VM
			for _, run := range []struct {
				set *market.Set
				dst *[]metrics.Report
			}{{banded, &bandedRs}, {spiky, &spikyRs}, {baseline, &baseRs}} {
				cp := opts.Cloud
				cp.Seed = seed
				r, err := sched.Run(run.set, cp, cfg, opts.Horizon)
				if err != nil {
					return res, err
				}
				*run.dst = append(*run.dst, r)
			}
		}
		row.Banded = metrics.Average(bandedRs)
		row.Spiky = metrics.Average(spikyRs)
		row.Baseline = metrics.Average(baseRs)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the regime comparison.
func (r RobustnessResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			pct(row.Banded.NormalizedCost(), 1), pct(row.Banded.Unavailability(), 4),
			pct(row.Spiky.NormalizedCost(), 1), pct(row.Spiky.Unavailability(), 4),
			pct(row.Baseline.NormalizedCost(), 1), pct(row.Baseline.Unavailability(), 4),
			fmt.Sprintf("%d", row.Banded.Migrations.Total()),
		})
	}
	return renderTable(
		"Robustness: policies under alternative price regimes (banded reserve / banded+spikes / calibrated)",
		[]string{"policy",
			"cost banded", "unavail banded",
			"cost spiky", "unavail spiky",
			"cost default", "unavail default",
			"migrations banded"},
		rows)
}

// CSV emits the regime comparison.
func (r RobustnessResult) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			f(row.Banded.NormalizedCost()), f(row.Banded.Unavailability()),
			f(row.Spiky.NormalizedCost()), f(row.Spiky.Unavailability()),
			f(row.Baseline.NormalizedCost()), f(row.Baseline.Unavailability()),
		})
	}
	return csvTable([]string{"policy",
		"cost_banded", "unavail_banded",
		"cost_spiky", "unavail_spiky",
		"cost_default", "unavail_default"}, rows)
}
