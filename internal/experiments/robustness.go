package experiments

import (
	"context"
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// RobustnessRow is one policy's outcome under one price regime.
type RobustnessRow struct {
	Policy   sched.Bidding
	Banded   metrics.Report // 2010-2012-style banded reserve prices
	Spiky    metrics.Report // banded + demand spikes
	Baseline metrics.Report // the default calibrated generator
}

// RobustnessResult stress-tests the paper's conclusions under the
// alternative price regime of Agmon Ben-Yehuda et al. (2013): a banded
// dynamic reserve price that never exceeds on-demand. The claims should
// degrade gracefully — in a calm market all policies converge and nothing
// migrates; in spiky regimes the paper's separations reappear.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// Robustness runs the three policies under three price regimes. Every
// (policy, regime, seed) cell is an independent simulation, so they all
// fan out over one flat worker pool; the shared market cache generates
// each regime's universe once per seed instead of once per policy.
func Robustness(opts Options) (RobustnessResult, error) {
	opts = opts.normalize()
	home := market.ID{Region: opts.Region, Type: "small"}
	policies := []sched.Bidding{sched.Reactive, sched.Proactive, sched.PureSpot}
	const regimes = 3 // banded, spiky, baseline
	cache := market.SharedCache()

	generate := func(regime int, seed int64) (*market.Set, error) {
		switch regime {
		case 0, 1:
			rcfg := market.DefaultReserveConfig(seed)
			rcfg.Horizon = opts.Horizon
			if regime == 1 {
				rcfg.SpikesPerDay = 3
			}
			return cache.GenerateReserve(rcfg)
		default:
			mc := opts.Market
			mc.Seed = seed
			return cache.Generate(mc)
		}
	}

	var res RobustnessResult
	ns := len(opts.Seeds)
	cells := make([]int, len(policies)*regimes*ns)
	reports, err := runpool.MapCtx(opts.Context, opts.Parallel, cells, func(ctx context.Context, i, _ int) (metrics.Report, error) {
		policy := policies[i/(regimes*ns)]
		regime := (i / ns) % regimes
		seed := opts.Seeds[i%ns]
		set, err := generate(regime, seed)
		if err != nil {
			return metrics.Report{}, err
		}
		cfg, err := sched.DefaultConfig(home, opts.Market.Types)
		if err != nil {
			return metrics.Report{}, err
		}
		cfg.Bidding = policy
		cfg.Mechanism = vm.CKPTLazyLive
		cfg.VMParams = opts.VM
		cp := opts.Cloud
		cp.Seed = seed
		return sched.RunCtx(ctx, set, cp, cfg, opts.Horizon)
	})
	if err != nil {
		return res, err
	}
	for p, b := range policies {
		base := p * regimes * ns
		res.Rows = append(res.Rows, RobustnessRow{
			Policy:   b,
			Banded:   metrics.Average(reports[base : base+ns]),
			Spiky:    metrics.Average(reports[base+ns : base+2*ns]),
			Baseline: metrics.Average(reports[base+2*ns : base+3*ns]),
		})
	}
	return res, nil
}

// Render prints the regime comparison.
func (r RobustnessResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			pct(row.Banded.NormalizedCost(), 1), pct(row.Banded.Unavailability(), 4),
			pct(row.Spiky.NormalizedCost(), 1), pct(row.Spiky.Unavailability(), 4),
			pct(row.Baseline.NormalizedCost(), 1), pct(row.Baseline.Unavailability(), 4),
			fmt.Sprintf("%d", row.Banded.Migrations.Total()),
		})
	}
	return renderTable(
		"Robustness: policies under alternative price regimes (banded reserve / banded+spikes / calibrated)",
		[]string{"policy",
			"cost banded", "unavail banded",
			"cost spiky", "unavail spiky",
			"cost default", "unavail default",
			"migrations banded"},
		rows)
}

// CSV emits the regime comparison.
func (r RobustnessResult) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			f(row.Banded.NormalizedCost()), f(row.Banded.Unavailability()),
			f(row.Spiky.NormalizedCost()), f(row.Spiky.Unavailability()),
			f(row.Baseline.NormalizedCost()), f(row.Baseline.Unavailability()),
		})
	}
	return csvTable([]string{"policy",
		"cost_banded", "unavail_banded",
		"cost_spiky", "unavail_spiky",
		"cost_default", "unavail_default"}, rows)
}
