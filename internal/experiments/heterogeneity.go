package experiments

import (
	"context"
	"fmt"

	"spothost/internal/catalog"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/runpool"
)

// heterogeneityAnchor is the capacity anchor both arms plan in: the
// paper's smallest general-purpose type, one capacity unit per replica.
const heterogeneityAnchor = "small"

// HeterogeneityRow is one allocation strategy's paired outcome: the same
// demand served from single-type small markets versus the full typed
// catalog over the same universe.
type HeterogeneityRow struct {
	Strategy string
	// Single and Typed are cross-seed average reports for the two arms.
	Single fleet.Report
	Typed  fleet.Report
	// SingleSeeds and TypedSeeds hold the per-seed reports, in seed order.
	SingleSeeds []fleet.Report
	TypedSeeds  []fleet.Report
	// Savings is 1 - typed/single mean dollar cost.
	Savings float64
	// TypesUsed counts distinct instance types the typed arm ever billed.
	TypesUsed int
}

// HeterogeneityResult compares homogeneous and catalog-driven fleets.
type HeterogeneityResult struct {
	// SingleMarkets and TypedMarkets are the candidate-universe sizes of
	// the two arms (4 small markets vs every catalog-compatible market).
	SingleMarkets int
	TypedMarkets  int
	Rows          []HeterogeneityRow
}

// Heterogeneity runs the instance-catalog experiment: for each allocation
// strategy, a fleet restricted to the per-region "small" markets (the
// pre-catalog configuration) races a fleet over the full default catalog
// anchored at small — same typed universe, same demand, same planner, so
// the only difference is the replacement pool. The typed arm may fill its
// unit target with any compatible size whose per-unit price currently
// wins (e.g. compute-optimized types undercut small per unit even on
// demand), which is where the savings come from.
func Heterogeneity(opts Options) (HeterogeneityResult, error) {
	opts = opts.normalize()
	cat := catalog.Default()
	res := HeterogeneityResult{}
	planner, err := fleetPlanner()
	if err != nil {
		return res, err
	}
	dcfg := fleet.DefaultDiurnalConfig(opts.Horizon, fleetDemandSeed)
	dcfg.Base = fleetBaseLoad
	dcfg.Peak = fleetPeakLoad
	demand, err := fleet.NewDiurnalDemand(dcfg)
	if err != nil {
		return res, err
	}
	singleMarkets := fleetMarkets(opts)
	res.SingleMarkets = len(singleMarkets)

	strategies := fleet.Strategies()
	ns := len(opts.Seeds)
	cache := market.SharedCache()
	// Cell layout: arm-major, then strategy, then seed. Both arms share
	// the typed universe via the market cache.
	cells := make([]int, 2*len(strategies)*ns)
	reports, err := runpool.MapCtx(opts.Context, opts.Parallel, cells, func(ctx context.Context, i, _ int) (fleet.Report, error) {
		typed := i >= len(strategies)*ns
		j := i % (len(strategies) * ns)
		seed := opts.Seeds[j%ns]
		mc := opts.Market
		mc.Seed = seed
		mc.Types = cat.TypeSpecs()
		set, err := cache.Generate(mc)
		if err != nil {
			return fleet.Report{}, err
		}
		cp := opts.Cloud
		cp.Seed = seed
		cfg := fleet.Config{
			Strategy:    strategies[j/ns],
			Demand:      demand,
			Planner:     planner,
			BidMultiple: fleetBidMultiple,
			MaxReplicas: fleetMaxReplicas,
		}
		arm := "single"
		if typed {
			cfg.Catalog = cat
			cfg.AnchorType = heterogeneityAnchor
			arm = "typed"
		} else {
			cfg.Markets = singleMarkets
		}
		var ob *obs.Recorder
		if opts.Obs != nil {
			ob = opts.Obs.Run(fmt.Sprintf("%s/%s/seed%d", arm, strategies[j/ns].Name(), seed))
		}
		rep, err := fleet.RunObsCtx(ctx, set, cp, cfg, opts.Horizon, nil, ob)
		if err == nil {
			opts.Obs.Done(ob)
		}
		return rep, err
	})
	if err != nil {
		return res, err
	}

	// The typed arm's candidate universe: every market of the typed set
	// compatible with the anchor.
	if ids, err := typedUniverseSize(opts, cat); err == nil {
		res.TypedMarkets = ids
	}

	half := len(strategies) * ns
	for s, strat := range strategies {
		singleSeeds := reports[s*ns : (s+1)*ns]
		typedSeeds := reports[half+s*ns : half+(s+1)*ns]
		row := HeterogeneityRow{
			Strategy:    strat.Name(),
			Single:      fleet.Average(singleSeeds),
			Typed:       fleet.Average(typedSeeds),
			SingleSeeds: singleSeeds,
			TypedSeeds:  typedSeeds,
		}
		if row.Single.Cost > 0 {
			row.Savings = 1 - row.Typed.Cost/row.Single.Cost
		}
		types := map[market.InstanceType]bool{}
		for _, rep := range typedSeeds {
			for id, u := range rep.MarketSeconds {
				if u.SpotSeconds+u.OnDemandSeconds > 0 {
					types[id.Type] = true
				}
			}
		}
		row.TypesUsed = len(types)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// typedUniverseSize counts the typed arm's candidate markets without
// rerunning generation (the cache already holds the first seed's set).
func typedUniverseSize(opts Options, cat *catalog.Catalog) (int, error) {
	mc := opts.Market
	mc.Seed = opts.Seeds[0]
	mc.Types = cat.TypeSpecs()
	set, err := market.SharedCache().Generate(mc)
	if err != nil {
		return 0, err
	}
	ids, err := cat.CompatibleMarkets(set, heterogeneityAnchor)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// Render prints the single-type vs catalog comparison.
func (r HeterogeneityResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			fmt.Sprintf("$%.2f", row.Single.Cost),
			fmt.Sprintf("$%.2f", row.Typed.Cost),
			pct(row.Savings, 1),
			pct(row.Single.CapacityShortfall(), 3),
			pct(row.Typed.CapacityShortfall(), 3),
			fmt.Sprintf("%d", row.TypesUsed),
			fmt.Sprintf("%d", row.Typed.OnDemandFallbacks),
			fmt.Sprintf("%d", row.Typed.ReplicasLost),
		})
	}
	return renderTable(
		fmt.Sprintf("Heterogeneity: single-type (%d markets) vs typed catalog (%d markets, anchor %s)",
			r.SingleMarkets, r.TypedMarkets, heterogeneityAnchor),
		[]string{"strategy", "single cost", "typed cost", "savings",
			"single shortfall", "typed shortfall", "types", "od fallback", "lost"},
		rows)
}

// CSV emits the comparison.
func (r HeterogeneityResult) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			f(row.Single.Cost), f(row.Typed.Cost), f(row.Savings),
			f(row.Single.CapacityShortfall()), f(row.Typed.CapacityShortfall()),
			fmt.Sprintf("%d", row.TypesUsed),
			fmt.Sprintf("%d", row.Typed.OnDemandFallbacks),
			fmt.Sprintf("%d", row.Typed.ReplicasLost),
		})
	}
	return csvTable([]string{"strategy", "single_cost", "typed_cost", "savings",
		"single_shortfall", "typed_shortfall", "types_used", "od_fallbacks",
		"replicas_lost"}, rows)
}
