package experiments

import (
	"bytes"
	"strings"
	"testing"

	"spothost/internal/obs"
)

// TestTimelineDeterminism asserts the telemetry export — downsampled
// timeline CSV and decision-ledger NDJSON — is byte-identical at any
// worker count. Recorders are labeled by deterministic (strategy, seed)
// coordinates and the collector exports in label order, so worker
// completion order must never leak into either file.
func TestTimelineDeterminism(t *testing.T) {
	export := func(workers int) (string, string) {
		opts := determinismOpts(workers)
		opts.Horizon = opts.Market.Horizon
		col := obs.NewCollector(obs.Config{Budget: 64})
		opts.Obs = col
		if _, err := Fleet(opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var tl, led bytes.Buffer
		if err := col.WriteTimelineCSV(&tl); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := col.WriteLedgerNDJSON(&led); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tl.String(), led.String()
	}
	wantTL, wantLed := export(1)
	if !strings.Contains(wantTL, "cost_dollars") || !strings.Contains(wantTL, "shortfall_units") {
		t.Fatalf("serial timeline CSV missing core series:\n%.500s", wantTL)
	}
	if !strings.Contains(wantLed, `"action":"spot"`) {
		t.Fatalf("serial ledger has no spot decisions:\n%.500s", wantLed)
	}
	for _, w := range workerCounts() {
		gotTL, gotLed := export(w)
		if gotTL != wantTL {
			t.Fatalf("workers=%d: timeline CSV differs from serial (%d vs %d bytes)", w, len(gotTL), len(wantTL))
		}
		if gotLed != wantLed {
			t.Fatalf("workers=%d: ledger NDJSON differs from serial (%d vs %d bytes)", w, len(gotLed), len(wantLed))
		}
	}
}
