package experiments

import (
	"testing"

	"spothost/internal/fleet"
	"spothost/internal/sched"
)

// The rendered experiment output must be byte-identical with the envelope
// fast path on (the default, "after") and off (the reference linear scans,
// "before"): the envelope is an access-path optimization, not a policy
// change. Figure 6 exercises the scheduler's single-service migration
// policies, Figure 8 the multi-market portfolios, and Fleet the replicated
// controller's strategies.

func renderFigure6(t *testing.T) string {
	t.Helper()
	r, err := Figure6(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	return r.Render()
}

func TestFigure6EnvelopeByteIdentical(t *testing.T) {
	after := renderFigure6(t)
	sched.SetEnvelopeFastPath(false)
	defer sched.SetEnvelopeFastPath(true)
	before := renderFigure6(t)
	if after != before {
		t.Fatalf("Figure 6 differs with envelope fast path on vs off\n--- on ---\n%s\n--- off ---\n%s", after, before)
	}
}

func renderFigure8(t *testing.T) string {
	t.Helper()
	r, err := Figure8(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	return r.Render()
}

func TestFigure8EnvelopeByteIdentical(t *testing.T) {
	after := renderFigure8(t)
	sched.SetEnvelopeFastPath(false)
	defer sched.SetEnvelopeFastPath(true)
	before := renderFigure8(t)
	if after != before {
		t.Fatalf("Figure 8 differs with envelope fast path on vs off\n--- on ---\n%s\n--- off ---\n%s", after, before)
	}
}

func renderFleet(t *testing.T) string {
	t.Helper()
	r, err := Fleet(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	return r.Render()
}

func TestFleetEnvelopeByteIdentical(t *testing.T) {
	after := renderFleet(t)
	fleet.SetEnvelopeFastPath(false)
	defer fleet.SetEnvelopeFastPath(true)
	before := renderFleet(t)
	if after != before {
		t.Fatalf("Fleet differs with envelope fast path on vs off\n--- on ---\n%s\n--- off ---\n%s", after, before)
	}
}
