package experiments

import (
	"fmt"
	"strings"
)

// CSVExporter is implemented by experiment results that can emit their
// series as CSV for external plotting; cmd/paperbench's -csv flag writes
// one file per experiment.
type CSVExporter interface {
	CSV() string
}

// csvTable renders rows as RFC-4180-ish CSV (fields here never contain
// commas or quotes).
func csvTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f(v float64) string { return fmt.Sprintf("%g", v) }

// CSV emits Fig. 6's four panels as one table.
func (r Figure6Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Type),
			f(row.Reactive.NormalizedCost()), f(row.Proact.NormalizedCost()),
			f(row.Reactive.Unavailability()), f(row.Proact.Unavailability()),
			f(row.Reactive.ForcedPerHour()), f(row.Proact.ForcedPerHour()),
			f(row.Reactive.PlannedReversePerHour()), f(row.Proact.PlannedReversePerHour()),
		})
	}
	return csvTable([]string{"market",
		"cost_reactive", "cost_proactive",
		"unavail_reactive", "unavail_proactive",
		"forced_hr_reactive", "forced_hr_proactive",
		"voluntary_hr_reactive", "voluntary_hr_proactive"}, rows)
}

// CSV emits Fig. 7's bars.
func (r Figure7Result) CSV() string {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Mechanism.String(),
			f(c.Typical.Unavailability()),
			f(c.Pessim.Unavailability()),
		})
	}
	return csvTable([]string{"mechanism", "unavail_typical", "unavail_pessimistic"}, rows)
}

// CSV emits Fig. 8's per-region series.
func (r Figure8Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Region),
			f(row.AvgSingle.NormalizedCost()), f(row.Multi.NormalizedCost()),
			f(row.Reduction), f(row.Correlation),
			f(row.AvgSingle.Unavailability()), f(row.Multi.Unavailability()),
		})
	}
	return csvTable([]string{"region", "cost_single_avg", "cost_multi",
		"reduction", "intra_correlation", "unavail_single", "unavail_multi"}, rows)
}

// CSV emits Fig. 9's per-pair series.
func (r Figure9Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.A), string(row.B),
			f(row.AvgSingle.NormalizedCost()), f(row.Multi.NormalizedCost()),
			f(row.Reduction), f(row.Correlation),
			f(row.AvgSingle.Unavailability()), f(row.Multi.Unavailability()),
		})
	}
	return csvTable([]string{"region_a", "region_b", "cost_single_avg", "cost_multi",
		"reduction", "cross_correlation", "unavail_single", "unavail_multi"}, rows)
}

// CSV emits Fig. 10's grid.
func (r Figure10Result) CSV() string {
	header := []string{"region"}
	for _, ty := range r.Types {
		header = append(header, "std_"+string(ty))
	}
	var rows [][]string
	for _, reg := range r.Regions {
		row := []string{string(reg)}
		for _, ty := range r.Types {
			row = append(row, f(r.StdDev[reg][ty]))
		}
		rows = append(rows, row)
	}
	return csvTable(header, rows)
}

// CSV emits Fig. 11's bars.
func (r Figure11Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Type),
			f(row.Proact.NormalizedCost()), f(row.PureSpot.NormalizedCost()),
			f(row.Proact.Unavailability()), f(row.PureSpot.Unavailability()),
		})
	}
	return csvTable([]string{"market", "cost_proactive", "cost_pure_spot",
		"unavail_proactive", "unavail_pure_spot"}, rows)
}

// CSV emits both Fig. 12 panels.
func (r Figure12Result) CSV() string {
	var rows [][]string
	emit := func(panel string, pts []Figure12Point) {
		for _, p := range pts {
			rows = append(rows, []string{
				panel, fmt.Sprintf("%d", p.EBs), f(p.NativeMs), f(p.NestedMs),
			})
		}
	}
	emit("with_images", r.WithImages)
	emit("no_images", r.NoImages)
	return csvTable([]string{"panel", "ebs", "native_ms", "nested_ms"}, rows)
}

// CSV emits the four ablation sweeps, long-format.
func (r AblationResult) CSV() string {
	var rows [][]string
	emit := func(knob string, pts []AblationPoint) {
		for _, p := range pts {
			rows = append(rows, []string{
				knob, f(p.Value),
				f(p.Report.NormalizedCost()), f(p.Report.Unavailability()),
				f(p.Report.ForcedPerHour()), fmt.Sprintf("%d", p.Report.Migrations.Total()),
			})
		}
	}
	emit("bid_multiple", r.BidMultiple)
	emit("ckpt_bound", r.CkptBound)
	emit("hysteresis", r.Hysteresis)
	emit("stability_lambda", r.Stability)
	return csvTable([]string{"knob", "value", "cost", "unavail", "forced_hr", "migrations"}, rows)
}
