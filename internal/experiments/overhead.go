package experiments

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/tpcw"
	"spothost/internal/vm"
)

// Table4Result reproduces Table 4: network and disk I/O throughput of
// nested VMs versus native Amazon VMs.
type Table4Result struct {
	Native tpcw.IOMicrobench
	Nested tpcw.IOMicrobench
	// DegradationPct is [net tx, net rx, disk read, disk write].
	DegradationPct [4]float64
}

// Table4 measures the micro-benchmarks under both virtualization modes.
func Table4(opts Options) (Table4Result, error) {
	opts = opts.normalize()
	base := tpcw.NativeBaselines()
	res := Table4Result{
		Native: tpcw.MeasureIO(base, vm.NativeOverhead(), 0.01, opts.Seeds[0]),
		Nested: tpcw.MeasureIO(base, vm.DefaultOverhead(), 0.01, opts.Seeds[0]+1),
	}
	res.DegradationPct = tpcw.DegradationPercent(res.Native, res.Nested)
	return res, nil
}

// Render prints Table 4.
func (r Table4Result) Render() string {
	row := func(name string, nat, nst, deg float64) []string {
		return []string{name, fmt.Sprintf("%.1f", nat), fmt.Sprintf("%.1f", nst),
			fmt.Sprintf("%.1f%%", deg)}
	}
	rows := [][]string{
		row("Network TX", r.Native.NetworkTx, r.Nested.NetworkTx, r.DegradationPct[0]),
		row("Network RX", r.Native.NetworkRx, r.Nested.NetworkRx, r.DegradationPct[1]),
		row("Disk Read", r.Native.DiskRead, r.Nested.DiskRead, r.DegradationPct[2]),
		row("Disk Write", r.Native.DiskWrite, r.Nested.DiskWrite, r.DegradationPct[3]),
	}
	return renderTable("Table 4: nested vs native I/O throughput",
		[]string{"benchmark", "Amazon VM (Mbps)", "Nested VM (Mbps)", "degradation"}, rows)
}

// Figure12Point is one load level of a Fig. 12 curve.
type Figure12Point struct {
	EBs      int
	NativeMs float64
	NestedMs float64
}

// Figure12Result reproduces Fig. 12: TPC-W mean response time vs number of
// emulated browsers, native vs nested, for both workload configurations.
type Figure12Result struct {
	WithImages []Figure12Point // Fig. 12(a): I/O-bound
	NoImages   []Figure12Point // Fig. 12(b): CPU-bound
}

// Figure12 sweeps the EB counts the paper plots (100..400).
func Figure12(opts Options) (Figure12Result, error) {
	opts = opts.normalize()
	loads := []int{100, 150, 200, 250, 300, 350, 400}
	var res Figure12Result
	for _, withImages := range []bool{true, false} {
		for _, ebs := range loads {
			nat, err := tpcw.Run(tpcw.DefaultConfig(ebs, withImages, false, opts.Seeds[0]))
			if err != nil {
				return res, err
			}
			nst, err := tpcw.Run(tpcw.DefaultConfig(ebs, withImages, true, opts.Seeds[0]))
			if err != nil {
				return res, err
			}
			p := Figure12Point{EBs: ebs, NativeMs: nat.MeanResponseMs, NestedMs: nst.MeanResponseMs}
			if withImages {
				res.WithImages = append(res.WithImages, p)
			} else {
				res.NoImages = append(res.NoImages, p)
			}
		}
	}
	return res, nil
}

// Render prints both Fig. 12 panels.
func (r Figure12Result) Render() string {
	render := func(title string, pts []Figure12Point) string {
		var rows [][]string
		for _, p := range pts {
			ratio := 0.0
			if p.NativeMs > 0 {
				ratio = p.NestedMs / p.NativeMs
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.EBs),
				fmt.Sprintf("%.0f", p.NativeMs),
				fmt.Sprintf("%.0f", p.NestedMs),
				fmt.Sprintf("%.2fx", ratio),
			})
		}
		return renderTable(title,
			[]string{"EBs", "Amazon VM (ms)", "Nested VM (ms)", "nested/native"}, rows)
	}
	return render("Figure 12(a): TPC-W response time, browsers fetch images (I/O-bound)", r.WithImages) +
		"\n" +
		render("Figure 12(b): TPC-W response time, images served by CDN (CPU-bound)", r.NoImages)
}

// Section6Result quantifies the Sec. 6 conclusion: the worst-case nested
// CPU overhead halves effective capacity, shrinking the paper's 17-33 %
// normalized cost to a worst case of roughly double.
type Section6Result struct {
	// NormalizedCost is the measured proactive single-market cost.
	NormalizedCost float64
	// CapacityFactor is the nested VM's effective capacity for a fully
	// CPU-bound workload (1/1.5).
	CapacityFactor float64
	// WorstCaseCost is the normalized cost after over-provisioning for
	// the overhead.
	WorstCaseCost float64
}

// Section6 derives the worst-case cost from a proactive run and the
// overhead model.
func Section6(opts Options) (Section6Result, error) {
	opts = opts.normalize()
	home := market.ID{Region: opts.Region, Type: "small"}
	cfg, err := singleMarketConfig(opts, home, sched.Proactive, vm.CKPTLazyLive)
	if err != nil {
		return Section6Result{}, err
	}
	r, err := runPolicy(opts, cfg)
	if err != nil {
		return Section6Result{}, err
	}
	f := vm.DefaultOverhead().EffectiveCapacityFactor(1)
	return Section6Result{
		NormalizedCost: r.NormalizedCost(),
		CapacityFactor: f,
		WorstCaseCost:  r.NormalizedCost() / f,
	}, nil
}

// Render prints the Sec. 6 summary.
func (r Section6Result) Render() string {
	rows := [][]string{
		{"measured proactive cost", pct(r.NormalizedCost, 1)},
		{"worst-case CPU capacity factor", fmt.Sprintf("%.2f", r.CapacityFactor)},
		{"worst-case normalized cost", pct(r.WorstCaseCost, 1)},
		{"worst-case savings", pct(1-r.WorstCaseCost, 1)},
	}
	return renderTable("Section 6: impact of nested-VM CPU overhead on cost savings",
		[]string{"quantity", "value"}, rows)
}
