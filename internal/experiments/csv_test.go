package experiments

import (
	"strings"
	"testing"
)

// TestCSVExports checks every plottable experiment emits well-formed CSV:
// a header plus one row per series point, uniform column counts.
func TestCSVExports(t *testing.T) {
	opts := quick()

	check := func(name, csv string, wantRows int) {
		t.Helper()
		lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
		if len(lines) != wantRows+1 {
			t.Fatalf("%s: %d lines, want header+%d", name, len(lines), wantRows)
		}
		cols := strings.Count(lines[0], ",")
		for i, l := range lines {
			if strings.Count(l, ",") != cols {
				t.Fatalf("%s: ragged row %d: %q", name, i, l)
			}
			if strings.TrimSpace(l) == "" {
				t.Fatalf("%s: blank row %d", name, i)
			}
		}
	}

	f6, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure6", f6.CSV(), len(f6.Rows))

	f7, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure7", f7.CSV(), len(f7.Cells))

	f8, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure8", f8.CSV(), len(f8.Rows))

	f9, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure9", f9.CSV(), len(f9.Rows))

	f10, err := Figure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure10", f10.CSV(), len(f10.Regions))

	f11, err := Figure11(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure11", f11.CSV(), len(f11.Rows))

	f12, err := Figure12(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("figure12", f12.CSV(), len(f12.WithImages)+len(f12.NoImages))

	ab, err := Ablations(opts)
	if err != nil {
		t.Fatal(err)
	}
	check("ablations", ab.CSV(), len(ab.BidMultiple)+len(ab.CkptBound)+len(ab.Hysteresis)+len(ab.Stability))

	// The exporters are discoverable through the interface.
	for _, r := range []any{f6, f7, f8, f9, f10, f11, f12, ab} {
		if _, ok := r.(CSVExporter); !ok {
			t.Fatalf("%T does not implement CSVExporter", r)
		}
	}
}
