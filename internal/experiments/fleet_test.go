package experiments

import (
	"strings"
	"testing"
)

// TestFleetClaims checks the headline claims of the fleet extension:
// every strategy beats the all-on-demand baseline, and capping per-market
// share (Diversified) shrinks both the worst simultaneous replica loss
// and the loss variance relative to LowestPrice concentrating the fleet.
func TestFleetClaims(t *testing.T) {
	res, err := Fleet(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(res.Rows))
	}
	byName := map[string]FleetRow{}
	for _, row := range res.Rows {
		byName[row.Strategy] = row
		if c := row.Mean.NormalizedCost(); c <= 0 || c >= 1 {
			t.Errorf("%s: cost %.2f of baseline, want in (0, 1)", row.Strategy, c)
		}
		if s := row.Mean.CapacityShortfall(); s < 0 || s > 0.05 {
			t.Errorf("%s: capacity shortfall %.4f, want under 5%%", row.Strategy, s)
		}
		if row.Mean.PeakTarget < 4 {
			t.Errorf("%s: peak target %d, want a real fleet (>= 4)", row.Strategy, row.Mean.PeakTarget)
		}
	}
	lp, div := byName["lowest-price"], byName["diversified"]
	if lp.LossEvents == 0 {
		t.Fatal("lowest-price saw no revocations; the comparison is vacuous")
	}
	if div.WorstSimultaneousLoss >= lp.WorstSimultaneousLoss {
		t.Errorf("diversified worst simultaneous loss %d not below lowest-price %d",
			div.WorstSimultaneousLoss, lp.WorstSimultaneousLoss)
	}
	if div.LossVariance >= lp.LossVariance {
		t.Errorf("diversified loss variance %.2f not below lowest-price %.2f",
			div.LossVariance, lp.LossVariance)
	}
}

// TestFleetRegistered asserts the experiment is reachable through the
// single registry every binary consumes.
func TestFleetRegistered(t *testing.T) {
	e, ok := Find("fleet")
	if !ok {
		t.Fatal("fleet experiment not in experiments.All()")
	}
	if e.Name != "fleet" {
		t.Fatalf("registry returned %q", e.Name)
	}
}

// TestFleetCSV checks the CSV export shape.
func TestFleetCSV(t *testing.T) {
	res, err := Fleet(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var exp CSVExporter = res
	csv := exp.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + 3 strategies
		t.Fatalf("want 4 CSV lines, got %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "strategy,cost,") {
		t.Fatalf("unexpected header: %s", lines[0])
	}
}
