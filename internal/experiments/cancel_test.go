package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"spothost/internal/sim"
)

// TestExperimentCanceledMidRun exercises the serving layer's abort path
// end to end: a slow experiment whose Options.Context is canceled returns
// promptly with context.Canceled instead of finishing its grid.
func TestExperimentCanceledMidRun(t *testing.T) {
	opts := Quick()
	opts.Seeds = []int64{99} // unshared seed: cells must simulate, not hit the cache
	opts.Horizon = 60 * sim.Day
	opts.Market.Horizon = 60 * sim.Day
	ctx, cancel := context.WithCancel(context.Background())
	opts.Context = ctx
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Figure6(opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v after %v, want context.Canceled", err, elapsed)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("canceled experiment took %v to return", elapsed)
	}
}

func TestExperimentPreCanceled(t *testing.T) {
	opts := Quick()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts.Context = ctx
	if _, err := Figure6(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
