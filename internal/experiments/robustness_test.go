package experiments

import (
	"strings"
	"testing"
)

func TestRobustnessClaims(t *testing.T) {
	r, err := Robustness(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var pure, pro RobustnessRow
	for _, row := range r.Rows {
		switch row.Policy.String() {
		case "pure-spot":
			pure = row
		case "proactive":
			pro = row
		}
		// Banded regime: zero downtime for every policy, cost inside the
		// reserve band.
		if row.Banded.Unavailability() != 0 {
			t.Errorf("%v: banded unavailability %.5f, want 0", row.Policy, row.Banded.Unavailability())
		}
		if nc := row.Banded.NormalizedCost(); nc < 0.35 || nc > 0.65 {
			t.Errorf("%v: banded cost %.3f outside the reserve band", row.Policy, nc)
		}
	}
	// Spiky regime restores the pure-spot/proactive separation.
	if pure.Spiky.Unavailability() <= pro.Spiky.Unavailability() {
		t.Errorf("spiky regime lost the separation: pure %.5f vs proactive %.5f",
			pure.Spiky.Unavailability(), pro.Spiky.Unavailability())
	}
	// Default regime is the cheapest (its base ratio is far lower than
	// the banded floor).
	if pro.Baseline.NormalizedCost() >= pro.Banded.NormalizedCost() {
		t.Errorf("calibrated regime (%.3f) should undercut banded (%.3f)",
			pro.Baseline.NormalizedCost(), pro.Banded.NormalizedCost())
	}
	out := r.Render()
	if !strings.Contains(out, "Robustness") {
		t.Fatal("render missing title")
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "policy,cost_banded") || strings.Count(csv, "\n") != 4 {
		t.Fatalf("csv shape: %q", csv)
	}
}
