package experiments

import (
	"context"
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

// runPolicy executes one scheduler configuration across all option seeds
// and returns the averaged report. Seeds run concurrently on the option
// worker pool; universes come from the shared market cache. Canceling the
// option context aborts every in-flight seed.
func runPolicy(opts Options, cfg sched.Config) (metrics.Report, error) {
	rs, err := sched.RunSeedsTracedCtx(opts.Context, opts.Market, opts.Cloud, cfg,
		opts.Horizon, opts.Seeds, opts.Parallel, opts.Trace)
	if err != nil {
		return metrics.Report{}, err
	}
	return metrics.Average(rs), nil
}

// runPolicies executes several scheduler configurations across all option
// seeds through one flat worker pool. Every (config, seed) cell is an
// independent single-threaded simulation, so flattening them into a
// single pool keeps all workers busy instead of draining one config's
// seed batch at a time (and avoids nested pools multiplying workers).
// Reports are averaged per config in seed order, exactly as running the
// configs serially through runPolicy would.
func runPolicies(opts Options, cfgs []sched.Config) ([]metrics.Report, error) {
	ns := len(opts.Seeds)
	cache := market.SharedCache()
	cells := make([]int, len(cfgs)*ns)
	reports, err := runpool.MapCtx(opts.Context, opts.Parallel, cells, func(ctx context.Context, i, _ int) (metrics.Report, error) {
		mc := opts.Market
		mc.Seed = opts.Seeds[i%ns]
		set, err := cache.Generate(mc)
		if err != nil {
			return metrics.Report{}, err
		}
		cp := opts.Cloud
		cp.Seed = opts.Seeds[i%ns]
		var rec *trace.Recorder
		if opts.Trace != nil {
			rec = opts.Trace.Run(fmt.Sprintf("cfg%02d/seed%d", i/ns, opts.Seeds[i%ns]))
		}
		rep, err := sched.RunTracedCtx(ctx, set, cp, cfgs[i/ns], opts.Horizon, rec)
		if err == nil {
			opts.Trace.Done(rec)
		}
		return rep, err
	})
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Report, len(cfgs))
	for c := range cfgs {
		out[c] = metrics.Average(reports[c*ns : (c+1)*ns])
	}
	return out, nil
}

// singleMarketConfig builds the Sec. 4.2 configuration: one VM sized to
// the market's server type, hosted in exactly that spot market.
func singleMarketConfig(opts Options, home market.ID, b sched.Bidding, mech vm.Mechanism) (sched.Config, error) {
	cfg, err := sched.DefaultConfig(home, opts.Market.Types)
	if err != nil {
		return sched.Config{}, err
	}
	cfg.Bidding = b
	cfg.Mechanism = mech
	cfg.VMParams = opts.VM
	return cfg, nil
}

// Figure6Row is one instance-size column group of Fig. 6.
type Figure6Row struct {
	Type     market.InstanceType
	Reactive metrics.Report
	Proact   metrics.Report
}

// Figure6Result reproduces Fig. 6(a-d): proactive vs reactive bidding in a
// single market (us-east), per instance size.
type Figure6Result struct {
	Region market.Region
	Rows   []Figure6Row
}

// Figure6 runs both policies over every instance size. All
// (size, policy, seed) cells fan out over one worker pool.
func Figure6(opts Options) (Figure6Result, error) {
	opts = opts.normalize()
	res := Figure6Result{Region: opts.Region}
	var cfgs []sched.Config
	for _, ts := range opts.Market.Types {
		home := market.ID{Region: opts.Region, Type: ts.Name}
		for _, b := range []sched.Bidding{sched.Reactive, sched.Proactive} {
			cfg, err := singleMarketConfig(opts, home, b, vm.CKPTLazy)
			if err != nil {
				return res, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	for i, ts := range opts.Market.Types {
		res.Rows = append(res.Rows, Figure6Row{
			Type:     ts.Name,
			Reactive: reports[2*i],
			Proact:   reports[2*i+1],
		})
	}
	return res, nil
}

// Render prints the four Fig. 6 panels as one table.
func (r Figure6Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Type),
			pct(row.Reactive.NormalizedCost(), 1), pct(row.Proact.NormalizedCost(), 1),
			pct(row.Reactive.Unavailability(), 4), pct(row.Proact.Unavailability(), 4),
			fmt.Sprintf("%.4f", row.Reactive.ForcedPerHour()), fmt.Sprintf("%.4f", row.Proact.ForcedPerHour()),
			fmt.Sprintf("%.4f", row.Reactive.PlannedReversePerHour()), fmt.Sprintf("%.4f", row.Proact.PlannedReversePerHour()),
		})
	}
	return renderTable(
		fmt.Sprintf("Figure 6: proactive vs reactive bidding (single market, %s, CKPT+lazy restore)", r.Region),
		[]string{"market",
			"cost react", "cost proact",
			"unavail react", "unavail proact",
			"forced/hr react", "forced/hr proact",
			"plan+rev/hr react", "plan+rev/hr proact"},
		rows)
}

// Figure7Cell is one mechanism's unavailability under one parameter set.
type Figure7Cell struct {
	Mechanism vm.Mechanism
	Typical   metrics.Report
	Pessim    metrics.Report
}

// Figure7Result reproduces Fig. 7: the four migration mechanism
// combinations under typical and pessimistic constants, proactive bidding,
// small market.
type Figure7Result struct {
	Region market.Region
	Cells  []Figure7Cell
}

// Figure7 runs the mechanism comparison. The VM-parameter variants live
// inside each scheduler config, so every (mechanism, params, seed) cell
// fans out over one worker pool.
func Figure7(opts Options) (Figure7Result, error) {
	opts = opts.normalize()
	home := market.ID{Region: opts.Region, Type: "small"}
	res := Figure7Result{Region: opts.Region}
	var cfgs []sched.Config
	for _, mech := range vm.Mechanisms() {
		for _, pess := range []bool{false, true} {
			o := opts
			if pess {
				o.VM = vm.PessimisticParams()
			}
			cfg, err := singleMarketConfig(o, home, sched.Proactive, mech)
			if err != nil {
				return res, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	for i, mech := range vm.Mechanisms() {
		res.Cells = append(res.Cells, Figure7Cell{
			Mechanism: mech,
			Typical:   reports[2*i],
			Pessim:    reports[2*i+1],
		})
	}
	return res, nil
}

// Render prints Fig. 7.
func (r Figure7Result) Render() string {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Mechanism.String(),
			pct(c.Typical.Unavailability(), 4),
			pct(c.Pessim.Unavailability(), 4),
			fmt.Sprintf("%.0f", c.Typical.DowntimeSeconds),
			fmt.Sprintf("%d", c.Typical.DownEpisodes),
		})
	}
	return renderTable(
		fmt.Sprintf("Figure 7: migration mechanisms (proactive, small, %s)", r.Region),
		[]string{"mechanism", "unavail typical", "unavail pessimistic", "downtime s (typ)", "episodes (typ)"},
		rows)
}

// Figure11Row is one market size of Fig. 11.
type Figure11Row struct {
	Type     market.InstanceType
	Proact   metrics.Report
	PureSpot metrics.Report
}

// Figure11Result reproduces Fig. 11: proactive (migration-based) hosting
// versus using spot instances alone.
type Figure11Result struct {
	Region market.Region
	Rows   []Figure11Row
}

// Figure11 runs the comparison per instance size, fanning every
// (size, policy, seed) cell over one worker pool.
func Figure11(opts Options) (Figure11Result, error) {
	opts = opts.normalize()
	res := Figure11Result{Region: opts.Region}
	var cfgs []sched.Config
	for _, ts := range opts.Market.Types {
		home := market.ID{Region: opts.Region, Type: ts.Name}
		for _, b := range []sched.Bidding{sched.Proactive, sched.PureSpot} {
			cfg, err := singleMarketConfig(opts, home, b, vm.CKPTLazyLive)
			if err != nil {
				return res, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	for i, ts := range opts.Market.Types {
		res.Rows = append(res.Rows, Figure11Row{
			Type:     ts.Name,
			Proact:   reports[2*i],
			PureSpot: reports[2*i+1],
		})
	}
	return res, nil
}

// Render prints Fig. 11.
func (r Figure11Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Type),
			pct(row.Proact.NormalizedCost(), 1), pct(row.PureSpot.NormalizedCost(), 1),
			pct(row.Proact.Unavailability(), 4), pct(row.PureSpot.Unavailability(), 3),
		})
	}
	return renderTable(
		fmt.Sprintf("Figure 11: proactive vs pure spot (%s)", r.Region),
		[]string{"market", "cost proact", "cost pure-spot", "unavail proact", "unavail pure-spot"},
		rows)
}

// Table3Result reproduces Table 3, the qualitative cost/availability
// matrix, derived from measured Fig. 6/11 data.
type Table3Result struct {
	OnDemandCost    float64 // normalized (1.0)
	OnDemandAvail   float64
	SpotCost        float64
	SpotAvail       float64
	MigrationCost   float64
	MigrationAvail  float64
	AvailThreshold  float64 // availability counted "high" above this
	CostThreshold   float64 // normalized cost counted "low" below this
	MigrationIsBest bool
}

// Table3 derives the matrix from single-market runs on the small market.
func Table3(opts Options) (Table3Result, error) {
	opts = opts.normalize()
	home := market.ID{Region: opts.Region, Type: "small"}

	var cfgs []sched.Config
	for _, b := range []sched.Bidding{sched.OnDemandOnly, sched.PureSpot, sched.Proactive} {
		cfg, err := singleMarketConfig(opts, home, b, vm.CKPTLazyLive)
		if err != nil {
			return Table3Result{}, err
		}
		cfgs = append(cfgs, cfg)
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return Table3Result{}, err
	}
	od, pure, pro := reports[0], reports[1], reports[2]
	res := Table3Result{
		OnDemandCost:   od.NormalizedCost(),
		OnDemandAvail:  1 - od.Unavailability(),
		SpotCost:       pure.NormalizedCost(),
		SpotAvail:      1 - pure.Unavailability(),
		MigrationCost:  pro.NormalizedCost(),
		MigrationAvail: 1 - pro.Unavailability(),
		AvailThreshold: 0.999,
		CostThreshold:  0.5,
	}
	res.MigrationIsBest = res.MigrationCost < res.CostThreshold &&
		res.MigrationAvail > res.AvailThreshold
	return res, nil
}

// Render prints Table 3 with the qualitative labels backed by numbers.
func (r Table3Result) Render() string {
	label := func(cost, avail float64) (string, string) {
		c, a := "High", "Low"
		if cost < r.CostThreshold {
			c = "Low"
		}
		if avail > r.AvailThreshold {
			a = "High"
		}
		return c, a
	}
	mk := func(name string, cost, avail float64) []string {
		c, a := label(cost, avail)
		return []string{name,
			fmt.Sprintf("%s (%.0f%%)", c, 100*cost),
			fmt.Sprintf("%s (%.4f%%)", a, 100*avail)}
	}
	rows := [][]string{
		mk("Only on-demand", r.OnDemandCost, r.OnDemandAvail),
		mk("Only spot", r.SpotCost, r.SpotAvail),
		mk("Using migration mechanisms", r.MigrationCost, r.MigrationAvail),
	}
	return renderTable("Table 3: cost and availability by hosting strategy",
		[]string{"strategy", "cost", "availability"}, rows)
}
