package experiments

import (
	"runtime"
	"testing"
)

// determinismOpts keeps the parallel-vs-serial comparison fast while still
// exercising multi-seed, multi-config fan-out.
func determinismOpts(workers int) Options {
	o := Quick()
	o.Seeds = []int64{7, 13}
	o.Parallel = workers
	return o
}

// workerCounts are the pool sizes compared against the serial baseline:
// a small fixed pool, NumCPU, and an oversubscribed pool.
func workerCounts() []int {
	out := []int{2, 7}
	if n := runtime.NumCPU(); n != 2 && n != 7 {
		out = append(out, n)
	}
	return out
}

// TestFigure6ParallelDeterminism asserts the rendered Figure 6 output is
// byte-identical at any worker count: parallelism is strictly across
// independent (config, seed) simulations, so the schedule of workers must
// never leak into results.
func TestFigure6ParallelDeterminism(t *testing.T) {
	serial, err := Figure6(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Figure6(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}

// TestFleetParallelDeterminism asserts the rendered Fleet experiment
// output is byte-identical at any worker count. Beyond the (strategy,
// seed) fan-out this also exercises the shared capacity planner: its
// memoized lookups must not leak pool scheduling into results.
func TestFleetParallelDeterminism(t *testing.T) {
	serial, err := Fleet(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Fleet(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}

// TestFigure8ParallelDeterminism does the same for the multi-market fleet
// experiment, which additionally routes correlation universes through the
// shared cache.
func TestFigure8ParallelDeterminism(t *testing.T) {
	serial, err := Figure8(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Figure8(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}
