package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"spothost/internal/trace"
)

// determinismOpts keeps the parallel-vs-serial comparison fast while still
// exercising multi-seed, multi-config fan-out.
func determinismOpts(workers int) Options {
	o := Quick()
	o.Seeds = []int64{7, 13}
	o.Parallel = workers
	return o
}

// workerCounts are the pool sizes compared against the serial baseline:
// a small fixed pool, NumCPU, and an oversubscribed pool.
func workerCounts() []int {
	out := []int{2, 7}
	if n := runtime.NumCPU(); n != 2 && n != 7 {
		out = append(out, n)
	}
	return out
}

// TestFigure6ParallelDeterminism asserts the rendered Figure 6 output is
// byte-identical at any worker count: parallelism is strictly across
// independent (config, seed) simulations, so the schedule of workers must
// never leak into results.
func TestFigure6ParallelDeterminism(t *testing.T) {
	serial, err := Figure6(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Figure6(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}

// TestFleetParallelDeterminism asserts the rendered Fleet experiment
// output is byte-identical at any worker count. Beyond the (strategy,
// seed) fan-out this also exercises the shared capacity planner: its
// memoized lookups must not leak pool scheduling into results.
func TestFleetParallelDeterminism(t *testing.T) {
	serial, err := Fleet(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Fleet(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}

// TestFigure8ParallelDeterminism does the same for the multi-market fleet
// experiment, which additionally routes correlation universes through the
// shared cache.
func TestFigure8ParallelDeterminism(t *testing.T) {
	serial, err := Figure8(determinismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Render()
	for _, w := range workerCounts() {
		par, err := Figure8(determinismOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := par.Render(); got != want {
			t.Fatalf("workers=%d: rendered output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", w, want, got)
		}
	}
}

// TestTraceParallelDeterminism asserts the exported Chrome trace is
// byte-identical at any worker count. Run labels come from deterministic
// (config, seed) coordinates and the exporter iterates runs in label
// order, so completion order — the one thing parallelism reorders — must
// never appear in the export.
func TestTraceParallelDeterminism(t *testing.T) {
	export := func(workers int) string {
		opts := determinismOpts(workers)
		opts.Trace = trace.NewCollector()
		if _, err := Figure6(opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b bytes.Buffer
		if err := opts.Trace.Export(&b, "chrome"); err != nil {
			t.Fatalf("workers=%d: export: %v", workers, err)
		}
		return b.String()
	}
	want := export(1)
	if !strings.Contains(want, `"name":"migration"`) {
		t.Fatalf("serial trace has no migration spans:\n%.2000s", want)
	}
	for _, w := range workerCounts() {
		if got := export(w); got != want {
			t.Fatalf("workers=%d: chrome export differs from serial (serial %d bytes, parallel %d bytes)",
				w, len(want), len(got))
		}
	}
}
