package experiments

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// AblationPoint is one knob setting's outcome.
type AblationPoint struct {
	Value  float64
	Report metrics.Report
}

// AblationResult sweeps the scheduler's design knobs one at a time,
// quantifying the choices the paper fixes by fiat: the proactive bid
// multiple (the paper uses the 4x cap), the Yank checkpoint bound, the
// market-switch hysteresis, and the stability-aware bidding penalty (the
// paper's future work).
type AblationResult struct {
	BidMultiple []AblationPoint
	CkptBound   []AblationPoint
	Hysteresis  []AblationPoint
	Stability   []AblationPoint
}

// Ablations runs all four sweeps.
func Ablations(opts Options) (AblationResult, error) {
	opts = opts.normalize()
	var res AblationResult
	home := market.ID{Region: opts.Region, Type: "small"}

	// 1) Proactive bid multiple: higher bids should suppress forced
	// migrations at essentially unchanged cost (spot hours bill at the
	// market price, not the bid).
	for _, k := range []float64{1.5, 2, 3, 4} {
		cfg, err := singleMarketConfig(opts, home, sched.Proactive, vm.CKPTLazyLive)
		if err != nil {
			return res, err
		}
		cfg.BidMultiple = k
		r, err := runPolicy(opts, cfg)
		if err != nil {
			return res, err
		}
		res.BidMultiple = append(res.BidMultiple, AblationPoint{Value: k, Report: r})
	}

	// 2) Checkpoint bound tau: a looser bound means a longer final save
	// and therefore longer forced-migration downtime.
	for _, tau := range []float64{1, 3, 10, 30} {
		cfg, err := singleMarketConfig(opts, home, sched.Proactive, vm.CKPTLazyLive)
		if err != nil {
			return res, err
		}
		cfg.VMParams.CheckpointBound = tau
		r, err := runPolicy(opts, cfg)
		if err != nil {
			return res, err
		}
		res.CkptBound = append(res.CkptBound, AblationPoint{Value: tau, Report: r})
	}

	// 3) Hysteresis on a multi-market fleet: low values chase noise
	// (migration churn), high values leave savings on the table.
	for _, h := range []float64{0, 0.05, 0.15, 0.4} {
		cfg, err := fleetConfig(opts, home, marketsIn(opts, opts.Region), FleetVMs)
		if err != nil {
			return res, err
		}
		cfg.Hysteresis = h
		r, err := runPolicy(opts, cfg)
		if err != nil {
			return res, err
		}
		res.Hysteresis = append(res.Hysteresis, AblationPoint{Value: h, Report: r})
	}

	// 4) Stability penalty lambda on a volatile multi-region fleet (the
	// paper's future work, Sec. 8): penalizing jumpy markets should trade
	// a little cost for fewer migrations.
	both := append(marketsIn(opts, "us-east-1b"), marketsIn(opts, opts.Region)...)
	for _, lambda := range []float64{0, 0.5, 1, 2} {
		cfg, err := fleetConfig(opts, home, both, FleetVMs)
		if err != nil {
			return res, err
		}
		cfg.StabilityPenalty = lambda
		r, err := runPolicy(opts, cfg)
		if err != nil {
			return res, err
		}
		res.Stability = append(res.Stability, AblationPoint{Value: lambda, Report: r})
	}
	return res, nil
}

// Render prints the four sweeps.
func (r AblationResult) Render() string {
	section := func(title, knob string, pts []AblationPoint) string {
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%g", p.Value),
				pct(p.Report.NormalizedCost(), 1),
				pct(p.Report.Unavailability(), 4),
				fmt.Sprintf("%.4f", p.Report.ForcedPerHour()),
				fmt.Sprintf("%d", p.Report.Migrations.Total()),
			})
		}
		return renderTable(title,
			[]string{knob, "cost", "unavail", "forced/hr", "migrations"}, rows)
	}
	return section("Ablation: proactive bid multiple k (paper fixes k=4)", "k", r.BidMultiple) +
		"\n" + section("Ablation: Yank checkpoint bound tau (s)", "tau", r.CkptBound) +
		"\n" + section("Ablation: market-switch hysteresis (multi-market fleet)", "hysteresis", r.Hysteresis) +
		"\n" + section("Ablation: stability penalty lambda (multi-region fleet, future work)", "lambda", r.Stability)
}
