package experiments

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// AblationPoint is one knob setting's outcome.
type AblationPoint struct {
	Value  float64
	Report metrics.Report
}

// AblationResult sweeps the scheduler's design knobs one at a time,
// quantifying the choices the paper fixes by fiat: the proactive bid
// multiple (the paper uses the 4x cap), the Yank checkpoint bound, the
// market-switch hysteresis, and the stability-aware bidding penalty (the
// paper's future work).
type AblationResult struct {
	BidMultiple []AblationPoint
	CkptBound   []AblationPoint
	Hysteresis  []AblationPoint
	Stability   []AblationPoint
}

// Ablations runs all four sweeps. The sweeps are independent simulations,
// so all sixteen (knob, value) configs — and their seeds — fan out over
// one worker pool.
func Ablations(opts Options) (AblationResult, error) {
	opts = opts.normalize()
	var res AblationResult
	home := market.ID{Region: opts.Region, Type: "small"}

	// 1) Proactive bid multiple: higher bids should suppress forced
	// migrations at essentially unchanged cost (spot hours bill at the
	// market price, not the bid).
	// 2) Checkpoint bound tau: a looser bound means a longer final save
	// and therefore longer forced-migration downtime.
	// 3) Hysteresis on a multi-market fleet: low values chase noise
	// (migration churn), high values leave savings on the table.
	// 4) Stability penalty lambda on a volatile multi-region fleet (the
	// paper's future work, Sec. 8): penalizing jumpy markets should trade
	// a little cost for fewer migrations.
	bidMultiples := []float64{1.5, 2, 3, 4}
	taus := []float64{1, 3, 10, 30}
	hysts := []float64{0, 0.05, 0.15, 0.4}
	lambdas := []float64{0, 0.5, 1, 2}
	both := append(marketsIn(opts, "us-east-1b"), marketsIn(opts, opts.Region)...)

	var cfgs []sched.Config
	for _, k := range bidMultiples {
		cfg, err := singleMarketConfig(opts, home, sched.Proactive, vm.CKPTLazyLive)
		if err != nil {
			return res, err
		}
		cfg.BidMultiple = k
		cfgs = append(cfgs, cfg)
	}
	for _, tau := range taus {
		cfg, err := singleMarketConfig(opts, home, sched.Proactive, vm.CKPTLazyLive)
		if err != nil {
			return res, err
		}
		cfg.VMParams.CheckpointBound = tau
		cfgs = append(cfgs, cfg)
	}
	for _, h := range hysts {
		cfg, err := fleetConfig(opts, home, marketsIn(opts, opts.Region), FleetVMs)
		if err != nil {
			return res, err
		}
		cfg.Hysteresis = h
		cfgs = append(cfgs, cfg)
	}
	for _, lambda := range lambdas {
		cfg, err := fleetConfig(opts, home, both, FleetVMs)
		if err != nil {
			return res, err
		}
		cfg.StabilityPenalty = lambda
		cfgs = append(cfgs, cfg)
	}

	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	next := 0
	take := func(values []float64) []AblationPoint {
		var pts []AblationPoint
		for _, v := range values {
			pts = append(pts, AblationPoint{Value: v, Report: reports[next]})
			next++
		}
		return pts
	}
	res.BidMultiple = take(bidMultiples)
	res.CkptBound = take(taus)
	res.Hysteresis = take(hysts)
	res.Stability = take(lambdas)
	return res, nil
}

// Render prints the four sweeps.
func (r AblationResult) Render() string {
	section := func(title, knob string, pts []AblationPoint) string {
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%g", p.Value),
				pct(p.Report.NormalizedCost(), 1),
				pct(p.Report.Unavailability(), 4),
				fmt.Sprintf("%.4f", p.Report.ForcedPerHour()),
				fmt.Sprintf("%d", p.Report.Migrations.Total()),
			})
		}
		return renderTable(title,
			[]string{knob, "cost", "unavail", "forced/hr", "migrations"}, rows)
	}
	return section("Ablation: proactive bid multiple k (paper fixes k=4)", "k", r.BidMultiple) +
		"\n" + section("Ablation: Yank checkpoint bound tau (s)", "tau", r.CkptBound) +
		"\n" + section("Ablation: market-switch hysteresis (multi-market fleet)", "hysteresis", r.Hysteresis) +
		"\n" + section("Ablation: stability penalty lambda (multi-region fleet, future work)", "lambda", r.Stability)
}
