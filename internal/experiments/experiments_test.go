package experiments

import (
	"strings"
	"testing"

	"spothost/internal/vm"
)

// quick returns minimal options so the whole suite stays fast.
func quick() Options {
	o := Quick()
	o.Seeds = []int64{7}
	return o
}

func TestFigure1(t *testing.T) {
	r, err := Figure1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Summaries) != 2 {
		t.Fatalf("summaries = %d, want small+large", len(r.Summaries))
	}
	for _, s := range r.Summaries {
		if s.Mean <= 0 || s.Mean >= s.OnDemand {
			t.Fatalf("%s: mean %v vs od %v — spot regime broken", s.Market, s.Mean, s.OnDemand)
		}
		if s.Max <= s.Mean {
			t.Fatalf("%s: no spikes (max %v, mean %v)", s.Market, s.Max, s.Mean)
		}
	}
	for id, days := range r.Series {
		if len(days) < 9 {
			t.Fatalf("%s: only %d daily points", id, len(days))
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestTable1StartupShape(t *testing.T) {
	r, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regions) != 3 {
		t.Fatalf("regions = %v", r.Regions)
	}
	for _, reg := range r.Regions {
		od, sp := r.OnDemand[reg], r.Spot[reg]
		// Table 1 shape: on-demand ~1.5 min, spot 3.5-5 min, spot slower.
		if od < 60 || od > 140 {
			t.Errorf("%s: on-demand startup %v outside ~95 s band", reg, od)
		}
		if sp < 150 || sp > 400 {
			t.Errorf("%s: spot startup %v outside ~220-280 s band", reg, sp)
		}
		if sp <= od {
			t.Errorf("%s: spot (%v) should be slower than on-demand (%v)", reg, sp, od)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestTable2Calibration(t *testing.T) {
	r, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range r.IntraRegions {
		if d := r.LiveIntra[reg]; d < 55 || d > 70 {
			t.Errorf("intra live %s = %.1f, want ~58-62", reg, d)
		}
	}
	if r.CkptPerGB < 27 || r.CkptPerGB > 29 {
		t.Errorf("checkpoint %.1f s/GB, want ~28", r.CkptPerGB)
	}
	// Cross-region live slower than intra; disk copy 2-3 min/GB.
	for key, d := range r.LiveCross {
		if d < 70 || d > 170 {
			t.Errorf("cross live %s = %.1f outside Table 2 band", key, d)
		}
	}
	for key, d := range r.DiskPerGB {
		if d < 100 || d > 200 {
			t.Errorf("disk copy %s = %.1f s/GB outside 2-3 min band", key, d)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestFigure6Claims(t *testing.T) {
	r, err := Figure6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Claim (a): both policies land far below the on-demand baseline.
		for _, rep := range []struct {
			name string
			nc   float64
		}{{"reactive", row.Reactive.NormalizedCost()}, {"proactive", row.Proact.NormalizedCost()}} {
			if rep.nc < 0.05 || rep.nc > 0.55 {
				t.Errorf("%s/%s: normalized cost %.3f outside the savings band",
					row.Type, rep.name, rep.nc)
			}
		}
		// Claim (b): proactive unavailability below reactive.
		if row.Proact.Unavailability() >= row.Reactive.Unavailability() {
			t.Errorf("%s: proactive unavail %.5f not below reactive %.5f",
				row.Type, row.Proact.Unavailability(), row.Reactive.Unavailability())
		}
		// Claim (c): proactive suffers fewer forced migrations.
		if row.Proact.ForcedPerHour() >= row.Reactive.ForcedPerHour() {
			t.Errorf("%s: proactive forced rate %.4f not below reactive %.4f",
				row.Type, row.Proact.ForcedPerHour(), row.Reactive.ForcedPerHour())
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 6") {
		t.Fatal("render missing title")
	}
}

func TestFigure7Claims(t *testing.T) {
	r, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	get := func(m vm.Mechanism) Figure7Cell {
		for _, c := range r.Cells {
			if c.Mechanism == m {
				return c
			}
		}
		t.Fatalf("mechanism %v missing", m)
		return Figure7Cell{}
	}
	ck := get(vm.CKPT)
	lr := get(vm.CKPTLazy)
	best := get(vm.CKPTLazyLive)
	// Headline claims: CKPT is the worst; lazy restore improves it; the
	// live+lazy combination is the best.
	if !(ck.Typical.Unavailability() > lr.Typical.Unavailability()) {
		t.Errorf("CKPT %.5f should exceed CKPT LR %.5f",
			ck.Typical.Unavailability(), lr.Typical.Unavailability())
	}
	if !(lr.Typical.Unavailability() >= best.Typical.Unavailability()) {
		t.Errorf("CKPT LR %.5f should not beat CKPT LR+Live %.5f",
			lr.Typical.Unavailability(), best.Typical.Unavailability())
	}
	// Pessimistic bars are uniformly worse than typical.
	for _, c := range r.Cells {
		if c.Pessim.Unavailability() < c.Typical.Unavailability() {
			t.Errorf("%v: pessimistic %.5f below typical %.5f",
				c.Mechanism, c.Pessim.Unavailability(), c.Typical.Unavailability())
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestFigure8Claims(t *testing.T) {
	r, err := Figure8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	cheaper := 0
	for _, row := range r.Rows {
		if row.Multi.NormalizedCost() < row.AvgSingle.NormalizedCost() {
			cheaper++
		}
		if row.Correlation > 0.7 {
			t.Errorf("%s: intra-region correlation %.2f not low", row.Region, row.Correlation)
		}
	}
	// Multi-market should win in (at least) most regions.
	if cheaper < 3 {
		t.Errorf("multi-market cheaper in only %d/4 regions", cheaper)
	}
	if out := r.Render(); !strings.Contains(out, "Figure 8") {
		t.Fatal("render missing title")
	}
}

func TestFigure9Claims(t *testing.T) {
	r, err := Figure9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 pairs", len(r.Rows))
	}
	cheaper := 0
	for _, row := range r.Rows {
		if row.Multi.NormalizedCost() <= row.AvgSingle.NormalizedCost() {
			cheaper++
		}
		if row.Correlation > 0.6 {
			t.Errorf("%s+%s: cross-region correlation %.2f not low", row.A, row.B, row.Correlation)
		}
		if row.Multi.NormalizedCost() <= 0 {
			t.Errorf("%s+%s: degenerate cost", row.A, row.B)
		}
	}
	if cheaper < 4 {
		t.Errorf("multi-region cheaper in only %d/6 pairs", cheaper)
	}
	if out := r.Render(); !strings.Contains(out, "Figure 9") {
		t.Fatal("render missing title")
	}
}

func TestFigure10Claims(t *testing.T) {
	r, err := Figure10(quick())
	if err != nil {
		t.Fatal(err)
	}
	// us-east markets are more variable than eu-west for every size
	// (relative to price scale, checked on the small market).
	east := r.StdDev["us-east-1a"]["small"] + r.StdDev["us-east-1b"]["small"]
	eu := 2 * r.StdDev["eu-west-1a"]["small"]
	if east <= eu {
		t.Errorf("us-east stddev (%.4f) should exceed eu-west (%.4f)", east, eu)
	}
	// Larger sizes have larger absolute deviations (price scale).
	for _, reg := range r.Regions {
		if r.StdDev[reg]["xlarge"] <= r.StdDev[reg]["small"] {
			t.Errorf("%s: xlarge stddev %.4f not above small %.4f",
				reg, r.StdDev[reg]["xlarge"], r.StdDev[reg]["small"])
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 10") {
		t.Fatal("render missing title")
	}
}

func TestFigure11Claims(t *testing.T) {
	r, err := Figure11(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Pure spot is (a bit) cheaper but (b) vastly less available.
		if row.PureSpot.NormalizedCost() > row.Proact.NormalizedCost()*1.15 {
			t.Errorf("%s: pure spot cost %.3f above proactive %.3f",
				row.Type, row.PureSpot.NormalizedCost(), row.Proact.NormalizedCost())
		}
		if row.PureSpot.Unavailability() < 0.004 {
			t.Errorf("%s: pure spot unavailability %.4f suspiciously low",
				row.Type, row.PureSpot.Unavailability())
		}
		if row.PureSpot.Unavailability() < 10*row.Proact.Unavailability() {
			t.Errorf("%s: pure spot %.5f should dwarf proactive %.5f",
				row.Type, row.PureSpot.Unavailability(), row.Proact.Unavailability())
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 11") {
		t.Fatal("render missing title")
	}
}

func TestTable3Matrix(t *testing.T) {
	r, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.MigrationIsBest {
		t.Errorf("migration strategy should be low-cost AND high-availability: %+v", r)
	}
	if r.OnDemandAvail < 0.9999 {
		t.Errorf("on-demand availability %.5f", r.OnDemandAvail)
	}
	if r.SpotAvail > 0.999 {
		t.Errorf("pure spot availability %.5f should be below four nines", r.SpotAvail)
	}
	out := r.Render()
	if !strings.Contains(out, "Low") || !strings.Contains(out, "High") {
		t.Fatalf("matrix labels missing: %s", out)
	}
}

func TestTable4AndFigure12(t *testing.T) {
	t4, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range t4.DegradationPct {
		if d < -5 || d > 8 {
			t.Errorf("degradation[%d] = %.1f%% outside plausible band", i, d)
		}
	}
	if !strings.Contains(t4.Render(), "Table 4") {
		t.Fatal("render missing title")
	}

	f12, err := Figure12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.WithImages) != 7 || len(f12.NoImages) != 7 {
		t.Fatalf("point counts: %d/%d", len(f12.WithImages), len(f12.NoImages))
	}
	// (a) parity under I/O-bound load at the high end.
	last := f12.WithImages[len(f12.WithImages)-1]
	if ratio := last.NestedMs / last.NativeMs; ratio > 1.25 {
		t.Errorf("fig12a high-load ratio %.2f, want parity", ratio)
	}
	// (b) clear overhead under CPU-bound load at the high end.
	last = f12.NoImages[len(f12.NoImages)-1]
	if ratio := last.NestedMs / last.NativeMs; ratio < 1.3 {
		t.Errorf("fig12b high-load ratio %.2f, want >= 1.3", ratio)
	}
	if !strings.Contains(f12.Render(), "Figure 12(b)") {
		t.Fatal("render missing panel title")
	}
}

func TestSection6(t *testing.T) {
	r, err := Section6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstCaseCost <= r.NormalizedCost {
		t.Errorf("worst case %.3f should exceed nominal %.3f", r.WorstCaseCost, r.NormalizedCost)
	}
	if r.CapacityFactor < 0.6 || r.CapacityFactor > 0.7 {
		t.Errorf("capacity factor %.3f, want ~1/1.5", r.CapacityFactor)
	}
	if !strings.Contains(r.Render(), "Section 6") {
		t.Fatal("render missing title")
	}
}

func TestAllRegistryComplete(t *testing.T) {
	want := []string{"figure1", "table1", "table2", "figure6", "figure7", "figure8",
		"figure9", "figure10", "figure11", "table3", "table4", "figure12", "section6",
		"ablations", "robustness", "fleet", "heterogeneity"}
	entries := All()
	if len(entries) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Name != w {
			t.Fatalf("entry %d = %s, want %s", i, entries[i].Name, w)
		}
	}
	if _, ok := Find("figure6"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if len(n.Seeds) == 0 || n.Horizon <= 0 || n.Region == "" {
		t.Fatalf("normalize left zeros: %+v", n)
	}
	// Horizon clamps to the market horizon.
	o = Defaults()
	o.Market.Horizon = 5 * 86400
	o.Horizon = 30 * 86400
	n = o.normalize()
	if n.Horizon != 5*86400 {
		t.Fatalf("horizon not clamped: %v", n.Horizon)
	}
}
