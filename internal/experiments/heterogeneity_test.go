package experiments

import (
	"strings"
	"testing"
)

// TestHeterogeneityClaims pins the instance-catalog acceptance claim: for
// every allocation strategy, the typed-catalog fleet is strictly cheaper
// than the single-type fleet at an equal-or-better capacity shortfall,
// and the savings actually come from heterogeneous placement (more than
// one instance type billed).
func TestHeterogeneityClaims(t *testing.T) {
	res, err := Heterogeneity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(res.Rows))
	}
	if res.TypedMarkets <= res.SingleMarkets {
		t.Fatalf("typed universe %d markets not larger than single %d",
			res.TypedMarkets, res.SingleMarkets)
	}
	for _, row := range res.Rows {
		if row.Typed.Cost >= row.Single.Cost {
			t.Errorf("%s: typed cost $%.2f not strictly below single $%.2f",
				row.Strategy, row.Typed.Cost, row.Single.Cost)
		}
		if ts, ss := row.Typed.CapacityShortfall(), row.Single.CapacityShortfall(); ts > ss {
			t.Errorf("%s: typed shortfall %.4f worse than single %.4f",
				row.Strategy, ts, ss)
		}
		if row.Savings <= 0 {
			t.Errorf("%s: savings %.3f, want positive", row.Strategy, row.Savings)
		}
		if row.TypesUsed < 2 {
			t.Errorf("%s: %d instance types billed, want >= 2", row.Strategy, row.TypesUsed)
		}
		if row.Typed.Rebalances == 0 {
			t.Errorf("%s: no spot rebalances; the migration path never engaged", row.Strategy)
		}
	}
}

// TestHeterogeneityRegistered asserts the experiment is reachable through
// the single registry every binary consumes.
func TestHeterogeneityRegistered(t *testing.T) {
	e, ok := Find("heterogeneity")
	if !ok {
		t.Fatal("heterogeneity experiment not in experiments.All()")
	}
	if e.Name != "heterogeneity" {
		t.Fatalf("registry returned %q", e.Name)
	}
}

// TestHeterogeneityCSV checks the CSV export shape.
func TestHeterogeneityCSV(t *testing.T) {
	res, err := Heterogeneity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var exp CSVExporter = res
	csv := exp.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + 3 strategies
		t.Fatalf("want 4 CSV lines, got %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "strategy,single_cost,typed_cost,") {
		t.Fatalf("unexpected header: %s", lines[0])
	}
}
