package experiments

import (
	"fmt"
	"io"
	"time"
)

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render() string
}

// Entry names one experiment and how to run it.
type Entry struct {
	Name string
	Run  func(Options) (Renderer, error)
}

// All lists every experiment in the paper's order.
func All() []Entry {
	return []Entry{
		{"figure1", func(o Options) (Renderer, error) { return Figure1(o) }},
		{"table1", func(o Options) (Renderer, error) { return Table1(o) }},
		{"table2", func(o Options) (Renderer, error) { return Table2(o) }},
		{"figure6", func(o Options) (Renderer, error) { return Figure6(o) }},
		{"figure7", func(o Options) (Renderer, error) { return Figure7(o) }},
		{"figure8", func(o Options) (Renderer, error) { return Figure8(o) }},
		{"figure9", func(o Options) (Renderer, error) { return Figure9(o) }},
		{"figure10", func(o Options) (Renderer, error) { return Figure10(o) }},
		{"figure11", func(o Options) (Renderer, error) { return Figure11(o) }},
		{"table3", func(o Options) (Renderer, error) { return Table3(o) }},
		{"table4", func(o Options) (Renderer, error) { return Table4(o) }},
		{"figure12", func(o Options) (Renderer, error) { return Figure12(o) }},
		{"section6", func(o Options) (Renderer, error) { return Section6(o) }},
		{"ablations", func(o Options) (Renderer, error) { return Ablations(o) }},
		{"robustness", func(o Options) (Renderer, error) { return Robustness(o) }},
		{"fleet", func(o Options) (Renderer, error) { return Fleet(o) }},
		{"heterogeneity", func(o Options) (Renderer, error) { return Heterogeneity(o) }},
	}
}

// Find returns the entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// RunAll executes every experiment, writing rendered results to w as they
// complete. It returns the first error encountered.
func RunAll(opts Options, w io.Writer) error {
	for _, e := range All() {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		fmt.Fprintf(w, "=== %s (%.1fs) ===\n%s\n", e.Name, time.Since(start).Seconds(), res.Render())
	}
	return nil
}
