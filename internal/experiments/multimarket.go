package experiments

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// fleetConfig builds a fleet of unit nested VMs that can pack onto any of
// the candidate markets (the Sec. 4.4 / 4.5 service model).
func fleetConfig(opts Options, home market.ID, markets []market.ID, count int) (sched.Config, error) {
	cfg, err := sched.DefaultConfig(home, opts.Market.Types)
	if err != nil {
		return sched.Config{}, err
	}
	cfg.Service = sched.ServiceSpec{
		VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
		Count: count,
	}
	cfg.Markets = markets
	cfg.Bidding = sched.Proactive
	cfg.Mechanism = vm.CKPTLazyLive
	cfg.VMParams = opts.VM
	// Fleets see several near-equal markets; a higher hysteresis keeps
	// them from churning between markets on base-price noise.
	cfg.Hysteresis = 0.15
	return cfg, nil
}

// marketsIn lists all candidate markets of one region.
func marketsIn(opts Options, r market.Region) []market.ID {
	var out []market.ID
	for _, ts := range opts.Market.Types {
		out = append(out, market.ID{Region: r, Type: ts.Name})
	}
	return out
}

// FleetVMs is the number of unit VMs in the multi-market service (they
// pack 4-up onto a large server or 8-up onto an xlarge).
const FleetVMs = 4

// Figure8Row is one region of Fig. 8.
type Figure8Row struct {
	Region market.Region
	// AvgSingle is the mean report over the four single-market fleets.
	AvgSingle metrics.Report
	// Multi is the multi-market fleet.
	Multi metrics.Report
	// Correlation is the mean pairwise price correlation within the
	// region (Fig. 8(b)).
	Correlation float64
	// Reduction is 1 - multi/single normalized cost (the paper's "8% to
	// 52%" improvement).
	Reduction float64
}

// Figure8Result reproduces Fig. 8: multi-market vs single-market bidding
// within each region.
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8 runs single- and multi-market fleets in every region. Every
// (region, fleet, seed) cell fans out over one worker pool; the per-region
// layout in the flattened config slice is the four single-market fleets
// followed by the multi-market fleet.
func Figure8(opts Options) (Figure8Result, error) {
	opts = opts.normalize()
	var res Figure8Result
	var cfgs []sched.Config
	perRegion := 0
	for _, rs := range opts.Market.Regions {
		home := market.ID{Region: rs.Name, Type: "small"}
		all := marketsIn(opts, rs.Name)
		perRegion = len(all) + 1
		for _, m := range all {
			cfg, err := fleetConfig(opts, home, []market.ID{m}, FleetVMs)
			if err != nil {
				return res, err
			}
			cfgs = append(cfgs, cfg)
		}
		cfg, err := fleetConfig(opts, home, all, FleetVMs)
		if err != nil {
			return res, err
		}
		cfgs = append(cfgs, cfg)
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	for i, rs := range opts.Market.Regions {
		group := reports[i*perRegion : (i+1)*perRegion]
		corr, err := regionCorrelation(opts, rs.Name)
		if err != nil {
			return res, err
		}
		row := Figure8Row{
			Region:      rs.Name,
			AvgSingle:   metrics.Average(group[:perRegion-1]),
			Multi:       group[perRegion-1],
			Correlation: corr,
		}
		if s := row.AvgSingle.NormalizedCost(); s > 0 {
			row.Reduction = 1 - row.Multi.NormalizedCost()/s
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// regionCorrelation averages the intra-region pairwise correlation over
// the option seeds. Universes come from the shared cache, so the fleet
// runs that already generated them make these lookups free.
func regionCorrelation(opts Options, r market.Region) (float64, error) {
	cache := market.SharedCache()
	sum := 0.0
	for _, seed := range opts.Seeds {
		mc := opts.Market
		mc.Seed = seed
		set, err := cache.Generate(mc)
		if err != nil {
			return 0, err
		}
		var ids []market.ID
		for _, ty := range set.TypesIn(r) {
			ids = append(ids, market.ID{Region: r, Type: ty})
		}
		sum += market.PairwiseAvgCorrelation(set, ids)
	}
	return sum / float64(len(opts.Seeds)), nil
}

// Render prints Fig. 8(a-c).
func (r Figure8Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Region),
			pct(row.AvgSingle.NormalizedCost(), 1),
			pct(row.Multi.NormalizedCost(), 1),
			pct(row.Reduction, 1),
			fmt.Sprintf("%.3f", row.Correlation),
			pct(row.AvgSingle.Unavailability(), 4),
			pct(row.Multi.Unavailability(), 4),
		})
	}
	return renderTable(
		fmt.Sprintf("Figure 8: multi-market vs single-market bidding (%d-VM fleet)", FleetVMs),
		[]string{"region", "cost single(avg)", "cost multi", "reduction",
			"intra corr", "unavail single", "unavail multi"},
		rows)
}

// Figure9Row is one region pair of Fig. 9.
type Figure9Row struct {
	A, B market.Region
	// AvgSingle is the mean of the two single-region multi-market fleets,
	// each normalized against the pair's cheapest on-demand baseline.
	AvgSingle metrics.Report
	// Multi is the multi-region fleet over both regions' markets.
	Multi metrics.Report
	// Correlation is the mean same-type cross-region price correlation.
	Correlation float64
	Reduction   float64
}

// Figure9Result reproduces Fig. 9: multi-region vs single-region bidding
// over region pairs.
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9 runs all region pairs. Every (pair, fleet, seed) cell fans out
// over one worker pool; each pair contributes three configs to the
// flattened slice — the two single-region fleets, then the multi-region
// fleet.
func Figure9(opts Options) (Figure9Result, error) {
	opts = opts.normalize()
	regions := opts.Market.Regions
	var res Figure9Result
	type pair struct{ a, b market.RegionSpec }
	var pairs []pair
	var cfgs []sched.Config
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			pairs = append(pairs, pair{a, b})
			// Baseline home: the pair's cheaper on-demand region.
			homeRegion := a
			if b.ODFactor < a.ODFactor {
				homeRegion = b
			}
			home := market.ID{Region: homeRegion.Name, Type: "small"}

			for _, reg := range []market.Region{a.Name, b.Name} {
				cfg, err := fleetConfig(opts, home, marketsIn(opts, reg), FleetVMs)
				if err != nil {
					return res, err
				}
				cfgs = append(cfgs, cfg)
			}
			both := append(marketsIn(opts, a.Name), marketsIn(opts, b.Name)...)
			cfg, err := fleetConfig(opts, home, both, FleetVMs)
			if err != nil {
				return res, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := runPolicies(opts, cfgs)
	if err != nil {
		return res, err
	}
	cache := market.SharedCache()
	for i, pr := range pairs {
		a, b := pr.a, pr.b
		group := reports[3*i : 3*i+3]

		corr := 0.0
		for _, seed := range opts.Seeds {
			mc := opts.Market
			mc.Seed = seed
			set, err := cache.Generate(mc)
			if err != nil {
				return res, err
			}
			corr += market.CrossRegionCorrelation(set, a.Name, b.Name)
		}
		corr /= float64(len(opts.Seeds))

		row := Figure9Row{
			A: a.Name, B: b.Name,
			AvgSingle:   metrics.Average(group[:2]),
			Multi:       group[2],
			Correlation: corr,
		}
		if s := row.AvgSingle.NormalizedCost(); s > 0 {
			row.Reduction = 1 - row.Multi.NormalizedCost()/s
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints Fig. 9(a-c).
func (r Figure9Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%s + %s", row.A, row.B),
			pct(row.AvgSingle.NormalizedCost(), 1),
			pct(row.Multi.NormalizedCost(), 1),
			pct(row.Reduction, 1),
			fmt.Sprintf("%.3f", row.Correlation),
			pct(row.AvgSingle.Unavailability(), 4),
			pct(row.Multi.Unavailability(), 4),
			fmt.Sprintf("%d", row.Multi.Migrations.CrossRegion),
		})
	}
	return renderTable(
		fmt.Sprintf("Figure 9: multi-region vs single-region bidding (%d-VM fleet)", FleetVMs),
		[]string{"pair", "cost single(avg)", "cost multi", "reduction",
			"cross corr", "unavail single", "unavail multi", "xregion migrations"},
		rows)
}
