package experiments

import (
	"fmt"
	"strings"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// Figure1Result reproduces Fig. 1: month-long spot price traces for a
// small and a large server in us-east, summarized statistically and as a
// downsampled series.
type Figure1Result struct {
	Summaries []market.TraceSummary
	// Series holds daily mean/max price points per market for plotting.
	Series map[market.ID][]DailyPrice
}

// DailyPrice is one plotted day of a trace.
type DailyPrice struct {
	Day  int
	Mean float64
	Max  float64
}

// Figure1 generates the traces and computes the Fig. 1 views.
func Figure1(opts Options) (Figure1Result, error) {
	opts = opts.normalize()
	mc := opts.Market
	mc.Seed = opts.Seeds[0]
	set, err := market.SharedCache().Generate(mc)
	if err != nil {
		return Figure1Result{}, err
	}
	res := Figure1Result{Series: map[market.ID][]DailyPrice{}}
	for _, ty := range []market.InstanceType{"small", "large"} {
		id := market.ID{Region: opts.Region, Type: ty}
		if set.Trace(id) == nil {
			return Figure1Result{}, fmt.Errorf("experiments: market %s missing", id)
		}
		res.Summaries = append(res.Summaries, market.Summarize(set, id))
		tr := set.Trace(id)
		days := int(tr.End() / sim.Day)
		for d := 0; d < days; d++ {
			lo, hi := sim.Time(d)*sim.Day, sim.Time(d+1)*sim.Day
			mx := 0.0
			for _, p := range tr.Sample(lo, hi, 10*sim.Minute) {
				if p > mx {
					mx = p
				}
			}
			res.Series[id] = append(res.Series[id], DailyPrice{
				Day:  d,
				Mean: tr.TimeWeightedMean(lo, hi),
				Max:  mx,
			})
		}
	}
	return res, nil
}

// Render prints the Fig. 1 summary table and a coarse ASCII series.
func (r Figure1Result) Render() string {
	var rows [][]string
	for _, s := range r.Summaries {
		rows = append(rows, []string{
			s.Market.String(),
			fmt.Sprintf("$%.3f", s.OnDemand),
			fmt.Sprintf("$%.4f", s.Mean),
			fmt.Sprintf("$%.4f", s.Min),
			fmt.Sprintf("$%.2f", s.Max),
			fmt.Sprintf("$%.3f", s.StdDev),
			pct(s.FracAboveOD, 2),
			fmt.Sprintf("%d", s.Steps),
		})
	}
	out := renderTable("Figure 1: spot price traces (30 days, "+string(r.Summaries[0].Market.Region)+")",
		[]string{"market", "on-demand", "mean", "min", "max", "stddev", ">od time", "steps"}, rows)

	var b strings.Builder
	b.WriteString(out)
	// Iterate in Summaries order: ranging over the Series map would print
	// the per-market blocks in a different order on every run.
	for _, s := range r.Summaries {
		id := s.Market
		fmt.Fprintf(&b, "\n%s daily max price ($, * = spike day):\n", id)
		for _, d := range r.Series[id] {
			marker := ""
			if d.Max > 4*d.Mean && d.Max > 0.1 {
				marker = " *"
			}
			fmt.Fprintf(&b, "  day %2d  mean %.4f  max %.3f%s\n", d.Day, d.Mean, d.Max, marker)
		}
	}
	return b.String()
}

// Figure10Result reproduces Fig. 10: price standard deviation per region
// per instance size, averaged over seeds.
type Figure10Result struct {
	Regions []market.Region
	Types   []market.InstanceType
	// StdDev[region][type] is the mean sampled standard deviation.
	StdDev map[market.Region]map[market.InstanceType]float64
}

// Figure10 computes per-market price variability.
func Figure10(opts Options) (Figure10Result, error) {
	opts = opts.normalize()
	res := Figure10Result{StdDev: map[market.Region]map[market.InstanceType]float64{}}
	n := 0
	cache := market.SharedCache()
	for _, seed := range opts.Seeds {
		mc := opts.Market
		mc.Seed = seed
		set, err := cache.Generate(mc)
		if err != nil {
			return Figure10Result{}, err
		}
		if n == 0 {
			res.Regions = set.Regions()
			res.Types = set.TypesIn(res.Regions[0])
			for _, r := range res.Regions {
				res.StdDev[r] = map[market.InstanceType]float64{}
			}
		}
		for _, r := range res.Regions {
			for _, ty := range res.Types {
				res.StdDev[r][ty] += market.StdDev(set.Trace(market.ID{Region: r, Type: ty}))
			}
		}
		n++
	}
	for _, r := range res.Regions {
		for _, ty := range res.Types {
			res.StdDev[r][ty] /= float64(n)
		}
	}
	return res, nil
}

// Render prints the Fig. 10 bars.
func (r Figure10Result) Render() string {
	header := []string{"region"}
	for _, ty := range r.Types {
		header = append(header, string(ty))
	}
	var rows [][]string
	for _, reg := range r.Regions {
		row := []string{string(reg)}
		for _, ty := range r.Types {
			row = append(row, fmt.Sprintf("%.3f", r.StdDev[reg][ty]))
		}
		rows = append(rows, row)
	}
	return renderTable("Figure 10: spot price standard deviation ($)", header, rows)
}
