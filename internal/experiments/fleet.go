package experiments

import (
	"context"
	"fmt"
	"sync"

	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/runpool"
	"spothost/internal/sim"
	"spothost/internal/tpcw"
	"spothost/internal/trace"
)

// Fleet experiment constants: a diurnal load peaking at 1200 emulated
// browsers (a replica saturates around 150 at the 250 ms target, so the
// fleet breathes between roughly 3 and 9 replicas), bids at 1.5x
// on-demand so the generator's spikes revoke often enough to compare
// blast radii, and 6-hour windows for the loss-variance statistic.
const (
	fleetBaseLoad    = 300
	fleetPeakLoad    = 1200
	fleetBidMultiple = 1.5
	fleetMaxReplicas = 16
	fleetTargetMs    = 250
	fleetLossWindow  = 6 * sim.Hour
	fleetPlanQuantum = 128
	fleetDemandSeed  = 0 // fixed: every seed faces the same load curve
)

// fleetPlanner is the shared, memoized TPC-W capacity planner. The
// planner's inputs are experiment constants, so one instance serves every
// Fleet call (and every parallel cell); its mutex-guarded memo keeps
// lookups deterministic regardless of call order.
var fleetPlanner = sync.OnceValues(func() (*fleet.TPCWPlanner, error) {
	cfg := tpcw.DefaultConfig(1, false, true, 0)
	cfg.Duration = 600
	cfg.Warmup = 120
	return fleet.NewTPCWPlanner(cfg, fleetTargetMs, fleetMaxReplicas, fleetPlanQuantum)
})

// fleetMarkets restricts the fleet to the "small" market of every
// region: identical replica capacity everywhere, correlated only through
// the generator's shared regional/global shocks.
func fleetMarkets(opts Options) []market.ID {
	var ids []market.ID
	for _, r := range opts.Market.Regions {
		ids = append(ids, market.ID{Region: r.Name, Type: "small"})
	}
	return ids
}

// FleetRow is one allocation strategy's cross-seed outcome.
type FleetRow struct {
	Strategy string
	// Mean is the cross-seed average report (series dropped).
	Mean fleet.Report
	// Seeds holds the per-seed reports, in seed order.
	Seeds []fleet.Report
	// WorstSimultaneousLoss is the largest single-instant replica loss
	// across all seeds; MeanMaxSimultaneousLoss averages the per-seed
	// maxima. LossVariance pools per-window loss counts across seeds.
	WorstSimultaneousLoss   int
	MeanMaxSimultaneousLoss float64
	LossVariance            float64
	LossEvents              int
}

// FleetResult compares the three allocation strategies: the repo's
// extension of the paper from one migrating VM to a replicated fleet.
type FleetResult struct {
	Markets []market.ID
	Window  sim.Duration
	Rows    []FleetRow
}

// Fleet runs the fleet-controller experiment: every (strategy, seed)
// cell is an independent simulation fanned over one worker pool, sharing
// the market cache and the memoized capacity planner.
func Fleet(opts Options) (FleetResult, error) {
	opts = opts.normalize()
	res := FleetResult{Markets: fleetMarkets(opts), Window: fleetLossWindow}
	anchor := opts.Anchor
	if anchor == "" {
		anchor = heterogeneityAnchor
	}
	if opts.Catalog != nil {
		// The candidate universe is every catalog-compatible market of
		// the widened set, not the per-region small markets.
		mc := opts.Market
		mc.Seed = opts.Seeds[0]
		mc.Types = opts.Catalog.TypeSpecs()
		set, err := market.SharedCache().Generate(mc)
		if err != nil {
			return res, err
		}
		if res.Markets, err = opts.Catalog.CompatibleMarkets(set, anchor); err != nil {
			return res, err
		}
	}
	planner, err := fleetPlanner()
	if err != nil {
		return res, err
	}
	dcfg := fleet.DefaultDiurnalConfig(opts.Horizon, fleetDemandSeed)
	dcfg.Base = fleetBaseLoad
	dcfg.Peak = fleetPeakLoad
	demand, err := fleet.NewDiurnalDemand(dcfg)
	if err != nil {
		return res, err
	}
	strategies := fleet.Strategies()
	ns := len(opts.Seeds)
	cache := market.SharedCache()
	cells := make([]int, len(strategies)*ns)
	reports, err := runpool.MapCtx(opts.Context, opts.Parallel, cells, func(ctx context.Context, i, _ int) (fleet.Report, error) {
		seed := opts.Seeds[i%ns]
		mc := opts.Market
		mc.Seed = seed
		if opts.Catalog != nil {
			mc.Types = opts.Catalog.TypeSpecs()
		}
		set, err := cache.Generate(mc)
		if err != nil {
			return fleet.Report{}, err
		}
		cp := opts.Cloud
		cp.Seed = seed
		cfg := fleet.Config{
			Strategy:    strategies[i/ns],
			Demand:      demand,
			Planner:     planner,
			BidMultiple: fleetBidMultiple,
			MaxReplicas: fleetMaxReplicas,
		}
		if opts.Catalog != nil {
			cfg.Catalog = opts.Catalog
			cfg.AnchorType = anchor
		} else {
			cfg.Markets = res.Markets
		}
		var rec *trace.Recorder
		if opts.Trace != nil {
			rec = opts.Trace.Run(fmt.Sprintf("%s/seed%d", strategies[i/ns].Name(), seed))
		}
		var ob *obs.Recorder
		if opts.Obs != nil {
			ob = opts.Obs.Run(fmt.Sprintf("%s/seed%d", strategies[i/ns].Name(), seed))
		}
		rep, err := fleet.RunObsCtx(ctx, set, cp, cfg, opts.Horizon, rec, ob)
		if err == nil {
			opts.Trace.Done(rec)
			opts.Obs.Done(ob)
		}
		return rep, err
	})
	if err != nil {
		return res, err
	}
	for s, strat := range strategies {
		perSeed := reports[s*ns : (s+1)*ns]
		row := FleetRow{
			Strategy:     strat.Name(),
			Mean:         fleet.Average(perSeed),
			Seeds:        perSeed,
			LossVariance: fleet.PooledLossVariance(perSeed, fleetLossWindow),
		}
		for _, r := range perSeed {
			m := r.MaxSimultaneousLoss()
			if m > row.WorstSimultaneousLoss {
				row.WorstSimultaneousLoss = m
			}
			row.MeanMaxSimultaneousLoss += float64(m) / float64(ns)
			row.LossEvents += len(r.LossEvents)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the strategy comparison.
func (r FleetResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		m := row.Mean
		spotShare := 0.0
		if tot := m.SpotSeconds + m.OnDemandSeconds; tot > 0 {
			spotShare = m.SpotSeconds / tot
		}
		rows = append(rows, []string{
			row.Strategy,
			pct(m.NormalizedCost(), 1),
			pct(m.CapacityShortfall(), 3),
			fmt.Sprintf("%d", m.PeakTarget),
			pct(spotShare, 1),
			fmt.Sprintf("%d", m.OnDemandFallbacks),
			fmt.Sprintf("%d", m.ReverseReplacements),
			fmt.Sprintf("%d", m.ReplicasLost),
			fmt.Sprintf("%d", row.WorstSimultaneousLoss),
			fmt.Sprintf("%.1f", row.MeanMaxSimultaneousLoss),
			fmt.Sprintf("%.2f", row.LossVariance),
		})
	}
	return renderTable(
		fmt.Sprintf("Fleet: allocation strategies across %d spot markets (diurnal load, TPC-W capacity planning)", len(r.Markets)),
		[]string{"strategy", "cost", "shortfall", "peak", "spot time",
			"od fallback", "reverse", "lost", "worst simul", "mean max simul", "loss var"},
		rows)
}

// CSV emits the strategy comparison.
func (r FleetResult) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		m := row.Mean
		rows = append(rows, []string{
			row.Strategy,
			f(m.NormalizedCost()), f(m.CapacityShortfall()),
			fmt.Sprintf("%d", m.PeakTarget),
			f(m.SpotSeconds), f(m.OnDemandSeconds),
			fmt.Sprintf("%d", m.OnDemandFallbacks),
			fmt.Sprintf("%d", m.ReverseReplacements),
			fmt.Sprintf("%d", m.ReplicasLost),
			fmt.Sprintf("%d", row.WorstSimultaneousLoss),
			f(row.MeanMaxSimultaneousLoss),
			f(row.LossVariance),
		})
	}
	return csvTable([]string{"strategy", "cost", "shortfall", "peak_target",
		"spot_seconds", "od_seconds", "od_fallbacks", "reverse_replacements",
		"replicas_lost", "worst_simultaneous", "mean_max_simultaneous", "loss_variance"}, rows)
}
