// Package experiments regenerates every table and figure in the paper's
// evaluation (Sections 4-6). Each experiment has one entry point returning
// a typed result with a Render method that prints the same rows/series the
// paper reports; cmd/paperbench runs them all, and bench_test.go exposes
// one testing.B target per table/figure.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/sim"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

// Options configures an experiment run. Zero fields are filled with
// defaults by normalize.
type Options struct {
	// Seeds drives repeated runs over independently generated synthetic
	// universes; reported numbers are cross-seed means.
	Seeds []int64
	// Horizon is the hosting window (the paper simulates over month-long
	// traces).
	Horizon sim.Duration
	// Market is the synthetic-universe configuration (Seed overridden per
	// run).
	Market market.Config
	// Cloud is the provider parameterization (Table 1 latencies etc.).
	Cloud cloud.Params
	// VM holds the migration-mechanism constants (Table 2).
	VM vm.Params
	// Region is the default region for single-region figures.
	Region market.Region
	// Parallel is the worker count for the run pool; every (config, seed)
	// simulation cell is independent, so experiments fan out across
	// workers. Zero means GOMAXPROCS. Rendered output is byte-identical
	// at any worker count.
	Parallel int
	// Context, when set, bounds the experiment: canceling it aborts every
	// in-flight simulation cell within one engine cancellation-poll batch
	// and the experiment returns the context's error. Nil means
	// context.Background() (run to completion).
	Context context.Context
	// Trace, when set, collects a run trace: every simulation cell records
	// spans and histograms into its own recorder labeled by its (config,
	// seed) coordinates, so exports are deterministic at any Parallel
	// setting. Nil (the default) traces nothing at no cost.
	Trace *trace.Collector
	// Obs, when set, collects simulated-time telemetry: every fleet
	// simulation cell records capacity/cost timelines and its decision
	// ledger into a recorder labeled by its (config, seed) coordinates,
	// exported deterministically at any Parallel setting. Nil (the
	// default) records nothing at no cost.
	Obs *obs.Collector
	// Catalog, when set, runs fleet experiments over the heterogeneous
	// instance catalog: the generated universe is widened to the
	// catalog's types and replicas may be any type at least as powerful
	// as Anchor. Nil (the default) keeps the single-type legacy fleet.
	Catalog *catalog.Catalog
	// Anchor is the capacity anchor type used with Catalog; empty means
	// "small".
	Anchor market.InstanceType
}

// Defaults returns the full-fidelity options used by cmd/paperbench:
// five seeds over 30-day universes.
func Defaults() Options {
	return Options{
		Seeds:   []int64{11, 22, 33, 44, 55},
		Horizon: 30 * sim.Day,
		Market:  market.DefaultConfig(0),
		Cloud:   cloud.DefaultParams(0),
		VM:      vm.DefaultParams(),
		Region:  "us-east-1a",
	}
}

// Quick returns reduced options (two seeds, 10-day universes) for tests
// and smoke runs.
func Quick() Options {
	o := Defaults()
	o.Seeds = []int64{7, 13}
	o.Horizon = 10 * sim.Day
	o.Market.Horizon = 10 * sim.Day
	return o
}

// normalize fills zero-valued fields with defaults.
func (o Options) normalize() Options {
	d := Defaults()
	if len(o.Seeds) == 0 {
		o.Seeds = d.Seeds
	}
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	if len(o.Market.Regions) == 0 {
		o.Market = d.Market
		o.Market.Horizon = o.Horizon
	}
	if o.Market.Horizon < o.Horizon {
		o.Horizon = o.Market.Horizon
	}
	if o.Cloud.GracePeriod == 0 {
		o.Cloud = d.Cloud
	}
	if o.VM.CheckpointWriteMBps == 0 {
		o.VM = d.VM
	}
	if o.Region == "" {
		o.Region = d.Region
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// renderTable formats a fixed-width text table.
func renderTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, 100*f)
}
