// Package replay imports real Amazon spot price history — the data the
// paper seeded its simulations with — and converts it into market.Set
// traces the scheduler can run against directly.
//
// Two source formats are supported:
//
//   - the AWS CLI's `aws ec2 describe-spot-price-history` JSON output
//     ({"SpotPriceHistory": [...]}, or a bare array of records), and
//   - the legacy ec2-api-tools text dump (tab-separated
//     SPOTINSTANCEPRICE rows).
//
// Timestamps are rebased so the earliest record is simulation time 0, AWS
// instance-type names map onto the catalog's size names, and the
// on-demand price book is filled from the default catalog (or the
// caller's overrides).
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// Record is one spot price observation.
type Record struct {
	Time    time.Time
	Zone    string // availability zone, e.g. "us-east-1a"
	Type    string // AWS instance type, e.g. "m3.medium"
	Product string // e.g. "Linux/UNIX"
	Price   float64
}

// Options controls how records become traces.
type Options struct {
	// Product filters records by product description; empty keeps all.
	Product string
	// TypeMap renames AWS instance types to catalog sizes (e.g.
	// "m1.small" -> "small"). Nil uses DefaultTypeMap; unmapped types
	// keep their AWS name.
	TypeMap map[string]market.InstanceType
	// OnDemand overrides the on-demand price book per market. Markets
	// not listed fall back to the default catalog for known sizes, then
	// to the trace's maximum price.
	OnDemand map[market.ID]float64
	// Start and End clip the record window (zero values mean unbounded).
	Start, End time.Time
}

// DefaultTypeMap maps the 2015-era instance families the paper used onto
// the catalog's four sizes.
func DefaultTypeMap() map[string]market.InstanceType {
	return map[string]market.InstanceType{
		"m1.small":   "small",
		"t1.micro":   "small",
		"m3.medium":  "medium",
		"m1.medium":  "medium",
		"m3.large":   "large",
		"m1.large":   "large",
		"m3.xlarge":  "xlarge",
		"m1.xlarge":  "xlarge",
		"m3.2xlarge": "xlarge",
	}
}

// awsHistory matches the AWS CLI JSON envelope.
type awsHistory struct {
	SpotPriceHistory []awsRecord `json:"SpotPriceHistory"`
}

type awsRecord struct {
	AvailabilityZone   string `json:"AvailabilityZone"`
	InstanceType       string `json:"InstanceType"`
	ProductDescription string `json:"ProductDescription"`
	SpotPrice          string `json:"SpotPrice"`
	Timestamp          string `json:"Timestamp"`
}

// timeLayouts are the timestamp formats AWS tooling has emitted over the
// years.
var timeLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02T15:04:05.000Z",
	"2006-01-02T15:04:05-0700",
	"2006-01-02 15:04:05",
}

func parseTime(s string) (time.Time, error) {
	for _, l := range timeLayouts {
		if t, err := time.Parse(l, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("replay: unrecognized timestamp %q", s)
}

// ParseJSON reads AWS CLI describe-spot-price-history output: either the
// {"SpotPriceHistory": [...]} envelope or a bare array of records.
func ParseJSON(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("replay: reading json: %w", err)
	}
	var env awsHistory
	if err := json.Unmarshal(data, &env); err != nil || len(env.SpotPriceHistory) == 0 {
		// Try a bare array.
		var arr []awsRecord
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			if err == nil {
				err = err2
			}
			return nil, fmt.Errorf("replay: not spot price history json: %w", err)
		}
		env.SpotPriceHistory = arr
	}
	var out []Record
	for i, ar := range env.SpotPriceHistory {
		ts, err := parseTime(ar.Timestamp)
		if err != nil {
			return nil, fmt.Errorf("replay: record %d: %w", i, err)
		}
		price, err := strconv.ParseFloat(ar.SpotPrice, 64)
		if err != nil {
			return nil, fmt.Errorf("replay: record %d: bad price %q", i, ar.SpotPrice)
		}
		out = append(out, Record{
			Time:    ts,
			Zone:    ar.AvailabilityZone,
			Type:    ar.InstanceType,
			Product: ar.ProductDescription,
			Price:   price,
		})
	}
	return out, nil
}

// ParseLegacy reads the ec2-api-tools text format: tab-separated rows of
//
//	SPOTINSTANCEPRICE <price> <timestamp> <type> <product> <zone>
//
// Unknown row tags and blank lines are skipped.
func ParseLegacy(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if fields[0] != "SPOTINSTANCEPRICE" {
			continue
		}
		if len(fields) < 6 {
			return nil, fmt.Errorf("replay: line %d: want 6 fields, got %d", line, len(fields))
		}
		price, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: bad price %q", line, fields[1])
		}
		ts, err := parseTime(fields[2])
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		out = append(out, Record{
			Time:    ts,
			Zone:    fields[5],
			Type:    fields[3],
			Product: fields[4],
			Price:   price,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: scanning: %w", err)
	}
	return out, nil
}

// Build converts records into a market.Set per the options.
func Build(records []Record, opts Options) (*market.Set, error) {
	tm := opts.TypeMap
	if tm == nil {
		tm = DefaultTypeMap()
	}
	// Filter and map.
	var kept []Record
	for _, rec := range records {
		if opts.Product != "" && rec.Product != opts.Product {
			continue
		}
		if !opts.Start.IsZero() && rec.Time.Before(opts.Start) {
			continue
		}
		if !opts.End.IsZero() && !rec.Time.Before(opts.End) {
			continue
		}
		if rec.Price <= 0 {
			continue // defensive: drop corrupt rows
		}
		kept = append(kept, rec)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("replay: no records after filtering")
	}
	// Rebase to the earliest record.
	epoch := kept[0].Time
	for _, rec := range kept {
		if rec.Time.Before(epoch) {
			epoch = rec.Time
		}
	}
	// Group into per-market point lists.
	points := map[market.ID][]market.Point{}
	for _, rec := range kept {
		ty := market.InstanceType(rec.Type)
		if mapped, ok := tm[rec.Type]; ok {
			ty = mapped
		}
		id := market.ID{Region: market.Region(rec.Zone), Type: ty}
		points[id] = append(points[id], market.Point{
			T:     rec.Time.Sub(epoch).Seconds(),
			Price: rec.Price,
		})
	}
	var ids []market.ID
	for id := range points {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Region != ids[j].Region {
			return ids[i].Region < ids[j].Region
		}
		return ids[i].Type < ids[j].Type
	})

	var traces []*market.Trace
	onDemand := map[market.ID]float64{}
	var end sim.Time
	for _, id := range ids {
		ps := points[id]
		sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
		// Collapse duplicate timestamps (AWS history can repeat): the
		// last observation wins.
		dedup := ps[:0]
		for i, p := range ps {
			if i > 0 && p.T == dedup[len(dedup)-1].T {
				dedup[len(dedup)-1] = p
				continue
			}
			dedup = append(dedup, p)
		}
		if last := dedup[len(dedup)-1].T + sim.Hour; last > end {
			end = last
		}
		tr, err := market.NewTrace(id, dedup, dedup[len(dedup)-1].T+sim.Hour)
		if err != nil {
			return nil, fmt.Errorf("replay: market %s: %w", id, err)
		}
		traces = append(traces, tr)
		onDemand[id] = resolveOnDemand(id, tr, opts)
	}
	// Re-extend every trace to the common end so the Set has a shared
	// horizon.
	for i, tr := range traces {
		if tr.End() < end {
			t2, err := market.NewTrace(tr.ID(), tr.Points(), end)
			if err != nil {
				return nil, err
			}
			traces[i] = t2
		}
	}
	return market.NewSet(traces, onDemand)
}

// resolveOnDemand picks the on-demand price for one imported market.
func resolveOnDemand(id market.ID, tr *market.Trace, opts Options) float64 {
	if p, ok := opts.OnDemand[id]; ok && p > 0 {
		return p
	}
	if ts, ok := market.FindType(market.DefaultTypes(), id.Type); ok {
		if rs, ok := market.FindRegion(market.DefaultRegions(), id.Region); ok {
			return market.OnDemandPrice(rs, ts)
		}
		return ts.OnDemand
	}
	// Unknown size: the literature's usual heuristic is that spot peaks
	// approach (or exceed) the on-demand price; use the observed maximum.
	return tr.Max()
}

// LoadJSON parses and builds in one step.
func LoadJSON(r io.Reader, opts Options) (*market.Set, error) {
	recs, err := ParseJSON(r)
	if err != nil {
		return nil, err
	}
	return Build(recs, opts)
}

// LoadLegacy parses and builds in one step.
func LoadLegacy(r io.Reader, opts Options) (*market.Set, error) {
	recs, err := ParseLegacy(r)
	if err != nil {
		return nil, err
	}
	return Build(recs, opts)
}
