package replay

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

const sampleJSON = `{
  "SpotPriceHistory": [
    {"AvailabilityZone": "us-east-1a", "InstanceType": "m1.small",
     "ProductDescription": "Linux/UNIX", "SpotPrice": "0.0071",
     "Timestamp": "2015-02-01T00:00:00.000Z"},
    {"AvailabilityZone": "us-east-1a", "InstanceType": "m1.small",
     "ProductDescription": "Linux/UNIX", "SpotPrice": "0.0123",
     "Timestamp": "2015-02-01T06:00:00.000Z"},
    {"AvailabilityZone": "us-east-1a", "InstanceType": "m1.small",
     "ProductDescription": "Windows", "SpotPrice": "0.0210",
     "Timestamp": "2015-02-01T03:00:00.000Z"},
    {"AvailabilityZone": "us-east-1a", "InstanceType": "m3.large",
     "ProductDescription": "Linux/UNIX", "SpotPrice": "0.0301",
     "Timestamp": "2015-02-01T01:00:00.000Z"},
    {"AvailabilityZone": "us-west-1a", "InstanceType": "m1.small",
     "ProductDescription": "Linux/UNIX", "SpotPrice": "0.0090",
     "Timestamp": "2015-02-01T02:00:00.000Z"}
  ]
}`

func TestParseJSONEnvelope(t *testing.T) {
	recs, err := ParseJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Price != 0.0071 || recs[0].Zone != "us-east-1a" || recs[0].Type != "m1.small" {
		t.Fatalf("first record: %+v", recs[0])
	}
}

func TestParseJSONBareArray(t *testing.T) {
	bare := `[{"AvailabilityZone":"us-east-1a","InstanceType":"m1.small",
	  "ProductDescription":"Linux/UNIX","SpotPrice":"0.01",
	  "Timestamp":"2015-02-01T00:00:00Z"}]`
	recs, err := ParseJSON(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"SpotPriceHistory":[{"SpotPrice":"x","Timestamp":"2015-02-01T00:00:00Z"}]}`,
		`{"SpotPriceHistory":[{"SpotPrice":"0.01","Timestamp":"yesterday"}]}`,
	}
	for i, in := range cases {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseLegacy(t *testing.T) {
	in := strings.Join([]string{
		"SPOTINSTANCEPRICE\t0.0071\t2015-02-01T00:00:00Z\tm1.small\tLinux/UNIX\tus-east-1a",
		"", // blank line skipped
		"SOMETHINGELSE\tignored",
		"SPOTINSTANCEPRICE\t0.0123\t2015-02-01T06:00:00Z\tm1.small\tLinux/UNIX\tus-east-1a",
	}, "\n")
	recs, err := ParseLegacy(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1].Price != 0.0123 {
		t.Fatalf("second record: %+v", recs[1])
	}
}

func TestParseLegacyErrors(t *testing.T) {
	bad := []string{
		"SPOTINSTANCEPRICE\t0.01\t2015-02-01T00:00:00Z\tm1.small", // short row
		"SPOTINSTANCEPRICE\tabc\t2015-02-01T00:00:00Z\tm1.small\tLinux/UNIX\tz",
		"SPOTINSTANCEPRICE\t0.01\twhenever\tm1.small\tLinux/UNIX\tz",
	}
	for i, in := range bad {
		if _, err := ParseLegacy(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildFiltersAndRebases(t *testing.T) {
	recs, err := ParseJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(recs, Options{Product: "Linux/UNIX"})
	if err != nil {
		t.Fatal(err)
	}
	// Windows record filtered; three Linux markets remain.
	if got := len(set.IDs()); got != 3 {
		t.Fatalf("markets = %d: %v", got, set.IDs())
	}
	small := set.Trace(market.ID{Region: "us-east-1a", Type: "small"})
	if small == nil {
		t.Fatal("m1.small not mapped to catalog size 'small'")
	}
	// Rebased: the first observation is at t=0, the 06:00 step at 21600.
	if small.Start() != 0 {
		t.Fatalf("trace start = %v", small.Start())
	}
	if got := small.PriceAt(21600); got != 0.0123 {
		t.Fatalf("price after step = %v", got)
	}
	if got := small.PriceAt(21599); got != 0.0071 {
		t.Fatalf("price before step = %v", got)
	}
	// On-demand resolved from the default catalog.
	if got := set.OnDemand(market.ID{Region: "us-east-1a", Type: "small"}); got != 0.06 {
		t.Fatalf("on-demand = %v", got)
	}
	// Common horizon: all traces share the set end.
	if set.Horizon() <= 21600 {
		t.Fatalf("horizon = %v", set.Horizon())
	}
}

func TestBuildWindowFilter(t *testing.T) {
	recs, _ := ParseJSON(strings.NewReader(sampleJSON))
	cut := time.Date(2015, 2, 1, 1, 30, 0, 0, time.UTC)
	set, err := Build(recs, Options{Product: "Linux/UNIX", End: cut})
	if err != nil {
		t.Fatal(err)
	}
	// Only records before 01:30 survive: small@00:00 and large@01:00.
	if got := len(set.IDs()); got != 2 {
		t.Fatalf("markets = %d", got)
	}
}

func TestBuildOnDemandOverrideAndHeuristic(t *testing.T) {
	recs := []Record{
		{Time: time.Unix(0, 0), Zone: "exotic-9z", Type: "weird.9xlarge", Product: "Linux/UNIX", Price: 0.5},
		{Time: time.Unix(3600, 0), Zone: "exotic-9z", Type: "weird.9xlarge", Product: "Linux/UNIX", Price: 0.9},
		{Time: time.Unix(0, 0), Zone: "exotic-9z", Type: "m1.small", Product: "Linux/UNIX", Price: 0.01},
	}
	override := market.ID{Region: "exotic-9z", Type: "weird.9xlarge"}
	set, err := Build(recs, Options{
		OnDemand: map[market.ID]float64{override: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.OnDemand(override); got != 2.5 {
		t.Fatalf("override ignored: %v", got)
	}
	// Unknown region + known size: falls back to the base catalog price.
	if got := set.OnDemand(market.ID{Region: "exotic-9z", Type: "small"}); got != 0.06 {
		t.Fatalf("catalog fallback = %v", got)
	}
}

func TestBuildMaxHeuristicForUnknownSize(t *testing.T) {
	recs := []Record{
		{Time: time.Unix(0, 0), Zone: "z-1a", Type: "alien.big", Product: "L", Price: 0.2},
		{Time: time.Unix(100, 0), Zone: "z-1a", Type: "alien.big", Product: "L", Price: 0.7},
	}
	set, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.OnDemand(market.ID{Region: "z-1a", Type: "alien.big"}); got != 0.7 {
		t.Fatalf("max heuristic = %v", got)
	}
}

func TestBuildDuplicateTimestamps(t *testing.T) {
	recs := []Record{
		{Time: time.Unix(0, 0), Zone: "z-1a", Type: "m1.small", Product: "L", Price: 0.01},
		{Time: time.Unix(0, 0), Zone: "z-1a", Type: "m1.small", Product: "L", Price: 0.02}, // dup wins
		{Time: time.Unix(50, 0), Zone: "z-1a", Type: "m1.small", Product: "L", Price: 0.03},
	}
	set, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := set.Trace(market.ID{Region: "z-1a", Type: "small"})
	if got := tr.PriceAt(0); got != 0.02 {
		t.Fatalf("duplicate resolution: %v", got)
	}
}

func TestBuildEmptyAfterFilter(t *testing.T) {
	recs := []Record{{Time: time.Unix(0, 0), Zone: "z", Type: "t", Product: "Windows", Price: 0.1}}
	if _, err := Build(recs, Options{Product: "Linux/UNIX"}); err == nil {
		t.Fatal("empty filter result accepted")
	}
	if _, err := Build(recs, Options{Product: "Windows", Start: time.Unix(10, 0)}); err == nil {
		t.Fatal("empty window accepted")
	}
}

// TestReplayEndToEnd runs the scheduler against imported history: the
// library's whole point.
func TestReplayEndToEnd(t *testing.T) {
	// Synthesize two weeks of "history" in legacy format: a low price with
	// one mid-band excursion per day.
	var b strings.Builder
	base := time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 14; day++ {
		d := base.AddDate(0, 0, day)
		rows := []struct {
			at    time.Time
			price float64
		}{
			{d, 0.009},
			{d.Add(10 * time.Hour), 0.085},
			{d.Add(11 * time.Hour), 0.011},
		}
		for _, r := range rows {
			fmt.Fprintf(&b, "SPOTINSTANCEPRICE\t%.4f\t%s\tm1.small\tLinux/UNIX\tus-east-1a\n",
				r.price, r.at.Format(time.RFC3339))
		}
	}
	set, err := LoadLegacy(strings.NewReader(b.String()), Options{Product: "Linux/UNIX"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sched.DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Run(set, cloud.DefaultParams(1), cfg, 14*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost >= rep.BaselineCost {
		t.Fatalf("replayed hosting not cheaper: %v vs %v", rep.Cost, rep.BaselineCost)
	}
	if rep.Migrations.Planned == 0 || rep.Migrations.Reverse == 0 {
		t.Fatalf("daily excursions produced no migrations: %+v", rep.Migrations)
	}
}
