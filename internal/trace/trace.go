// Package trace is the simulation core's observability layer: a
// zero-dependency, allocation-conscious run tracer that records typed spans
// (migrations by class, revocation warning→suspend→restore chains, down
// intervals, billing-hour boundaries) on the simulated clock, plus per-run
// histograms (downtime by migration class, migration latency, spot price
// paid, checkpoint/restore durations) built on stats.Histogram.
//
// A *Recorder belongs to exactly one simulation run and is driven from that
// run's single event-loop goroutine; it is not safe for concurrent use. A
// nil *Recorder is a valid no-op: every method checks the receiver first,
// so instrumented code calls unconditionally and the untraced hot path
// costs one nil check and zero allocations (guarded by
// TestNilRecorderAllocs and BenchmarkSchedulerMonthTraced).
//
// Recorders for concurrent runs are minted and gathered by a Collector,
// which merges their histograms and exports spans as Chrome trace_event
// JSON (chrome://tracing, Perfetto), JSONL, or Prometheus text.
package trace

// Kind classifies a span or instant event.
type Kind uint8

// Span kinds, covering the scheduler, provider and fleet state machines.
const (
	// KindBoot covers initial VM acquisition through service readiness.
	KindBoot Kind = iota
	// KindMigration covers one migration start→done (or →abort); its
	// class is "forced", "planned", "reverse", or "waiting" (pure-spot
	// re-acquisition).
	KindMigration
	// KindWarning marks a revocation warning instant.
	KindWarning
	// KindSuspend marks the instant a revoked VM's state is captured (or
	// lost: class "memlost").
	KindSuspend
	// KindRestore covers checkpoint restore on the fallback instance.
	KindRestore
	// KindDown covers a service-unavailable interval; classes mirror the
	// migration that caused it.
	KindDown
	// KindBillingHour marks a billing-hour boundary charge; class is
	// "spot" or "on-demand".
	KindBillingHour
	// KindCheckpoint covers one background checkpoint write.
	KindCheckpoint
	// KindLaunch covers a fleet replica's request→running interval;
	// class is "spot", "on-demand" or "reverse".
	KindLaunch
	// KindLoss marks a fleet replica lost to revocation.
	KindLoss
	// KindPhase covers coarse run phases (universe load, sim, report).
	KindPhase
)

var kindNames = [...]string{
	"boot", "migration", "warning", "suspend", "restore", "down",
	"billing-hour", "checkpoint", "launch", "loss", "phase",
}

// String returns the kind's stable lowercase name, used verbatim in every
// exporter.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one recorded interval (or instant) on the simulated clock.
// Times are simulation seconds. An instant has End == Start and Inst set;
// a span still open at export time has End < Start.
type Span struct {
	Kind  Kind
	Class string // kind-specific label, e.g. migration class
	Track string // lane within the run, e.g. service name or replica id
	Start float64
	End   float64
	Note  string // abort reason or other annotation
	Inst  bool
}

// Open reports whether the span has not been ended.
func (s *Span) Open() bool { return !s.Inst && s.End < s.Start }

// SpanID is a handle to an open span. The zero SpanID is invalid and every
// operation on it is a no-op, which is what Begin on a nil Recorder
// returns — callers never branch on it.
type SpanID int32

// Recorder accumulates one run's spans and histograms. Mint one per run
// via Collector.Run (or NewRecorder for standalone use); a nil Recorder
// no-ops every method.
type Recorder struct {
	// Label identifies the run in exports, e.g. "figure6/cfg03/seed69".
	Label string
	spans []Span
	hist  *HistSet
}

// NewRecorder returns a standalone recorder with the given run label.
func NewRecorder(label string) *Recorder {
	return &Recorder{Label: label, hist: NewHistSet()}
}

// Begin opens a span and returns its handle. On a nil recorder it returns
// the invalid SpanID 0.
func (r *Recorder) Begin(k Kind, class, track string, at float64) SpanID {
	if r == nil {
		return 0
	}
	r.spans = append(r.spans, Span{Kind: k, Class: class, Track: track, Start: at, End: at - 1})
	return SpanID(len(r.spans))
}

// End closes the span at time at and returns its duration in simulated
// seconds (0 for a nil recorder, invalid handle, or already-closed span).
func (r *Recorder) End(id SpanID, at float64) float64 {
	return r.EndWith(id, at, "")
}

// EndWith is End with an annotation, e.g. "aborted" for a migration whose
// target failed before cutover.
func (r *Recorder) EndWith(id SpanID, at float64, note string) float64 {
	if r == nil || id <= 0 || int(id) > len(r.spans) {
		return 0
	}
	s := &r.spans[id-1]
	if !s.Open() {
		return 0
	}
	s.End = at
	s.Note = note
	return s.End - s.Start
}

// Instant records a zero-duration event.
func (r *Recorder) Instant(k Kind, class, track string, at float64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{Kind: k, Class: class, Track: track, Start: at, End: at, Inst: true})
}

// CloseOpen closes every still-open span at time at, annotating it as
// truncated by end-of-run. Call it when the run stops so exports carry no
// dangling spans.
func (r *Recorder) CloseOpen(at float64) {
	if r == nil {
		return
	}
	for i := range r.spans {
		if r.spans[i].Open() {
			r.spans[i].End = at
			r.spans[i].Note = "open-at-stop"
		}
	}
}

// Spans returns the recorded spans in creation order (nil for a nil
// recorder). The slice is owned by the recorder; do not mutate it.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Hist returns the recorder's histogram bundle (nil for a nil recorder).
func (r *Recorder) Hist() *HistSet {
	if r == nil {
		return nil
	}
	return r.hist
}

// ObserveDowntime records one unavailability interval, labeled by the
// migration class that caused it.
func (r *Recorder) ObserveDowntime(class string, secs float64) {
	if r == nil {
		return
	}
	r.hist.downtime(class).Add(secs)
}

// ObserveMigration records one completed migration's start→done latency,
// labeled by class.
func (r *Recorder) ObserveMigration(class string, secs float64) {
	if r == nil {
		return
	}
	r.hist.migration(class).Add(secs)
}

// ObserveSpotPrice records the spot rate paid at one billing-hour boundary
// (dollars per hour).
func (r *Recorder) ObserveSpotPrice(dollars float64) {
	if r == nil {
		return
	}
	r.hist.SpotPrice.Add(dollars)
}

// ObserveRestore records one checkpoint-restore duration.
func (r *Recorder) ObserveRestore(secs float64) {
	if r == nil {
		return
	}
	r.hist.Restore.Add(secs)
}

// ObserveCheckpoint records one background checkpoint write duration.
func (r *Recorder) ObserveCheckpoint(secs float64) {
	if r == nil {
		return
	}
	r.hist.Checkpoint.Add(secs)
}
