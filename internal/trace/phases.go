package trace

import (
	"fmt"
	"strings"
	"time"
)

// Phases measures wall-clock time spent in a run's coarse phases (universe
// load, simulation, report). Call Mark at the end of each phase; String
// renders "load=120ms sim=3.4s report=8ms total=3.5s" for log lines.
type Phases struct {
	start time.Time
	last  time.Time
	parts []phasePart
}

type phasePart struct {
	label string
	d     time.Duration
}

// NewPhases starts the wall clock.
func NewPhases() *Phases {
	now := time.Now()
	return &Phases{start: now, last: now}
}

// Mark ends the current phase, crediting it with the wall time since the
// previous Mark (or since NewPhases), and returns that duration.
func (p *Phases) Mark(label string) time.Duration {
	now := time.Now()
	d := now.Sub(p.last)
	p.last = now
	p.parts = append(p.parts, phasePart{label: label, d: d})
	return d
}

// String renders every marked phase plus the total, each rounded for
// readability.
func (p *Phases) String() string {
	var b strings.Builder
	for _, part := range p.parts {
		fmt.Fprintf(&b, "%s=%s ", part.label, round(part.d))
	}
	fmt.Fprintf(&b, "total=%s", round(p.last.Sub(p.start)))
	return b.String()
}

// round trims a duration to a plottable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(time.Microsecond)
}
