package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Collector mints per-run Recorders and gathers their results for export.
// It is safe for concurrent use: runs executing in parallel each drive
// their own Recorder and hand it back via Done. A nil *Collector is a
// valid no-op whose Run returns a nil Recorder, so trace support threads
// through every layer at zero cost when tracing is off.
//
// Scope returns a view that prefixes run labels (e.g. one scope per
// experiment), sharing the underlying state. Export order is sorted by run
// label — labels are derived from deterministic cell coordinates
// (config index, seed), so exports are byte-identical regardless of the
// parallelism or completion order of the runs that produced them.
type Collector struct {
	shared *collectorShared
	prefix string
}

type collectorShared struct {
	mu        sync.Mutex
	runs      map[string]*Recorder
	hist      *HistSet
	keepSpans bool
}

// NewCollector returns a collector that retains every run's spans for
// Chrome/JSONL export — the CLI mode.
func NewCollector() *Collector {
	return &Collector{shared: &collectorShared{
		runs:      map[string]*Recorder{},
		hist:      NewHistSet(),
		keepSpans: true,
	}}
}

// NewHistogramCollector returns a collector that merges histograms but
// discards spans as runs complete — the long-lived server mode, whose
// memory stays bounded no matter how many runs it absorbs.
func NewHistogramCollector() *Collector {
	return &Collector{shared: &collectorShared{
		runs: map[string]*Recorder{},
		hist: NewHistSet(),
	}}
}

// Scope returns a collector view whose runs are labeled prefix + "/" +
// label, sharing storage with c. A nil collector scopes to nil.
func (c *Collector) Scope(prefix string) *Collector {
	if c == nil {
		return nil
	}
	p := prefix
	if c.prefix != "" {
		p = c.prefix + "/" + prefix
	}
	return &Collector{shared: c.shared, prefix: p}
}

// Run mints a recorder for one run. A nil collector returns a nil
// recorder, which no-ops every instrumentation call.
func (c *Collector) Run(label string) *Recorder {
	if c == nil {
		return nil
	}
	if c.prefix != "" {
		label = c.prefix + "/" + label
	}
	return NewRecorder(label)
}

// Done hands a finished run's recorder back for aggregation. It merges the
// recorder's histograms and, in span-keeping mode, retains its spans under
// its label (a duplicate label gets a "#n" suffix rather than clobbering).
// Accepts nil recorders and nil collectors.
func (c *Collector) Done(rec *Recorder) {
	if c == nil || rec == nil {
		return
	}
	s := c.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hist.Merge(rec.hist)
	if !s.keepSpans {
		return
	}
	label := rec.Label
	for i := 2; ; i++ {
		if _, taken := s.runs[label]; !taken {
			break
		}
		label = fmt.Sprintf("%s#%d", rec.Label, i)
	}
	rec.Label = label
	s.runs[label] = rec
}

// HistSnapshot returns a deep copy of the merged histograms.
func (c *Collector) HistSnapshot() *HistSet {
	if c == nil {
		return NewHistSet()
	}
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	return c.shared.hist.Clone()
}

// WritePrometheus renders the merged histograms in Prometheus text format
// with the given metric-name prefix.
func (c *Collector) WritePrometheus(w io.Writer, prefix string) {
	c.HistSnapshot().WritePrometheus(w, prefix)
}

// sortedRuns returns the retained recorders in label order, the canonical
// export order.
func (c *Collector) sortedRuns() []*Recorder {
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	labels := make([]string, 0, len(c.shared.runs))
	for label := range c.shared.runs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	runs := make([]*Recorder, len(labels))
	for i, label := range labels {
		runs[i] = c.shared.runs[label]
	}
	return runs
}

// Export writes the collected trace to w in the named format: "chrome"
// (default, also accepts "" and "trace_event") or "jsonl".
func (c *Collector) Export(w io.Writer, format string) error {
	switch format {
	case "", "chrome", "trace_event":
		return c.WriteChrome(w)
	case "jsonl":
		return c.WriteJSONL(w)
	}
	return fmt.Errorf("trace: unknown export format %q (want chrome or jsonl)", format)
}
