package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleCollector builds a small two-run trace with every event shape the
// exporters handle: spans, instants, aborted spans, multiple tracks, and
// a span left open at stop.
func sampleCollector() *Collector {
	col := NewCollector()

	rec := col.Scope("figure6").Run("cfg00/seed23")
	boot := rec.Begin(KindBoot, "", "svc", 0)
	rec.End(boot, 90)
	mig := rec.Begin(KindMigration, "planned", "svc", 3600)
	rec.Instant(KindBillingHour, "spot", "svc", 3600)
	down := rec.Begin(KindDown, "planned", "svc", 3650)
	rec.End(down, 3652.5)
	rec.End(mig, 3700)
	rec.ObserveMigration("planned", 100)
	rec.ObserveDowntime("planned", 2.5)
	ab := rec.Begin(KindMigration, "reverse", "svc", 7200)
	rec.EndWith(ab, 7300, "aborted")
	open := rec.Begin(KindMigration, "forced", "svc", 9000)
	_ = open
	rec.CloseOpen(9500)
	col.Done(rec)

	rec2 := col.Scope("figure6").Run("cfg01/seed23")
	rec2.Instant(KindWarning, "", "web", 120)
	rec2.Instant(KindSuspend, "memlost", "web", 240)
	res := rec2.Begin(KindRestore, "", "db", 250)
	rec2.End(res, 280)
	rec2.ObserveRestore(30)
	rec2.ObserveSpotPrice(0.031)
	col.Done(rec2)
	return col
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCollector().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_golden.json", buf.Bytes())
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCollector().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "jsonl_golden.jsonl", buf.Bytes())
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/trace -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("export differs from golden %s\ngot:\n%s", path, got)
	}
}

func TestExportFormats(t *testing.T) {
	col := sampleCollector()
	var chrome, jsonl bytes.Buffer
	if err := col.Export(&chrome, "chrome"); err != nil {
		t.Fatal(err)
	}
	if err := col.Export(&jsonl, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(chrome.String(), "[") {
		t.Fatalf("chrome export not an array: %q", chrome.String()[:20])
	}
	if err := col.Export(&chrome, "protobuf"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestNilSafety(t *testing.T) {
	var col *Collector
	rec := col.Scope("x").Run("y")
	if rec != nil {
		t.Fatal("nil collector minted a recorder")
	}
	id := rec.Begin(KindMigration, "planned", "", 0)
	if id != 0 {
		t.Fatalf("nil recorder returned live span id %d", id)
	}
	if d := rec.End(id, 10); d != 0 {
		t.Fatalf("nil End returned %v", d)
	}
	rec.Instant(KindWarning, "", "", 0)
	rec.ObserveDowntime("forced", 1)
	rec.ObserveMigration("forced", 1)
	rec.ObserveSpotPrice(0.1)
	rec.ObserveRestore(1)
	rec.ObserveCheckpoint(1)
	rec.CloseOpen(5)
	col.Done(rec)
	if got := rec.Spans(); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	if s := col.HistSnapshot(); s == nil || s.SpotPrice.Count() != 0 {
		t.Fatal("nil collector snapshot not empty")
	}
}

// TestNilRecorderAllocs pins the untraced hot path at zero allocations:
// instrumented code calls these unconditionally on every migration,
// billing tick and downtime interval, so any allocation here would tax
// every untraced run.
func TestNilRecorderAllocs(t *testing.T) {
	var rec *Recorder
	n := testing.AllocsPerRun(1000, func() {
		id := rec.Begin(KindMigration, "planned", "svc", 1)
		rec.Instant(KindBillingHour, "spot", "svc", 2)
		rec.End(id, 3)
		rec.EndWith(id, 3, "aborted")
		rec.ObserveDowntime("planned", 1)
		rec.ObserveMigration("planned", 1)
		rec.ObserveSpotPrice(0.1)
		rec.ObserveRestore(1)
		rec.ObserveCheckpoint(1)
		rec.CloseOpen(4)
	})
	if n != 0 {
		t.Fatalf("nil-recorder path allocates %v per run, want 0", n)
	}
}

func TestEndSemantics(t *testing.T) {
	rec := NewRecorder("r")
	id := rec.Begin(KindMigration, "forced", "", 10)
	if d := rec.End(id, 25); d != 15 {
		t.Fatalf("duration = %v", d)
	}
	if d := rec.End(id, 30); d != 0 {
		t.Fatalf("double End returned %v", d)
	}
	if d := rec.End(SpanID(99), 30); d != 0 {
		t.Fatalf("bogus id End returned %v", d)
	}
	sp := rec.Spans()
	if len(sp) != 1 || sp[0].End != 25 {
		t.Fatalf("spans = %+v", sp)
	}
}

func TestCollectorDuplicateLabels(t *testing.T) {
	col := NewCollector()
	a := col.Run("same")
	a.Instant(KindWarning, "", "", 1)
	b := col.Run("same")
	b.Instant(KindWarning, "", "", 2)
	col.Done(a)
	col.Done(b)
	runs := col.sortedRuns()
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].Label == runs[1].Label {
		t.Fatalf("labels collide: %q", runs[0].Label)
	}
}

func TestHistogramCollectorDropsSpans(t *testing.T) {
	col := NewHistogramCollector()
	rec := col.Run("r")
	rec.Instant(KindWarning, "", "", 1)
	rec.ObserveDowntime("forced", 12)
	col.Done(rec)
	if got := len(col.sortedRuns()); got != 0 {
		t.Fatalf("histogram collector kept %d runs", got)
	}
	snap := col.HistSnapshot()
	if snap.Downtime["forced"].Count() != 1 {
		t.Fatal("histograms not merged")
	}
}

func TestHistSetPrometheus(t *testing.T) {
	h := NewHistSet()
	h.downtime("forced").Add(30)
	h.downtime("forced").Add(9999) // overflow -> only the +Inf bucket
	h.downtime("planned").Add(2)
	h.migration("reverse").Add(100)
	h.SpotPrice.Add(0.031)
	var buf bytes.Buffer
	h.WritePrometheus(&buf, "spothost")
	out := buf.String()
	for _, want := range []string{
		`spothost_downtime_seconds_bucket{class="forced",le="25"} 0`,
		`spothost_downtime_seconds_bucket{class="forced",le="50"} 1`,
		`spothost_downtime_seconds_bucket{class="forced",le="+Inf"} 2`,
		`spothost_downtime_seconds_sum{class="forced"} 10029`,
		`spothost_downtime_seconds_count{class="forced"} 2`,
		`spothost_downtime_seconds_bucket{class="planned",le="25"} 1`,
		`spothost_migration_seconds_count{class="reverse"} 1`,
		`spothost_spot_price_dollars_bucket{le="0.05"} 1`,
		`spothost_spot_price_dollars_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "restore_seconds") {
		t.Fatal("empty histogram emitted")
	}
	// classes render in sorted order for deterministic output
	if strings.Index(out, `class="forced"`) > strings.Index(out, `class="planned"`) {
		t.Fatal("classes not sorted")
	}
}

func TestPhases(t *testing.T) {
	p := NewPhases()
	p.Mark("load")
	p.Mark("sim")
	s := p.String()
	for _, want := range []string{"load=", "sim=", "total="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}
