package trace

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteChrome writes the collected runs as a Chrome trace_event JSON array
// that loads in chrome://tracing and Perfetto. The time axis is simulated
// time: one trace microsecond per simulated second × 1e-6, i.e. ts/dur are
// simulation seconds scaled by 1e6, so the viewer's "1 s" is one simulated
// second.
//
// Each run becomes a process (pid = 1 + its index in label order, named by
// its run label via a process_name metadata event); each track within a
// run becomes a named thread. Spans emit as "X" complete events with their
// class in cat and args; instants emit as "i" events. Output is fully
// deterministic: runs sort by label and events by recording order within a
// run.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		bw.WriteString(s)
	}
	for pidx, rec := range c.sortedRuns() {
		pid := pidx + 1
		emit(`{"name":"process_name","ph":"M","pid":` + strconv.Itoa(pid) +
			`,"tid":0,"args":{"name":` + quoteJSON(rec.Label) + `}}`)
		tids := map[string]int{}
		for _, sp := range rec.spans {
			track := sp.Track
			if track == "" {
				track = "run"
			}
			tid, ok := tids[track]
			if !ok {
				tid = len(tids) + 1
				tids[track] = tid
				emit(`{"name":"thread_name","ph":"M","pid":` + strconv.Itoa(pid) +
					`,"tid":` + strconv.Itoa(tid) + `,"args":{"name":` + quoteJSON(track) + `}}`)
			}
			var b strings.Builder
			b.WriteString(`{"name":`)
			b.WriteString(quoteJSON(sp.Kind.String()))
			if sp.Class != "" {
				b.WriteString(`,"cat":`)
				b.WriteString(quoteJSON(sp.Class))
			}
			if sp.Inst {
				b.WriteString(`,"ph":"i","s":"t"`)
			} else {
				b.WriteString(`,"ph":"X"`)
			}
			b.WriteString(`,"pid":`)
			b.WriteString(strconv.Itoa(pid))
			b.WriteString(`,"tid":`)
			b.WriteString(strconv.Itoa(tid))
			b.WriteString(`,"ts":`)
			b.WriteString(formatTS(sp.Start))
			if !sp.Inst {
				end := sp.End
				if end < sp.Start {
					end = sp.Start
				}
				b.WriteString(`,"dur":`)
				b.WriteString(formatTS(end - sp.Start))
			}
			if sp.Class != "" || sp.Note != "" {
				b.WriteString(`,"args":{`)
				comma := false
				if sp.Class != "" {
					b.WriteString(`"class":`)
					b.WriteString(quoteJSON(sp.Class))
					comma = true
				}
				if sp.Note != "" {
					if comma {
						b.WriteString(`,`)
					}
					b.WriteString(`"note":`)
					b.WriteString(quoteJSON(sp.Note))
				}
				b.WriteString(`}`)
			}
			b.WriteString(`}`)
			emit(b.String())
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// formatTS renders a simulated-seconds value as trace microseconds with
// the shortest exact decimal representation (deterministic across runs).
func formatTS(secs float64) string {
	return strconv.FormatFloat(secs*1e6, 'f', -1, 64)
}

// quoteJSON renders s as a JSON string literal. Labels here are kind
// names, experiment names and market ids, so the escape set is small but
// complete for safety.
func quoteJSON(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '"' || ch == '\\':
			b.WriteByte('\\')
			b.WriteByte(ch)
		case ch < 0x20:
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[ch>>4])
			b.WriteByte(hex[ch&0xf])
		default:
			b.WriteByte(ch)
		}
	}
	b.WriteByte('"')
	return b.String()
}
