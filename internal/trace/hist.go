package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"spothost/internal/stats"
)

// Histogram shapes. Every HistSet uses the same shapes so sets merge
// without rebinning; the saturating overflow bin doubles as the Prometheus
// +Inf tail (see stats.Histogram.Cumulative).
func newDowntimeHist() *stats.Histogram   { return stats.NewHistogram(0, 600, 24) } // 25 s bins
func newMigrationHist() *stats.Histogram  { return stats.NewHistogram(0, 600, 24) } // 25 s bins
func newSpotPriceHist() *stats.Histogram  { return stats.NewHistogram(0, 2, 40) }   // $0.05 bins
func newRestoreHist() *stats.Histogram    { return stats.NewHistogram(0, 300, 30) } // 10 s bins
func newCheckpointHist() *stats.Histogram { return stats.NewHistogram(0, 60, 24) }  // 2.5 s bins

// HistSet bundles one run's (or one merged collection's) histograms:
// downtime and migration latency keyed by migration class, plus spot price
// paid, restore and checkpoint durations. The zero value is not usable;
// construct with NewHistSet.
type HistSet struct {
	Downtime   map[string]*stats.Histogram
	Migration  map[string]*stats.Histogram
	SpotPrice  *stats.Histogram
	Restore    *stats.Histogram
	Checkpoint *stats.Histogram
}

// NewHistSet returns an empty histogram bundle.
func NewHistSet() *HistSet {
	return &HistSet{
		Downtime:   map[string]*stats.Histogram{},
		Migration:  map[string]*stats.Histogram{},
		SpotPrice:  newSpotPriceHist(),
		Restore:    newRestoreHist(),
		Checkpoint: newCheckpointHist(),
	}
}

// downtime returns the downtime histogram for class, creating it on first
// use.
func (h *HistSet) downtime(class string) *stats.Histogram {
	g, ok := h.Downtime[class]
	if !ok {
		g = newDowntimeHist()
		h.Downtime[class] = g
	}
	return g
}

// migration returns the migration-latency histogram for class, creating it
// on first use.
func (h *HistSet) migration(class string) *stats.Histogram {
	g, ok := h.Migration[class]
	if !ok {
		g = newMigrationHist()
		h.Migration[class] = g
	}
	return g
}

// Merge adds another set's samples into h. Safe against a nil o.
func (h *HistSet) Merge(o *HistSet) {
	if o == nil {
		return
	}
	for class, g := range o.Downtime {
		h.downtime(class).Merge(g)
	}
	for class, g := range o.Migration {
		h.migration(class).Merge(g)
	}
	h.SpotPrice.Merge(o.SpotPrice)
	h.Restore.Merge(o.Restore)
	h.Checkpoint.Merge(o.Checkpoint)
}

// Clone returns a deep copy, so snapshots can outlive the live set.
func (h *HistSet) Clone() *HistSet {
	c := NewHistSet()
	c.Merge(h)
	return c
}

// WritePrometheus renders the set in the Prometheus text exposition
// format. Metric names are prefixed with prefix + "_"; the class-keyed
// histograms carry a {class="..."} label, emitted in sorted class order so
// output is deterministic.
func (h *HistSet) WritePrometheus(w io.Writer, prefix string) {
	writeLabeled(w, prefix+"_downtime_seconds",
		"Service downtime per event by migration class (simulated seconds).", h.Downtime)
	writeLabeled(w, prefix+"_migration_seconds",
		"Migration start-to-done latency by class (simulated seconds).", h.Migration)
	writePlain(w, prefix+"_spot_price_dollars",
		"Spot price paid at billing-hour boundaries (dollars/hour).", h.SpotPrice)
	writePlain(w, prefix+"_restore_seconds",
		"Checkpoint restore duration (simulated seconds).", h.Restore)
	writePlain(w, prefix+"_checkpoint_seconds",
		"Background checkpoint write duration (simulated seconds).", h.Checkpoint)
}

// formatLE renders a bucket's upper bound the way Prometheus expects.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeHistLines emits one histogram's _bucket/_sum/_count series with an
// optional label pair already rendered into labels (e.g. `class="forced"`).
func writeHistLines(w io.Writer, name, labels string, g *stats.Histogram) {
	sep := ""
	if labels != "" {
		sep = "{" + labels + "}"
	}
	for i := range g.Bins {
		le := formatLE(g.BucketUpperBound(i))
		if labels != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, g.Cumulative(i))
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, g.Cumulative(i))
		}
	}
	if labels != "" {
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, g.Count())
	} else {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, g.Count())
	}
	fmt.Fprintf(w, "%s_sum%s %v\n", name, sep, g.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep, g.Count())
}

func writePlain(w io.Writer, name, help string, g *stats.Histogram) {
	if g.Count() == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistLines(w, name, "", g)
}

func writeLabeled(w io.Writer, name, help string, m map[string]*stats.Histogram) {
	if len(m) == 0 {
		return
	}
	classes := make([]string, 0, len(m))
	for class := range m {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, class := range classes {
		writeHistLines(w, name, fmt.Sprintf("class=%q", class), m[class])
	}
}
