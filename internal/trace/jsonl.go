package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteJSONL writes the collected runs as JSON Lines: one object per span
// or instant, in the same deterministic order as WriteChrome (runs by
// label, events by recording order). Times are simulation seconds.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, rec := range c.sortedRuns() {
		for _, sp := range rec.spans {
			bw.WriteString(`{"run":`)
			bw.WriteString(quoteJSON(rec.Label))
			if sp.Track != "" {
				bw.WriteString(`,"track":`)
				bw.WriteString(quoteJSON(sp.Track))
			}
			bw.WriteString(`,"kind":`)
			bw.WriteString(quoteJSON(sp.Kind.String()))
			if sp.Class != "" {
				bw.WriteString(`,"class":`)
				bw.WriteString(quoteJSON(sp.Class))
			}
			bw.WriteString(`,"start":`)
			bw.WriteString(strconv.FormatFloat(sp.Start, 'f', -1, 64))
			if sp.Inst {
				bw.WriteString(`,"instant":true`)
			} else {
				end := sp.End
				if end < sp.Start {
					end = sp.Start
				}
				bw.WriteString(`,"end":`)
				bw.WriteString(strconv.FormatFloat(end, 'f', -1, 64))
			}
			if sp.Note != "" {
				bw.WriteString(`,"note":`)
				bw.WriteString(quoteJSON(sp.Note))
			}
			bw.WriteString("}\n")
		}
	}
	return bw.Flush()
}
