package sweep

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

// Spec describes a full sweep: the grid, the seeds, and the execution
// switches.
type Spec struct {
	Axes      []Axis
	Seeds     []int64
	Home      market.ID
	FleetSize int          // multi-market fleet size (0 means default 4)
	Horizon   sim.Duration // 0 means the universe's full extent
	Market    market.Config
	Cloud     cloud.Params // zero BidCap means cloud.DefaultParams(0)
	Workers   int          // simulation parallelism; 0 means one per CPU

	// WarmStart shares one pilot simulation across each certified-equal
	// class of warm-axis siblings (see certify.go). Reports of shared
	// cells are byte-identical to what a cold run would produce.
	WarmStart bool

	// Fork resumes warm-axis siblings from the family pilot's last
	// quiescent checkpoint at or before their first divergence point, so
	// a sibling simulates only the tail of the horizon instead of all of
	// it. Forked reports are byte-identical to cold runs. Fork is what
	// makes a tau axis — which has no whole-horizon oracle and therefore
	// never shares — nearly as cheap as a warm one, and it composes with
	// WarmStart: classes that never diverge still share outright.
	Fork bool

	// CheckpointEvery is the capture cadence of fork pilots in simulated
	// time. 0 means a default of six simulated hours.
	CheckpointEvery sim.Duration

	// Prune cuts configurations that are strictly worse on cost and no
	// better on availability than another configuration on every seed
	// evaluated so far. Pruned configs are reported with the point that
	// dominated them; their remaining seeds are skipped.
	Prune bool

	// Universe overrides per-seed universe generation (tests, replayed
	// traces). Nil means market.SharedCache().Generate with Spec.Market
	// and the cell's seed.
	Universe func(seed int64) (*market.Set, error)

	// OnCell, when set, observes every resolved cell in deterministic
	// order (seed waves in seed order, points ascending within a wave).
	// Called from the runner goroutine only.
	OnCell func(Cell)

	// OnProgress, when set, receives throttled throughput updates. It may
	// be called from worker goroutines; calls are serialized.
	OnProgress func(Progress)
}

// Cell is one resolved (point, seed) simulation cell.
type Cell struct {
	Point   int // index into Plan.Points
	SeedIdx int // index into Spec.Seeds
	Seed    int64
	Values  []float64 // the point's knob values, in axis order
	Report  metrics.Report
	Shared  bool     // true when the report was reused from a certified pilot
	Forked  bool     // true when the cell resumed a pilot checkpoint
	ForkAt  sim.Time // checkpoint time the fork resumed from (when Forked)
	Pilot   int      // point whose simulation fed the cell (== Point when cold)
}

// Progress is a point-in-time view of a running sweep.
type Progress struct {
	Done, Total                            int
	Simulated, Shared, Forked, PrunedCells int
	Elapsed                                time.Duration
}

// CellsPerSec returns resolved cells per wall-clock second so far.
func (p Progress) CellsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Done) / p.Elapsed.Seconds()
}

// Result is the aggregate outcome of one grid point.
type Result struct {
	Point       int
	Values      []float64
	SeedsRun    int            // seeds resolved before (possible) pruning
	Mean        metrics.Report // mean over SeedsRun, as metrics.Average
	SharedSeeds int            // seeds resolved by reusing a pilot's report
	ForkedSeeds int            // seeds resolved by resuming a pilot checkpoint
	MeanForkAt  sim.Time       // mean resume time over forked seeds (0 if none)
	Pilot       int            // pilot point when uniform across seeds; -1 if mixed
	Pruned      bool
	DominatedBy int // point index that dominated this one; -1 if not pruned
}

// Summary is the outcome of a sweep. Every grid point appears in Results
// exactly once — pruned points carry their dominator, so no cut is silent.
type Summary struct {
	Plan          *Plan
	Seeds         []int64
	Cells         int // points x seeds
	Simulated     int // cells that ran a cold simulation
	Shared        int // cells resolved by a certified pilot's report
	Forked        int // cells resolved by resuming a pilot checkpoint
	PrunedCells   int // cells skipped because their config was pruned
	PrunedConfigs int
	Elapsed       time.Duration
	Results       []Result
}

// CellsPerSec returns resolved cells (simulated + shared + forked +
// pruned) per wall-clock second.
func (s *Summary) CellsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Cells) / s.Elapsed.Seconds()
}

// seedStat is the compact per-(point, seed) record pruning needs; full
// reports are never buffered per cell.
type seedStat struct {
	cost float64 // normalized cost
	unav float64 // unavailability
}

// pointState is the per-grid-point running state: a streaming mean
// accumulator plus the compact per-seed stats and reuse tallies.
type pointState struct {
	accum       reportAccum
	stats       []seedStat
	sharedSeeds int
	forkedSeeds int
	forkAtSum   float64
	pilot       int
	seenPilot   bool
	pruned      bool
	dominatedBy int
}

// maxDominatorChecks bounds the per-point pruning work: only this many
// frontier candidates get the full per-seed verification. Missing a
// dominator just runs a config that could have been cut; it never cuts a
// config that should have run.
const maxDominatorChecks = 4

// waveJob is one phase-1 simulation of a seed wave: a cold run, with
// checkpoint capture when the point pilots forks.
type waveJob struct {
	pt      int
	capture bool
}

// waveRes carries a phase-1 result; log is non-nil only for capture jobs.
type waveRes struct {
	rep metrics.Report
	log *sched.ForkLog
}

// forkJob is one phase-2 resolution: a class pilot that resumes its family
// pilot's checkpoint instead of running the whole horizon.
type forkJob struct {
	pt         int      // point to resolve
	pilot      int      // family pilot whose checkpoints it resumes
	div        sim.Time // static divergence bound vs the family pilot
	dynamic    bool     // tau: divergence read from the pilot's ForkLog
	tau0, tauJ float64  // checkpoint bounds of pilot and sibling (dynamic)
}

// forkRes is how a fork job was resolved: shared outright, forked from a
// checkpoint, or (fallback) simulated cold.
type forkRes struct {
	rep    metrics.Report
	shared bool
	forked bool
	forkAt sim.Time
}

// resolved is a wave cell's final report plus how it was obtained.
type resolved struct {
	rep    metrics.Report
	pilot  int
	shared bool
	forked bool
	forkAt sim.Time
}

// Run executes the sweep described by spec, streaming cells through the
// bounded aggregator, and returns the summary. Cancelling ctx aborts every
// in-flight simulation promptly.
func Run(ctx context.Context, spec *Spec) (*Summary, error) {
	if len(spec.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: no seeds")
	}
	plan, err := NewPlan(spec.Axes, spec.Home, spec.FleetSize)
	if err != nil {
		return nil, err
	}
	cloudP := spec.Cloud
	if cloudP.BidCap == 0 {
		cloudP = cloud.DefaultParams(0)
	}
	universe := spec.Universe
	if universe == nil {
		cache := market.SharedCache()
		universe = func(seed int64) (*market.Set, error) {
			mc := spec.Market
			mc.Seed = seed
			return cache.Generate(mc)
		}
	}
	ckEvery := spec.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 6 * sim.Hour
	}

	nP := len(plan.Points)
	totalCells := nP * len(spec.Seeds)
	states := make([]pointState, nP)
	for i := range states {
		states[i].dominatedBy = -1
		states[i].stats = make([]seedStat, 0, len(spec.Seeds))
	}

	start := time.Now()
	var done, simulated, sharedCt, forkedCt, prunedCells atomic.Int64
	var progMu sync.Mutex
	var lastProg time.Time
	emit := func(force bool) {
		if spec.OnProgress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		now := time.Now()
		if !force && now.Sub(lastProg) < 200*time.Millisecond {
			return
		}
		lastProg = now
		spec.OnProgress(Progress{
			Done:        int(done.Load()),
			Total:       totalCells,
			Simulated:   int(simulated.Load()),
			Shared:      int(sharedCt.Load()),
			Forked:      int(forkedCt.Load()),
			PrunedCells: int(prunedCells.Load()),
			Elapsed:     now.Sub(start),
		})
	}

	warmKnob := ""
	if plan.WarmAxis >= 0 {
		warmKnob = plan.Axes[plan.WarmAxis].Knob
	}
	pilotOf := make([]int, nP)      // point -> class pilot this wave, or -1
	jobIdx := make([]int, nP)       // point -> index in the phase-1 job list
	cellRes := make([]resolved, nP) // per-point resolution this wave
	for seedIdx, seed := range spec.Seeds {
		set, err := universe(seed)
		if err != nil {
			return nil, err
		}
		horizon := spec.Horizon
		if horizon <= 0 || horizon > set.Horizon() {
			horizon = set.Horizon()
		}

		// Plan the wave. Phase 1 runs cold simulations (family pilots of
		// forking families capture checkpoints); phase 2 resumes every
		// remaining class pilot from its family pilot's checkpoints.
		for i := range pilotOf {
			pilotOf[i] = -1
		}
		var jobs []waveJob
		var forkJobs []forkJob
		var alive []int
		for _, fam := range plan.Families {
			alive = alive[:0]
			for _, m := range fam.Members {
				if !states[m].pruned {
					alive = append(alive, m)
				}
			}
			if len(alive) == 0 {
				continue
			}
			if len(alive) == 1 || plan.WarmAxis < 0 {
				for _, m := range alive {
					jobs = append(jobs, waveJob{pt: m})
				}
				continue
			}
			switch {
			case warmable(warmKnob) && (spec.WarmStart || spec.Fork):
				times, _ := adjacentDivergeTimes(plan, alive, set, cloudP.BidCap, horizon)
				var classes [][]int
				if spec.WarmStart {
					classes = classesFromTimes(alive, times, horizon)
				} else {
					classes = singletons(alive)
				}
				if !spec.Fork || len(classes) == 1 {
					for _, cls := range classes {
						jobs = append(jobs, waveJob{pt: cls[0]})
						for _, m := range cls[1:] {
							pilotOf[m] = cls[0]
						}
					}
					continue
				}
				// Trajectories of the family pilot and member j are
				// provably identical until the prefix-minimum of the
				// adjacent divergence times up to j, so each later class
				// pilot resumes the last checkpoint at or before it.
				famPilot := alive[0]
				jobs = append(jobs, waveJob{pt: famPilot, capture: true})
				prefix := make([]sim.Time, len(alive))
				prefix[0] = never
				for j := 1; j < len(alive); j++ {
					prefix[j] = prefix[j-1]
					if times[j-1] < prefix[j] {
						prefix[j] = times[j-1]
					}
				}
				off := 0
				for ci, cls := range classes {
					if ci > 0 {
						forkJobs = append(forkJobs, forkJob{pt: cls[0], pilot: famPilot, div: prefix[off]})
					}
					for _, m := range cls[1:] {
						pilotOf[m] = cls[0]
					}
					off += len(cls)
				}
			case warmKnob == KnobTau && spec.Fork:
				// No static oracle: divergence is found in phase 2 from
				// the pilot's forced-warning log, per sibling.
				famPilot := alive[0]
				jobs = append(jobs, waveJob{pt: famPilot, capture: true})
				tau0 := plan.Points[famPilot].Values[plan.WarmAxis]
				for _, m := range alive[1:] {
					tauJ := plan.Points[m].Values[plan.WarmAxis]
					if tauJ == tau0 {
						pilotOf[m] = famPilot
						continue
					}
					forkJobs = append(forkJobs, forkJob{
						pt: m, pilot: famPilot, dynamic: true, tau0: tau0, tauJ: tauJ,
					})
				}
			default:
				for _, m := range alive {
					jobs = append(jobs, waveJob{pt: m})
				}
			}
		}

		reports, err := runpool.MapCtx(ctx, spec.Workers, jobs, func(ctx context.Context, _ int, j waveJob) (waveRes, error) {
			cp := cloudP
			cp.Seed = seed
			cfg := plan.Points[j.pt].Config
			if j.capture {
				rep, lg, err := sched.RunWithCheckpointsCtx(ctx, set, cp, cfg, horizon, ckEvery)
				if err == nil {
					done.Add(1)
					simulated.Add(1)
					emit(false)
				}
				return waveRes{rep: rep, log: lg}, err
			}
			rep, err := sched.RunCtx(ctx, set, cp, cfg, horizon)
			if err == nil {
				done.Add(1)
				simulated.Add(1)
				emit(false)
			}
			return waveRes{rep: rep}, err
		})
		if err != nil {
			return nil, err
		}
		for i, j := range jobs {
			jobIdx[j.pt] = i
			cellRes[j.pt] = resolved{rep: reports[i].rep, pilot: j.pt}
		}

		fres, err := runpool.MapCtx(ctx, spec.Workers, forkJobs, func(ctx context.Context, _ int, j forkJob) (forkRes, error) {
			pr := reports[jobIdx[j.pilot]]
			div := j.div
			if j.dynamic {
				// Trajectories under two checkpoint bounds separate at the
				// first forced warning whose grace window loses memory
				// under one bound but not the other. When no warning flips
				// and every warning lost memory under both bounds (so the
				// metric-only suspend instant deadline-tau never fired)
				// and the checkpoint daemon never ran, the sibling's
				// entire report is byte-identical: share it outright.
				div = never
				share := !pr.log.DaemonRan
				for _, w := range pr.log.ForcedWarnings {
					lost0, lostJ := w.Grace < j.tau0, w.Grace < j.tauJ
					switch {
					case lost0 != lostJ:
						share = false
						if w.At < div {
							div = w.At
						}
					case !lost0:
						share = false
					}
				}
				if share {
					done.Add(1)
					sharedCt.Add(1)
					emit(false)
					return forkRes{rep: pr.rep, shared: true}, nil
				}
			}
			cp := cloudP
			cp.Seed = seed
			cfg := plan.Points[j.pt].Config
			bound := div
			if bound > horizon {
				bound = horizon
			}
			if ck := pr.log.LastCheckpointAtOrBefore(bound); ck != nil {
				rep, err := sched.RunForkedCtx(ctx, set, cp, cfg, horizon, ck)
				if err == nil {
					done.Add(1)
					forkedCt.Add(1)
					emit(false)
				}
				return forkRes{rep: rep, forked: true, forkAt: ck.At()}, err
			}
			// No usable checkpoint (divergence before the first capture,
			// or the pilot never reached quiescence): run cold.
			rep, err := sched.RunCtx(ctx, set, cp, cfg, horizon)
			if err == nil {
				done.Add(1)
				simulated.Add(1)
				emit(false)
			}
			return forkRes{rep: rep}, err
		})
		if err != nil {
			return nil, err
		}
		for i, j := range forkJobs {
			fr := fres[i]
			r := resolved{rep: fr.rep, pilot: j.pt, shared: fr.shared, forked: fr.forked, forkAt: fr.forkAt}
			if fr.shared || fr.forked {
				r.pilot = j.pilot
			}
			cellRes[j.pt] = r
		}

		// Distribute resolutions to every alive point, in point order.
		for p := 0; p < nP; p++ {
			st := &states[p]
			if st.pruned {
				continue
			}
			r := cellRes[p]
			if pilotOf[p] >= 0 {
				// Certified identical to its class pilot for the whole
				// horizon: reuse the pilot's resolved report.
				r = resolved{rep: cellRes[pilotOf[p]].rep, pilot: pilotOf[p], shared: true}
				sharedCt.Add(1)
				done.Add(1)
			}
			st.accum.add(r.rep)
			st.stats = append(st.stats, seedStat{cost: r.rep.NormalizedCost(), unav: r.rep.Unavailability()})
			if r.shared {
				st.sharedSeeds++
			}
			if r.forked {
				st.forkedSeeds++
				st.forkAtSum += r.forkAt
			}
			if !st.seenPilot {
				st.seenPilot = true
				st.pilot = r.pilot
			} else if st.pilot != r.pilot {
				st.pilot = -1
			}
			if spec.OnCell != nil {
				spec.OnCell(Cell{
					Point: p, SeedIdx: seedIdx, Seed: seed,
					Values: plan.Points[p].Values,
					Report: r.rep, Shared: r.shared, Pilot: r.pilot,
					Forked: r.forked, ForkAt: r.forkAt,
				})
			}
		}

		if spec.Prune && seedIdx+1 < len(spec.Seeds) {
			cut := pruneDominated(states, seedIdx+1)
			// Each cut config skips every remaining seed; those cells are
			// resolved by domination, not silently dropped.
			skipped := int64(len(cut) * (len(spec.Seeds) - seedIdx - 1))
			prunedCells.Add(skipped)
			done.Add(skipped)
		}
		emit(false)
	}
	emit(true)

	sum := &Summary{
		Plan:        plan,
		Seeds:       spec.Seeds,
		Cells:       totalCells,
		Simulated:   int(simulated.Load()),
		Shared:      int(sharedCt.Load()),
		Forked:      int(forkedCt.Load()),
		PrunedCells: int(prunedCells.Load()),
		Elapsed:     time.Since(start),
		Results:     make([]Result, nP),
	}
	for p := range states {
		st := &states[p]
		res := Result{
			Point:       p,
			Values:      plan.Points[p].Values,
			SeedsRun:    len(st.stats),
			Mean:        st.accum.mean(),
			SharedSeeds: st.sharedSeeds,
			ForkedSeeds: st.forkedSeeds,
			Pilot:       st.pilot,
			Pruned:      st.pruned,
			DominatedBy: st.dominatedBy,
		}
		if st.forkedSeeds > 0 {
			res.MeanForkAt = st.forkAtSum / float64(st.forkedSeeds)
		}
		sum.Results[p] = res
		if st.pruned {
			sum.PrunedConfigs++
		}
	}
	return sum, nil
}

// pruneDominated marks every alive point that is strictly worse on cost
// and no better on availability than some other point on every seed run so
// far, and returns the newly pruned point indices.
//
// Candidate dominators are drawn from the (mean cost, mean unavailability)
// staircase frontier, so the pass is O(P log P) rather than O(P^2); each
// point checks at most maxDominatorChecks candidates with the full
// per-seed test. Decisions are computed from the wave-start state for
// every point before any mark is applied, so the outcome is deterministic
// and independent of iteration order.
func pruneDominated(states []pointState, seedsRun int) []int {
	type entry struct {
		cost, unav float64
		p          int
	}
	var alive []entry
	for p := range states {
		st := &states[p]
		if st.pruned || len(st.stats) < seedsRun {
			continue
		}
		var cost, unav float64
		for _, s := range st.stats[:seedsRun] {
			cost += s.cost
			unav += s.unav
		}
		n := float64(seedsRun)
		alive = append(alive, entry{cost: cost / n, unav: unav / n, p: p})
	}
	if len(alive) < 2 {
		return nil
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].cost != alive[j].cost {
			return alive[i].cost < alive[j].cost
		}
		if alive[i].unav != alive[j].unav {
			return alive[i].unav < alive[j].unav
		}
		return alive[i].p < alive[j].p
	})
	// Staircase frontier: cheapest-first, keep strict improvements in
	// mean unavailability. Along the frontier cost increases and
	// unavailability strictly decreases.
	var frontier []entry
	for _, e := range alive {
		if len(frontier) == 0 || e.unav < frontier[len(frontier)-1].unav {
			frontier = append(frontier, e)
		}
	}

	dominates := func(d, c int) bool {
		ds, cs := states[d].stats[:seedsRun], states[c].stats[:seedsRun]
		for s := range ds {
			if !(ds[s].cost < cs[s].cost && ds[s].unav <= cs[s].unav) {
				return false
			}
		}
		return true
	}

	var cut []int
	for _, c := range alive {
		// Frontier entries strictly cheaper on mean cost...
		hi := sort.Search(len(frontier), func(i int) bool { return frontier[i].cost >= c.cost })
		checks := 0
		// ...and no worse on mean unavailability form a suffix of [0, hi).
		for j := hi - 1; j >= 0 && checks < maxDominatorChecks; j-- {
			d := frontier[j]
			if d.unav > c.unav {
				break
			}
			if d.p == c.p {
				continue
			}
			checks++
			if dominates(d.p, c.p) {
				cut = append(cut, c.p)
				states[c.p].dominatedBy = d.p
				break
			}
		}
	}
	for _, p := range cut {
		states[p].pruned = true
	}
	return cut
}
