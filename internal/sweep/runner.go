package sweep

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

// Spec describes a full sweep: the grid, the seeds, and the execution
// switches.
type Spec struct {
	Axes      []Axis
	Seeds     []int64
	Home      market.ID
	FleetSize int          // multi-market fleet size (0 means default 4)
	Horizon   sim.Duration // 0 means the universe's full extent
	Market    market.Config
	Cloud     cloud.Params // zero BidCap means cloud.DefaultParams(0)
	Workers   int          // simulation parallelism; 0 means one per CPU

	// WarmStart shares one pilot simulation across each certified-equal
	// class of warm-axis siblings (see certify.go). Reports of shared
	// cells are byte-identical to what a cold run would produce.
	WarmStart bool

	// Prune cuts configurations that are strictly worse on cost and no
	// better on availability than another configuration on every seed
	// evaluated so far. Pruned configs are reported with the point that
	// dominated them; their remaining seeds are skipped.
	Prune bool

	// Universe overrides per-seed universe generation (tests, replayed
	// traces). Nil means market.SharedCache().Generate with Spec.Market
	// and the cell's seed.
	Universe func(seed int64) (*market.Set, error)

	// OnCell, when set, observes every resolved cell in deterministic
	// order (seed waves in seed order, points ascending within a wave).
	// Called from the runner goroutine only.
	OnCell func(Cell)

	// OnProgress, when set, receives throttled throughput updates. It may
	// be called from worker goroutines; calls are serialized.
	OnProgress func(Progress)
}

// Cell is one resolved (point, seed) simulation cell.
type Cell struct {
	Point   int // index into Plan.Points
	SeedIdx int // index into Spec.Seeds
	Seed    int64
	Values  []float64 // the point's knob values, in axis order
	Report  metrics.Report
	Shared  bool // true when the report was reused from a certified pilot
	Pilot   int  // point whose simulation produced the report (== Point when cold)
}

// Progress is a point-in-time view of a running sweep.
type Progress struct {
	Done, Total                    int
	Simulated, Shared, PrunedCells int
	Elapsed                        time.Duration
}

// CellsPerSec returns resolved cells per wall-clock second so far.
func (p Progress) CellsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Done) / p.Elapsed.Seconds()
}

// Result is the aggregate outcome of one grid point.
type Result struct {
	Point       int
	Values      []float64
	SeedsRun    int            // seeds resolved before (possible) pruning
	Mean        metrics.Report // mean over SeedsRun, as metrics.Average
	Pruned      bool
	DominatedBy int // point index that dominated this one; -1 if not pruned
}

// Summary is the outcome of a sweep. Every grid point appears in Results
// exactly once — pruned points carry their dominator, so no cut is silent.
type Summary struct {
	Plan          *Plan
	Seeds         []int64
	Cells         int // points x seeds
	Simulated     int // cells that ran a cold simulation
	Shared        int // cells resolved by a certified pilot's report
	PrunedCells   int // cells skipped because their config was pruned
	PrunedConfigs int
	Elapsed       time.Duration
	Results       []Result
}

// CellsPerSec returns resolved cells (simulated + shared + pruned) per
// wall-clock second.
func (s *Summary) CellsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Cells) / s.Elapsed.Seconds()
}

// seedStat is the compact per-(point, seed) record pruning needs; full
// reports are never buffered per cell.
type seedStat struct {
	cost float64 // normalized cost
	unav float64 // unavailability
}

// pointState is the per-grid-point running state: a streaming mean
// accumulator plus the compact per-seed stats.
type pointState struct {
	accum       reportAccum
	stats       []seedStat
	pruned      bool
	dominatedBy int
}

// maxDominatorChecks bounds the per-point pruning work: only this many
// frontier candidates get the full per-seed verification. Missing a
// dominator just runs a config that could have been cut; it never cuts a
// config that should have run.
const maxDominatorChecks = 4

// Run executes the sweep described by spec, streaming cells through the
// bounded aggregator, and returns the summary. Cancelling ctx aborts every
// in-flight simulation promptly.
func Run(ctx context.Context, spec *Spec) (*Summary, error) {
	if len(spec.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: no seeds")
	}
	plan, err := NewPlan(spec.Axes, spec.Home, spec.FleetSize)
	if err != nil {
		return nil, err
	}
	cloudP := spec.Cloud
	if cloudP.BidCap == 0 {
		cloudP = cloud.DefaultParams(0)
	}
	universe := spec.Universe
	if universe == nil {
		cache := market.SharedCache()
		universe = func(seed int64) (*market.Set, error) {
			mc := spec.Market
			mc.Seed = seed
			return cache.Generate(mc)
		}
	}

	nP := len(plan.Points)
	totalCells := nP * len(spec.Seeds)
	states := make([]pointState, nP)
	for i := range states {
		states[i].dominatedBy = -1
		states[i].stats = make([]seedStat, 0, len(spec.Seeds))
	}

	start := time.Now()
	var done, simulated, sharedCt, prunedCells atomic.Int64
	var progMu sync.Mutex
	var lastProg time.Time
	emit := func(force bool) {
		if spec.OnProgress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		now := time.Now()
		if !force && now.Sub(lastProg) < 200*time.Millisecond {
			return
		}
		lastProg = now
		spec.OnProgress(Progress{
			Done:        int(done.Load()),
			Total:       totalCells,
			Simulated:   int(simulated.Load()),
			Shared:      int(sharedCt.Load()),
			PrunedCells: int(prunedCells.Load()),
			Elapsed:     now.Sub(start),
		})
	}

	pilotOf := make([]int, nP) // point -> pilot point this wave, or -1
	jobIdx := make([]int, nP)  // point -> index in this wave's job list
	for seedIdx, seed := range spec.Seeds {
		set, err := universe(seed)
		if err != nil {
			return nil, err
		}
		horizon := spec.Horizon
		if horizon <= 0 || horizon > set.Horizon() {
			horizon = set.Horizon()
		}

		// Plan the wave: one job per alive point, collapsed to one job per
		// certified equivalence class under warm-start.
		for i := range pilotOf {
			pilotOf[i] = -1
		}
		var jobs []int
		var alive []int
		for _, fam := range plan.Families {
			alive = alive[:0]
			for _, m := range fam.Members {
				if !states[m].pruned {
					alive = append(alive, m)
				}
			}
			if len(alive) == 0 {
				continue
			}
			if spec.WarmStart && plan.WarmAxis >= 0 && len(alive) > 1 {
				for _, cls := range shareClasses(plan, alive, set, cloudP.BidCap, horizon) {
					jobs = append(jobs, cls[0])
					for _, m := range cls[1:] {
						pilotOf[m] = cls[0]
					}
				}
			} else {
				jobs = append(jobs, alive...)
			}
		}
		for i, pt := range jobs {
			jobIdx[pt] = i
		}

		reports, err := runpool.MapCtx(ctx, spec.Workers, jobs, func(ctx context.Context, _, pt int) (metrics.Report, error) {
			cp := cloudP
			cp.Seed = seed
			rep, err := sched.RunCtx(ctx, set, cp, plan.Points[pt].Config, horizon)
			if err == nil {
				done.Add(1)
				simulated.Add(1)
				emit(false)
			}
			return rep, err
		})
		if err != nil {
			return nil, err
		}

		// Distribute reports to every alive point, in point order.
		for p := 0; p < nP; p++ {
			st := &states[p]
			if st.pruned {
				continue
			}
			// jobIdx entries are only valid for points that got a job this
			// wave; a shared point's own entry is stale.
			var rep metrics.Report
			shared := false
			pilot := p
			if pilotOf[p] >= 0 {
				pilot = pilotOf[p]
				rep = reports[jobIdx[pilot]]
				shared = true
				sharedCt.Add(1)
				done.Add(1)
			} else {
				rep = reports[jobIdx[p]]
			}
			st.accum.add(rep)
			st.stats = append(st.stats, seedStat{cost: rep.NormalizedCost(), unav: rep.Unavailability()})
			if spec.OnCell != nil {
				spec.OnCell(Cell{
					Point: p, SeedIdx: seedIdx, Seed: seed,
					Values: plan.Points[p].Values,
					Report: rep, Shared: shared, Pilot: pilot,
				})
			}
		}

		if spec.Prune && seedIdx+1 < len(spec.Seeds) {
			cut := pruneDominated(states, seedIdx+1)
			// Each cut config skips every remaining seed; those cells are
			// resolved by domination, not silently dropped.
			skipped := int64(len(cut) * (len(spec.Seeds) - seedIdx - 1))
			prunedCells.Add(skipped)
			done.Add(skipped)
		}
		emit(false)
	}
	emit(true)

	sum := &Summary{
		Plan:        plan,
		Seeds:       spec.Seeds,
		Cells:       totalCells,
		Simulated:   int(simulated.Load()),
		Shared:      int(sharedCt.Load()),
		PrunedCells: int(prunedCells.Load()),
		Elapsed:     time.Since(start),
		Results:     make([]Result, nP),
	}
	for p := range states {
		st := &states[p]
		sum.Results[p] = Result{
			Point:       p,
			Values:      plan.Points[p].Values,
			SeedsRun:    len(st.stats),
			Mean:        st.accum.mean(),
			Pruned:      st.pruned,
			DominatedBy: st.dominatedBy,
		}
		if st.pruned {
			sum.PrunedConfigs++
		}
	}
	return sum, nil
}

// pruneDominated marks every alive point that is strictly worse on cost
// and no better on availability than some other point on every seed run so
// far, and returns the newly pruned point indices.
//
// Candidate dominators are drawn from the (mean cost, mean unavailability)
// staircase frontier, so the pass is O(P log P) rather than O(P^2); each
// point checks at most maxDominatorChecks candidates with the full
// per-seed test. Decisions are computed from the wave-start state for
// every point before any mark is applied, so the outcome is deterministic
// and independent of iteration order.
func pruneDominated(states []pointState, seedsRun int) []int {
	type entry struct {
		cost, unav float64
		p          int
	}
	var alive []entry
	for p := range states {
		st := &states[p]
		if st.pruned || len(st.stats) < seedsRun {
			continue
		}
		var cost, unav float64
		for _, s := range st.stats[:seedsRun] {
			cost += s.cost
			unav += s.unav
		}
		n := float64(seedsRun)
		alive = append(alive, entry{cost: cost / n, unav: unav / n, p: p})
	}
	if len(alive) < 2 {
		return nil
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].cost != alive[j].cost {
			return alive[i].cost < alive[j].cost
		}
		if alive[i].unav != alive[j].unav {
			return alive[i].unav < alive[j].unav
		}
		return alive[i].p < alive[j].p
	})
	// Staircase frontier: cheapest-first, keep strict improvements in
	// mean unavailability. Along the frontier cost increases and
	// unavailability strictly decreases.
	var frontier []entry
	for _, e := range alive {
		if len(frontier) == 0 || e.unav < frontier[len(frontier)-1].unav {
			frontier = append(frontier, e)
		}
	}

	dominates := func(d, c int) bool {
		ds, cs := states[d].stats[:seedsRun], states[c].stats[:seedsRun]
		for s := range ds {
			if !(ds[s].cost < cs[s].cost && ds[s].unav <= cs[s].unav) {
				return false
			}
		}
		return true
	}

	var cut []int
	for _, c := range alive {
		// Frontier entries strictly cheaper on mean cost...
		hi := sort.Search(len(frontier), func(i int) bool { return frontier[i].cost >= c.cost })
		checks := 0
		// ...and no worse on mean unavailability form a suffix of [0, hi).
		for j := hi - 1; j >= 0 && checks < maxDominatorChecks; j-- {
			d := frontier[j]
			if d.unav > c.unav {
				break
			}
			if d.p == c.p {
				continue
			}
			checks++
			if dominates(d.p, c.p) {
				cut = append(cut, c.p)
				states[c.p].dominatedBy = d.p
				break
			}
		}
	}
	for _, p := range cut {
		states[p].pruned = true
	}
	return cut
}
