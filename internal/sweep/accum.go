package sweep

import (
	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// reportAccum is a streaming equivalent of metrics.Average: feed it
// reports one at a time and mean() returns exactly what
// metrics.Average(all reports) would have (see TestAccumMatchesAverage),
// without ever holding more than one report. Non-averaged fields (policy
// and mechanism labels, VM count) are taken from the first report, like
// Average takes them from rs[0]; per-seed downtime logs are dropped, like
// Average drops them.
type reportAccum struct {
	n     int
	first metrics.Report

	ckpt, cost, base, spotS, odS, down, degr, horizon float64
	forced, planned, reverse, xr, lost, eps           float64
	longest                                           sim.Duration
}

func (a *reportAccum) add(r metrics.Report) {
	if a.n == 0 {
		a.first = r
		a.first.DowntimeLog = nil
	}
	a.n++
	a.ckpt += r.CheckpointGB
	a.cost += r.Cost
	a.base += r.BaselineCost
	a.spotS += r.SpotSeconds
	a.odS += r.OnDemandSeconds
	a.down += r.DowntimeSeconds
	a.degr += r.DegradedSeconds
	a.horizon += float64(r.Horizon)
	a.forced += float64(r.Migrations.Forced)
	a.planned += float64(r.Migrations.Planned)
	a.reverse += float64(r.Migrations.Reverse)
	a.xr += float64(r.Migrations.CrossRegion)
	a.lost += float64(r.Migrations.MemoryLost)
	a.eps += float64(r.DownEpisodes)
	if r.LongestDowntime > a.longest {
		a.longest = r.LongestDowntime
	}
}

func (a *reportAccum) mean() metrics.Report {
	if a.n == 0 {
		return metrics.Report{}
	}
	out := a.first
	n := float64(a.n)
	out.CheckpointGB = a.ckpt / n
	out.Cost = a.cost / n
	out.BaselineCost = a.base / n
	out.SpotSeconds = a.spotS / n
	out.OnDemandSeconds = a.odS / n
	out.DowntimeSeconds = a.down / n
	out.DegradedSeconds = a.degr / n
	out.Horizon = a.horizon / n
	out.DownEpisodes = int(a.eps/n + 0.5)
	out.LongestDowntime = a.longest
	out.Migrations = metrics.MigrationCounts{
		Forced:      int(a.forced/n + 0.5),
		Planned:     int(a.planned/n + 0.5),
		Reverse:     int(a.reverse/n + 0.5),
		CrossRegion: int(a.xr/n + 0.5),
		MemoryLost:  int(a.lost/n + 0.5),
	}
	return out
}
