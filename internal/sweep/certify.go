package sweep

import (
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

// Warm-start certification.
//
// A family's members differ only in the warm-axis knob. Rather than trying
// to snapshot a half-run engine (the event heap is closures; forking it is
// not feasible), the engine proves statically — from the price columns
// alone — that two neighboring knob values can never produce a different
// decision anywhere in the horizon. Certified-equal members form an
// equivalence class: one pilot simulation runs cold and its report is
// reused, byte for byte, for every other member. The oracles below are
// sound (they only certify when NO trajectory can diverge) but
// conservative (they may run cells cold that would in fact have matched):
//
//   - bid: the scheduler and provider consume the bid exclusively in
//     price-vs-bid comparisons (grant checks, revocations, grantability
//     scans); billing always charges the spot price, never the bid. Two
//     effective bids e1 < e2 in market m behave identically unless some
//     price step of m lands in (e1, e2] inside the horizon.
//   - hysteresis: consumed only in decide()'s improvement test
//     c < curCost*(1-h). Both sides are always drawn from the same small
//     curve set — n_m x spot price or n_m x on-demand price over the
//     candidate markets — so h1 and h2 can only disagree if some pair of
//     curve values flips the comparison on some segment of the horizon.
//     The oracle replays the engine's own float expression on every merged
//     segment, so certification is exact to the bit.
//   - tau / lambda: consumed continuously (checkpoint cadence, volatility
//     scoring), so distinct values are never certified equal.
//
// Certification depends on the universe, so classes are recomputed per
// seed; it reads only the columnar trace slabs and costs O(values x steps)
// per family.

// shareClasses partitions family members (point indices sorted by
// ascending warm value) into runs certified to simulate identically on
// this universe within [0, horizon). The first member of each class is the
// pilot.
func shareClasses(plan *Plan, members []int, set *market.Set, bidCap float64, horizon sim.Time) [][]int {
	if len(members) <= 1 || plan.WarmAxis < 0 {
		return singletons(members)
	}
	knob := plan.Axes[plan.WarmAxis].Knob
	cfg := plan.Points[members[0]].Config

	var diverges func(lo, hi float64) bool
	switch {
	case knob == KnobBid && cfg.Bidding == sched.Proactive:
		diverges = func(lo, hi float64) bool {
			return bidPairDiverges(set, cfg.Markets, lo, hi, bidCap, horizon)
		}
	case knob == KnobBid:
		// Reactive / PureSpot / OnDemandOnly never read BidMultiple: the
		// whole family is one class.
		return [][]int{append([]int(nil), members...)}
	case knob == KnobHysteresis:
		curves := costCurves(set, cfg)
		diverges = func(lo, hi float64) bool {
			return hystPairDiverges(curves, lo, hi, horizon)
		}
	default:
		return singletons(members)
	}

	classes := [][]int{{members[0]}}
	for i := 1; i < len(members); i++ {
		lo := plan.Points[members[i-1]].Values[plan.WarmAxis]
		hi := plan.Points[members[i]].Values[plan.WarmAxis]
		if lo != hi && diverges(lo, hi) {
			classes = append(classes, nil)
		}
		last := len(classes) - 1
		classes[last] = append(classes[last], members[i])
	}
	return classes
}

func singletons(members []int) [][]int {
	out := make([][]int, len(members))
	for i, m := range members {
		out[i] = []int{m}
	}
	return out
}

// bidPairDiverges reports whether bid multiples lo < hi can behave
// differently in any candidate market: true iff some price step within the
// horizon lands strictly above lo's effective bid and at-or-below hi's.
// Effective bids mirror bidFor: min(k x od, cap x od).
func bidPairDiverges(set *market.Set, markets []market.ID, lo, hi, bidCap float64, horizon sim.Time) bool {
	for _, m := range markets {
		od := set.OnDemand(m)
		elo, ehi := lo*od, hi*od
		if cap := bidCap * od; elo > cap {
			elo = cap
		}
		if cap := bidCap * od; ehi > cap {
			ehi = cap
		}
		if elo >= ehi {
			continue // both capped (or equal): indistinguishable here
		}
		tr := set.Trace(m)
		if tr == nil {
			return true // unknown market: never certify
		}
		times, prices := tr.Times(), tr.Prices()
		for i, p := range prices {
			if i > 0 && times[i] >= horizon {
				break
			}
			// The provider compares price > bid (grants, revocations), so
			// the pair separates exactly when p is in (elo, ehi].
			if p > elo && p <= ehi {
				return true
			}
		}
	}
	return false
}

// costCurve is one hourly-cost curve the decide() comparison can draw a
// side from: scale x a piecewise-constant price series. A constant curve
// (on-demand) has nil times and a single price.
type costCurve struct {
	times  []sim.Time
	prices []float64
	scale  float64
}

// costCurves enumerates every curve decide() can ever compare: for each
// candidate market (plus home), the spot curve and the on-demand constant,
// both scaled by the server count the service needs in that type.
func costCurves(set *market.Set, cfg sched.Config) []costCurve {
	ids := make([]market.ID, 0, len(cfg.Markets)+1)
	seen := map[market.ID]bool{}
	for _, m := range append(append([]market.ID(nil), cfg.Markets...), cfg.Home) {
		if !seen[m] {
			seen[m] = true
			ids = append(ids, m)
		}
	}
	curves := make([]costCurve, 0, 2*len(ids))
	for _, m := range ids {
		n := float64(serversFor(cfg, m.Type))
		if tr := set.Trace(m); tr != nil {
			curves = append(curves, costCurve{times: tr.Times(), prices: tr.Prices(), scale: n})
		}
		curves = append(curves, costCurve{prices: []float64{set.OnDemand(m)}, scale: n})
	}
	return curves
}

// serversFor mirrors sched.Config.serversFor: how many servers of type t
// the service needs.
func serversFor(cfg sched.Config, t market.InstanceType) int {
	types := cfg.Types
	if types == nil {
		types = market.DefaultTypes()
	}
	ts, ok := market.FindType(types, t)
	if !ok || cfg.Service.VM.Units <= 0 {
		return 1
	}
	per := ts.Units / cfg.Service.VM.Units
	if per < 1 {
		per = 1
	}
	return (cfg.Service.Count + per - 1) / per
}

// hystPairDiverges reports whether hysteresis values h1 < h2 can decide
// differently anywhere in the horizon: true iff for some ordered pair of
// cost curves (candidate c, current b) and some merged segment, the
// engine's own test c < b*(1-h) flips between h1 and h2.
func hystPairDiverges(curves []costCurve, h1, h2 float64, horizon sim.Time) bool {
	for i := range curves {
		for j := range curves {
			if i == j {
				continue
			}
			if curvePairFlips(&curves[i], &curves[j], h1, h2, horizon) {
				return true
			}
		}
	}
	return false
}

// curvePairFlips walks the merged piecewise-constant segments of candidate
// a and current b over [0, horizon) and evaluates decide()'s comparison at
// both hysteresis values on each piece.
func curvePairFlips(a, b *costCurve, h1, h2 float64, horizon sim.Time) bool {
	ia, ib := 0, 0
	t := sim.Time(0)
	for t < horizon {
		for ia+1 < len(a.times) && a.times[ia+1] <= t {
			ia++
		}
		for ib+1 < len(b.times) && b.times[ib+1] <= t {
			ib++
		}
		cv := a.scale * a.prices[ia]
		bv := b.scale * b.prices[ib]
		if bv <= 0 {
			return true // degenerate current cost: never certify
		}
		if (cv < bv*(1-h1)) != (cv < bv*(1-h2)) {
			return true
		}
		// Advance to the next boundary of either curve.
		nt := horizon
		if ia+1 < len(a.times) && a.times[ia+1] < nt {
			nt = a.times[ia+1]
		}
		if ib+1 < len(b.times) && b.times[ib+1] < nt {
			nt = b.times[ib+1]
		}
		if nt <= t {
			break // both curves exhausted
		}
		t = nt
	}
	return false
}
