package sweep

import (
	"math"

	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

// Warm-start certification and divergence points.
//
// A family's members differ only in the warm-axis knob. The per-knob
// oracles below scan the price columns and report, for each adjacent pair
// of knob values, the *first divergence time*: the earliest instant at
// which the two values could produce a different decision. From that one
// number both reuse modes fall out:
//
//   - whole-horizon sharing: divergence >= horizon means no trajectory can
//     ever separate, so one pilot simulation runs cold and its report is
//     reused byte for byte (shareClasses);
//   - mid-horizon forking: divergence at T < horizon means the runs are
//     provably identical on [0, T), so a sibling resumes the pilot's last
//     quiescent checkpoint at or before T (sched.Checkpoint — model-state
//     copy plus re-arm; the event heap itself is never copied) and
//     simulates only the tail, still byte-identical to a cold run.
//
// The oracles are sound (they never report a divergence time later than
// the true first divergence) but conservative (they may report an earlier
// one):
//
//   - bid: the scheduler and provider consume the bid exclusively in
//     price-vs-bid comparisons (grant checks, revocations, grantability
//     scans); billing always charges the spot price, never the bid. Two
//     effective bids e1 < e2 in market m behave identically until the
//     first price step of m that lands in (e1, e2].
//   - hysteresis: consumed only in decide()'s improvement test
//     c < curCost*(1-h). Both sides are always drawn from the same small
//     curve set — n_m x spot price or n_m x on-demand price over the
//     candidate markets — so h1 and h2 can only disagree from the start of
//     the first merged segment on which some curve pair flips the
//     comparison. The oracle replays the engine's own float expression, so
//     the time is exact to the bit.
//   - tau: for live-migration mechanisms the checkpoint bound is invisible
//     to the trajectory until a forced warning whose grace window
//     separates the two values (see the runner's dynamic divergence scan
//     over the pilot's ForkLog); it has no static oracle here.
//   - lambda: consumed continuously (volatility scoring), so distinct
//     values are never certified equal and never forked.
//
// Certification depends on the universe, so classes are recomputed per
// seed; it reads only the columnar trace slabs and costs O(values x steps)
// per family.

// never is the divergence time of a pair that can never separate.
var never = sim.Time(math.Inf(1))

// adjacentDivergeTimes returns, for each adjacent pair of family members
// (sorted by ascending warm value), the first time the pair's knob values
// could diverge on this universe, or +Inf. ok is false when the warm knob
// has no static oracle (tau, lambda): the caller must treat every pair as
// divergent at time 0 or consult the pilot's runtime ForkLog.
func adjacentDivergeTimes(plan *Plan, members []int, set *market.Set, bidCap float64, horizon sim.Time) ([]sim.Time, bool) {
	if plan.WarmAxis < 0 || len(members) < 2 {
		return nil, false
	}
	knob := plan.Axes[plan.WarmAxis].Knob
	cfg := plan.Points[members[0]].Config

	var pairTime func(lo, hi float64) sim.Time
	switch {
	case knob == KnobBid && cfg.Bidding == sched.Proactive:
		pairTime = func(lo, hi float64) sim.Time {
			return bidPairDivergeTime(set, cfg.Markets, lo, hi, bidCap, horizon)
		}
	case knob == KnobBid:
		// Reactive / PureSpot / OnDemandOnly never read BidMultiple.
		pairTime = func(lo, hi float64) sim.Time { return never }
	case knob == KnobHysteresis:
		curves := costCurves(set, cfg)
		pairTime = func(lo, hi float64) sim.Time {
			return hystPairDivergeTime(curves, lo, hi, horizon)
		}
	default:
		return nil, false
	}

	out := make([]sim.Time, len(members)-1)
	for i := 1; i < len(members); i++ {
		lo := plan.Points[members[i-1]].Values[plan.WarmAxis]
		hi := plan.Points[members[i]].Values[plan.WarmAxis]
		if lo == hi {
			out[i-1] = never
		} else {
			out[i-1] = pairTime(lo, hi)
		}
	}
	return out, true
}

// shareClasses partitions family members (point indices sorted by
// ascending warm value) into runs certified to simulate identically on
// this universe within [0, horizon). The first member of each class is the
// pilot.
func shareClasses(plan *Plan, members []int, set *market.Set, bidCap float64, horizon sim.Time) [][]int {
	if len(members) <= 1 || plan.WarmAxis < 0 {
		return singletons(members)
	}
	times, ok := adjacentDivergeTimes(plan, members, set, bidCap, horizon)
	if !ok {
		return singletons(members)
	}
	return classesFromTimes(members, times, horizon)
}

// classesFromTimes splits members into contiguous runs at every adjacent
// pair whose divergence time falls inside the horizon.
func classesFromTimes(members []int, times []sim.Time, horizon sim.Time) [][]int {
	classes := [][]int{{members[0]}}
	for i := 1; i < len(members); i++ {
		if times[i-1] < horizon {
			classes = append(classes, nil)
		}
		last := len(classes) - 1
		classes[last] = append(classes[last], members[i])
	}
	return classes
}

func singletons(members []int) [][]int {
	out := make([][]int, len(members))
	for i, m := range members {
		out[i] = []int{m}
	}
	return out
}

// bidPairDivergeTime returns the first time bid multiples lo < hi can
// behave differently in any candidate market: the earliest price step
// within the horizon that lands strictly above lo's effective bid and
// at-or-below hi's. Effective bids mirror bidFor: min(k x od, cap x od).
// The initial price (step 0) is in effect from time 0.
func bidPairDivergeTime(set *market.Set, markets []market.ID, lo, hi, bidCap float64, horizon sim.Time) sim.Time {
	first := never
	for _, m := range markets {
		od := set.OnDemand(m)
		elo, ehi := lo*od, hi*od
		if cap := bidCap * od; elo > cap {
			elo = cap
		}
		if cap := bidCap * od; ehi > cap {
			ehi = cap
		}
		if elo >= ehi {
			continue // both capped (or equal): indistinguishable here
		}
		tr := set.Trace(m)
		if tr == nil {
			return 0 // unknown market: never certify
		}
		times, prices := tr.Times(), tr.Prices()
		for i, p := range prices {
			at := sim.Time(0)
			if i > 0 {
				at = times[i]
			}
			if at >= horizon || at >= first {
				break
			}
			// The provider compares price > bid (grants, revocations), so
			// the pair separates exactly when p is in (elo, ehi].
			if p > elo && p <= ehi {
				first = at
				break
			}
		}
	}
	return first
}

// costCurve is one hourly-cost curve the decide() comparison can draw a
// side from: scale x a piecewise-constant price series. A constant curve
// (on-demand) has nil times and a single price.
type costCurve struct {
	times  []sim.Time
	prices []float64
	scale  float64
}

// costCurves enumerates every curve decide() can ever compare: for each
// candidate market (plus home), the spot curve and the on-demand constant,
// both scaled by the server count the service needs in that type.
func costCurves(set *market.Set, cfg sched.Config) []costCurve {
	ids := make([]market.ID, 0, len(cfg.Markets)+1)
	seen := map[market.ID]bool{}
	for _, m := range append(append([]market.ID(nil), cfg.Markets...), cfg.Home) {
		if !seen[m] {
			seen[m] = true
			ids = append(ids, m)
		}
	}
	curves := make([]costCurve, 0, 2*len(ids))
	for _, m := range ids {
		n := float64(serversFor(cfg, m.Type))
		if tr := set.Trace(m); tr != nil {
			curves = append(curves, costCurve{times: tr.Times(), prices: tr.Prices(), scale: n})
		}
		curves = append(curves, costCurve{prices: []float64{set.OnDemand(m)}, scale: n})
	}
	return curves
}

// serversFor mirrors sched.Config.serversFor: how many servers of type t
// the service needs.
func serversFor(cfg sched.Config, t market.InstanceType) int {
	types := cfg.Types
	if types == nil {
		types = market.DefaultTypes()
	}
	ts, ok := market.FindType(types, t)
	if !ok || cfg.Service.VM.Units <= 0 {
		return 1
	}
	per := ts.Units / cfg.Service.VM.Units
	if per < 1 {
		per = 1
	}
	return (cfg.Service.Count + per - 1) / per
}

// hystPairDivergeTime returns the first time hysteresis values h1 < h2 can
// decide differently: the earliest merged-segment start, over all ordered
// pairs of cost curves (candidate c, current b), at which the engine's own
// test c < b*(1-h) flips between h1 and h2. A flip threatens any decision
// from the segment's start onward, so the start is a sound lower bound on
// the true first divergent decision.
func hystPairDivergeTime(curves []costCurve, h1, h2 float64, horizon sim.Time) sim.Time {
	first := never
	for i := range curves {
		for j := range curves {
			if i == j {
				continue
			}
			if t := curvePairFlipTime(&curves[i], &curves[j], h1, h2, horizon); t < first {
				first = t
			}
		}
	}
	return first
}

// curvePairFlipTime walks the merged piecewise-constant segments of
// candidate a and current b over [0, horizon) and returns the start of the
// first piece on which decide()'s comparison differs between the two
// hysteresis values (+Inf if none).
func curvePairFlipTime(a, b *costCurve, h1, h2 float64, horizon sim.Time) sim.Time {
	ia, ib := 0, 0
	t := sim.Time(0)
	for t < horizon {
		for ia+1 < len(a.times) && a.times[ia+1] <= t {
			ia++
		}
		for ib+1 < len(b.times) && b.times[ib+1] <= t {
			ib++
		}
		cv := a.scale * a.prices[ia]
		bv := b.scale * b.prices[ib]
		if bv <= 0 {
			return t // degenerate current cost: never certify
		}
		if (cv < bv*(1-h1)) != (cv < bv*(1-h2)) {
			return t
		}
		// Advance to the next boundary of either curve.
		nt := horizon
		if ia+1 < len(a.times) && a.times[ia+1] < nt {
			nt = a.times[ia+1]
		}
		if ib+1 < len(b.times) && b.times[ib+1] < nt {
			nt = b.times[ib+1]
		}
		if nt <= t {
			break // both curves exhausted
		}
		t = nt
	}
	return never
}
