package sweep

import (
	"reflect"
	"testing"

	"spothost/internal/market"
)

var testHome = market.ID{Region: "us-east-1a", Type: "small"}

func TestParseGrid(t *testing.T) {
	axes, err := ParseGrid("bid=1.5,2, 3;tau= 1,30")
	if err != nil {
		t.Fatal(err)
	}
	want := []Axis{
		{Knob: "bid", Values: []float64{1.5, 2, 3}},
		{Knob: "tau", Values: []float64{1, 30}},
	}
	if !reflect.DeepEqual(axes, want) {
		t.Fatalf("axes = %+v, want %+v", axes, want)
	}

	for _, bad := range []string{
		"",                 // empty
		"bid",              // no values
		"warp=1,2",         // unknown knob
		"bid=1,2;bid=3",    // duplicate axis
		"bid=one,two",      // unparsable value
		"bid=,,",           // all-empty values
		"=1,2",             // missing knob name
		"bid=2;lambda=x,1", // bad value on later axis
	} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted garbage", bad)
		}
	}
}

func TestNewPlanCrossProduct(t *testing.T) {
	plan, err := NewPlan([]Axis{
		{Knob: KnobBid, Values: []float64{1.5, 2}},
		{Knob: KnobTau, Values: []float64{1, 3}},
	}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := [][]float64{{1.5, 1}, {1.5, 3}, {2, 1}, {2, 3}}
	if len(plan.Points) != len(wantVals) {
		t.Fatalf("got %d points, want %d", len(plan.Points), len(wantVals))
	}
	for i, pt := range plan.Points {
		if !reflect.DeepEqual(pt.Values, wantVals[i]) {
			t.Errorf("point %d values %v, want %v", i, pt.Values, wantVals[i])
		}
		if got := pt.Config.BidMultiple; got != wantVals[i][0] {
			t.Errorf("point %d BidMultiple %v, want %v", i, got, wantVals[i][0])
		}
		if got := pt.Config.VMParams.CheckpointBound; got != wantVals[i][1] {
			t.Errorf("point %d CheckpointBound %v, want %v", i, got, wantVals[i][1])
		}
	}
	if plan.WarmAxis != 0 {
		t.Fatalf("WarmAxis = %d, want 0 (bid)", plan.WarmAxis)
	}
	// Families group by the non-warm (tau) value, members sorted by bid.
	wantFams := [][]int{{0, 2}, {1, 3}}
	if len(plan.Families) != 2 {
		t.Fatalf("families = %+v, want members %v", plan.Families, wantFams)
	}
	for i, f := range plan.Families {
		if !reflect.DeepEqual(f.Members, wantFams[i]) {
			t.Errorf("family %d members %v, want %v", i, f.Members, wantFams[i])
		}
	}
	if got := plan.Cells(3); got != 12 {
		t.Fatalf("Cells(3) = %d, want 12", got)
	}
}

func TestNewPlanWarmAxisSelection(t *testing.T) {
	// The certifiable axis with the most values wins.
	plan, err := NewPlan([]Axis{
		{Knob: KnobBid, Values: []float64{2, 4}},
		{Knob: KnobHysteresis, Values: []float64{0, 0.05, 0.4}},
	}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WarmAxis != 1 {
		t.Fatalf("WarmAxis = %d, want 1 (hysteresis has more values)", plan.WarmAxis)
	}

	// With no certifiable axis, a forkable one (tau) becomes the warm
	// axis: a fork-enabled runner can still resume siblings mid-horizon.
	plan, err = NewPlan([]Axis{{Knob: KnobTau, Values: []float64{1, 3, 10}}}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WarmAxis != 0 {
		t.Fatalf("WarmAxis = %d, want 0 (tau is forkable)", plan.WarmAxis)
	}
	if len(plan.Families) != 1 || len(plan.Families[0].Members) != 3 {
		t.Fatalf("families = %+v, want one tau family of 3", plan.Families)
	}

	// Grids with neither degrade to singleton families.
	plan, err = NewPlan([]Axis{{Knob: KnobLambda, Values: []float64{0, 0.5, 1}}}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WarmAxis != -1 {
		t.Fatalf("WarmAxis = %d, want -1", plan.WarmAxis)
	}
	if len(plan.Families) != 3 {
		t.Fatalf("got %d families, want 3 singletons", len(plan.Families))
	}

	// Invalid specs are rejected.
	if _, err := NewPlan(nil, testHome, 0); err == nil {
		t.Error("NewPlan accepted an empty grid")
	}
	if _, err := NewPlan([]Axis{{Knob: "warp", Values: []float64{1}}}, testHome, 0); err == nil {
		t.Error("NewPlan accepted an unknown knob")
	}
	if _, err := NewPlan([]Axis{
		{Knob: KnobBid, Values: []float64{2}},
		{Knob: KnobBid, Values: []float64{3}},
	}, testHome, 0); err == nil {
		t.Error("NewPlan accepted a duplicate axis")
	}
}

func TestBuildConfigShapes(t *testing.T) {
	// bid/tau alone keep the single-market shape.
	cfg, err := BuildConfig(testHome, 0, []Setting{{KnobBid, 3}, {KnobTau, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Markets) != 1 || cfg.Markets[0] != testHome {
		t.Fatalf("single-knob markets = %v", cfg.Markets)
	}
	if cfg.BidMultiple != 3 || cfg.VMParams.CheckpointBound != 10 {
		t.Fatalf("knobs not applied: %+v", cfg)
	}

	// Any hysteresis/lambda setting switches to the multi-market fleet.
	cfg, err = BuildConfig(testHome, 0, []Setting{{KnobBid, 2}, {KnobHysteresis, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Markets) != len(market.DefaultTypes()) {
		t.Fatalf("multi-market count = %d, want %d", len(cfg.Markets), len(market.DefaultTypes()))
	}
	if cfg.Service.Count != 4 {
		t.Fatalf("default fleet = %d, want 4", cfg.Service.Count)
	}
	if cfg.Hysteresis != 0.1 || cfg.BidMultiple != 2 {
		t.Fatalf("knobs not applied: %+v", cfg)
	}

	cfg, err = BuildConfig(testHome, 7, []Setting{{KnobLambda, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Service.Count != 7 {
		t.Fatalf("fleet = %d, want 7", cfg.Service.Count)
	}
	if cfg.StabilityPenalty != 0.5 {
		t.Fatalf("lambda not applied: %+v", cfg)
	}

	if _, err := BuildConfig(testHome, 0, []Setting{{"warp", 1}}); err == nil {
		t.Error("BuildConfig accepted an unknown knob")
	}
	// Invalid knob values fail config validation rather than slipping through.
	if _, err := BuildConfig(testHome, 0, []Setting{{KnobBid, 0.5}}); err == nil {
		t.Error("BuildConfig accepted a proactive bid multiple below 1")
	}
}
