// Package sweep turns the repo's one-knob parameter sweeps into a
// million-cell grid engine. A sweep is the cross product of several knob
// axes (bid multiple, checkpoint bound tau, hysteresis, stability lambda)
// times a list of seeds; every (grid point, seed) pair is one simulation
// cell. Four mechanisms keep huge grids tractable on one machine:
//
//   - warm-start sharing: cells that differ only in a late-binding knob
//     are partitioned, per universe, into equivalence classes by a sound
//     static oracle over the columnar price traces; one pilot simulation's
//     report serves the whole class, byte for byte (see certify.go);
//   - fork reuse: cells that diverge mid-horizon resume the family pilot's
//     last quiescent checkpoint before their first divergence point and
//     simulate only the tail, still byte-identical to a cold run — this is
//     what makes a tau axis, which has no whole-horizon oracle, nearly as
//     cheap as a warm one (see runner.go and sched.Checkpoint);
//   - pruning: configurations that are strictly worse on cost and no
//     better on availability than a completed neighbor, on every seed
//     evaluated so far, are cut from the remaining seed waves — logged and
//     reported, never silently dropped (see runner.go);
//   - bounded aggregation: per-point results stream through running
//     accumulators, so memory is O(points), not O(cells).
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/vm"
)

// Knob names accepted by an Axis. They match cmd/sweep's -knob flag.
const (
	KnobBid        = "bid"        // proactive bid as a multiple of on-demand
	KnobTau        = "tau"        // checkpoint bound tau (seconds of lost work)
	KnobHysteresis = "hysteresis" // minimum relative improvement before a move
	KnobLambda     = "lambda"     // stability penalty weight
)

// knownKnob reports whether the sweep engine understands a knob name.
func knownKnob(k string) bool {
	switch k {
	case KnobBid, KnobTau, KnobHysteresis, KnobLambda:
		return true
	}
	return false
}

// warmable reports whether a knob has a static divergence-time oracle
// (certify.go) and can therefore certify whole-horizon sharing.
func warmable(k string) bool { return k == KnobBid || k == KnobHysteresis }

// forkable reports whether a knob's siblings can resume a pilot's
// mid-horizon checkpoint (runner.go). Every warmable knob is forkable; tau
// is forkable without being warmable — its divergence point is discovered
// dynamically from the pilot's forced-warning log rather than from a
// static trace scan. Lambda is neither: it shapes every decision.
func forkable(k string) bool { return warmable(k) || k == KnobTau }

// Axis is one knob dimension of a grid.
type Axis struct {
	Knob   string
	Values []float64
}

// ParseGrid parses a -grid specification of the form
// "knob=v1,v2,...;knob2=w1,w2,..." into axes. Axis order in the string is
// the nesting order of the cross product (first axis varies slowest).
func ParseGrid(s string) ([]Axis, error) {
	var axes []Axis
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		knob, vals, ok := strings.Cut(part, "=")
		knob = strings.TrimSpace(knob)
		if !ok || knob == "" {
			return nil, fmt.Errorf("sweep: bad grid axis %q (want knob=v1,v2,...)", part)
		}
		if !knownKnob(knob) {
			return nil, fmt.Errorf("sweep: unknown knob %q", knob)
		}
		if seen[knob] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", knob)
		}
		seen[knob] = true
		var values []float64
		for _, f := range strings.Split(vals, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad value %q for %s: %w", f, knob, err)
			}
			values = append(values, v)
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", knob)
		}
		axes = append(axes, Axis{Knob: knob, Values: values})
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	return axes, nil
}

// Setting is one knob assignment of a grid point.
type Setting struct {
	Knob  string
	Value float64
}

// BuildConfig builds the scheduler config for one grid point: the repo's
// default single-market proactive config with every setting applied. Any
// hysteresis or lambda setting switches to the multi-market fleet shape
// (cmd/sweep's historical behavior): fleetSize one-unit VMs (default 4)
// over every instance type in the home region.
func BuildConfig(home market.ID, fleetSize int, settings []Setting) (sched.Config, error) {
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		return cfg, err
	}
	multi := false
	for _, s := range settings {
		if s.Knob == KnobHysteresis || s.Knob == KnobLambda {
			multi = true
		}
	}
	if multi {
		if fleetSize <= 0 {
			fleetSize = 4
		}
		cfg.Service = sched.ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: fleetSize,
		}
		cfg.Markets = nil
		for _, ts := range market.DefaultTypes() {
			cfg.Markets = append(cfg.Markets, market.ID{Region: home.Region, Type: ts.Name})
		}
	}
	for _, s := range settings {
		switch s.Knob {
		case KnobBid:
			cfg.BidMultiple = s.Value
		case KnobTau:
			cfg.VMParams.CheckpointBound = s.Value
		case KnobHysteresis:
			cfg.Hysteresis = s.Value
		case KnobLambda:
			cfg.StabilityPenalty = s.Value
		default:
			return cfg, fmt.Errorf("sweep: unknown knob %q", s.Knob)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Point is one grid point: a knob value per axis plus its built config.
type Point struct {
	Values []float64 // one per axis, in axis order
	Config sched.Config
}

// Family groups the points of a plan that agree on every axis except the
// warm axis — the candidates for warm-start sharing. Members are point
// indices ordered by ascending warm-axis value.
type Family struct {
	Members []int
}

// Plan is a compiled grid: every point's config, plus the warm-start
// structure (which axis is late-binding, and the point families along it).
type Plan struct {
	Axes     []Axis
	Points   []Point
	WarmAxis int // axis index certified for warm-start sharing; -1 if none
	Families []Family
}

// NewPlan expands the axes' cross product into points (first axis slowest,
// matching nested loops over the axes in order), builds and validates each
// point's config, picks the warm axis, and groups points into families.
//
// The warm axis is the certifiable axis (bid or hysteresis) with the most
// values — the one whose sharing collapses the most cells; ties go to the
// earlier axis. When no certifiable axis exists but a forkable one does
// (tau), the forkable axis becomes the warm axis: it cannot share whole
// horizons, but a fork-enabled runner can still resume siblings from the
// family pilot's checkpoints. Grids with neither get WarmAxis == -1 and
// degenerate to singleton families (every cell runs cold).
func NewPlan(axes []Axis, home market.ID, fleetSize int) (*Plan, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("sweep: no axes")
	}
	total := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		if !knownKnob(ax.Knob) {
			return nil, fmt.Errorf("sweep: unknown knob %q", ax.Knob)
		}
		if seen[ax.Knob] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Knob)
		}
		seen[ax.Knob] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Knob)
		}
		total *= len(ax.Values)
	}

	p := &Plan{Axes: axes, WarmAxis: -1}
	for i, ax := range axes {
		if !warmable(ax.Knob) {
			continue
		}
		if p.WarmAxis == -1 || len(ax.Values) > len(axes[p.WarmAxis].Values) {
			p.WarmAxis = i
		}
	}
	if p.WarmAxis == -1 {
		for i, ax := range axes {
			if !forkable(ax.Knob) {
				continue
			}
			if p.WarmAxis == -1 || len(ax.Values) > len(axes[p.WarmAxis].Values) {
				p.WarmAxis = i
			}
		}
	}

	p.Points = make([]Point, 0, total)
	idx := make([]int, len(axes))
	settings := make([]Setting, len(axes))
	for {
		values := make([]float64, len(axes))
		for i, ax := range axes {
			values[i] = ax.Values[idx[i]]
			settings[i] = Setting{Knob: ax.Knob, Value: values[i]}
		}
		cfg, err := BuildConfig(home, fleetSize, settings)
		if err != nil {
			return nil, err
		}
		p.Points = append(p.Points, Point{Values: values, Config: cfg})
		// Odometer increment, last axis fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	p.buildFamilies()
	return p, nil
}

// buildFamilies groups points that agree on every non-warm axis. Family
// members are sorted by ascending warm-axis value, the order the adjacent-
// pair divergence oracle needs.
func (p *Plan) buildFamilies() {
	if p.WarmAxis < 0 {
		p.Families = make([]Family, len(p.Points))
		for i := range p.Points {
			p.Families[i] = Family{Members: []int{i}}
		}
		return
	}
	groups := map[string]int{} // key over non-warm values -> family index
	var key strings.Builder
	for i, pt := range p.Points {
		key.Reset()
		for a, v := range pt.Values {
			if a == p.WarmAxis {
				continue
			}
			fmt.Fprintf(&key, "%x;", v)
		}
		k := key.String()
		fi, ok := groups[k]
		if !ok {
			fi = len(p.Families)
			groups[k] = fi
			p.Families = append(p.Families, Family{})
		}
		p.Families[fi].Members = append(p.Families[fi].Members, i)
	}
	for fi := range p.Families {
		m := p.Families[fi].Members
		sort.SliceStable(m, func(a, b int) bool {
			return p.Points[m[a]].Values[p.WarmAxis] < p.Points[m[b]].Values[p.WarmAxis]
		})
	}
}

// Cells returns the total cell count for a seed list: points x seeds.
func (p *Plan) Cells(seeds int) int { return len(p.Points) * seeds }
