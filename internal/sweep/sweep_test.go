package sweep

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// flatUniverse builds a one-market universe whose price is a flat base
// ratio of on-demand with fixed daily square spikes, for deterministic
// certification and pruning scenarios. Spikes hit ratio spikeTo for
// spikeDur starting at 12h30 each day.
func flatUniverse(t *testing.T, base, spikeTo float64, spikeDur sim.Duration, days int) *market.Set {
	t.Helper()
	const od = 0.1
	pts := []market.Point{{T: 0, Price: base * od}}
	end := sim.Time(float64(days) * sim.Day)
	if spikeTo > 0 && spikeDur > 0 {
		for d := 0; d < days; d++ {
			t0 := sim.Time(float64(d)*sim.Day + 12*sim.Hour + 30*sim.Minute)
			pts = append(pts,
				market.Point{T: t0, Price: spikeTo * od},
				market.Point{T: t0 + spikeDur, Price: base * od})
		}
	}
	tr, err := market.NewTrace(testHome, pts, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{tr}, map[market.ID]float64{testHome: od})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestShareClassesBid(t *testing.T) {
	// Price never leaves base 0.5x on-demand: no bid band is ever hit, so
	// every bid value below the cap collapses into one class.
	quiet := flatUniverse(t, 0.5, 0, 0, 3)
	plan, err := NewPlan([]Axis{{Knob: KnobBid, Values: []float64{1.5, 2, 3, 4, 5, 8}}}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := plan.Families[0].Members
	classes := shareClasses(plan, members, quiet, 4, quiet.Horizon())
	if len(classes) != 1 || len(classes[0]) != 6 {
		t.Fatalf("quiet universe classes = %v, want one class of 6", classes)
	}

	// Daily spikes to 2.5x on-demand separate bids below 2.5 from bids
	// above it: the spike price lands in (e_lo, e_hi] exactly when the
	// pair straddles 2.5. Values 4, 5, 8 share the capped effective bid.
	spiky := flatUniverse(t, 0.5, 2.5, 20*sim.Minute, 3)
	classes = shareClasses(plan, members, spiky, 4, spiky.Horizon())
	// 1.5 vs 2: the spike price 0.25 is above both effective bids, so both
	// get revoked identically — the band (0.15, 0.2] is never hit and they
	// certify equal. 2 vs 3 straddles the spike (0.25 in (0.2, 0.3]) and
	// must split. 3 vs 4, 4 vs 5, 5 vs 8: bands up to (0.3, 0.4] (capped)
	// miss 0.25 and merge.
	want := [][]int{{0, 1}, {2, 3, 4, 5}}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("spiky universe classes = %v, want %v", classes, want)
	}

	// Beyond the horizon, spikes must not count: certify over just the
	// first 12 hours (before any spike) and everything merges again.
	classes = shareClasses(plan, members, spiky, 4, 12*sim.Hour)
	if len(classes) != 1 {
		t.Fatalf("pre-spike horizon classes = %v, want one class", classes)
	}
}

func TestShareClassesHysteresis(t *testing.T) {
	// Spot sits at 0.5x od, spiking to 1.05x od daily. The candidate/
	// current cost ratios that ever occur: 0.5/1 (spot vs od), 1/0.5,
	// 0.5/1.05, 1.05/0.5, 1/1.05, 1.05/1, and 1s. decide() tests
	// c < cur*(1-h): for (c=od 0.1, cur=spot 0.105) the threshold flips
	// between h=0.02 (0.1 < 0.1029, improve) and h=0.1 (0.1 > 0.0945, no
	// improve) — so those two must split while 0.1 and 0.4 can merge only
	// if no ratio falls in their band.
	set := flatUniverse(t, 0.5, 1.05, 30*sim.Minute, 3)
	plan, err := NewPlan([]Axis{{Knob: KnobHysteresis, Values: []float64{0.02, 0.1, 0.4}}}, testHome, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hysteresis implies the multi-market shape; restrict candidates back
	// to the single test market so the oracle sees only our trace.
	for i := range plan.Points {
		plan.Points[i].Config.Markets = []market.ID{testHome}
		plan.Points[i].Config.Home = testHome
	}
	members := plan.Families[0].Members
	classes := shareClasses(plan, members, set, 4, set.Horizon())
	if len(classes) < 2 {
		t.Fatalf("classes = %v: 0.02 and 0.1 must diverge (ratio 0.952 in band)", classes)
	}
	if classes[0][0] != 0 || len(classes[0]) != 1 {
		t.Fatalf("classes = %v: first class must be {0.02} alone", classes)
	}

	// With no spikes, the only ratios are 0.5, 2 and 1; no band in
	// (0.02, 0.4] catches them... except ratio 0.5 needs 1-h < 0.5, i.e.
	// h > 0.5, outside the range — so all three values certify equal.
	quiet := flatUniverse(t, 0.5, 0, 0, 3)
	classes = shareClasses(plan, members, quiet, 4, quiet.Horizon())
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Fatalf("quiet classes = %v, want one class of 3", classes)
	}
}

// stripProvenance zeroes a Result's reuse bookkeeping (which legitimately
// differs between cold, warm, and fork runs) so comparisons check only the
// metric content.
func stripProvenance(r Result) Result {
	r.SharedSeeds, r.ForkedSeeds, r.MeanForkAt, r.Pilot = 0, 0, 0, 0
	return r
}

// TestWarmStartToggleByteIdentity is the acceptance test for warm-start:
// on a synthetic multi-seed grid, WarmStart on and off must produce
// byte-identical per-cell reports and summaries, while actually sharing
// work when on.
func TestWarmStartToggleByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulations")
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 6 * sim.Day

	grids := map[string][]Axis{
		"bid":        {{Knob: KnobBid, Values: []float64{1.5, 2, 3, 4, 5, 6}}},
		"bid_x_tau":  {{Knob: KnobBid, Values: []float64{2, 4, 5}}, {Knob: KnobTau, Values: []float64{3, 30}}},
		"hysteresis": {{Knob: KnobHysteresis, Values: []float64{0, 0.02, 0.05, 0.4}}},
	}
	for name, axes := range grids {
		t.Run(name, func(t *testing.T) {
			spec := Spec{
				Axes:    axes,
				Seeds:   []int64{23, 46},
				Home:    testHome,
				Horizon: 4 * sim.Day,
				Market:  mcfg,
			}
			run := func(warm bool) ([]Cell, *Summary) {
				s := spec
				s.WarmStart = warm
				var cells []Cell
				s.OnCell = func(c Cell) { cells = append(cells, c) }
				sum, err := Run(context.Background(), &s)
				if err != nil {
					t.Fatal(err)
				}
				return cells, sum
			}
			cold, coldSum := run(false)
			warm, warmSum := run(true)

			if len(cold) != len(warm) || len(cold) != coldSum.Cells {
				t.Fatalf("cell counts: cold %d, warm %d, want %d", len(cold), len(warm), coldSum.Cells)
			}
			if coldSum.Shared != 0 {
				t.Fatalf("cold run shared %d cells", coldSum.Shared)
			}
			for i := range cold {
				c, w := cold[i], warm[i]
				if c.Point != w.Point || c.Seed != w.Seed {
					t.Fatalf("cell %d order differs: cold (%d,%d) vs warm (%d,%d)",
						i, c.Point, c.Seed, w.Point, w.Seed)
				}
				if !reflect.DeepEqual(c.Report, w.Report) {
					t.Fatalf("%s cell %d (point %d seed %d, shared=%v): warm report differs from cold\ncold: %+v\nwarm: %+v",
						name, i, c.Point, c.Seed, w.Shared, c.Report, w.Report)
				}
			}
			for i := range coldSum.Results {
				if c, w := stripProvenance(coldSum.Results[i]), stripProvenance(warmSum.Results[i]); !reflect.DeepEqual(c, w) {
					t.Fatalf("result %d differs:\ncold: %+v\nwarm: %+v", i, c, w)
				}
			}
			if warmSum.Simulated+warmSum.Shared+warmSum.Forked != warmSum.Cells {
				t.Fatalf("warm accounting: %d simulated + %d shared + %d forked != %d cells",
					warmSum.Simulated, warmSum.Shared, warmSum.Forked, warmSum.Cells)
			}
			if name == "bid" && warmSum.Shared == 0 {
				// Bids 4, 5, 6 share one capped effective bid, so the bid
				// grid must share at least those cells.
				t.Fatalf("bid grid shared nothing; certification is vacuous")
			}
			t.Logf("%s: %d cells, warm simulated %d, shared %d", name, warmSum.Cells, warmSum.Simulated, warmSum.Shared)
		})
	}
}

// TestForkToggleByteIdentity is the acceptance test for fork reuse: with
// Fork on, warm-axis siblings resume the family pilot's checkpoints — on a
// tau axis, which has no whole-horizon oracle and was previously never
// shareable — and every per-cell report and per-point aggregate must stay
// byte-identical to the fork-off sweep.
func TestForkToggleByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulations")
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 6 * sim.Day

	grids := map[string][]Axis{
		"tau": {{Knob: KnobTau, Values: []float64{1, 3, 10, 30}}},
		"bid": {{Knob: KnobBid, Values: []float64{1.5, 2, 3, 4, 5, 6}}},
	}
	for name, axes := range grids {
		t.Run(name, func(t *testing.T) {
			spec := Spec{
				Axes:    axes,
				Seeds:   []int64{23, 46},
				Home:    testHome,
				Horizon: 4 * sim.Day,
				Market:  mcfg,
			}
			run := func(fork bool) ([]Cell, *Summary) {
				s := spec
				s.Fork = fork
				var cells []Cell
				s.OnCell = func(c Cell) { cells = append(cells, c) }
				sum, err := Run(context.Background(), &s)
				if err != nil {
					t.Fatal(err)
				}
				return cells, sum
			}
			cold, coldSum := run(false)
			forked, forkSum := run(true)

			if len(cold) != len(forked) || len(cold) != coldSum.Cells {
				t.Fatalf("cell counts: off %d, on %d, want %d", len(cold), len(forked), coldSum.Cells)
			}
			if coldSum.Forked != 0 || coldSum.Shared != 0 {
				t.Fatalf("fork-off run reused cells: %d forked, %d shared", coldSum.Forked, coldSum.Shared)
			}
			for i := range cold {
				c, f := cold[i], forked[i]
				if c.Point != f.Point || c.Seed != f.Seed {
					t.Fatalf("cell %d order differs: off (%d,%d) vs on (%d,%d)",
						i, c.Point, c.Seed, f.Point, f.Seed)
				}
				if !reflect.DeepEqual(c.Report, f.Report) {
					t.Fatalf("%s cell %d (point %d seed %d, forked=%v at %v): fork report differs from cold\ncold: %+v\nfork: %+v",
						name, i, c.Point, c.Seed, f.Forked, f.ForkAt, c.Report, f.Report)
				}
				if f.Forked && f.ForkAt <= 0 {
					t.Fatalf("%s cell %d forked with non-positive resume time %v", name, i, f.ForkAt)
				}
			}
			for i := range coldSum.Results {
				if c, f := stripProvenance(coldSum.Results[i]), stripProvenance(forkSum.Results[i]); !reflect.DeepEqual(c, f) {
					t.Fatalf("result %d differs:\noff: %+v\non:  %+v", i, c, f)
				}
			}
			if forkSum.Simulated+forkSum.Shared+forkSum.Forked != forkSum.Cells {
				t.Fatalf("fork accounting: %d simulated + %d shared + %d forked != %d cells",
					forkSum.Simulated, forkSum.Shared, forkSum.Forked, forkSum.Cells)
			}
			if forkSum.Forked == 0 {
				t.Fatalf("%s grid forked nothing; fork reuse is vacuous", name)
			}
			t.Logf("%s: %d cells, fork-on simulated %d, shared %d, forked %d",
				name, forkSum.Cells, forkSum.Simulated, forkSum.Shared, forkSum.Forked)
		})
	}
}

// TestPruneDominatedSweep drives a full sweep on a hand-built universe
// engineered so the low-bid config is strictly dominated: daily 10-minute
// spikes to 1.2x on-demand revoke the low bid (effective 1.15x od),
// forcing a migration to on-demand and back, while the high bid rides the
// short spike. Same universe every seed, so dominance holds on seed one
// and pruning cuts the low bid's remaining seeds.
func TestPruneDominatedSweep(t *testing.T) {
	set := flatUniverse(t, 0.2, 1.2, 10*sim.Minute, 5)
	spec := Spec{
		Axes:     []Axis{{Knob: KnobBid, Values: []float64{1.15, 4}}},
		Seeds:    []int64{1, 2, 3},
		Home:     testHome,
		Prune:    true,
		Universe: func(int64) (*market.Set, error) { return set, nil },
	}
	var cells []Cell
	spec.OnCell = func(c Cell) { cells = append(cells, c) }
	sum, err := Run(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}

	low, high := sum.Results[0], sum.Results[1]
	if low.Values[0] != 1.15 || high.Values[0] != 4 {
		t.Fatalf("unexpected point order: %+v", sum.Results)
	}
	if high.Pruned {
		t.Fatalf("the dominating config was pruned: %+v", high)
	}
	if !low.Pruned {
		t.Fatalf("low bid not pruned; mean reports:\nlow: cost %.4f unav %.6f\nhigh: cost %.4f unav %.6f",
			low.Mean.NormalizedCost(), low.Mean.Unavailability(),
			high.Mean.NormalizedCost(), high.Mean.Unavailability())
	}
	if low.DominatedBy != high.Point {
		t.Fatalf("DominatedBy = %d, want %d", low.DominatedBy, high.Point)
	}
	if low.SeedsRun != 1 {
		t.Fatalf("low bid ran %d seeds, want pruned after 1", low.SeedsRun)
	}
	if sum.PrunedConfigs != 1 || sum.PrunedCells != 2 {
		t.Fatalf("summary pruning: configs %d cells %d, want 1 and 2", sum.PrunedConfigs, sum.PrunedCells)
	}
	// Accounting: every cell is simulated, shared, forked, or pruned.
	if sum.Simulated+sum.Shared+sum.Forked+sum.PrunedCells != sum.Cells {
		t.Fatalf("accounting: %d + %d + %d + %d != %d",
			sum.Simulated, sum.Shared, sum.Forked, sum.PrunedCells, sum.Cells)
	}
	// The pruned point stops producing cells after its first seed.
	for _, c := range cells {
		if c.Point == low.Point && c.SeedIdx > 0 {
			t.Fatalf("pruned point produced cell for seed index %d", c.SeedIdx)
		}
	}
}

func TestPruneDominatedUnit(t *testing.T) {
	mk := func(stats ...[2]float64) pointState {
		st := pointState{dominatedBy: -1}
		for _, s := range stats {
			st.stats = append(st.stats, seedStat{cost: s[0], unav: s[1]})
		}
		return st
	}
	states := []pointState{
		mk([2]float64{0.5, 0.001}, [2]float64{0.6, 0.002}), // 0: frontier
		mk([2]float64{0.9, 0.002}, [2]float64{0.9, 0.003}), // 1: dominated by 0
		mk([2]float64{0.4, 0.010}, [2]float64{0.5, 0.010}), // 2: cheaper but less available
		mk([2]float64{0.6, 0.000}, [2]float64{0.7, 0.001}), // 3: most available
		mk([2]float64{0.45, 0.003}, [2]float64{0.7, 0.001}),
		// 5: worse than 0 on means, but wins seed 2 on cost — per-seed
		// verification must refuse the prune.
		mk([2]float64{0.8, 0.002}, [2]float64{0.55, 0.002}),
	}
	cut := pruneDominated(states, 2)
	if !reflect.DeepEqual(cut, []int{1}) {
		t.Fatalf("cut = %v, want [1]", cut)
	}
	// Points 0 and 3 both dominate point 1 per-seed; the pass credits the
	// nearest-cheaper frontier entry, which is 3 (mean cost 0.65 vs 0.9).
	if states[1].dominatedBy != 3 {
		t.Fatalf("dominatedBy = %d, want 3", states[1].dominatedBy)
	}
	// Running again changes nothing: 1 is out, no new dominance appears.
	if again := pruneDominated(states, 2); len(again) != 0 {
		t.Fatalf("second pass cut %v", again)
	}
}

func TestAccumMatchesAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reports := make([]metrics.Report, 7)
	for i := range reports {
		reports[i] = metrics.Report{
			Policy:          "proactive",
			Mechanism:       "ckpt+lazy+live",
			VMs:             4,
			Horizon:         30 * sim.Day,
			Cost:            rng.Float64() * 100,
			BaselineCost:    100,
			CheckpointGB:    rng.Float64() * 50,
			SpotSeconds:     rng.Float64() * 2e6,
			OnDemandSeconds: rng.Float64() * 1e5,
			DowntimeSeconds: rng.Float64() * 300,
			DegradedSeconds: rng.Float64() * 900,
			DownEpisodes:    rng.Intn(20),
			LongestDowntime: sim.Duration(rng.Intn(120)),
			Migrations: metrics.MigrationCounts{
				Forced:      rng.Intn(30),
				Planned:     rng.Intn(30),
				Reverse:     rng.Intn(30),
				CrossRegion: rng.Intn(5),
				MemoryLost:  rng.Intn(5),
			},
			DowntimeLog: []metrics.Interval{{Start: 1, End: 2}},
		}
	}
	var acc reportAccum
	for _, r := range reports {
		acc.add(r)
	}
	want := metrics.Average(reports)
	if got := acc.mean(); !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming mean differs from metrics.Average:\ngot:  %+v\nwant: %+v", got, want)
	}
}
