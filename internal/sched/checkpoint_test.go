package sched

import (
	"testing"

	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// TestCheckpointIOAccounting: the background Yank daemon's writes are
// charged while the service sits on spot servers; baselines and naive
// hosting write nothing.
func TestCheckpointIOAccounting(t *testing.T) {
	set := singleMarketSet(t, []market.Point{{T: 0, Price: 0.01}}, 48*sim.Hour)

	cfg := mustConfig(t)
	r := runScenario(t, set, cfg, 48*sim.Hour)
	if r.CheckpointGB <= 0 {
		t.Fatalf("spot-hosted service wrote no checkpoints: %v", r.CheckpointGB)
	}
	// Rough volume check: initial full image + dirty rate x horizon.
	spec := cfg.Service.VM
	expected := (spec.MemoryGB*1024 + spec.DirtyRateMBps*48*sim.Hour) / 1024
	if r.CheckpointGB < expected*0.7 || r.CheckpointGB > expected*1.1 {
		t.Fatalf("checkpoint volume %.1f GB, expected ~%.1f GB", r.CheckpointGB, expected)
	}

	odCfg := mustConfig(t)
	odCfg.Bidding = OnDemandOnly
	if r := runScenario(t, set, odCfg, 48*sim.Hour); r.CheckpointGB != 0 {
		t.Fatalf("on-demand-only wrote checkpoints: %v", r.CheckpointGB)
	}

	naiveCfg := mustConfig(t)
	naiveCfg.Mechanism = vm.Naive
	if r := runScenario(t, set, naiveCfg, 48*sim.Hour); r.CheckpointGB != 0 {
		t.Fatalf("naive mechanism wrote checkpoints: %v", r.CheckpointGB)
	}
}

// TestCheckpointDaemonStopsOnOnDemand: after a forced migration to
// on-demand the daemon pauses; after the reverse migration back to spot it
// resumes.
func TestCheckpointDaemonStopsOnOnDemand(t *testing.T) {
	// Spike forces the service onto on-demand from ~10000 to ~20000+.
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}, 48*sim.Hour)
	cfg := mustConfig(t)
	full := runScenario(t, set, cfg, 48*sim.Hour)

	flat := singleMarketSet(t, []market.Point{{T: 0, Price: 0.01}}, 48*sim.Hour)
	uninterrupted := runScenario(t, flat, cfg, 48*sim.Hour)

	// The run with an on-demand interlude must write less than the
	// uninterrupted spot run.
	if full.CheckpointGB >= uninterrupted.CheckpointGB {
		t.Fatalf("daemon did not pause on on-demand: %.2f GB vs %.2f GB",
			full.CheckpointGB, uninterrupted.CheckpointGB)
	}
	if full.CheckpointGB <= 0 {
		t.Fatal("daemon never ran")
	}
}
