package sched

import (
	"fmt"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// EventKind classifies scheduler log entries.
type EventKind int

const (
	// EvBoot: initial server acquisition requested.
	EvBoot EventKind = iota
	// EvServiceUp: the service became (or came back) fully operational.
	EvServiceUp
	// EvMigrationStart: a voluntary migration began (destination
	// requested).
	EvMigrationStart
	// EvMigrationDone: a voluntary migration completed.
	EvMigrationDone
	// EvMigrationAborted: a voluntary migration was abandoned (target
	// failed or a revocation preempted it).
	EvMigrationAborted
	// EvWarning: the provider announced a revocation.
	EvWarning
	// EvSuspend: the VMs suspended for the final checkpoint increment (or
	// died, for the naive mechanism).
	EvSuspend
	// EvRestore: the VMs began restoring on the destination.
	EvRestore
	// EvWaiting: pure spot entered the down-and-waiting state.
	EvWaiting
	// EvStopped: the service was voluntarily wound down (Stop).
	EvStopped
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvBoot:
		return "boot"
	case EvServiceUp:
		return "up"
	case EvMigrationStart:
		return "migration-start"
	case EvMigrationDone:
		return "migration-done"
	case EvMigrationAborted:
		return "migration-aborted"
	case EvWarning:
		return "warning"
	case EvSuspend:
		return "suspend"
	case EvRestore:
		return "restore"
	case EvWaiting:
		return "waiting"
	default:
		return "stopped"
	}
}

// Event is one scheduler log entry.
type Event struct {
	At        sim.Time
	Kind      EventKind
	Market    market.ID
	Lifecycle cloud.Lifecycle
	Note      string
}

// String renders one entry.
func (e Event) String() string {
	return fmt.Sprintf("t=%8.0f %-17s %s/%s %s", e.At, e.Kind, e.Market, e.Lifecycle, e.Note)
}

// logEvent appends to the scheduler's event log.
func (s *Scheduler) logEvent(k EventKind, g *serverGroup, note string) {
	ev := Event{At: s.eng.Now(), Kind: k, Note: note}
	if g != nil {
		ev.Market = g.market
		ev.Lifecycle = g.lifecycle
	}
	s.events = append(s.events, ev)
}

// Events returns the scheduler's event log in order. Callers must not
// modify the result.
func (s *Scheduler) Events() []Event { return s.events }

// EventsOf filters the log by kind.
func (s *Scheduler) EventsOf(k EventKind) []Event {
	var out []Event
	for _, e := range s.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
