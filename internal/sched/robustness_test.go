package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestBandedRegimeRobustness runs the policies against the alternative
// price model of Agmon Ben-Yehuda et al. (a banded dynamic reserve price,
// never exceeding on-demand). The paper's mechanisms should degrade
// gracefully: with no possible revocations, proactive and reactive never
// migrate and even pure spot holds perfect availability — the paper's
// machinery only matters in spiky markets, and costs nothing in calm ones.
func TestBandedRegimeRobustness(t *testing.T) {
	rcfg := market.DefaultReserveConfig(21)
	rcfg.Horizon = 15 * sim.Day
	set, err := market.GenerateReserve(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	home := market.ID{Region: "us-east-1a", Type: "small"}

	var reports []struct {
		b Bidding
		r float64
	}
	for _, b := range []Bidding{Reactive, Proactive, PureSpot} {
		cfg := mustConfig(t)
		cfg.Home = home
		cfg.Markets = []market.ID{home}
		cfg.Bidding = b
		rep, err := Run(set, cloud.DefaultParams(21), cfg, 15*sim.Day)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Migrations.Forced != 0 {
			t.Errorf("%v: forced migrations in a banded market: %+v", b, rep.Migrations)
		}
		if rep.DowntimeSeconds != 0 {
			t.Errorf("%v: downtime %v in a banded market", b, rep.DowntimeSeconds)
		}
		// Banded prices average ~47% of on-demand: all policies land there.
		if nc := rep.NormalizedCost(); nc < 0.35 || nc > 0.65 {
			t.Errorf("%v: normalized cost %.3f outside the band", b, nc)
		}
		reports = append(reports, struct {
			b Bidding
			r float64
		}{b, rep.NormalizedCost()})
	}
	// All three policies cost within a whisker of each other.
	for i := 1; i < len(reports); i++ {
		lo, hi := reports[0].r, reports[i].r
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi/lo > 1.1 {
			t.Errorf("policies diverged in a calm market: %v=%.3f vs %v=%.3f",
				reports[0].b, reports[0].r, reports[i].b, reports[i].r)
		}
	}
}

// TestBandedWithSpikesRestoresSeparation: re-adding demand spikes to the
// banded model brings back the paper's proactive-vs-pure-spot split.
func TestBandedWithSpikesRestoresSeparation(t *testing.T) {
	rcfg := market.DefaultReserveConfig(23)
	rcfg.Horizon = 15 * sim.Day
	rcfg.SpikesPerDay = 3
	set, err := market.GenerateReserve(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	home := market.ID{Region: "us-east-1b", Type: "small"}

	run := func(b Bidding) float64 {
		cfg := mustConfig(t)
		cfg.Home = home
		cfg.Markets = []market.ID{home}
		cfg.Bidding = b
		rep, err := Run(set, cloud.DefaultParams(23), cfg, 15*sim.Day)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Unavailability()
	}
	pro := run(Proactive)
	pure := run(PureSpot)
	if pure <= pro {
		t.Fatalf("spiky banded market should separate pure spot (%.5f) from proactive (%.5f)",
			pure, pro)
	}
	if pure < 0.001 {
		t.Fatalf("pure spot unavailability %.5f suspiciously low under spikes", pure)
	}
}
