package sched

import (
	"fmt"
	"math"

	"spothost/internal/cloud"
	"spothost/internal/forecast"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/obs"
	"spothost/internal/sim"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

// phase is the deployment's state-machine state.
type phase int

const (
	phaseBoot    phase = iota // initial acquisition in progress
	phaseSteady               // service running on the current group
	phasePlanned              // voluntary migration in flight
	phaseForced               // forced migration in flight
	phaseWaiting              // pure-spot: down, waiting for the price to drop
	phaseStopped              // service voluntarily wound down (Stop)
)

// placement classifies where the service currently runs for time-share
// accounting.
type placement int

const (
	placedNone placement = iota
	placedSpot
	placedOnDemand
)

// Scheduler hosts one service on the simulated cloud according to a
// bidding policy and a migration mechanism. Create with New, call Start
// once, run the engine, then collect Report.
type Scheduler struct {
	cfg  Config
	prov *cloud.Provider
	eng  *sim.Engine

	phase  phase
	group  *serverGroup // servers currently hosting the service
	target *serverGroup // in-flight destination during migrations

	// Forced-migration bookkeeping.
	forcedImageDone    bool
	forcedMemLost      bool
	forcedRestoreBegun bool
	forcedDeadline     sim.Time

	decisionEv    *sim.Event
	decideFn      func()       // persistent s.decide closure for scheduling
	pendingTimers []*sim.Event // planned-migration timers, cancelable on abort
	volatility    map[market.ID]*forecast.DecayingMoments

	// Hot-path caches: the precomputed cheapest-market envelope over the
	// candidate set (nil under stability-aware bidding, whose volatility
	// term is not precomputable) and the memoized cheapest on-demand
	// market (on-demand prices are constants).
	envCur         *market.EnvelopeCursor
	odBest         market.ID
	odBestSet      bool
	ckptDaemon     *vm.CheckpointDaemon
	ckptWrittenMB  float64
	events         []Event
	started        bool
	stopped        bool
	stoppedAt      sim.Time
	serviceStart   sim.Time
	down           metrics.DowntimeTracker
	migrations     metrics.MigrationCounts
	instances      []*cloud.Instance
	curPlace       placement
	lastPlaceT     sim.Time
	spotSeconds    float64
	odSeconds      float64
	bootFallbackOD bool

	// Fork bookkeeping (fork.go): an append-only journal of downtime-
	// tracker operations, the checkpoint daemon's run epochs, and the
	// forced-warning log. A fork with a different CheckpointBound replays
	// these under its own parameters instead of copying the metric state.
	downJournal  []downOp
	daemonEpochs []daemonEpoch
	forcedWarns  []ForcedWarning

	// Trace bookkeeping: open span handles into the engine's recorder (all
	// zero — no-ops — when tracing is off). track labels this service's
	// lane in multi-service exports (set by Portfolio.Add).
	track     string
	bootSpan  trace.SpanID
	migSpan   trace.SpanID
	migClass  string
	downSpan  trace.SpanID
	downClass string
	restSpan  trace.SpanID
}

// New builds a scheduler over an existing provider. The configuration is
// validated against the provider's market universe.
func New(prov *cloud.Provider, cfg Config) (*Scheduler, error) {
	if cfg.Types == nil {
		cfg.Types = market.DefaultTypes()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prov.Markets().Trace(cfg.Home) == nil {
		return nil, fmt.Errorf("sched: home market %s not in universe", cfg.Home)
	}
	for _, m := range cfg.Markets {
		if prov.Markets().Trace(m) == nil {
			return nil, fmt.Errorf("sched: market %s not in universe", m)
		}
	}
	s := &Scheduler{cfg: cfg, prov: prov, eng: prov.Engine()}
	s.decideFn = s.decide
	return s, nil
}

// useEnvelope gates the precomputed-envelope fast path in bestSpotMarket;
// tests flip it off to prove the fast path picks exactly what the linear
// scan picks.
var useEnvelope = true

// SetEnvelopeFastPath toggles the precomputed-envelope fast path. It exists
// only so cross-package equivalence tests can render experiments against
// the reference linear scan; production code leaves the fast path on.
// Not safe to flip while runs are in flight.
func SetEnvelopeFastPath(on bool) { useEnvelope = on }

// SetTrack labels this service's lane in trace exports; Portfolio.Add sets
// it to the service name. Must be called before Start.
func (s *Scheduler) SetTrack(name string) { s.track = name }

// tracer returns the run's recorder (nil — a valid no-op — when tracing
// is off). Read lazily from the engine so attachment order doesn't matter.
func (s *Scheduler) tracer() *trace.Recorder { return s.eng.Recorder() }

// traceDown opens the down span for an unavailability interval, labeled by
// the migration class that caused it. No-op if one is already open: a
// forced migration preempting a planned one keeps the original interval.
func (s *Scheduler) traceDown(class string) {
	if s.downSpan != 0 {
		return
	}
	s.downClass = class
	s.downSpan = s.tracer().Begin(trace.KindDown, class, s.track, s.eng.Now())
}

// traceUp closes the open down span, if any, and feeds the downtime
// histogram for its class.
func (s *Scheduler) traceUp() {
	if s.downSpan == 0 {
		return
	}
	r := s.tracer()
	d := r.End(s.downSpan, s.eng.Now())
	r.ObserveDowntime(s.downClass, d)
	s.downSpan = 0
}

// Start launches the service. For spot policies it begins in the cheapest
// grantable market (falling back to on-demand, or waiting, per policy).
func (s *Scheduler) Start() {
	if s.cfg.Bidding == PureSpot {
		// Watch all candidate markets so the waiting state can reacquire.
		for _, m := range s.cfg.Markets {
			m := m
			s.prov.SubscribePrice(m, func(t sim.Time, price float64) {
				if s.phase == phaseWaiting {
					s.tryReacquireSpot()
				}
			})
		}
	}
	s.initEnvelope()
	if s.cfg.StabilityPenalty > 0 {
		// Track each candidate market's decayed price volatility online.
		s.volatility = map[market.ID]*forecast.DecayingMoments{}
		now := s.eng.Now()
		for _, m := range s.cfg.Markets {
			m := m
			dm := forecast.NewDecayingMoments(s.cfg.VolatilityHalflife)
			dm.Observe(now, s.prov.SpotPrice(m))
			s.volatility[m] = dm
			s.prov.SubscribePrice(m, func(t sim.Time, price float64) {
				dm.Observe(t, price)
			})
		}
	}
	s.bootstrap()
}

// initEnvelope precomputes the lower envelope of the candidate markets'
// weighted (servers x price) hourly costs. It is memoized on the immutable
// market set, so concurrent runs over the same universe share one build;
// the per-run cursor makes each scan O(1) amortized. No-op under
// stability-aware bidding, whose volatility term is not precomputable.
func (s *Scheduler) initEnvelope() {
	if s.cfg.StabilityPenalty != 0 || !useEnvelope {
		return
	}
	weights := make([]float64, len(s.cfg.Markets))
	for i, m := range s.cfg.Markets {
		weights[i] = float64(s.cfg.serversFor(m.Type))
	}
	if env := s.prov.Markets().Envelope(s.cfg.Markets, weights); env != nil {
		s.envCur = env.Cursor()
	}
}

func (s *Scheduler) bootstrap() {
	s.phase = phaseBoot
	if s.bootSpan == 0 {
		s.bootSpan = s.tracer().Begin(trace.KindBoot, "", s.track, s.eng.Now())
	}
	if s.cfg.Bidding == OnDemandOnly {
		s.bootOnDemand()
		return
	}
	// Start on spot only when it actually undercuts on-demand right now
	// (a spot market can be grantable under a proactive 4x bid while
	// costing more than on-demand). Pure spot has no such fallback.
	budget := s.hourlyCost(s.cheapestOnDemand(), cloud.OnDemand)
	if s.cfg.Bidding == PureSpot {
		budget = math.Inf(1)
	}
	if m, ok := s.bestSpotMarket(budget); ok {
		g, err := s.acquireGroup(m, cloud.Spot, s.bidFor(m), s.cfg.serversFor(m.Type),
			s.bootReady, s.bootFailed)
		if err == nil {
			s.group = g
			s.logEvent(EvBoot, g, "spot bootstrap")
			return
		}
	}
	// No grantable spot market right now.
	if s.cfg.Bidding == PureSpot {
		s.phase = phaseWaiting
		return
	}
	s.bootOnDemand()
}

func (s *Scheduler) bootOnDemand() {
	m := s.cheapestOnDemand()
	g, err := s.acquireGroup(m, cloud.OnDemand, 0, s.cfg.serversFor(m.Type),
		s.bootReady, s.bootFailed)
	if err != nil {
		panic(fmt.Sprintf("sched: on-demand bootstrap failed: %v", err))
	}
	s.bootFallbackOD = true
	s.group = g
	s.logEvent(EvBoot, g, "on-demand bootstrap")
}

func (s *Scheduler) bootReady(g *serverGroup) {
	if s.phase != phaseBoot || g != s.group {
		return
	}
	now := s.eng.Now()
	if !s.started {
		s.started = true
		s.serviceStart = now
		s.lastPlaceT = now
	}
	s.tracer().End(s.bootSpan, now)
	s.bootSpan = 0
	s.setPlacement(s.placementOf(g))
	s.phase = phaseSteady
	s.logEvent(EvServiceUp, g, "boot complete")
	s.startCheckpointing()
	s.scheduleNextDecision()
}

func (s *Scheduler) bootFailed(g *serverGroup) {
	if s.phase != phaseBoot || g != s.group {
		return
	}
	g.abandon(s.prov)
	s.group = nil
	// Retry: pure spot waits; others fall back to on-demand.
	if s.cfg.Bidding == PureSpot {
		s.phase = phaseWaiting
		return
	}
	s.bootstrap()
}

// --- pricing helpers -----------------------------------------------------

// bidFor returns the policy's bid price in market m.
func (s *Scheduler) bidFor(m market.ID) float64 {
	od := s.prov.OnDemandPrice(m)
	switch s.cfg.Bidding {
	case Proactive:
		bid := s.cfg.BidMultiple * od
		if max := s.prov.MaxBid(m); bid > max {
			bid = max
		}
		return bid
	default: // Reactive, PureSpot
		return od
	}
}

// hourlyCost returns the current hourly cost of hosting the whole service
// in market m with the given lifecycle.
func (s *Scheduler) hourlyCost(m market.ID, lc cloud.Lifecycle) float64 {
	n := float64(s.cfg.serversFor(m.Type))
	if lc == cloud.Spot {
		return n * s.prov.SpotPrice(m)
	}
	return n * s.prov.OnDemandPrice(m)
}

// bestSpotMarket returns the candidate spot market with the lowest current
// score that is grantable (price <= bid) and strictly cheaper than budget.
// The score is the hourly cost, plus — under stability-aware bidding — a
// penalty proportional to the market's recent price volatility.
func (s *Scheduler) bestSpotMarket(budget float64) (market.ID, bool) {
	if s.envCur != nil {
		// Fast path: the envelope yields the first-index argmin of the
		// weighted price over ALL candidates. If it is grantable, it is
		// exactly the market the linear scan below would pick (every
		// earlier candidate scores strictly higher); if its score is not
		// under budget, nothing qualifies. Only a non-grantable argmin
		// (price spiked above its own bid) needs the full scan.
		m, price, weighted := s.envCur.At(s.eng.Now())
		if price <= s.bidFor(m) {
			if weighted < budget {
				return m, true
			}
			return market.ID{}, false
		}
	}
	var best market.ID
	bestScore := budget
	found := false
	for _, m := range s.cfg.Markets {
		price := s.prov.SpotPrice(m)
		if price > s.bidFor(m) {
			continue // not grantable now
		}
		score := s.hourlyCost(m, cloud.Spot)
		if s.cfg.StabilityPenalty > 0 {
			if dm := s.volatility[m]; dm != nil {
				n := float64(s.cfg.serversFor(m.Type))
				score = forecast.Score(score, n*dm.Std(s.eng.Now()), s.cfg.StabilityPenalty)
			}
		}
		if score < bestScore {
			bestScore, best, found = score, m, true
		}
	}
	return best, found
}

// cheapestOnDemand returns the candidate (region, type) with the lowest
// on-demand hourly cost for the service; the home market is always a
// candidate.
func (s *Scheduler) cheapestOnDemand() market.ID {
	if s.odBestSet {
		return s.odBest // on-demand prices never change
	}
	best := s.cfg.Home
	bestCost := s.hourlyCost(best, cloud.OnDemand)
	for _, m := range s.cfg.Markets {
		if c := s.hourlyCost(m, cloud.OnDemand); c < bestCost {
			best, bestCost = m, c
		}
	}
	s.odBest, s.odBestSet = best, true
	return best
}

// onDemandFallback returns the on-demand market forced migrations flee to:
// the same region as the dying group (the checkpoint volume is region
// local), same instance type.
func (s *Scheduler) onDemandFallback(from market.ID) market.ID {
	return from
}

// --- placement accounting ------------------------------------------------

func (s *Scheduler) placementOf(g *serverGroup) placement {
	if g == nil {
		return placedNone
	}
	if g.lifecycle == cloud.Spot {
		return placedSpot
	}
	return placedOnDemand
}

// --- background checkpointing ----------------------------------------------

// startCheckpointing runs the Yank-style daemon while the service sits on
// revocable servers; its writes are charged to the run's I/O accounting.
// The daemon is what guarantees the forced-migration save bound the
// timeline models assume. On-demand placements do not checkpoint (they
// cannot be revoked), and the naive strawman never does.
func (s *Scheduler) startCheckpointing() {
	s.stopCheckpointing()
	if s.cfg.Mechanism == vm.Naive {
		return
	}
	if s.group == nil || s.group.lifecycle != cloud.Spot {
		return
	}
	d, err := vm.NewCheckpointDaemon(s.eng, s.cfg.Service.VM, s.cfg.VMParams)
	if err != nil {
		return // validated configs cannot reach this
	}
	count := float64(s.cfg.Service.Count)
	d.OnWrite(func(mb float64) { s.ckptWrittenMB += mb * count })
	if err := d.Start(); err == nil {
		s.ckptDaemon = d
		s.daemonEpochs = append(s.daemonEpochs, daemonEpoch{start: s.eng.Now(), stop: -1})
	}
}

// stopCheckpointing halts the active daemon, if any.
func (s *Scheduler) stopCheckpointing() {
	if s.ckptDaemon != nil {
		s.ckptDaemon.Stop()
		s.ckptDaemon = nil
		s.daemonEpochs[len(s.daemonEpochs)-1].stop = s.eng.Now()
	}
}

// setPlacement closes the current placement interval and opens a new one.
func (s *Scheduler) setPlacement(p placement) {
	now := s.eng.Now()
	if s.started {
		dt := now - s.lastPlaceT
		switch s.curPlace {
		case placedSpot:
			s.spotSeconds += dt
		case placedOnDemand:
			s.odSeconds += dt
		}
	}
	s.curPlace = p
	s.lastPlaceT = now
}

// --- voluntary migration decisions ----------------------------------------

// decisionLead estimates how long before a billing boundary the decision
// must run so a migration can complete by the boundary: worst-case
// destination startup plus worst-case migration duration plus slack.
func (s *Scheduler) decisionLead() sim.Duration {
	// Startup: spot acquisitions are the slow case (~4 min).
	startup := 300.0
	// Migration duration: evaluate the planned timeline against the worst
	// candidate link.
	worst := 0.0
	cur := s.cfg.Home.Region
	if s.group != nil {
		cur = s.group.market.Region
	}
	for _, m := range s.cfg.Markets {
		var link *vm.WANLink
		if !market.SameRegionClass(cur, m.Region) {
			l := s.cfg.VMParams.Link(cur, m.Region)
			link = &l
		}
		tl := vm.PlannedTimeline(s.cfg.Service.VM, s.cfg.Mechanism, s.cfg.VMParams, link)
		if tl.Duration > worst {
			worst = tl.Duration
		}
	}
	return startup + worst + float64(s.cfg.DecisionSlack)
}

// scheduleNextDecision arms the placement check before the current group's
// next billing-hour boundary.
func (s *Scheduler) scheduleNextDecision() {
	if s.cfg.Bidding == OnDemandOnly || s.cfg.Bidding == PureSpot {
		return // no voluntary movement
	}
	if s.phase != phaseSteady || s.group == nil || len(s.group.insts) == 0 {
		return
	}
	if s.decisionEv != nil {
		s.eng.Cancel(s.decisionEv)
	}
	now := s.eng.Now()
	anchor := s.group.insts[0]
	boundary := anchor.NextHourBoundary(now)
	at := boundary - s.decisionLead()
	for at <= now {
		boundary += sim.Hour
		at = boundary - s.decisionLead()
	}
	s.decisionEv = s.eng.Schedule(at, s.decideFn)
}

// decide evaluates the market and begins a voluntary migration when a
// sufficiently cheaper placement exists.
func (s *Scheduler) decide() {
	if s.phase != phaseSteady || s.group == nil {
		return
	}
	curLC := s.group.lifecycle
	curCost := s.hourlyCost(s.group.market, curLC)

	odM := s.cheapestOnDemand()
	odCost := s.hourlyCost(odM, cloud.OnDemand)
	spotM, spotOK := s.bestSpotMarket(math.Inf(1))
	// Never move to the market we're already in.
	if spotOK && curLC == cloud.Spot && spotM == s.group.market {
		spotOK = false
	}
	spotCost := math.Inf(1)
	if spotOK {
		spotCost = s.hourlyCost(spotM, cloud.Spot)
	}

	// Reactive policy never *plans* a move off spot: its bid equals the
	// on-demand price, so the provider revokes it first. It only performs
	// reverse migrations (and, with multiple markets, spot->spot moves are
	// likewise proactive-only).
	if s.cfg.Bidding == Reactive && curLC == cloud.Spot {
		s.scheduleNextDecision()
		return
	}

	improve := func(c float64) bool { return c < curCost*(1-s.cfg.Hysteresis) }

	switch {
	case spotOK && spotCost <= odCost && improve(spotCost):
		s.beginPlannedMigration(spotM, cloud.Spot)
	case curLC == cloud.Spot && improve(odCost):
		// No cheaper spot market: on-demand is the better home.
		s.beginPlannedMigration(odM, cloud.OnDemand)
	default:
		s.scheduleNextDecision()
	}
}

// beginPlannedMigration acquires the destination group and, once it is
// ready, runs the voluntary migration timeline.
func (s *Scheduler) beginPlannedMigration(m market.ID, lc cloud.Lifecycle) {
	bid := 0.0
	if lc == cloud.Spot {
		bid = s.bidFor(m)
	}
	g, err := s.acquireGroup(m, lc, bid, s.cfg.serversFor(m.Type),
		s.plannedTargetReady, s.plannedTargetFailed)
	if err != nil {
		// Race: the target market moved; stay put and re-evaluate at the
		// next boundary.
		s.scheduleNextDecision()
		return
	}
	s.phase = phasePlanned
	s.target = g
	s.migClass = "planned"
	if s.group.lifecycle == cloud.OnDemand && lc == cloud.Spot {
		s.migClass = "reverse"
	}
	s.migSpan = s.tracer().Begin(trace.KindMigration, s.migClass, s.track, s.eng.Now())
	s.logEvent(EvMigrationStart, g, "voluntary destination requested")
}

func (s *Scheduler) plannedTargetFailed(g *serverGroup) {
	if s.phase != phasePlanned || g != s.target {
		return
	}
	g.abandon(s.prov)
	s.target = nil
	s.phase = phaseSteady
	s.tracer().EndWith(s.migSpan, s.eng.Now(), "aborted")
	s.migSpan = 0
	s.logEvent(EvMigrationAborted, g, "destination failed before hand-off")
	s.scheduleNextDecision()
}

func (s *Scheduler) plannedTargetReady(g *serverGroup) {
	if s.phase != phasePlanned || g != s.target {
		return
	}
	now := s.eng.Now()
	var link *vm.WANLink
	cross := !market.SameRegionClass(s.group.market.Region, g.market.Region)
	if cross {
		l := s.cfg.VMParams.Link(s.group.market.Region, g.market.Region)
		link = &l
	}
	tl := vm.PlannedTimeline(s.cfg.Service.VM, s.cfg.Mechanism, s.cfg.VMParams, link)

	downAt := now + (tl.Duration - tl.Downtime)
	doneAt := now + tl.Duration
	reverse := s.group.lifecycle == cloud.OnDemand && g.lifecycle == cloud.Spot

	ev1 := s.eng.Schedule(downAt, func() {
		if s.phase == phasePlanned && s.target == g && tl.Downtime > 0 {
			s.markDown(s.eng.Now())
			s.traceDown(s.migClass)
		}
	})
	ev2 := s.eng.Schedule(doneAt, func() {
		if s.phase != phasePlanned || s.target != g {
			return
		}
		s.markUp(s.eng.Now())
		s.traceUp()
		s.addDegraded(tl.Degraded)
		if reverse {
			s.migrations.Reverse++
		} else {
			s.migrations.Planned++
		}
		if cross {
			s.migrations.CrossRegion++
		}
		if tl.MemoryLost {
			s.migrations.MemoryLost++
		}
		r := s.tracer()
		r.ObserveMigration(s.migClass, r.End(s.migSpan, s.eng.Now()))
		s.migSpan = 0
		if o := s.eng.Obs(); o != nil {
			o.Count(float64(s.eng.Now()), obs.CountMigration)
		}
		old := s.group
		s.group = g
		s.target = nil
		s.pendingTimers = nil
		old.abandon(s.prov)
		s.setPlacement(s.placementOf(g))
		s.phase = phaseSteady
		if reverse {
			s.logEvent(EvMigrationDone, g, "reverse migration complete")
		} else {
			s.logEvent(EvMigrationDone, g, "planned migration complete")
		}
		s.startCheckpointing()
		s.scheduleNextDecision()
	})
	s.pendingTimers = []*sim.Event{ev1, ev2}
}

// cancelPlanned aborts an in-flight voluntary migration (used when a
// forced migration preempts it).
func (s *Scheduler) cancelPlanned() {
	for _, ev := range s.pendingTimers {
		s.eng.Cancel(ev)
	}
	s.pendingTimers = nil
	if s.target != nil {
		s.target.abandon(s.prov)
		s.target = nil
	}
	s.tracer().EndWith(s.migSpan, s.eng.Now(), "aborted")
	s.migSpan = 0
}

// --- forced migration ------------------------------------------------------

// onWarning handles a revocation warning on any group member.
func (s *Scheduler) onWarning(g *serverGroup, in *cloud.Instance, deadline sim.Time) {
	if g.abandoned {
		return
	}
	switch {
	case g == s.group:
		if !g.ready {
			// The group died during acquisition: this is a failed boot,
			// not a forced migration (the service never ran here).
			s.onTerminated(g, in, cloud.ReasonRevoked)
			return
		}
		// Current servers are dying.
		if s.phase == phaseForced {
			return // already handling (other members of the same group)
		}
		if s.phase == phasePlanned {
			s.cancelPlanned()
		}
		s.beginForcedMigration(deadline)
	case g == s.target:
		// The voluntary destination is dying before we moved: abandon it
		// and stay put.
		if s.phase == phasePlanned {
			s.plannedTargetFailed(g)
		} else if s.phase == phaseForced {
			// Forced destination dying (it was a spot group adopted as a
			// destination — should not happen since forced targets are
			// on-demand; guard anyway).
			s.retargetForced()
		}
	default:
		// Warning for an abandoned group: nothing to do.
	}
}

// beginForcedMigration runs the forced path: request on-demand servers in
// the same region immediately (typical model) or at termination
// (pessimistic), suspend the VMs at the last safe moment, and restore when
// both the image and the destination are ready.
//
// Pure-spot never falls back to on-demand: the service goes down at
// suspend time and waits for the market.
func (s *Scheduler) beginForcedMigration(deadline sim.Time) {
	now := s.eng.Now()
	s.phase = phaseForced
	s.forcedDeadline = deadline
	s.forcedImageDone = false
	s.forcedRestoreBegun = false
	s.tracer().Instant(trace.KindWarning, "", s.track, now)
	s.migClass = "forced"
	s.migSpan = s.tracer().Begin(trace.KindMigration, "forced", s.track, now)
	s.logEvent(EvWarning, s.group, fmt.Sprintf("revocation warning, %.0fs grace", deadline-now))
	if s.decisionEv != nil {
		s.eng.Cancel(s.decisionEv)
		s.decisionEv = nil
	}
	s.migrations.Forced++

	// The dying VMs suspend inside the grace window; background
	// checkpointing on them is over.
	s.stopCheckpointing()

	grace := deadline - now
	tau := float64(s.cfg.VMParams.CheckpointBound)
	naive := s.cfg.Mechanism == vm.Naive
	s.forcedWarns = append(s.forcedWarns, ForcedWarning{At: now, Grace: grace})
	s.forcedMemLost = naive || grace < tau
	if s.forcedMemLost {
		s.migrations.MemoryLost++
	}

	// Suspend at the last safe moment (bounded incremental save), or lose
	// the memory state at termination.
	downClass := "forced"
	if s.cfg.Bidding == PureSpot {
		// Pure spot has no fallback: the interval that starts at suspend is
		// time spent waiting for the market, not migrating.
		downClass = "waiting"
	}
	if s.forcedMemLost {
		s.eng.Post(deadline, func() {
			s.markForcedDown(deadline, grace, true)
			s.tracer().Instant(trace.KindSuspend, "memlost", s.track, s.eng.Now())
			s.traceDown(downClass)
			s.logEvent(EvSuspend, s.group, "terminated without checkpoint (memory lost)")
			s.forcedImageDone = true // nothing to save; disk-only restart
			s.maybeRestore()
		})
	} else {
		s.eng.Post(deadline-tau, func() {
			s.markForcedDown(deadline, grace, false)
			s.tracer().Instant(trace.KindSuspend, "checkpoint", s.track, s.eng.Now())
			s.traceDown(downClass)
			s.logEvent(EvSuspend, s.group, "suspended for final increment")
		})
		s.eng.Post(deadline, func() {
			s.forcedImageDone = true
			s.maybeRestore()
		})
	}

	if s.cfg.Bidding == PureSpot {
		// No on-demand fallback: enter the waiting state at termination.
		s.eng.Post(deadline, func() {
			s.phase = phaseWaiting
			s.setPlacement(placedNone)
			s.tracer().EndWith(s.migSpan, s.eng.Now(), "pure-spot waiting")
			s.migSpan = 0
			s.logEvent(EvWaiting, nil, "pure spot: waiting for the price to drop")
			s.tryReacquireSpot()
		})
		return
	}

	requestDest := func() {
		m := s.onDemandFallback(s.group.market)
		g, err := s.acquireGroup(m, cloud.OnDemand, 0, s.cfg.serversFor(m.Type),
			s.forcedTargetReady, func(*serverGroup) { s.retargetForced() })
		if err != nil {
			panic(fmt.Sprintf("sched: forced on-demand acquisition failed: %v", err))
		}
		s.target = g
	}
	// The naive strawman does not react to the warning at all: it only
	// requests a replacement after the server is gone (Fig. 3). The
	// pessimistic parameter set likewise forbids overlapping acquisition
	// with the grace window.
	if s.cfg.VMParams.AcquireOverlap && !naive {
		requestDest()
	} else {
		s.eng.Post(deadline, requestDest)
	}
}

// retargetForced replaces a failed forced destination with a fresh
// on-demand group.
func (s *Scheduler) retargetForced() {
	if s.phase != phaseForced {
		return
	}
	if s.target != nil {
		s.target.abandon(s.prov)
		s.target = nil
	}
	m := s.onDemandFallback(s.group.market)
	g, err := s.acquireGroup(m, cloud.OnDemand, 0, s.cfg.serversFor(m.Type),
		s.forcedTargetReady, func(*serverGroup) { s.retargetForced() })
	if err != nil {
		panic(fmt.Sprintf("sched: forced on-demand reacquisition failed: %v", err))
	}
	s.target = g
}

func (s *Scheduler) forcedTargetReady(g *serverGroup) {
	if s.phase != phaseForced || g != s.target {
		return
	}
	s.maybeRestore()
}

// maybeRestore begins the restore once both the checkpoint image is
// complete and the destination group is running.
func (s *Scheduler) maybeRestore() {
	if s.phase != phaseForced || !s.forcedImageDone || s.forcedRestoreBegun {
		return
	}
	if s.target == nil || !s.target.ready {
		return
	}
	s.forcedRestoreBegun = true
	now := s.eng.Now()
	var downtime sim.Duration
	var degraded sim.Duration
	p := s.cfg.VMParams
	switch {
	case s.forcedMemLost:
		downtime = p.BootTime
	case s.cfg.Mechanism.LazyRestore():
		downtime = p.LazyRestoreDowntime
		degraded = p.FullRestoreTime(s.cfg.Service.VM)
	default:
		downtime = p.FullRestoreTime(s.cfg.Service.VM)
	}
	g := s.target
	s.restSpan = s.tracer().Begin(trace.KindRestore, "", s.track, now)
	s.logEvent(EvRestore, g, fmt.Sprintf("restore started, %.0fs to resume", downtime))
	s.eng.Post(now+downtime, func() {
		if s.phase != phaseForced || s.target != g {
			return
		}
		s.markUp(s.eng.Now())
		s.addDegraded(degraded)
		r := s.tracer()
		r.ObserveRestore(r.End(s.restSpan, s.eng.Now()))
		s.restSpan = 0
		s.traceUp()
		r.ObserveMigration("forced", r.End(s.migSpan, s.eng.Now()))
		s.migSpan = 0
		if o := s.eng.Obs(); o != nil {
			o.Count(float64(s.eng.Now()), obs.CountMigration)
		}
		s.group = g
		s.target = nil
		s.setPlacement(s.placementOf(g))
		s.phase = phaseSteady
		s.logEvent(EvServiceUp, g, "forced migration complete")
		s.startCheckpointing()
		s.scheduleNextDecision()
	})
}

// --- pure-spot waiting -----------------------------------------------------

// tryReacquireSpot attempts to come back from the waiting state. Called on
// every price change of a candidate market (and at entry to the state).
func (s *Scheduler) tryReacquireSpot() {
	if s.phase != phaseWaiting {
		return
	}
	m, ok := s.bestSpotMarket(math.Inf(1))
	if !ok {
		return
	}
	g, err := s.acquireGroup(m, cloud.Spot, s.bidFor(m), s.cfg.serversFor(m.Type),
		s.waitingReady, s.waitingFailed)
	if err != nil {
		return // price moved between the event and the request; keep waiting
	}
	s.phase = phaseBoot // reuse boot handling semantics for "ready"
	s.group = g
}

func (s *Scheduler) waitingReady(g *serverGroup) {
	if g != s.group {
		return
	}
	now := s.eng.Now()
	// Restore from the last checkpoint on the re-acquired spot server.
	var downtime sim.Duration
	var degraded sim.Duration
	p := s.cfg.VMParams
	switch {
	case s.cfg.Mechanism == vm.Naive:
		downtime = p.BootTime
	case s.cfg.Mechanism.LazyRestore():
		downtime = p.LazyRestoreDowntime
		degraded = p.FullRestoreTime(s.cfg.Service.VM)
	default:
		downtime = p.FullRestoreTime(s.cfg.Service.VM)
	}
	if !s.started {
		// First launch: no restore needed, nothing was running before.
		s.bootReady(g)
		return
	}
	s.restSpan = s.tracer().Begin(trace.KindRestore, "", s.track, now)
	s.eng.Post(now+downtime, func() {
		if s.group != g || g.abandoned || !g.alive() {
			return // re-acquired server was lost again mid-restore
		}
		s.markUp(s.eng.Now())
		s.addDegraded(degraded)
		r := s.tracer()
		r.ObserveRestore(r.End(s.restSpan, s.eng.Now()))
		s.restSpan = 0
		s.traceUp()
		s.setPlacement(placedSpot)
		s.phase = phaseSteady
		s.logEvent(EvServiceUp, g, "re-acquired spot capacity")
		s.startCheckpointing()
	})
}

func (s *Scheduler) waitingFailed(g *serverGroup) {
	if g != s.group {
		return
	}
	g.abandon(s.prov)
	s.group = nil
	s.phase = phaseWaiting
}

// --- terminations ----------------------------------------------------------

// onTerminated keeps group failure detection honest: if a member of a
// not-yet-ready group dies (never granted, or revoked before the rest
// booted), the whole acquisition failed.
func (s *Scheduler) onTerminated(g *serverGroup, in *cloud.Instance, reason cloud.TerminationReason) {
	if g.abandoned || g.ready {
		return
	}
	if reason == cloud.ReasonUser {
		return // our own abandon
	}
	if g.onFailed != nil {
		failed := g.onFailed
		g.onFailed = nil // fire once
		failed(g)
	}
}

// --- reporting ---------------------------------------------------------------

// Report assembles the run outcome as of the engine's current time (or
// the stop instant for stopped services).
func (s *Scheduler) Report() metrics.Report {
	now := s.eng.Now()
	if s.stopped {
		now = s.stoppedAt
	} else {
		s.setPlacement(s.curPlace) // close the open placement interval
	}

	cost := 0.0
	for _, in := range s.instances {
		cost += in.Charged()
	}
	horizon := sim.Duration(0)
	if s.started {
		horizon = now - s.serviceStart
	}
	// Baseline: the same service on on-demand servers of the home type
	// for the same horizon.
	n := float64(s.cfg.serversFor(s.cfg.Home.Type))
	hours := math.Ceil(float64(horizon) / sim.Hour)
	baseline := n * s.prov.OnDemandPrice(s.cfg.Home) * hours

	return metrics.Report{
		Policy:          s.cfg.Bidding.String(),
		Mechanism:       s.cfg.Mechanism.String(),
		Horizon:         horizon,
		VMs:             s.cfg.Service.Count,
		Cost:            cost,
		BaselineCost:    baseline,
		SpotSeconds:     s.spotSeconds,
		OnDemandSeconds: s.odSeconds,
		DowntimeSeconds: float64(s.down.Total(now)),
		DegradedSeconds: float64(s.down.Degraded()),
		DownEpisodes:    s.down.Episodes(),
		LongestDowntime: s.down.Longest(),
		Migrations:      s.migrations,
		DowntimeLog:     s.down.Log(),
		CheckpointGB:    s.ckptWrittenMB / 1024,
	}
}

// DowntimeLog returns the closed downtime episodes recorded so far.
func (s *Scheduler) DowntimeLog() []metrics.Interval { return s.down.Log() }

// Stop winds the service down voluntarily: pending decisions are
// cancelled, in-flight migrations abandoned, every live instance
// terminated, and accounting closed. A stopped service accrues neither
// cost nor downtime; its report covers launch-to-stop. Idempotent.
func (s *Scheduler) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.stoppedAt = s.eng.Now()
	if s.decisionEv != nil {
		s.eng.Cancel(s.decisionEv)
		s.decisionEv = nil
	}
	s.cancelPlanned()
	s.stopCheckpointing()
	if s.group != nil {
		s.group.abandon(s.prov)
		s.group = nil
	}
	// An intentional shutdown is not an availability violation: close any
	// open downtime episode at the stop instant.
	s.markUp(s.stoppedAt)
	s.traceUp()
	s.tracer().End(s.bootSpan, s.stoppedAt)
	s.bootSpan = 0
	s.setPlacement(placedNone)
	s.phase = phaseStopped
	s.logEvent(EvStopped, nil, "service stopped")
}

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Started reports whether the service has come up at least once.
func (s *Scheduler) Started() bool { return s.started }

// Phase returns a debug label of the current state.
func (s *Scheduler) Phase() string {
	switch s.phase {
	case phaseBoot:
		return "boot"
	case phaseSteady:
		return "steady"
	case phasePlanned:
		return "planned-migration"
	case phaseForced:
		return "forced-migration"
	case phaseWaiting:
		return "waiting"
	default:
		return "stopped"
	}
}
