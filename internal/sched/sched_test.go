package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

var home = market.ID{Region: "us-east-1a", Type: "small"}

// fixedCloudParams gives deterministic allocation latencies: 95 s
// on-demand, 240 s spot.
func fixedCloudParams() cloud.Params {
	p := cloud.DefaultParams(1)
	p.StartupCV = 0
	p.OnDemandStartupMean = map[string]sim.Duration{cloud.DefaultStartupClass: 95}
	p.SpotStartupMean = map[string]sim.Duration{cloud.DefaultStartupClass: 240}
	return p
}

// singleMarketSet builds a one-market universe with a given price script.
func singleMarketSet(t *testing.T, pts []market.Point, end sim.Time) *market.Set {
	t.Helper()
	tr, err := market.NewTrace(home, pts, end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := market.NewSet([]*market.Trace{tr}, map[market.ID]float64{home: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runScenario(t *testing.T, set *market.Set, cfg Config, horizon sim.Duration) metrics.Report {
	t.Helper()
	r, err := Run(set, fixedCloudParams(), cfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	base := mustConfig(t)
	mutations := []func(*Config){
		func(c *Config) { c.Service.Count = 0 },
		func(c *Config) { c.Service.VM.MemoryGB = 0 },
		func(c *Config) { c.Markets = nil },
		func(c *Config) { c.Home.Type = "phantom" },
		func(c *Config) { c.Markets = []market.ID{{Region: "us-east-1a", Type: "phantom"}} },
		func(c *Config) { c.BidMultiple = 1 },
		func(c *Config) { c.Hysteresis = 1 },
		func(c *Config) { c.Service.VM.Units = 8 }, // small market can't hold it
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
}

func TestNewRejectsUnknownMarkets(t *testing.T) {
	set := singleMarketSet(t, []market.Point{{T: 0, Price: 0.01}}, 10*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	cfg := mustConfig(t)
	cfg.Home = market.ID{Region: "mars-1a", Type: "small"}
	cfg.Markets = []market.ID{cfg.Home}
	if _, err := New(prov, cfg); err == nil {
		t.Fatal("unknown home market accepted")
	}
}

// TestOnDemandOnlyBaseline: the baseline policy pays full price and never
// goes down.
func TestOnDemandOnlyBaseline(t *testing.T) {
	set := singleMarketSet(t, []market.Point{{T: 0, Price: 0.01}}, 50*sim.Hour)
	cfg := mustConfig(t)
	cfg.Bidding = OnDemandOnly
	r := runScenario(t, set, cfg, 50*sim.Hour)

	if r.DowntimeSeconds != 0 {
		t.Fatalf("on-demand-only downtime = %v", r.DowntimeSeconds)
	}
	if r.Migrations.Total() != 0 {
		t.Fatalf("baseline migrated: %+v", r.Migrations)
	}
	if got := r.NormalizedCost(); got < 0.95 || got > 1.05 {
		t.Fatalf("normalized cost = %v, want ~1", got)
	}
	if r.SpotSeconds != 0 {
		t.Fatal("baseline used spot")
	}
}

// TestProactivePlannedAndReverse: a mid-band spike (above on-demand, below
// the 4x bid) triggers a planned migration to on-demand near the billing
// boundary and a reverse migration once the price falls.
func TestProactivePlannedAndReverse(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.10}, // > od 0.06, < bid 0.24
		{T: 30000, Price: 0.01},
	}, 50*sim.Hour)
	cfg := mustConfig(t)
	r := runScenario(t, set, cfg, 50*sim.Hour)

	if r.Migrations.Forced != 0 {
		t.Fatalf("proactive was forced: %+v", r.Migrations)
	}
	if r.Migrations.Planned < 1 {
		t.Fatalf("no planned migration: %+v", r.Migrations)
	}
	if r.Migrations.Reverse < 1 {
		t.Fatalf("no reverse migration: %+v", r.Migrations)
	}
	// Live hand-offs only: downtime well under a handful of seconds.
	if r.DowntimeSeconds > 5 {
		t.Fatalf("downtime = %.2f s, want sub-5s live hand-offs", r.DowntimeSeconds)
	}
	if r.Cost >= r.BaselineCost {
		t.Fatalf("cost %v not below baseline %v", r.Cost, r.BaselineCost)
	}
	// Most of the time is on spot.
	if r.SpotFraction() < 0.8 {
		t.Fatalf("spot fraction = %v", r.SpotFraction())
	}
	if r.OnDemandSeconds == 0 {
		t.Fatal("never used on-demand despite the spike")
	}
}

// TestProactiveForced: a sharp spike above the 4x bid revokes the server;
// the scheduler checkpoints within the grace window and lazily restores on
// an on-demand server acquired during the warning.
func TestProactiveForced(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30}, // > 4x od = 0.24
		{T: 20000, Price: 0.01},
	}, 50*sim.Hour)
	cfg := mustConfig(t)
	r := runScenario(t, set, cfg, 50*sim.Hour)

	if r.Migrations.Forced != 1 {
		t.Fatalf("forced = %d, want 1", r.Migrations.Forced)
	}
	if r.Migrations.MemoryLost != 0 {
		t.Fatal("memory lost despite checkpointing")
	}
	// Downtime = checkpoint bound (3 s) + lazy restore (20 s): the
	// on-demand server (95 s) arrives inside the 120 s grace window.
	if r.DowntimeSeconds < 20 || r.DowntimeSeconds > 30 {
		t.Fatalf("forced downtime = %.1f s, want ~23 s", r.DowntimeSeconds)
	}
	if r.DegradedSeconds <= 0 {
		t.Fatal("lazy restore should leave degraded time")
	}
	if r.Migrations.Reverse < 1 {
		t.Fatalf("no reverse migration after the spike: %+v", r.Migrations)
	}
}

// TestReactiveForcedOnMidBandSpike: the same mid-band spike that proactive
// handles with a planned live migration forces reactive (bid = on-demand)
// into a revocation — the Fig. 6(b) mechanism.
func TestReactiveForcedOnMidBandSpike(t *testing.T) {
	pts := []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.10},
		{T: 30000, Price: 0.01},
	}
	cfgP := mustConfig(t)
	cfgR := mustConfig(t)
	cfgR.Bidding = Reactive

	rp := runScenario(t, singleMarketSet(t, pts, 50*sim.Hour), cfgP, 50*sim.Hour)
	rr := runScenario(t, singleMarketSet(t, pts, 50*sim.Hour), cfgR, 50*sim.Hour)

	if rr.Migrations.Forced != 1 {
		t.Fatalf("reactive forced = %d, want 1", rr.Migrations.Forced)
	}
	if rp.Migrations.Forced != 0 {
		t.Fatalf("proactive forced = %d, want 0", rp.Migrations.Forced)
	}
	if rr.DowntimeSeconds <= rp.DowntimeSeconds {
		t.Fatalf("reactive downtime %.2f should exceed proactive %.2f",
			rr.DowntimeSeconds, rp.DowntimeSeconds)
	}
	if rr.Migrations.Reverse < 1 {
		t.Fatalf("reactive never reversed: %+v", rr.Migrations)
	}
}

// TestPureSpotRidesOutSpike: pure spot has no on-demand fallback — the
// service stays down for the whole spike (Fig. 11(b)).
func TestPureSpotRidesOutSpike(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}, 50*sim.Hour)
	cfg := mustConfig(t)
	cfg.Bidding = PureSpot
	r := runScenario(t, set, cfg, 50*sim.Hour)

	// Down from suspend (~9997-10120) until price drop + spot startup
	// (240 s) + lazy restore (20 s): roughly 10400-10600 s.
	if r.DowntimeSeconds < 9000 || r.DowntimeSeconds > 11500 {
		t.Fatalf("pure-spot downtime = %.0f s, want ~10300 s", r.DowntimeSeconds)
	}
	if r.OnDemandSeconds != 0 {
		t.Fatal("pure spot used on-demand")
	}
	if r.Cost >= r.BaselineCost {
		t.Fatalf("pure spot cost %v should be far below baseline %v", r.Cost, r.BaselineCost)
	}
}

// TestNaiveMechanism: the Fig. 3 strawman ignores the warning, loses
// memory, and waits out the on-demand acquisition plus a cold boot.
func TestNaiveMechanism(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}, 50*sim.Hour)
	cfg := mustConfig(t)
	cfg.Bidding = Reactive
	cfg.Mechanism = vm.Naive
	r := runScenario(t, set, cfg, 50*sim.Hour)

	if r.Migrations.MemoryLost < 1 {
		t.Fatal("naive restart should lose memory")
	}
	// Downtime: revocation episode = on-demand startup (95 s) + cold boot
	// (45 s), plus the later reverse migration which, naively, is another
	// reboot (45 s): ~185 s total.
	if r.DowntimeSeconds < 170 || r.DowntimeSeconds > 200 {
		t.Fatalf("naive downtime = %.1f s, want ~185 s", r.DowntimeSeconds)
	}
	if r.DownEpisodes < 2 {
		t.Fatalf("episodes = %d, want revocation + naive reverse", r.DownEpisodes)
	}
}

// TestMechanismDowntimeOrdering runs the same script — one forced
// migration (sharp spike) plus one reverse migration (price recovery) —
// under all four mechanism combinations and checks the paper's Fig. 7
// ranking: CKPT > CKPT+Live > CKPT LR > CKPT LR+Live.
func TestMechanismDowntimeOrdering(t *testing.T) {
	pts := []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}
	down := map[vm.Mechanism]float64{}
	for _, m := range vm.Mechanisms() {
		cfg := mustConfig(t)
		cfg.Mechanism = m
		r := runScenario(t, singleMarketSet(t, pts, 40*sim.Hour), cfg, 40*sim.Hour)
		down[m] = r.DowntimeSeconds
	}
	// Approximate per-episode downtimes for the 1.4 GB VM:
	//   forced:  bound(3) + eager restore(~87)  vs  bound(3) + lazy(20)
	//   reverse: same via checkpoint            vs  live hand-off (~0.5)
	if !(down[vm.CKPT] > down[vm.CKPTLive] &&
		down[vm.CKPTLive] > down[vm.CKPTLazy] &&
		down[vm.CKPTLazy] > down[vm.CKPTLazyLive]) {
		t.Fatalf("Fig. 7 ordering violated: CKPT=%.1f CKPT+Live=%.1f CKPT LR=%.1f CKPT LR+Live=%.1f",
			down[vm.CKPT], down[vm.CKPTLive], down[vm.CKPTLazy], down[vm.CKPTLazyLive])
	}
	// Live migration removes the voluntary hand-off cost in both restore
	// modes — a large win over eager restores (~90 s), a small one over
	// pre-staged lazy restores (~5 s).
	gapEager := down[vm.CKPT] - down[vm.CKPTLive]
	gapLazy := down[vm.CKPTLazy] - down[vm.CKPTLazyLive]
	if gapEager <= 0 || gapLazy <= 0 {
		t.Fatalf("live migration did not reduce voluntary downtime: %+v", down)
	}
	if gapEager < gapLazy {
		t.Fatalf("eager voluntary hand-offs should cost more than lazy ones: %.1f vs %.1f",
			gapEager, gapLazy)
	}
}

// TestMultiMarketPacking: with a cheaper big server available, the fleet
// packs onto it; when that market spikes, it migrates to the other spot
// market rather than on-demand (Sec. 4.4's planned-migration step).
func TestMultiMarketPacking(t *testing.T) {
	small := home
	large := market.ID{Region: "us-east-1a", Type: "large"}
	end := sim.Time(60 * sim.Hour)
	trS, err := market.NewTrace(small, []market.Point{{T: 0, Price: 0.02}}, end)
	if err != nil {
		t.Fatal(err)
	}
	trL, err := market.NewTrace(large, []market.Point{
		{T: 0, Price: 0.05},
		{T: 15000, Price: 0.40}, // large spikes; small now cheaper (4x0.02=0.08)
		{T: 40000, Price: 0.05},
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{trS, trL},
		map[market.ID]float64{small: 0.06, large: 0.24})
	if err != nil {
		t.Fatal(err)
	}

	cfg := mustConfig(t)
	cfg.Service = ServiceSpec{
		VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
		Count: 4,
	}
	cfg.Markets = []market.ID{small, large}

	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(10000)
	// Bootstrapped onto one large server (hourly 0.05 beats 4 smalls at
	// 0.08).
	if s.group == nil || s.group.market != large || len(s.group.insts) != 1 {
		t.Fatalf("expected 1 large server, got %+v", s.group)
	}
	eng.RunUntil(60 * sim.Hour)
	r := s.Report()

	if r.Migrations.Forced != 0 {
		t.Fatalf("high-bid fleet was forced: %+v", r.Migrations)
	}
	// Planned spot->spot move to small, then back to large when it calms.
	if r.Migrations.Planned < 2 {
		t.Fatalf("planned = %d, want >= 2 (large->small->large)", r.Migrations.Planned)
	}
	if r.OnDemandSeconds != 0 {
		t.Fatal("fleet used on-demand despite cheaper spot alternative")
	}
	if r.Cost >= r.BaselineCost {
		t.Fatalf("cost %v >= baseline %v", r.Cost, r.BaselineCost)
	}
}

// TestReportInvariants checks accounting consistency on a busy generated
// universe.
func TestReportInvariants(t *testing.T) {
	mcfg := market.DefaultConfig(77)
	mcfg.Horizon = 12 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Bidding{Reactive, Proactive, PureSpot, OnDemandOnly} {
		cfg := mustConfig(t)
		cfg.Bidding = b
		cfg.Home = market.ID{Region: "us-east-1b", Type: "small"}
		cfg.Markets = []market.ID{cfg.Home}
		r, err := Run(set, cloud.DefaultParams(77), cfg, 12*sim.Day)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost < 0 || r.BaselineCost <= 0 {
			t.Fatalf("%v: costs: %+v", b, r)
		}
		if r.DowntimeSeconds < 0 || r.DowntimeSeconds > float64(r.Horizon) {
			t.Fatalf("%v: downtime %v out of [0,horizon]", b, r.DowntimeSeconds)
		}
		total := r.SpotSeconds + r.OnDemandSeconds
		if total > float64(r.Horizon)+1 {
			t.Fatalf("%v: placement %v exceeds horizon %v", b, total, r.Horizon)
		}
		if b == OnDemandOnly && (r.SpotSeconds != 0 || r.Migrations.Total() != 0) {
			t.Fatalf("baseline touched spot: %+v", r)
		}
		if b == PureSpot && r.OnDemandSeconds != 0 {
			t.Fatalf("pure spot used on-demand: %+v", r)
		}
		if r.Unavailability() < 0 || r.Unavailability() > 1 {
			t.Fatalf("%v: unavailability %v", b, r.Unavailability())
		}
	}
}

// TestGeneratedUniverseHeadline reproduces the headline claim on one seed:
// proactive hosting costs a small fraction of on-demand with unavailability
// orders of magnitude below pure spot.
func TestGeneratedUniverseHeadline(t *testing.T) {
	mcfg := market.DefaultConfig(101)
	mcfg.Horizon = 30 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t)
	pro, err := Run(set, cloud.DefaultParams(101), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := mustConfig(t)
	cfg2.Bidding = PureSpot
	pure, err := Run(set, cloud.DefaultParams(101), cfg2, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cost: proactive lands in the paper's 17-33%-of-baseline band
	// (we allow a wider 10-45% band for seed noise).
	nc := pro.NormalizedCost()
	if nc < 0.10 || nc > 0.45 {
		t.Fatalf("proactive normalized cost = %.3f, want ~0.17-0.33", nc)
	}
	// Availability: proactive keeps unavailability tiny; pure spot is
	// orders of magnitude worse.
	if u := pro.Unavailability(); u > 0.001 {
		t.Fatalf("proactive unavailability = %.5f, want < 0.1%%", u)
	}
	if pure.Unavailability() < 5*pro.Unavailability() {
		t.Fatalf("pure spot unavailability %.5f should dwarf proactive %.5f",
			pure.Unavailability(), pro.Unavailability())
	}
}

func TestRunSeedsAveraging(t *testing.T) {
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 4 * sim.Day
	cfg := mustConfig(t)
	rs, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 4*sim.Day, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("reports = %d", len(rs))
	}
	avg := metrics.Average(rs)
	if avg.BaselineCost <= 0 || avg.Horizon <= 0 {
		t.Fatalf("bad average: %+v", avg)
	}
	if _, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 0, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}
