package sched

import (
	"context"
	"fmt"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Run wires up an engine, a provider over the given price set, and a
// scheduler, runs the simulation to the horizon (clamped to the traces'
// common extent), and returns the run report.
func Run(set *market.Set, cloudParams cloud.Params, cfg Config, horizon sim.Duration) (metrics.Report, error) {
	return RunCtx(context.Background(), set, cloudParams, cfg, horizon)
}

// RunCtx is Run under a context: the engine polls ctx every
// sim.CancelPollInterval events and the run returns ctx's error as soon as
// it is canceled, discarding the partial report. A canceled month-long
// simulation aborts within one poll batch — milliseconds — rather than
// running to its horizon.
func RunCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration) (metrics.Report, error) {
	return RunTracedCtx(ctx, set, cloudParams, cfg, horizon, nil)
}

// RunTracedCtx is RunCtx with a trace recorder attached to the run's
// engine: every layer sharing the engine (provider billing, scheduler
// migrations, checkpoint daemon) records into it. A nil recorder is
// exactly RunCtx — the untraced path adds no allocations (see
// BenchmarkSchedulerMonthTraced).
func RunTracedCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, rec *trace.Recorder) (metrics.Report, error) {

	if horizon <= 0 || horizon > set.Horizon() {
		horizon = set.Horizon()
	}
	eng := sim.NewEngine()
	eng.SetRecorder(rec)
	prov := cloud.NewProvider(eng, set, cloudParams)
	s, err := New(prov, cfg)
	if err != nil {
		return metrics.Report{}, err
	}
	s.Start()
	if err := eng.RunUntilCtx(ctx, horizon); err != nil {
		return metrics.Report{}, err
	}
	rec.CloseOpen(eng.Now())
	return s.Report(), nil
}

// RunSeeds runs the same configuration against synthetic universes for
// each seed and returns the per-seed reports in seed order. The market
// config's Seed field is overridden per run. Runs execute in parallel
// with one worker per CPU; results are identical to a serial run (see
// RunSeedsParallel).
func RunSeeds(mcfg market.Config, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, seeds []int64) ([]metrics.Report, error) {
	return RunSeedsParallel(mcfg, cloudParams, cfg, horizon, seeds, 0)
}

// RunSeedsParallel is RunSeeds with an explicit bound on the number of
// runs in flight (workers <= 0 means one per CPU). Each run is an
// independent single-threaded simulation; parallelism is strictly across
// runs, results are collected in seed order, and universes come from the
// process-wide market.SharedCache, so the reports are byte-identical for
// any worker count.
func RunSeedsParallel(mcfg market.Config, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, seeds []int64, workers int) ([]metrics.Report, error) {
	return RunSeedsParallelCtx(context.Background(), mcfg, cloudParams, cfg, horizon, seeds, workers)
}

// RunSeedsParallelCtx is RunSeedsParallel under a context: canceling ctx
// (or any seed failing) cancels every in-flight seed simulation via
// runpool.MapCtx, so the pool's workers free up promptly instead of
// finishing their month-long runs.
func RunSeedsParallelCtx(ctx context.Context, mcfg market.Config, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, seeds []int64, workers int) ([]metrics.Report, error) {
	return RunSeedsTracedCtx(ctx, mcfg, cloudParams, cfg, horizon, seeds, workers, nil)
}

// RunSeedsTracedCtx is RunSeedsParallelCtx with a trace collector: each
// seed's run records into its own recorder (labeled "seed<N>", scoped by
// the collector) and hands it back on completion, so concurrent runs never
// share a recorder. A nil collector mints nil recorders and traces
// nothing.
func RunSeedsTracedCtx(ctx context.Context, mcfg market.Config, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, seeds []int64, workers int, col *trace.Collector) ([]metrics.Report, error) {

	if len(seeds) == 0 {
		return nil, fmt.Errorf("sched: no seeds")
	}
	cache := market.SharedCache()
	return runpool.MapCtx(ctx, workers, seeds, func(ctx context.Context, _ int, seed int64) (metrics.Report, error) {
		mc := mcfg
		mc.Seed = seed
		set, err := cache.Generate(mc)
		if err != nil {
			return metrics.Report{}, err
		}
		cp := cloudParams
		cp.Seed = seed
		rec := col.Run(fmt.Sprintf("seed%d", seed))
		rep, err := RunTracedCtx(ctx, set, cp, cfg, horizon, rec)
		if err == nil {
			col.Done(rec)
		}
		return rep, err
	})
}
