package sched

import (
	"fmt"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// Run wires up an engine, a provider over the given price set, and a
// scheduler, runs the simulation to the horizon (clamped to the traces'
// common extent), and returns the run report.
func Run(set *market.Set, cloudParams cloud.Params, cfg Config, horizon sim.Duration) (metrics.Report, error) {
	if horizon <= 0 || horizon > set.Horizon() {
		horizon = set.Horizon()
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, cloudParams)
	s, err := New(prov, cfg)
	if err != nil {
		return metrics.Report{}, err
	}
	s.Start()
	eng.RunUntil(horizon)
	return s.Report(), nil
}

// RunSeeds runs the same configuration against freshly generated synthetic
// universes for each seed and returns the per-seed reports. The market
// config's Seed field is overridden per run.
func RunSeeds(mcfg market.Config, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, seeds []int64) ([]metrics.Report, error) {

	if len(seeds) == 0 {
		return nil, fmt.Errorf("sched: no seeds")
	}
	var out []metrics.Report
	for _, seed := range seeds {
		mc := mcfg
		mc.Seed = seed
		set, err := market.Generate(mc)
		if err != nil {
			return nil, err
		}
		cp := cloudParams
		cp.Seed = seed
		r, err := Run(set, cp, cfg, horizon)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
