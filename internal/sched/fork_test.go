package sched

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// forkUniverse generates a small multi-market universe for fork tests.
func forkUniverse(t *testing.T, seed int64) *market.Set {
	t.Helper()
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = 6 * sim.Day
	set, err := market.SharedCache().Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// forkConfigs enumerates the bidding-policy x market-shape cross product
// the property test sweeps: single-market and multi-market (every default
// type in the home region), under proactive and reactive bidding.
func forkConfigs(t *testing.T) map[string]Config {
	t.Helper()
	out := map[string]Config{}
	for _, bidding := range []Bidding{Proactive, Reactive} {
		single := mustConfig(t)
		single.Bidding = bidding
		out[fmt.Sprintf("%v/single", bidding)] = single

		multi := mustConfig(t)
		multi.Bidding = bidding
		multi.Service = ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: 4,
		}
		for _, ts := range market.DefaultTypes() {
			id := market.ID{Region: home.Region, Type: ts.Name}
			if id != home {
				multi.Markets = append(multi.Markets, id)
			}
		}
		out[fmt.Sprintf("%v/multi", bidding)] = multi
	}
	return out
}

// TestForkByteIdentity is the checkpoint/fork/resume property test:
// capturing checkpoints does not perturb the pilot run, and resuming the
// same configuration from any captured tick boundary reproduces the cold
// run's report byte-for-byte.
func TestForkByteIdentity(t *testing.T) {
	ctx := context.Background()
	horizon := 4 * sim.Day
	every := 6 * sim.Hour
	for _, seed := range []int64{7, 23} {
		set := forkUniverse(t, seed)
		for name, cfg := range forkConfigs(t) {
			cold, err := RunCtx(ctx, set, fixedCloudParams(), cfg, horizon)
			if err != nil {
				t.Fatalf("seed %d %s cold: %v", seed, name, err)
			}
			pilot, log, err := RunWithCheckpointsCtx(ctx, set, fixedCloudParams(), cfg, horizon, every)
			if err != nil {
				t.Fatalf("seed %d %s pilot: %v", seed, name, err)
			}
			if !reflect.DeepEqual(cold, pilot) {
				t.Fatalf("seed %d %s: capturing checkpoints perturbed the run:\ncold  %+v\npilot %+v",
					seed, name, cold, pilot)
			}
			if len(log.Checkpoints) == 0 {
				t.Fatalf("seed %d %s: no checkpoints captured over %v", seed, name, horizon)
			}
			for _, ck := range log.Checkpoints {
				forked, err := RunForkedCtx(ctx, set, fixedCloudParams(), cfg, horizon, ck)
				if err != nil {
					t.Fatalf("seed %d %s fork at t=%v: %v", seed, name, ck.At(), err)
				}
				if !reflect.DeepEqual(cold, forked) {
					t.Fatalf("seed %d %s: fork at t=%v diverges from cold run:\ncold %+v\nfork %+v",
						seed, name, ck.At(), cold, forked)
				}
			}
		}
	}
}

// TestForkDifferentTau forks a pilot into a sibling whose CheckpointBound
// differs. The bound is invisible to a live-migration trajectory while it
// stays under the grace period — it moves only the forced-suspend metric
// instant and the checkpoint daemon's cadence — so the fork, with its
// journal-replayed downtime tracker and daemon I/O, must match the
// sibling's cold run byte-for-byte even when forking from the last
// checkpoint of the horizon.
func TestForkDifferentTau(t *testing.T) {
	ctx := context.Background()
	horizon := 4 * sim.Day
	every := 6 * sim.Hour
	for _, seed := range []int64{7, 23} {
		set := forkUniverse(t, seed)
		for _, bidding := range []Bidding{Proactive, Reactive} {
			pilotCfg := mustConfig(t)
			pilotCfg.Bidding = bidding
			pilotCfg.VMParams.CheckpointBound = 3

			_, log, err := RunWithCheckpointsCtx(ctx, set, fixedCloudParams(), pilotCfg, horizon, every)
			if err != nil {
				t.Fatal(err)
			}
			if len(log.Checkpoints) == 0 {
				t.Fatalf("seed %d %v: no checkpoints captured", seed, bidding)
			}
			ck := log.Checkpoints[len(log.Checkpoints)-1]

			sibling := pilotCfg
			sibling.VMParams.CheckpointBound = 30
			cold, err := RunCtx(ctx, set, fixedCloudParams(), sibling, horizon)
			if err != nil {
				t.Fatal(err)
			}
			forked, err := RunForkedCtx(ctx, set, fixedCloudParams(), sibling, horizon, ck)
			if err != nil {
				t.Fatalf("seed %d %v tau fork: %v", seed, bidding, err)
			}
			if !reflect.DeepEqual(cold, forked) {
				t.Fatalf("seed %d %v: tau-30 fork of tau-3 pilot diverges:\ncold %+v\nfork %+v",
					seed, bidding, cold, forked)
			}
		}
	}
}
