// Forkable engine state: quiescent checkpoints and mid-horizon resume.
//
// A running simulation cannot be copied directly — the event heap holds
// closures. But at a *quiescent* instant (service steady, no migration in
// flight, no allocation pending, no revocation mid-grace) every pending
// event is a deterministic function of model state:
//
//   - per-market price events: the cursor's NextChangeAfter(now),
//   - per-instance billing hours: lastHourAt + 1h,
//   - the checkpoint daemon's next write: its write clocks (vm.DaemonState),
//   - the next placement decision: recomputable via scheduleNextDecision
//     (the first hour boundary B with B - lead > now is the same whether
//     the predicate is evaluated now or when the event was armed, because
//     every earlier boundary already failed it),
//
// so a checkpoint is a deep copy of the model state plus a re-arm on a
// fresh engine. Two states are deliberately *replayed* rather than copied,
// so that a fork whose CheckpointBound (tau) differs from its pilot's still
// restores bit-exactly: the downtime tracker (rebuilt from a journal of
// tracker operations — a forced suspend lands at deadline - tau, which
// moves with tau even though the trajectory does not) and the cumulative
// checkpoint I/O (rebuilt by replaying the daemon's write schedule over its
// recorded run epochs in chronological order, reproducing the identical
// float-add sequence a cold run performs).
package sched

import (
	"context"
	"fmt"

	"spothost/internal/cloud"
	"spothost/internal/forecast"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// downOpKind classifies downtime-journal entries.
type downOpKind int

const (
	opDown       downOpKind = iota // plain MarkDown at t
	opForcedDown                   // forced-migration suspend; time depends on tau
	opUp                           // MarkUp at t
	opDegraded                     // AddDegraded(amount)
)

// downOp is one replayable downtime-tracker operation. For opForcedDown, t
// is the revocation deadline: a replaying fork computes its own suspend
// instant (deadline for a memory-losing migration, deadline - tau
// otherwise) from its own CheckpointBound.
type downOp struct {
	kind    downOpKind
	t       sim.Time
	grace   sim.Duration // opForcedDown: the warning's grace window
	memLost bool         // opForcedDown: the pilot's memory-loss outcome
	amount  sim.Duration // opDegraded
}

// daemonEpoch is one interval during which the checkpoint daemon ran.
// stop < 0 marks the epoch still open.
type daemonEpoch struct {
	start sim.Time
	stop  sim.Time
}

// ForcedWarning records one revocation warning the pilot received; the
// sweep planner scans these to find the first instant where a sibling's
// memory-loss outcome would differ from the pilot's.
type ForcedWarning struct {
	At    sim.Time
	Grace sim.Duration
}

// markDown applies and journals a plain downtime start.
func (s *Scheduler) markDown(t sim.Time) {
	s.downJournal = append(s.downJournal, downOp{kind: opDown, t: t})
	s.down.MarkDown(t)
}

// markUp applies and journals a downtime end.
func (s *Scheduler) markUp(t sim.Time) {
	s.downJournal = append(s.downJournal, downOp{kind: opUp, t: t})
	s.down.MarkUp(t)
}

// addDegraded applies and journals degraded-service time.
func (s *Scheduler) addDegraded(d sim.Duration) {
	s.downJournal = append(s.downJournal, downOp{kind: opDegraded, amount: d})
	s.down.AddDegraded(d)
}

// markForcedDown applies the forced-migration suspend (the caller runs at
// the correct instant) and journals it with enough context for a fork with
// a different tau to recompute its own suspend time.
func (s *Scheduler) markForcedDown(deadline sim.Time, grace sim.Duration, memLost bool) {
	s.downJournal = append(s.downJournal, downOp{
		kind: opForcedDown, t: deadline, grace: grace, memLost: memLost,
	})
	s.down.MarkDown(s.eng.Now())
}

// replayDownJournal rebuilds a downtime tracker under cfg's parameters.
// The ops are applied in their original chronological order with the same
// float arithmetic a cold run of cfg performs, so the resulting tracker is
// bit-identical to that run's. It errors if a forced migration's
// memory-loss outcome flips under cfg's tau — the trajectory itself would
// have diverged there, so the checkpoint is not valid for this sibling
// (the sweep planner's divergence scan prevents this; the check is
// defense in depth).
func replayDownJournal(ops []downOp, cfg Config) (metrics.DowntimeTracker, error) {
	var d metrics.DowntimeTracker
	tau := float64(cfg.VMParams.CheckpointBound)
	naive := cfg.Mechanism == vm.Naive
	for _, op := range ops {
		switch op.kind {
		case opDown:
			d.MarkDown(op.t)
		case opUp:
			d.MarkUp(op.t)
		case opDegraded:
			d.AddDegraded(op.amount)
		case opForcedDown:
			memLost := naive || op.grace < tau
			if memLost != op.memLost {
				return d, fmt.Errorf("sched: forced migration at t=%v flips memory-loss under tau=%v", op.t, tau)
			}
			if memLost {
				d.MarkDown(op.t)
			} else {
				d.MarkDown(op.t - tau)
			}
		}
	}
	return d, nil
}

// Checkpoint is a deep copy of a scheduler run's model state at a
// quiescent instant, sufficient to resume the run — or a sibling
// configuration that has not yet diverged from it — on a fresh engine.
type Checkpoint struct {
	at   sim.Time
	prov *cloud.Snapshot

	groupMarket market.ID
	groupLC     cloud.Lifecycle
	groupInsts  []cloud.InstanceID
	instances   []cloud.InstanceID

	curPlace       placement
	lastPlaceT     sim.Time
	spotSeconds    float64
	odSeconds      float64
	serviceStart   sim.Time
	bootFallbackOD bool
	migrations     metrics.MigrationCounts
	events         []Event
	downJournal    []downOp
	daemonEpochs   []daemonEpoch
	volatility     map[market.ID]forecast.DecayingMoments
}

// At returns the simulation time the checkpoint was taken.
func (ck *Checkpoint) At() sim.Time { return ck.at }

// checkpoint captures the run's state if it is quiescent. The scheduler
// must be in steady state with no transients (migration timers, pending
// allocations, open downtime) and no recorder/obs attached (their stream
// positions are not checkpointable); the provider must agree.
func (s *Scheduler) checkpoint() (*Checkpoint, bool) {
	if !s.started || s.stopped || s.phase != phaseSteady ||
		s.group == nil || !s.group.ready || s.target != nil ||
		len(s.pendingTimers) != 0 || s.down.Down() ||
		s.cfg.Bidding == PureSpot {
		return nil, false
	}
	if s.eng.Recorder() != nil || s.eng.Obs() != nil {
		return nil, false
	}
	ps, ok := s.prov.Snapshot()
	if !ok {
		return nil, false
	}
	ck := &Checkpoint{
		at:             s.eng.Now(),
		prov:           ps,
		groupMarket:    s.group.market,
		groupLC:        s.group.lifecycle,
		curPlace:       s.curPlace,
		lastPlaceT:     s.lastPlaceT,
		spotSeconds:    s.spotSeconds,
		odSeconds:      s.odSeconds,
		serviceStart:   s.serviceStart,
		bootFallbackOD: s.bootFallbackOD,
		migrations:     s.migrations,
		events:         append([]Event(nil), s.events...),
		downJournal:    append([]downOp(nil), s.downJournal...),
		daemonEpochs:   append([]daemonEpoch(nil), s.daemonEpochs...),
	}
	ck.groupInsts = make([]cloud.InstanceID, len(s.group.insts))
	for i, in := range s.group.insts {
		ck.groupInsts[i] = in.ID()
	}
	ck.instances = make([]cloud.InstanceID, len(s.instances))
	for i, in := range s.instances {
		ck.instances[i] = in.ID()
	}
	if s.volatility != nil {
		ck.volatility = make(map[market.ID]forecast.DecayingMoments, len(s.volatility))
		for m, dm := range s.volatility {
			ck.volatility[m] = *dm
		}
	}
	return ck, true
}

// Resume rebuilds a scheduler from a checkpoint on a provider restored at
// the checkpoint instant. cfg may differ from the pilot's configuration in
// knobs certified not to have changed the trajectory before the
// checkpoint: the spot bid (inherited instances are re-bid), the
// hysteresis threshold (read only at decisions), or the checkpoint bound
// (for live-migration mechanisms, read only at forced warnings — the
// journal replays shift its metric effects to cfg's tau).
func Resume(prov *cloud.Provider, cfg Config, ck *Checkpoint) (*Scheduler, error) {
	s, err := New(prov, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Bidding == PureSpot {
		return nil, fmt.Errorf("sched: pure-spot runs are not forkable")
	}
	down, err := replayDownJournal(ck.downJournal, cfg)
	if err != nil {
		return nil, err
	}
	s.down = down
	s.phase = phaseSteady
	s.started = true
	s.serviceStart = ck.serviceStart
	s.curPlace = ck.curPlace
	s.lastPlaceT = ck.lastPlaceT
	s.spotSeconds = ck.spotSeconds
	s.odSeconds = ck.odSeconds
	s.bootFallbackOD = ck.bootFallbackOD
	s.migrations = ck.migrations
	s.events = append([]Event(nil), ck.events...)
	s.downJournal = append([]downOp(nil), ck.downJournal...)
	s.daemonEpochs = append([]daemonEpoch(nil), ck.daemonEpochs...)

	for _, id := range ck.instances {
		in := prov.Instance(id)
		if in == nil {
			return nil, fmt.Errorf("sched: checkpoint instance %d missing from restored provider", id)
		}
		s.instances = append(s.instances, in)
	}

	g := &serverGroup{market: ck.groupMarket, lifecycle: ck.groupLC, ready: true}
	cb := s.groupCallbacks(g)
	for _, id := range ck.groupInsts {
		in := prov.Instance(id)
		if in == nil || !in.Alive() {
			return nil, fmt.Errorf("sched: checkpoint group member %d not alive in restored provider", id)
		}
		g.insts = append(g.insts, in)
		prov.AttachCallbacks(in, cb)
	}
	g.readyCount = len(g.insts)
	if g.lifecycle == cloud.Spot {
		g.bid = s.bidFor(g.market)
		for _, in := range g.insts {
			if err := prov.Rebid(in, g.bid); err != nil {
				return nil, err
			}
		}
	}
	s.group = g

	s.initEnvelope()
	if cfg.StabilityPenalty > 0 {
		s.volatility = map[market.ID]*forecast.DecayingMoments{}
		for _, m := range cfg.Markets {
			mv, ok := ck.volatility[m]
			if !ok {
				return nil, fmt.Errorf("sched: checkpoint has no volatility state for %s", m)
			}
			dm := mv
			s.volatility[m] = &dm
			s.prov.SubscribePrice(m, func(t sim.Time, price float64) {
				dm.Observe(t, price)
			})
		}
	}

	if err := s.resumeDaemon(ck); err != nil {
		return nil, err
	}
	s.scheduleNextDecision()
	return s, nil
}

// resumeDaemon rebuilds the checkpoint daemon and the cumulative
// checkpoint-I/O accumulator by replaying the daemon's write schedule over
// every recorded epoch under cfg's parameters, in chronological order —
// the identical sequence of float additions a cold run performs — and
// re-arming the still-open epoch's daemon on the fresh engine.
func (s *Scheduler) resumeDaemon(ck *Checkpoint) error {
	spec, p := s.cfg.Service.VM, s.cfg.VMParams
	count := float64(s.cfg.Service.Count)
	onWrite := func(mb float64) { s.ckptWrittenMB += mb * count }
	for i, ep := range ck.daemonEpochs {
		cutoff := ep.stop
		open := cutoff < 0
		if open {
			if i != len(ck.daemonEpochs)-1 {
				return fmt.Errorf("sched: checkpoint has a non-final open daemon epoch")
			}
			cutoff = ck.at
		}
		st := vm.ReplayDaemon(spec, p, ep.start, cutoff, onWrite)
		if open {
			d, err := vm.RestoreCheckpointDaemon(s.eng, spec, p, st)
			if err != nil {
				return err
			}
			d.OnWrite(onWrite)
			s.ckptDaemon = d
		}
	}
	return nil
}

// ForkLog is what a pilot run hands the sweep planner: the checkpoints it
// captured and the per-run facts the divergence scans need.
type ForkLog struct {
	// Checkpoints in capture order (strictly increasing At).
	Checkpoints []*Checkpoint
	// ForcedWarnings the run received, in order.
	ForcedWarnings []ForcedWarning
	// DaemonRan reports whether the checkpoint daemon ever ran: if it did,
	// runs with different checkpoint bounds differ in checkpoint I/O even
	// when their trajectories are identical, so they may fork but not
	// share outright.
	DaemonRan bool
}

// LastCheckpointAtOrBefore returns the latest checkpoint with At <= t, or
// nil if none qualifies.
func (l *ForkLog) LastCheckpointAtOrBefore(t sim.Time) *Checkpoint {
	var best *Checkpoint
	for _, ck := range l.Checkpoints {
		if ck.at <= t {
			best = ck
		}
	}
	return best
}

// RunWithCheckpointsCtx runs one scheduler simulation to the horizon like
// RunCtx, capturing a quiescent checkpoint at every multiple of `every`
// where the run's state permits one. The capture is read-only: the run's
// own trajectory and report are byte-identical to RunCtx's (the ticker
// only advances event sequence numbers, which preserves ordering).
func RunWithCheckpointsCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params, cfg Config, horizon sim.Duration, every sim.Duration) (metrics.Report, *ForkLog, error) {
	if horizon <= 0 || horizon > set.Horizon() {
		horizon = set.Horizon()
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, cloudParams)
	s, err := New(prov, cfg)
	if err != nil {
		return metrics.Report{}, nil, err
	}
	log := &ForkLog{}
	if every > 0 {
		eng.Ticker(every, every, func(sim.Time) {
			if ck, ok := s.checkpoint(); ok {
				log.Checkpoints = append(log.Checkpoints, ck)
			}
		})
	}
	s.Start()
	if err := eng.RunUntilCtx(ctx, horizon); err != nil {
		return metrics.Report{}, nil, err
	}
	log.ForcedWarnings = append([]ForcedWarning(nil), s.forcedWarns...)
	log.DaemonRan = len(s.daemonEpochs) > 0
	return s.Report(), log, nil
}

// RunForkedCtx runs configuration cfg from a pilot's checkpoint to the
// horizon, simulating only [ck.At(), horizon]. Provided the checkpoint
// precedes the first divergence point between cfg and the pilot's
// configuration, the report is byte-identical to a cold RunCtx of cfg.
func RunForkedCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params, cfg Config, horizon sim.Duration, ck *Checkpoint) (metrics.Report, error) {
	if horizon <= 0 || horizon > set.Horizon() {
		horizon = set.Horizon()
	}
	if ck.at > horizon {
		return metrics.Report{}, fmt.Errorf("sched: checkpoint at t=%v is past the horizon %v", ck.at, horizon)
	}
	eng := sim.NewEngineAt(ck.at)
	prov, err := cloud.RestoreProvider(eng, set, cloudParams, ck.prov)
	if err != nil {
		return metrics.Report{}, err
	}
	s, err := Resume(prov, cfg, ck)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := eng.RunUntilCtx(ctx, horizon); err != nil {
		return metrics.Report{}, err
	}
	return s.Report(), nil
}
