package sched

import (
	"reflect"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestRunSeedsParallelDeterminism checks that fanning the per-seed runs
// out across workers produces reports identical to the serial path — the
// core guarantee of the concurrency layer.
func TestRunSeedsParallelDeterminism(t *testing.T) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 4 * sim.Day
	seeds := []int64{3, 5, 8, 13, 21}

	serial, err := RunSeedsParallel(mcfg, cloud.DefaultParams(0), cfg, 4*sim.Day, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, len(seeds), 2 * len(seeds)} {
		parallel, err := RunSeedsParallel(mcfg, cloud.DefaultParams(0), cfg, 4*sim.Day, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel reports differ from serial", workers)
		}
	}
}

// TestRunSeedsEmpty keeps the no-seeds error behaviour.
func TestRunSeedsEmpty(t *testing.T) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSeeds(market.DefaultConfig(0), cloud.DefaultParams(0), cfg, 0, nil); err == nil {
		t.Fatal("want error for empty seed list")
	}
}

// TestRunSeedsUsesSharedCache checks repeated RunSeeds calls hit the
// universe cache rather than regenerating.
func TestRunSeedsUsesSharedCache(t *testing.T) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 2 * sim.Day
	// An uncommon spike rate keeps this test's universes distinct from
	// other tests sharing the process-wide cache.
	mcfg.SpikesPerDay = 2.345

	before := market.SharedCache().Stats()
	seeds := []int64{101, 102}
	if _, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 2*sim.Day, seeds); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 2*sim.Day, seeds); err != nil {
		t.Fatal(err)
	}
	after := market.SharedCache().Stats()
	if misses := after.Misses - before.Misses; misses != uint64(len(seeds)) {
		t.Fatalf("generated %d universes, want %d (second call should be cache hits)",
			misses, len(seeds))
	}
	if hits := after.Hits - before.Hits; hits < uint64(len(seeds)) {
		t.Fatalf("cache hits %d, want >= %d", hits, len(seeds))
	}
}
