package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

func portfolioUniverse(t *testing.T) *market.Set {
	t.Helper()
	cfg := market.DefaultConfig(55)
	cfg.Horizon = 8 * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPortfolioLifecycle(t *testing.T) {
	p := NewPortfolio(portfolioUniverse(t), cloud.DefaultParams(55))

	shop, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "medium"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	api, err := DefaultConfig(market.ID{Region: "us-west-1a", Type: "small"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	api.Bidding = Reactive
	batch, err := DefaultConfig(market.ID{Region: "us-east-1b", Type: "large"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	batch.Bidding = PureSpot
	batch.Mechanism = vm.CKPTLazy

	if err := p.Add("shop", shop); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("api", api); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("batch", batch); err != nil {
		t.Fatal(err)
	}
	// Error cases before running.
	if err := p.Add("shop", shop); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := p.Add("", shop); err == nil {
		t.Fatal("empty name accepted")
	}
	bad := shop
	bad.Home = market.ID{Region: "mars", Type: "small"}
	bad.Markets = []market.ID{bad.Home}
	if err := p.Add("bad", bad); err == nil {
		t.Fatal("invalid config accepted")
	}

	if err := p.Run(8 * sim.Day); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(8 * sim.Day); err == nil {
		t.Fatal("double run accepted")
	}
	if err := p.Add("late", shop); err == nil {
		t.Fatal("add after run accepted")
	}

	// Per-service reports.
	names := p.Services()
	if len(names) != 3 || names[0] != "shop" {
		t.Fatalf("services = %v", names)
	}
	shopRep, err := p.Report("shop")
	if err != nil {
		t.Fatal(err)
	}
	if shopRep.Cost <= 0 || shopRep.Policy != "proactive" {
		t.Fatalf("shop report: %+v", shopRep)
	}
	if _, err := p.Report("ghost"); err == nil {
		t.Fatal("unknown service accepted")
	}
	all := p.Reports()
	if len(all) != 3 {
		t.Fatalf("reports = %d", len(all))
	}

	// Consolidated totals.
	tot := p.Totals()
	if tot.Services != 3 {
		t.Fatalf("totals services = %d", tot.Services)
	}
	sum := all["shop"].Cost + all["api"].Cost + all["batch"].Cost
	if d := tot.Cost - sum; d > 1e-9 || d < -1e-9 {
		t.Fatalf("total cost %v != sum %v", tot.Cost, sum)
	}
	if tot.NormalizedCost() <= 0 || tot.NormalizedCost() > 0.6 {
		t.Fatalf("portfolio normalized cost = %v", tot.NormalizedCost())
	}
	// The pure-spot batch service must be the availability laggard.
	if tot.WorstService != "batch" {
		t.Fatalf("worst service = %q, want batch", tot.WorstService)
	}
	if tot.WorstUnavailability < tot.MeanUnavailability {
		t.Fatal("worst below mean")
	}
	if tot.Migrations.Total() == 0 {
		t.Fatal("no migrations recorded across the portfolio")
	}

	// Per-service event logs are recoverable after the run.
	shopEvents, err := p.Events("shop")
	if err != nil {
		t.Fatal(err)
	}
	if len(shopEvents) == 0 {
		t.Fatal("shop event log empty after an 8-day run")
	}
	for i := 1; i < len(shopEvents); i++ {
		if shopEvents[i].At < shopEvents[i-1].At {
			t.Fatalf("event log out of order at %d: %v < %v", i, shopEvents[i].At, shopEvents[i-1].At)
		}
	}
	if _, err := p.Events("ghost"); err == nil {
		t.Fatal("unknown service event log accepted")
	}
	logs := p.EventLogs()
	if len(logs) != 3 {
		t.Fatalf("event logs for %d services, want 3", len(logs))
	}
	if len(logs["shop"]) != len(shopEvents) {
		t.Fatalf("EventLogs[shop] has %d events, Events(shop) %d", len(logs["shop"]), len(shopEvents))
	}
}

func TestPortfolioEmptyRun(t *testing.T) {
	p := NewPortfolio(portfolioUniverse(t), cloud.DefaultParams(1))
	if err := p.Run(0); err == nil {
		t.Fatal("empty portfolio ran")
	}
}

// TestPortfolioSharesOneLedger: the provider's ledger equals the sum of
// the services' costs (no cross-service leakage or double billing).
func TestPortfolioSharesOneLedger(t *testing.T) {
	p := NewPortfolio(portfolioUniverse(t), cloud.DefaultParams(7))
	for i, reg := range []market.Region{"us-east-1a", "eu-west-1a"} {
		cfg, err := DefaultConfig(market.ID{Region: reg, Type: "small"}, market.DefaultTypes())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add([]string{"a", "b"}[i], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(8 * sim.Day); err != nil {
		t.Fatal(err)
	}
	tot := p.Totals()
	ledger := p.Provider().Ledger().Total()
	if diff := tot.Cost - ledger; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("service cost sum %v != provider ledger %v", tot.Cost, ledger)
	}
}
