package sched_test

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

// ExampleRun hosts one service VM on a hand-written price script: the spot
// price spikes past the 4x bid once, forcing a single checkpoint-and-
// restore migration onto on-demand, followed by a reverse migration when
// the market calms.
func ExampleRun() {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	trace, err := market.NewTrace(home, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30}, // above the 4x bid cap: revocation
		{T: 20000, Price: 0.01},
	}, 48*sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	prices, err := market.NewSet([]*market.Trace{trace}, map[market.ID]float64{home: 0.06})
	if err != nil {
		log.Fatal(err)
	}

	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		log.Fatal(err)
	}
	// Deterministic allocation latencies so the output is stable.
	params := cloud.DefaultParams(1)
	params.StartupCV = 0
	params.OnDemandStartupMean = map[string]sim.Duration{cloud.DefaultStartupClass: 95}
	params.SpotStartupMean = map[string]sim.Duration{cloud.DefaultStartupClass: 240}

	report, err := sched.Run(prices, params, cfg, 48*sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forced=%d reverse=%d downtime=%.0fs cheaper=%v\n",
		report.Migrations.Forced, report.Migrations.Reverse,
		report.DowntimeSeconds, report.Cost < report.BaselineCost)
	// Output:
	// forced=1 reverse=1 downtime=23s cheaper=true
}

// ExampleNewPortfolio hosts two services on one simulated cloud and reads
// the consolidated bill.
func ExampleNewPortfolio() {
	mcfg := market.DefaultConfig(42)
	mcfg.Horizon = 5 * sim.Day
	prices, err := market.Generate(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sched.NewPortfolio(prices, cloud.DefaultParams(42))
	for _, svc := range []struct {
		name string
		home market.ID
	}{
		{"shop", market.ID{Region: "us-east-1a", Type: "medium"}},
		{"api", market.ID{Region: "eu-west-1a", Type: "small"}},
	} {
		cfg, err := sched.DefaultConfig(svc.home, market.DefaultTypes())
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Add(svc.name, cfg); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Run(5 * sim.Day); err != nil {
		log.Fatal(err)
	}
	tot := p.Totals()
	fmt.Printf("services=%d savings=%v\n", tot.Services, tot.NormalizedCost() < 0.5)
	// Output:
	// services=2 savings=true
}
