// Package sched implements the paper's primary contribution: a cloud
// scheduler that hosts an always-on service on spot servers, combining
// bidding algorithms (reactive / proactive) with VM migration mechanisms
// (live migration, bounded checkpointing, lazy restore) to minimize both
// hosting cost and service unavailability.
//
// The scheduler runs a single *deployment* — a fleet of identical nested
// VMs packed onto identically-purchased servers — through a state machine
// driven by provider events:
//
//   - price changes trigger revocations (provider side) and inform
//     hour-boundary placement decisions,
//   - revocation warnings trigger forced migrations to on-demand servers
//     within the grace window,
//   - billing-hour boundaries trigger planned migrations (spot -> cheaper
//     spot or on-demand) and reverse migrations (on-demand -> spot).
//
// Policies: OnDemandOnly (the cost baseline), Reactive (bid the on-demand
// price, migrate when revoked), Proactive (bid k x on-demand, migrate
// voluntarily before revocation), and PureSpot (spot only, ride out price
// spikes while down — the Fig. 11 strawman). Multi-market and multi-region
// hosting fall out of the candidate-market list in the config.
package sched

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// Bidding selects the bidding algorithm.
type Bidding int

const (
	// OnDemandOnly never touches the spot market: the baseline of
	// Fig. 6(a).
	OnDemandOnly Bidding = iota
	// Reactive bids exactly the on-demand price, so the provider revokes
	// the spot server the moment the spot price exceeds it; every
	// transition to on-demand is a forced migration.
	Reactive
	// Proactive bids BidMultiple x the on-demand price (capped by the
	// provider) and voluntarily migrates near the end of the billing hour
	// once the spot price exceeds the on-demand price; only sharp spikes
	// above the high bid force a migration.
	Proactive
	// PureSpot uses spot servers only (bid = on-demand price): when
	// revoked, the service stays down until the price returns below the
	// bid — the conventional-wisdom strawman of Fig. 11.
	PureSpot
)

// String returns the policy label used in reports.
func (b Bidding) String() string {
	switch b {
	case OnDemandOnly:
		return "on-demand-only"
	case Reactive:
		return "reactive"
	case Proactive:
		return "proactive"
	default:
		return "pure-spot"
	}
}

// ServiceSpec describes the hosted service: Count identical nested VMs of
// the given spec. Each VM occupies VM.Units capacity slots on whatever
// server type hosts it.
type ServiceSpec struct {
	VM    vm.Spec
	Count int
}

// TotalUnits returns the service's total capacity demand.
func (s ServiceSpec) TotalUnits() int { return s.VM.Units * s.Count }

// Config configures one scheduler run.
type Config struct {
	// Service to host.
	Service ServiceSpec

	// Home names the service's primary market. Forced migrations always
	// fall back to on-demand servers in the current region; the cost
	// baseline is on-demand servers of the Home type.
	Home market.ID

	// Markets lists the candidate spot markets. A single entry equal to
	// Home gives the single-market scenario of Sec. 4.2/4.3; several
	// types in one region give multi-market (Sec. 4.4); types across
	// regions give multi-region (Sec. 4.5).
	Markets []market.ID

	// Bidding algorithm.
	Bidding Bidding

	// BidMultiple is the proactive bid as a multiple of the on-demand
	// price (the paper uses the provider cap, 4).
	BidMultiple float64

	// Mechanism is the migration mechanism combination.
	Mechanism vm.Mechanism

	// VMParams holds mechanism timing constants.
	VMParams vm.Params

	// Hysteresis is the minimum relative per-unit price improvement
	// required before a voluntary move to another market (prevents
	// thrashing between near-equal markets).
	Hysteresis float64

	// DecisionSlack pads the migration lead time before a billing-hour
	// boundary.
	DecisionSlack sim.Duration

	// StabilityPenalty is the lambda of stability-aware bidding (the
	// paper's stated future work): candidate spot markets are ranked by
	// current price plus lambda times their recent price volatility, so a
	// cheap-but-jumpy market can lose to a slightly pricier stable one.
	// Zero (the default) reproduces the paper's greedy cheapest-price
	// rule.
	StabilityPenalty float64

	// VolatilityHalflife sets how quickly the online volatility estimate
	// forgets old prices (default 12 hours).
	VolatilityHalflife sim.Duration

	// Types catalogs the instance sizes (units, memory). Defaults to
	// market.DefaultTypes.
	Types []market.TypeSpec
}

// DefaultConfig returns a single-market proactive configuration for one
// VM sized to the given home market, using the paper's best mechanism.
func DefaultConfig(home market.ID, types []market.TypeSpec) (Config, error) {
	ts, ok := market.FindType(types, home.Type)
	if !ok {
		return Config{}, fmt.Errorf("sched: unknown instance type %q", home.Type)
	}
	return Config{
		Service: ServiceSpec{
			VM: vm.Spec{
				MemoryGB:      ts.MemoryGB * 0.85, // dom0 keeps some memory (Sec. 6.1)
				DirtyRateMBps: 8,
				DiskGB:        4,
				Units:         ts.Units,
			},
			Count: 1,
		},
		Home:               home,
		Markets:            []market.ID{home},
		Bidding:            Proactive,
		BidMultiple:        4,
		Mechanism:          vm.CKPTLazyLive,
		VMParams:           vm.DefaultParams(),
		Hysteresis:         0.05,
		DecisionSlack:      30,
		VolatilityHalflife: 12 * sim.Hour,
		Types:              types,
	}, nil
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Service.VM.Validate(); err != nil {
		return err
	}
	if c.Service.Count <= 0 {
		return fmt.Errorf("sched: service count must be positive")
	}
	if len(c.Markets) == 0 {
		return fmt.Errorf("sched: no candidate markets")
	}
	if _, ok := market.FindType(c.Types, c.Home.Type); !ok {
		return fmt.Errorf("sched: home type %q not in catalog", c.Home.Type)
	}
	for _, m := range c.Markets {
		ts, ok := market.FindType(c.Types, m.Type)
		if !ok {
			return fmt.Errorf("sched: market type %q not in catalog", m.Type)
		}
		if ts.Units < c.Service.VM.Units {
			return fmt.Errorf("sched: market %s (%d units) cannot hold a %d-unit VM",
				m, ts.Units, c.Service.VM.Units)
		}
	}
	if c.Bidding == Proactive && c.BidMultiple <= 1 {
		return fmt.Errorf("sched: proactive BidMultiple must exceed 1, got %v", c.BidMultiple)
	}
	if c.Hysteresis < 0 || c.Hysteresis >= 1 {
		return fmt.Errorf("sched: hysteresis %v out of range [0,1)", c.Hysteresis)
	}
	if c.StabilityPenalty < 0 {
		return fmt.Errorf("sched: negative stability penalty %v", c.StabilityPenalty)
	}
	if c.StabilityPenalty > 0 && c.VolatilityHalflife <= 0 {
		return fmt.Errorf("sched: stability-aware bidding needs a positive VolatilityHalflife")
	}
	return nil
}

// typeOf returns the catalog entry for an instance type; the config must
// have been validated.
func (c Config) typeOf(t market.InstanceType) market.TypeSpec {
	ts, ok := market.FindType(c.Types, t)
	if !ok {
		panic(fmt.Sprintf("sched: unvalidated type %q", t))
	}
	return ts
}

// serversFor returns how many servers of type t the service needs.
func (c Config) serversFor(t market.InstanceType) int {
	per := c.typeOf(t).Units / c.Service.VM.Units
	if per < 1 {
		per = 1
	}
	n := (c.Service.Count + per - 1) / per
	return n
}
