package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestSchedulerStop: a stopped service terminates its servers, freezes its
// report at the stop instant, and accrues nothing afterwards.
func TestSchedulerStop(t *testing.T) {
	set := singleMarketSet(t, []market.Point{{T: 0, Price: 0.01}}, 60*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, mustConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.Schedule(10*sim.Hour, s.Stop)
	eng.RunUntil(60 * sim.Hour)

	if !s.Stopped() || s.Phase() != "stopped" {
		t.Fatalf("phase = %s", s.Phase())
	}
	r := s.Report()
	// Horizon ends at the stop, not the engine's 60 h.
	if r.Horizon > 10*sim.Hour {
		t.Fatalf("horizon = %v, want <= 10 h", r.Horizon)
	}
	// 10 started hours at 0.01 (boot at 240 s): cost frozen at stop time.
	if r.Cost > 0.12 || r.Cost < 0.08 {
		t.Fatalf("cost = %v", r.Cost)
	}
	// All instances are gone.
	for _, e := range s.Events() {
		if e.Kind == EvStopped && e.At != 10*sim.Hour {
			t.Fatalf("stop logged at %v", e.At)
		}
	}
	if got := prov.Counters().UserTerminating; got == 0 {
		t.Fatal("no instances terminated at stop")
	}
	// Stop is idempotent.
	s.Stop()
}

// TestSchedulerStopDuringMigration: stopping mid-voluntary-migration
// abandons the in-flight destination too.
func TestSchedulerStopDuringMigration(t *testing.T) {
	// Price rises above on-demand at t=10000 so a planned migration is
	// armed near the next billing boundary (~10650); stop right in the
	// middle of it.
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.10},
	}, 60*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, mustConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.Schedule(10700, s.Stop) // destination requested ~10650, not yet ready
	eng.RunUntil(60 * sim.Hour)

	r := s.Report()
	if r.Migrations.Planned != 0 {
		t.Fatalf("migration completed after stop: %+v", r.Migrations)
	}
	// Nothing is left running: no cost accrues after stop.
	costAtStop := r.Cost
	eng2 := s.Report()
	if eng2.Cost != costAtStop {
		t.Fatal("cost moved after stop")
	}
}

// TestPortfolioElasticity: a surge shard that lives for a window in the
// middle of the run starts late, stops early, and bills only its window.
func TestPortfolioElasticity(t *testing.T) {
	p := NewPortfolio(portfolioUniverse(t), cloud.DefaultParams(9))
	base, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add("steady", base); err != nil {
		t.Fatal(err)
	}
	surge := base
	if err := p.AddAt(2*sim.Day, "surge", surge); err != nil {
		t.Fatal(err)
	}
	if err := p.StopAt(4*sim.Day, "surge"); err != nil {
		t.Fatal(err)
	}
	// Validation.
	if err := p.AddAt(-1, "bad", base); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := p.StopAt(sim.Day, "surge"); err == nil {
		t.Fatal("stop before start accepted")
	}
	if err := p.StopAt(sim.Day, "ghost"); err == nil {
		t.Fatal("unknown service accepted")
	}

	if err := p.Run(8 * sim.Day); err != nil {
		t.Fatal(err)
	}
	steady, _ := p.Report("steady")
	surgeR, _ := p.Report("surge")
	if surgeR.Horizon > 2*sim.Day+sim.Hour {
		t.Fatalf("surge horizon = %v, want ~2 days", surgeR.Horizon)
	}
	if steady.Horizon < 7*sim.Day {
		t.Fatalf("steady horizon = %v", steady.Horizon)
	}
	// The surge's cost is roughly a quarter of the steady service's.
	if surgeR.Cost <= 0 || surgeR.Cost > steady.Cost*0.6 {
		t.Fatalf("surge cost %v vs steady %v", surgeR.Cost, steady.Cost)
	}
}
