package sched

import (
	"fmt"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// hostileMarketConfig cranks the generator's volatility far past
// calibration: constant spikes, heavy tails, fast churn — a torture
// universe for the scheduler's state machine.
func hostileMarketConfig(seed int64) market.Config {
	cfg := market.DefaultConfig(seed)
	cfg.Horizon = 6 * sim.Day
	cfg.SpikesPerDay = 18
	cfg.SpikeMeanDur = 10 * sim.Minute
	cfg.SpikeMin = 0.5
	cfg.SpikeAlpha = 0.9 // very heavy tail: frequent over-bid spikes
	cfg.StepMean = 2 * sim.Minute
	cfg.BaseCV = 0.5
	return cfg
}

// checkInvariants asserts the accounting laws every run must satisfy.
func checkInvariants(t *testing.T, label string, r interface {
	NormalizedCost() float64
	Unavailability() float64
}) {
	t.Helper()
	if u := r.Unavailability(); u < 0 || u > 1 {
		t.Errorf("%s: unavailability %v out of [0,1]", label, u)
	}
	if c := r.NormalizedCost(); c < 0 {
		t.Errorf("%s: negative normalized cost %v", label, c)
	}
}

// TestSchedulerSurvivesHostileMarkets runs every policy x mechanism
// combination through torture universes and checks that nothing panics,
// downtime stays within the horizon, placement accounting stays additive,
// and the scheduler's cost never exceeds a sane multiple of the baseline.
func TestSchedulerSurvivesHostileMarkets(t *testing.T) {
	mechanisms := append(vm.Mechanisms(), vm.Naive)
	policies := []Bidding{Reactive, Proactive, PureSpot}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}

	for _, seed := range seeds {
		set, err := market.Generate(hostileMarketConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range policies {
			for _, m := range mechanisms {
				label := fmt.Sprintf("seed%d/%v/%v", seed, b, m)
				cfg := mustConfig(t)
				cfg.Home = market.ID{Region: "us-east-1b", Type: "medium"}
				cfg.Markets = []market.ID{
					cfg.Home,
					{Region: "us-east-1b", Type: "large"},
					{Region: "us-east-1b", Type: "xlarge"},
				}
				cfg.Bidding = b
				cfg.Mechanism = m

				r, err := Run(set, cloud.DefaultParams(seed), cfg, 6*sim.Day)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkInvariants(t, label, r)
				if r.DowntimeSeconds < 0 || r.DowntimeSeconds > float64(r.Horizon) {
					t.Errorf("%s: downtime %v vs horizon %v", label, r.DowntimeSeconds, r.Horizon)
				}
				placed := r.SpotSeconds + r.OnDemandSeconds
				if placed > float64(r.Horizon)+1 {
					t.Errorf("%s: placement %v exceeds horizon %v", label, placed, r.Horizon)
				}
				// Placement plus downtime covers the horizon, within the
				// slack of in-flight transitions (overlap periods count as
				// placed on the old servers until hand-off).
				if placed+r.DowntimeSeconds < float64(r.Horizon)*0.95 {
					t.Errorf("%s: placement %v + downtime %v undershoots horizon %v",
						label, placed, r.DowntimeSeconds, r.Horizon)
				}
				// Even in torture markets, hosting should not cost multiples
				// of on-demand.
				if r.NormalizedCost() > 2 {
					t.Errorf("%s: normalized cost %v", label, r.NormalizedCost())
				}
				if b == PureSpot && r.OnDemandSeconds != 0 {
					t.Errorf("%s: pure spot used on-demand", label)
				}
			}
		}
	}
}

// TestSchedulerStabilityUnderHostileMarkets repeats the torture run with
// stability-aware bidding enabled, which exercises the volatility tracker
// against thousands of price events.
func TestSchedulerStabilityUnderHostileMarkets(t *testing.T) {
	set, err := market.Generate(hostileMarketConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t)
	cfg.Home = market.ID{Region: "us-east-1a", Type: "small"}
	cfg.Markets = nil
	for _, ty := range []market.InstanceType{"small", "medium", "large", "xlarge"} {
		cfg.Markets = append(cfg.Markets, market.ID{Region: "us-east-1a", Type: ty})
	}
	cfg.Service = ServiceSpec{
		VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
		Count: 4,
	}
	cfg.StabilityPenalty = 1.5
	r, err := Run(set, cloud.DefaultParams(11), cfg, 6*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, "stability-torture", r)
	if r.Migrations.Total() < 0 {
		t.Fatal("negative migration count")
	}
}

// TestDeterministicReplays: the same seed must produce byte-identical
// reports across repeated runs, even in torture universes (the kernel's
// determinism guarantee survives the full stack).
func TestDeterministicReplays(t *testing.T) {
	run := func() string {
		set, err := market.Generate(hostileMarketConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		cfg := mustConfig(t)
		cfg.Home = market.ID{Region: "us-west-1a", Type: "small"}
		cfg.Markets = []market.ID{cfg.Home}
		r, err := Run(set, cloud.DefaultParams(5), cfg, 6*sim.Day)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%.9f|%.3f|%+v", r.Cost, r.DowntimeSeconds, r.Migrations)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic:\n%s\n%s", a, b)
	}
}
