package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// abortUniverse builds two markets where a planned migration from "small"
// to "medium" gets armed, and the destination market spikes above its bid
// at spikeAt — either while the destination servers are still allocating
// or after they are ready but before the hand-off completes.
func abortUniverse(t *testing.T, spikeAt sim.Time) *market.Set {
	t.Helper()
	small := market.ID{Region: "us-east-1a", Type: "small"}
	medium := market.ID{Region: "us-east-1a", Type: "medium"}
	end := sim.Time(50 * sim.Hour)
	// Small: cheap, then pricier (0.05 < od 0.06) from t=9000, making the
	// flat 0.04 medium market the best alternative at the next boundary.
	trS, err := market.NewTrace(small, []market.Point{
		{T: 0, Price: 0.01},
		{T: 9000, Price: 0.05},
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	// Medium: attractive until it spikes far above its 4x bid (0.48).
	trM, err := market.NewTrace(medium, []market.Point{
		{T: 0, Price: 0.04},
		{T: spikeAt, Price: 0.60},
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{trS, trM},
		map[market.ID]float64{small: 0.06, medium: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func runAbort(t *testing.T, spikeAt sim.Time) *Scheduler {
	t.Helper()
	cfg := mustConfig(t)
	cfg.Service.VM.Units = 1
	cfg.Markets = []market.ID{
		{Region: "us-east-1a", Type: "small"},
		{Region: "us-east-1a", Type: "medium"},
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, abortUniverse(t, spikeAt), fixedCloudParams())
	s, err := New(prov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(50 * sim.Hour)
	return s
}

// Timeline landmarks (deterministic startups): the service boots on small
// at 240 s; the planned migration to medium is decided near the boundary
// at ~10650 s; medium servers are requested then and become ready ~240 s
// later (~10890); the live hand-off completes ~55 s after that.

// TestPlannedTargetRevokedWhileAllocating: the destination spike lands
// during its allocation — the pending requests are cancelled
// (never-granted) and the migration aborts without any service impact.
func TestPlannedTargetRevokedWhileAllocating(t *testing.T) {
	s := runAbort(t, 10750)
	r := s.Report()

	if len(s.EventsOf(EvMigrationStart)) == 0 {
		t.Fatalf("migration never armed:\n%s", renderLog(s))
	}
	if len(s.EventsOf(EvMigrationAborted)) == 0 {
		t.Fatalf("migration not aborted:\n%s", renderLog(s))
	}
	if r.DowntimeSeconds != 0 {
		t.Fatalf("aborted migration caused downtime: %v", r.DowntimeSeconds)
	}
	// The service never left the small spot market.
	if r.OnDemandSeconds != 0 {
		t.Fatal("service fell back to on-demand unnecessarily")
	}
	if r.Migrations.Forced != 0 {
		t.Fatalf("forced migrations: %+v", r.Migrations)
	}
}

// TestPlannedTargetRevokedBeforeHandOff: the destination spike lands after
// the destination group is ready but before the hand-off completes — the
// scheduler abandons the dying target and stays put.
func TestPlannedTargetRevokedBeforeHandOff(t *testing.T) {
	s := runAbort(t, 10920)
	r := s.Report()

	if len(s.EventsOf(EvMigrationAborted)) == 0 {
		t.Fatalf("migration not aborted:\n%s", renderLog(s))
	}
	if r.DowntimeSeconds != 0 {
		t.Fatalf("aborted hand-off caused downtime: %v", r.DowntimeSeconds)
	}
	if r.Migrations.Forced != 0 {
		t.Fatalf("destination revocation must not count as a service-forced migration: %+v",
			r.Migrations)
	}
	// The service holds the small market for the entire horizon.
	if r.SpotFraction() != 1 {
		t.Fatalf("spot fraction = %v", r.SpotFraction())
	}
}

// TestPlannedTargetSurvivesWhenSpikeComesLate: with the spike landing well
// after the hand-off, the migration completes and the service then runs on
// medium — which is subsequently revoked, exercising the forced path from
// the new home.
func TestPlannedTargetSurvivesWhenSpikeComesLate(t *testing.T) {
	s := runAbort(t, 20*sim.Hour)
	r := s.Report()

	if r.Migrations.Planned < 1 {
		t.Fatalf("migration did not complete: %+v\n%s", r.Migrations, renderLog(s))
	}
	// The late spike (0.60 > 0.48 bid) then forces the fleet off medium.
	if r.Migrations.Forced != 1 {
		t.Fatalf("late spike should force exactly one migration: %+v", r.Migrations)
	}
	if r.OnDemandSeconds == 0 {
		t.Fatal("forced migration should land on on-demand")
	}
}
