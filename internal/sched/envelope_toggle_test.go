package sched

import (
	"reflect"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestEnvelopeToggleEquivalence is the before/after check for the envelope
// fast path: the same runs with the precomputed envelope on and off must
// produce byte-identical reports, because the envelope's first-index argmin
// is exactly the pick of the linear market scan it replaces.
func TestEnvelopeToggleEquivalence(t *testing.T) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	seeds := []int64{1, 2, 3}

	defer func() { useEnvelope = true }()
	useEnvelope = true
	fast, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 15*sim.Day, seeds)
	if err != nil {
		t.Fatal(err)
	}
	useEnvelope = false
	slow, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 15*sim.Day, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if !reflect.DeepEqual(fast[i], slow[i]) {
			t.Fatalf("seed %d: envelope on/off reports differ:\n on: %+v\noff: %+v",
				seeds[i], fast[i], slow[i])
		}
	}
}
