package sched

import (
	"context"
	"fmt"
	"sort"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Portfolio hosts several independent services on one simulated cloud: one
// engine, one provider, one price universe, many schedulers. This is the
// service provider's view — e.g. a SaaS vendor running every customer's
// deployment through the spot machinery and reading one consolidated bill.
type Portfolio struct {
	eng     *sim.Engine
	prov    *cloud.Provider
	names   []string
	scheds  map[string]*Scheduler
	startAt map[string]sim.Time
	stopAt  map[string]sim.Time
	ran     bool
}

// NewPortfolio builds an empty portfolio over a price universe.
func NewPortfolio(set *market.Set, params cloud.Params) *Portfolio {
	eng := sim.NewEngine()
	return &Portfolio{
		eng:     eng,
		prov:    cloud.NewProvider(eng, set, params),
		scheds:  map[string]*Scheduler{},
		startAt: map[string]sim.Time{},
		stopAt:  map[string]sim.Time{},
	}
}

// Provider exposes the shared provider (for inspection in tests and
// examples).
func (p *Portfolio) Provider() *cloud.Provider { return p.prov }

// SetRecorder attaches a trace recorder to the portfolio's shared engine.
// Each service records into its own track (named after the service), so a
// multi-service run exports one process with one lane per service. Attach
// before Run; a nil recorder is a no-op.
func (p *Portfolio) SetRecorder(rec *trace.Recorder) { p.eng.SetRecorder(rec) }

// Add registers a named service that starts at time 0. Services must be
// added before Run.
func (p *Portfolio) Add(name string, cfg Config) error {
	return p.AddAt(0, name, cfg)
}

// AddAt registers a named service that launches at virtual time at —
// elastic capacity that joins the fleet mid-run (a surge shard, a
// regional expansion). Services must be registered before Run.
func (p *Portfolio) AddAt(at sim.Time, name string, cfg Config) error {
	if p.ran {
		return fmt.Errorf("sched: portfolio already ran")
	}
	if name == "" {
		return fmt.Errorf("sched: empty service name")
	}
	if at < 0 {
		return fmt.Errorf("sched: negative start time %v", at)
	}
	if _, dup := p.scheds[name]; dup {
		return fmt.Errorf("sched: duplicate service %q", name)
	}
	s, err := New(p.prov, cfg)
	if err != nil {
		return fmt.Errorf("sched: service %q: %w", name, err)
	}
	s.SetTrack(name)
	p.scheds[name] = s
	p.names = append(p.names, name)
	p.startAt[name] = at
	return nil
}

// StopAt schedules a registered service's voluntary shutdown at virtual
// time at. Must be called before Run; stopping before the service's start
// time is rejected.
func (p *Portfolio) StopAt(at sim.Time, name string) error {
	if p.ran {
		return fmt.Errorf("sched: portfolio already ran")
	}
	if _, ok := p.scheds[name]; !ok {
		return fmt.Errorf("sched: unknown service %q", name)
	}
	if at <= p.startAt[name] {
		return fmt.Errorf("sched: stop time %v not after start %v for %q", at, p.startAt[name], name)
	}
	p.stopAt[name] = at
	return nil
}

// Services returns the registered service names in insertion order.
func (p *Portfolio) Services() []string {
	return append([]string(nil), p.names...)
}

// Run starts every service and executes the simulation to the horizon
// (clamped to the universe extent). It can only be called once.
func (p *Portfolio) Run(horizon sim.Duration) error {
	return p.RunCtx(context.Background(), horizon)
}

// RunCtx is Run under a context: the shared engine polls ctx while
// executing, and a cancel aborts the whole portfolio within one
// cancellation-poll batch, returning ctx's error.
func (p *Portfolio) RunCtx(ctx context.Context, horizon sim.Duration) error {
	if p.ran {
		return fmt.Errorf("sched: portfolio already ran")
	}
	if len(p.scheds) == 0 {
		return fmt.Errorf("sched: empty portfolio")
	}
	p.ran = true
	if max := p.prov.Markets().Horizon(); horizon <= 0 || horizon > max {
		horizon = max
	}
	for _, name := range p.names {
		s := p.scheds[name]
		if at := p.startAt[name]; at > 0 {
			p.eng.Post(at, s.Start)
		} else {
			s.Start()
		}
		if at, ok := p.stopAt[name]; ok {
			p.eng.Post(at, s.Stop)
		}
	}
	err := p.eng.RunUntilCtx(ctx, horizon)
	if err == nil {
		p.eng.Recorder().CloseOpen(p.eng.Now())
	}
	return err
}

// Report returns one service's report.
func (p *Portfolio) Report(name string) (metrics.Report, error) {
	s, ok := p.scheds[name]
	if !ok {
		return metrics.Report{}, fmt.Errorf("sched: unknown service %q", name)
	}
	return s.Report(), nil
}

// Events returns one service's per-run event log (placements,
// migrations, revocations), in time order. Before Run the log is empty.
func (p *Portfolio) Events(name string) ([]Event, error) {
	s, ok := p.scheds[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown service %q", name)
	}
	return s.Events(), nil
}

// EventLogs returns every service's event log keyed by name — the
// portfolio-wide occupancy record that Report/Reports (scalar summaries)
// previously made impossible to recover after a run.
func (p *Portfolio) EventLogs() map[string][]Event {
	out := make(map[string][]Event, len(p.scheds))
	for name, s := range p.scheds {
		out[name] = s.Events()
	}
	return out
}

// Reports returns every service's report keyed by name.
func (p *Portfolio) Reports() map[string]metrics.Report {
	out := make(map[string]metrics.Report, len(p.scheds))
	for name, s := range p.scheds {
		out[name] = s.Report()
	}
	return out
}

// Totals is the consolidated portfolio outcome.
type Totals struct {
	Services int
	// Cost and BaselineCost are summed across services.
	Cost         float64
	BaselineCost float64
	// MeanUnavailability is VM-weighted across services; Worst is the
	// single worst service.
	MeanUnavailability  float64
	WorstUnavailability float64
	WorstService        string
	// Migrations sums all services' counts.
	Migrations metrics.MigrationCounts
}

// NormalizedCost returns the consolidated cost fraction.
func (t Totals) NormalizedCost() float64 {
	if t.BaselineCost == 0 {
		return 0
	}
	return t.Cost / t.BaselineCost
}

// Totals consolidates all service reports.
func (p *Portfolio) Totals() Totals {
	var t Totals
	var weighted, weight float64
	names := p.Services()
	sort.Strings(names)
	for _, name := range names {
		r := p.scheds[name].Report()
		t.Services++
		t.Cost += r.Cost
		t.BaselineCost += r.BaselineCost
		w := float64(r.VMs) * float64(r.Horizon)
		weighted += r.Unavailability() * w
		weight += w
		if u := r.Unavailability(); u >= t.WorstUnavailability {
			if u > t.WorstUnavailability || t.WorstService == "" {
				t.WorstUnavailability, t.WorstService = u, name
			}
		}
		t.Migrations.Forced += r.Migrations.Forced
		t.Migrations.Planned += r.Migrations.Planned
		t.Migrations.Reverse += r.Migrations.Reverse
		t.Migrations.CrossRegion += r.Migrations.CrossRegion
		t.Migrations.MemoryLost += r.Migrations.MemoryLost
	}
	if weight > 0 {
		t.MeanUnavailability = weighted / weight
	}
	return t
}
