package sched

import (
	"strings"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestEventLogForcedSequence asserts the exact event sequence of the
// paper's revocation flow: boot -> up -> warning -> suspend -> restore ->
// up, followed by the reverse migration once the price recovers.
func TestEventLogForcedSequence(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}, 40*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, mustConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(40 * sim.Hour)

	var kinds []EventKind
	for _, e := range s.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{
		EvBoot, EvServiceUp, // spot bootstrap
		EvWarning, EvSuspend, EvRestore, EvServiceUp, // forced migration
		EvMigrationStart, EvMigrationDone, // reverse migration
	}
	if len(kinds) < len(want) {
		t.Fatalf("log too short: %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("event %d = %v, want %v\nfull log:\n%s", i, kinds[i], k, renderLog(s))
		}
	}
	// Ordering sanity: timestamps non-decreasing.
	evs := s.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("log out of order at %d:\n%s", i, renderLog(s))
		}
	}
	// Filters.
	if got := len(s.EventsOf(EvWarning)); got != 1 {
		t.Fatalf("warnings = %d", got)
	}
	if got := len(s.EventsOf(EvServiceUp)); got < 2 {
		t.Fatalf("service-up events = %d", got)
	}
	// Render includes the market and the note.
	line := s.Events()[2].String()
	if !strings.Contains(line, "warning") || !strings.Contains(line, "us-east-1a/small") {
		t.Fatalf("render: %q", line)
	}
}

// TestEventLogPlannedSequence: a mid-band excursion produces a voluntary
// migration pair instead of warnings.
func TestEventLogPlannedSequence(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.10},
		{T: 30000, Price: 0.01},
	}, 40*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, mustConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(40 * sim.Hour)

	if len(s.EventsOf(EvWarning)) != 0 {
		t.Fatalf("proactive policy was warned:\n%s", renderLog(s))
	}
	starts := s.EventsOf(EvMigrationStart)
	dones := s.EventsOf(EvMigrationDone)
	if len(starts) < 2 || len(dones) < 2 {
		t.Fatalf("expected planned + reverse migration pairs:\n%s", renderLog(s))
	}
	// First voluntary move lands on on-demand, second back on spot.
	if dones[0].Lifecycle != cloud.OnDemand || dones[1].Lifecycle != cloud.Spot {
		t.Fatalf("migration lifecycles: %v, %v", dones[0].Lifecycle, dones[1].Lifecycle)
	}
}

// TestEventLogPureSpotWaiting: pure spot logs the waiting state.
func TestEventLogPureSpotWaiting(t *testing.T) {
	set := singleMarketSet(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.30},
		{T: 20000, Price: 0.01},
	}, 40*sim.Hour)
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	cfg := mustConfig(t)
	cfg.Bidding = PureSpot
	s, err := New(prov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(40 * sim.Hour)

	if len(s.EventsOf(EvWaiting)) != 1 {
		t.Fatalf("waiting events:\n%s", renderLog(s))
	}
	ups := s.EventsOf(EvServiceUp)
	if len(ups) < 2 || ups[len(ups)-1].Note != "re-acquired spot capacity" {
		t.Fatalf("reacquisition missing:\n%s", renderLog(s))
	}
}

func renderLog(s *Scheduler) string {
	var b strings.Builder
	for _, e := range s.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
