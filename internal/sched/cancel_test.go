package sched

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestRunCtxCanceledMidRun verifies the acceptance bar for the serving
// layer: a long simulation canceled mid-flight returns promptly with
// context.Canceled instead of running out its horizon.
func TestRunCtxCanceledMidRun(t *testing.T) {
	mcfg := market.DefaultConfig(3)
	mcfg.Horizon = 120 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, mcfg.Types)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = RunCtx(ctx, set, cloud.DefaultParams(3), cfg, 120*sim.Day)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (run finished in %v?)", err, elapsed)
	}
	// The engine polls every sim.CancelPollInterval events; even on a slow
	// CI box that batch executes in well under a second.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled run took %v to return", elapsed)
	}
}

func TestRunSeedsParallelCtxPreCanceled(t *testing.T) {
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 30 * sim.Day
	cfg, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, mcfg.Types)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunSeedsParallelCtx(ctx, mcfg, cloud.DefaultParams(0), cfg,
		30*sim.Day, []int64{1, 2, 3, 4}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	mcfg := market.DefaultConfig(7)
	mcfg.Horizon = 5 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, mcfg.Types)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(set, cloud.DefaultParams(7), cfg, 5*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), set, cloud.DefaultParams(7), cfg, 5*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", ctxed) {
		t.Fatalf("reports differ under background context:\n%+v\n%+v", plain, ctxed)
	}
}
