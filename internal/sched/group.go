package sched

import (
	"spothost/internal/cloud"
	"spothost/internal/market"
)

// serverGroup is a set of identically-purchased servers hosting the
// service's VMs. Groups are acquired atomically: onReady fires when every
// member is running; onFailed fires if any member cannot be granted (spot
// price overtook the bid during allocation) or is revoked before the group
// ever became ready.
type serverGroup struct {
	market    market.ID
	lifecycle cloud.Lifecycle
	bid       float64
	insts     []*cloud.Instance

	readyCount int
	ready      bool
	abandoned  bool

	onReady  func(*serverGroup)
	onFailed func(*serverGroup)
}

// alive reports whether every member can still host work.
func (g *serverGroup) alive() bool {
	for _, in := range g.insts {
		if !in.Alive() {
			return false
		}
	}
	return len(g.insts) > 0
}

// abandon marks the group dead and terminates any members that are still
// alive or pending. Safe to call repeatedly.
func (g *serverGroup) abandon(prov *cloud.Provider) {
	if g.abandoned {
		return
	}
	g.abandoned = true
	for _, in := range g.insts {
		if in.State() != cloud.Terminated {
			// Terminate returns an error only for already-terminated
			// instances, which the guard excludes.
			_ = prov.Terminate(in)
		}
	}
}

// groupCallbacks builds the lifecycle callbacks wiring a group's members
// to the scheduler's handlers. It is shared by acquireGroup and by fork
// restoration (Resume re-attaches the identical wiring to instances
// inherited from a checkpoint).
func (s *Scheduler) groupCallbacks(g *serverGroup) cloud.Callbacks {
	return cloud.Callbacks{
		OnRunning: func(in *cloud.Instance) {
			if g.abandoned {
				return
			}
			g.readyCount++
			if g.readyCount == len(g.insts) {
				g.ready = true
				if g.onReady != nil {
					g.onReady(g)
				}
			}
		},
		OnRevocationWarning: func(in *cloud.Instance, deadline float64) {
			s.onWarning(g, in, deadline)
		},
		OnTerminated: func(in *cloud.Instance, reason cloud.TerminationReason) {
			s.onTerminated(g, in, reason)
		},
	}
}

// acquireGroup requests n servers in market m. Lifecycle warnings and
// terminations are routed to the scheduler's handlers; group-level ready
// and failure conditions fire the provided callbacks.
func (s *Scheduler) acquireGroup(m market.ID, lc cloud.Lifecycle, bid float64, n int,
	onReady, onFailed func(*serverGroup)) (*serverGroup, error) {

	g := &serverGroup{
		market:    m,
		lifecycle: lc,
		bid:       bid,
		onReady:   onReady,
		onFailed:  onFailed,
	}
	cb := s.groupCallbacks(g)
	for i := 0; i < n; i++ {
		var in *cloud.Instance
		var err error
		if lc == cloud.Spot {
			in, err = s.prov.RequestSpot(m, bid, cb)
		} else {
			in, err = s.prov.RequestOnDemand(m, cb)
		}
		if err != nil {
			// Roll back the members already requested.
			g.abandon(s.prov)
			return nil, err
		}
		g.insts = append(g.insts, in)
		s.instances = append(s.instances, in)
	}
	return g, nil
}
