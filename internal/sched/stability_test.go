package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// stabilitySet builds two markets with equal long-run mean price but very
// different volatility: "jumpy" oscillates between cheap and expensive,
// "steady" stays at the mean.
func stabilitySet(t *testing.T) *market.Set {
	t.Helper()
	jumpyID := market.ID{Region: "us-east-1a", Type: "small"}
	steadyID := market.ID{Region: "us-east-1a", Type: "medium"}
	end := sim.Time(80 * sim.Hour)

	// Jumpy: alternates 0.004 / 0.036 every 2 hours (mean 0.02/unit
	// price, huge swing). Starts cheap so a greedy policy takes the bait.
	var pts []market.Point
	price := 0.004
	for ts := 0.0; ts < float64(end); ts += 2 * sim.Hour {
		pts = append(pts, market.Point{T: ts, Price: price})
		if price == 0.004 {
			price = 0.036
		} else {
			price = 0.004
		}
	}
	jumpy, err := market.NewTrace(jumpyID, pts, end)
	if err != nil {
		t.Fatal(err)
	}
	// Steady: flat 0.024 — above the jumpy market's mean (0.02) but far
	// below its expensive phase, so a greedy policy bounces between the
	// two markets every phase flip.
	steady, err := market.NewTrace(steadyID, []market.Point{{T: 0, Price: 0.024}}, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{jumpy, steady},
		map[market.ID]float64{jumpyID: 0.06, steadyID: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// stabilityConfig hosts one unit VM over both markets.
func stabilityConfig(t *testing.T, lambda float64) Config {
	t.Helper()
	cfg, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, market.DefaultTypes())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Service.VM.Units = 1
	cfg.Markets = []market.ID{
		{Region: "us-east-1a", Type: "small"},
		{Region: "us-east-1a", Type: "medium"},
	}
	cfg.StabilityPenalty = lambda
	cfg.VolatilityHalflife = 6 * sim.Hour
	return cfg
}

// TestStabilityAwareReducesChurn: with lambda = 0 the greedy policy chases
// the jumpy market's cheap phases and migrates constantly; a stability
// penalty parks the service in the steady market.
func TestStabilityAwareReducesChurn(t *testing.T) {
	greedy, err := Run(stabilitySet(t), fixedCloudParams(), stabilityConfig(t, 0), 80*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := Run(stabilitySet(t), fixedCloudParams(), stabilityConfig(t, 2), 80*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Migrations.Planned < 5 {
		t.Fatalf("greedy policy should churn on this script: %+v", greedy.Migrations)
	}
	if stable.Migrations.Planned >= greedy.Migrations.Planned/2 {
		t.Fatalf("stability penalty did not reduce churn: %d vs %d planned",
			stable.Migrations.Planned, greedy.Migrations.Planned)
	}
	if stable.DowntimeSeconds > greedy.DowntimeSeconds {
		t.Fatalf("stability-aware downtime %.1f should not exceed greedy %.1f",
			stable.DowntimeSeconds, greedy.DowntimeSeconds)
	}
}

// TestStabilityPenaltyValidation: the config rejects inconsistent
// stability settings.
func TestStabilityPenaltyValidation(t *testing.T) {
	cfg := stabilityConfig(t, 1)
	cfg.StabilityPenalty = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative lambda accepted")
	}
	cfg = stabilityConfig(t, 1)
	cfg.VolatilityHalflife = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("lambda without halflife accepted")
	}
}

// TestStabilityZeroMatchesGreedy: lambda = 0 must be byte-identical to the
// paper's greedy behaviour (same migrations, same cost).
func TestStabilityZeroMatchesGreedy(t *testing.T) {
	cfg := stabilityConfig(t, 0)
	a, err := Run(stabilitySet(t), fixedCloudParams(), cfg, 80*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Explicitly construct the greedy config without any stability fields.
	cfg2 := stabilityConfig(t, 0)
	cfg2.VolatilityHalflife = 0
	b, err := Run(stabilitySet(t), fixedCloudParams(), cfg2, 80*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Migrations != b.Migrations {
		t.Fatalf("lambda=0 diverged from greedy: %+v vs %+v", a.Migrations, b.Migrations)
	}
}

// TestStabilityAwareOnGeneratedUniverse checks the future-work claim
// end-to-end: on volatile multi-region universes, stability-aware bidding
// should not increase unavailability, and usually reduces migrations.
func TestStabilityAwareOnGeneratedUniverse(t *testing.T) {
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 15 * sim.Day

	mk := func(lambda float64) Config {
		cfg, err := DefaultConfig(market.ID{Region: "us-east-1a", Type: "small"}, mcfg.Types)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Service = ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: 4,
		}
		for _, reg := range []market.Region{"us-east-1a", "us-east-1b", "eu-west-1a"} {
			for _, ty := range []market.InstanceType{"small", "medium", "large", "xlarge"} {
				cfg.Markets = append(cfg.Markets, market.ID{Region: reg, Type: ty})
			}
		}
		cfg.Markets = cfg.Markets[1:] // drop the duplicate home entry
		cfg.Markets = append([]market.ID{cfg.Home}, cfg.Markets...)
		cfg.StabilityPenalty = lambda
		return cfg
	}

	seeds := []int64{3, 9}
	greedy, err := RunSeeds(mcfg, cloud.DefaultParams(0), mk(0), 15*sim.Day, seeds)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := RunSeeds(mcfg, cloud.DefaultParams(0), mk(1.0), 15*sim.Day, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var gMig, aMig int
	var gCost, aCost float64
	for i := range greedy {
		gMig += greedy[i].Migrations.Total()
		aMig += aware[i].Migrations.Total()
		gCost += greedy[i].NormalizedCost()
		aCost += aware[i].NormalizedCost()
	}
	if aMig > gMig {
		t.Errorf("stability-aware migrated more: %d vs %d", aMig, gMig)
	}
	// The stability premium should be modest (< 40% relative).
	if aCost > gCost*1.4 {
		t.Errorf("stability premium too large: %.3f vs %.3f", aCost, gCost)
	}
}
