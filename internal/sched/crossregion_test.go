package sched

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// crossRegionSet: the home region's market turns expensive (but below the
// 4x bid) at t=20000 while the other region stays cheap, so the only
// voluntary escape is a cross-region migration with a WAN disk copy.
func crossRegionSet(t *testing.T) *market.Set {
	t.Helper()
	east := market.ID{Region: "us-east-1a", Type: "small"}
	eu := market.ID{Region: "eu-west-1a", Type: "small"}
	end := sim.Time(60 * sim.Hour)
	trE, err := market.NewTrace(east, []market.Point{
		{T: 0, Price: 0.008},
		{T: 20000, Price: 0.2}, // pricier than on-demand, under the 0.24 bid
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	trU, err := market.NewTrace(eu, []market.Point{{T: 0, Price: 0.012}}, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{trE, trU},
		map[market.ID]float64{east: 0.06, eu: 0.065})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCrossRegionPlannedMigration: the scheduler escapes a hot home region
// to a calm foreign one; the move is counted as cross-region, the WAN disk
// copy stretches its duration, and live migration keeps the downtime
// sub-second.
func TestCrossRegionPlannedMigration(t *testing.T) {
	set := crossRegionSet(t)
	cfg := mustConfig(t)
	cfg.Markets = []market.ID{
		{Region: "us-east-1a", Type: "small"},
		{Region: "eu-west-1a", Type: "small"},
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, fixedCloudParams())
	s, err := New(prov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(60 * sim.Hour)
	r := s.Report()

	if r.Migrations.CrossRegion < 1 {
		t.Fatalf("no cross-region migration: %+v\n%s", r.Migrations, renderLog(s))
	}
	if r.Migrations.Forced != 0 {
		t.Fatalf("forced migrations in a sub-bid script: %+v", r.Migrations)
	}
	// Live hand-off keeps downtime tiny despite the WAN hop.
	if r.DowntimeSeconds > 5 {
		t.Fatalf("cross-region downtime = %.1f s", r.DowntimeSeconds)
	}
	// The service ends up on the eu spot market, not on-demand.
	dones := s.EventsOf(EvMigrationDone)
	if len(dones) == 0 {
		t.Fatal("no completed migrations logged")
	}
	last := dones[len(dones)-1]
	if last.Market.Region != "eu-west-1a" || last.Lifecycle != cloud.Spot {
		t.Fatalf("final placement: %s/%s", last.Market, last.Lifecycle)
	}
	if r.Cost >= r.BaselineCost {
		t.Fatalf("cost %v vs baseline %v", r.Cost, r.BaselineCost)
	}
}

// TestCrossRegionCheckpointDowntime: the same escape with the checkpoint
// mechanism pays the extra WAN increment hand-off in downtime, but still
// crosses.
func TestCrossRegionCheckpointDowntime(t *testing.T) {
	set := crossRegionSet(t)
	cfg := mustConfig(t)
	cfg.Markets = []market.ID{
		{Region: "us-east-1a", Type: "small"},
		{Region: "eu-west-1a", Type: "small"},
	}
	cfg.Mechanism = vm.CKPTLazy
	r, err := Run(set, fixedCloudParams(), cfg, 60*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations.CrossRegion < 1 {
		t.Fatalf("no cross-region migration: %+v", r.Migrations)
	}
	// Downtime = bound (3) + pre-staged resume (2) + WAN increment (3):
	// around 8 s, clearly above the live variant's sub-second hand-off.
	if r.DowntimeSeconds < 5 || r.DowntimeSeconds > 20 {
		t.Fatalf("checkpoint WAN downtime = %.1f s, want ~8 s", r.DowntimeSeconds)
	}
}
