// Package advisor answers the question a service operator actually asks:
// "which bidding policy and migration mechanism should host MY service?"
// It sweeps the policy x mechanism matrix over the operator's price data,
// filters by an availability objective, prices the outcomes under the
// operator's revenue model, and ranks what is left by net benefit.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"spothost/internal/cloud"
	"spothost/internal/econ"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/slo"
	"spothost/internal/vm"
)

// Request describes the operator's service and constraints.
type Request struct {
	// Home names the service's market.
	Home market.ID
	// Target is the availability objective candidates must meet
	// (0 disables the filter).
	Target slo.Target
	// Revenue prices downtime; the zero value makes ranking pure savings.
	Revenue econ.RevenueModel
	// Horizon bounds each evaluation run (0 = the price set's extent).
	Horizon sim.Duration
	// Policies and Mechanisms narrow the matrix; empty means all
	// spot-using policies and all four mechanism combinations.
	Policies   []sched.Bidding
	Mechanisms []vm.Mechanism
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Policy    sched.Bidding
	Mechanism vm.Mechanism
	Report    metrics.Report
	Analysis  econ.Analysis
	// MeetsTarget reports whether the availability objective held.
	MeetsTarget bool
}

// Recommendation is the advisor's output: every candidate, ranked, plus
// the pick.
type Recommendation struct {
	Candidates []Candidate // ranked: best first
	// Best is the highest-net candidate that meets the target; nil when
	// nothing qualifies (the advice is then: stay on-demand).
	Best *Candidate
}

// Advise evaluates the matrix over the given price universe.
func Advise(set *market.Set, params cloud.Params, req Request) (Recommendation, error) {
	if set.Trace(req.Home) == nil {
		return Recommendation{}, fmt.Errorf("advisor: unknown home market %s", req.Home)
	}
	if err := req.Revenue.Validate(); err != nil {
		return Recommendation{}, err
	}
	policies := req.Policies
	if len(policies) == 0 {
		policies = []sched.Bidding{sched.Reactive, sched.Proactive, sched.PureSpot}
	}
	mechanisms := req.Mechanisms
	if len(mechanisms) == 0 {
		mechanisms = vm.Mechanisms()
	}

	var rec Recommendation
	for _, b := range policies {
		for _, m := range mechanisms {
			cfg, err := sched.DefaultConfig(req.Home, market.DefaultTypes())
			if err != nil {
				return rec, err
			}
			cfg.Bidding = b
			cfg.Mechanism = m
			rep, err := sched.Run(set, params, cfg, req.Horizon)
			if err != nil {
				return rec, err
			}
			a, err := econ.Analyze(req.Revenue, rep)
			if err != nil {
				return rec, err
			}
			c := Candidate{
				Policy:      b,
				Mechanism:   m,
				Report:      rep,
				Analysis:    a,
				MeetsTarget: req.Target == 0 || 1-rep.Unavailability() >= float64(req.Target),
			}
			rec.Candidates = append(rec.Candidates, c)
		}
	}
	// Rank: target-compliant first, then by net benefit.
	sort.SliceStable(rec.Candidates, func(i, j int) bool {
		a, b := rec.Candidates[i], rec.Candidates[j]
		if a.MeetsTarget != b.MeetsTarget {
			return a.MeetsTarget
		}
		return a.Analysis.Net > b.Analysis.Net
	})
	if len(rec.Candidates) > 0 && rec.Candidates[0].MeetsTarget &&
		rec.Candidates[0].Analysis.Net > 0 {
		rec.Best = &rec.Candidates[0]
	}
	return rec, nil
}

// Render prints the ranked matrix.
func (r Recommendation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-15s %8s %11s %10s %6s %s\n",
		"policy", "mechanism", "cost", "unavail", "net", "target", "verdict")
	for i, c := range r.Candidates {
		verdict := ""
		if r.Best != nil && c.Policy == r.Best.Policy && c.Mechanism == r.Best.Mechanism && i == 0 {
			verdict = "<= recommended"
		}
		meets := "no"
		if c.MeetsTarget {
			meets = "yes"
		}
		fmt.Fprintf(&b, "%-11s %-15s %7.1f%% %10.4f%% $%9.2f %6s %s\n",
			c.Policy, c.Mechanism, 100*c.Report.NormalizedCost(),
			100*c.Report.Unavailability(), c.Analysis.Net, meets, verdict)
	}
	if r.Best == nil {
		b.WriteString("no spot configuration meets the constraints: stay on on-demand servers\n")
	}
	return b.String()
}
