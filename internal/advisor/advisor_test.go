package advisor

import (
	"strings"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/econ"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/slo"
	"spothost/internal/vm"
)

func universe(t *testing.T) *market.Set {
	t.Helper()
	cfg := market.DefaultConfig(404)
	cfg.Horizon = 12 * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

var home = market.ID{Region: "us-east-1a", Type: "small"}

func TestAdviseValidation(t *testing.T) {
	set := universe(t)
	if _, err := Advise(set, cloud.DefaultParams(1), Request{
		Home: market.ID{Region: "mars", Type: "small"},
	}); err == nil {
		t.Fatal("unknown market accepted")
	}
	if _, err := Advise(set, cloud.DefaultParams(1), Request{
		Home:    home,
		Revenue: econ.RevenueModel{RequestsPerSecond: -1},
	}); err == nil {
		t.Fatal("bad revenue model accepted")
	}
}

// TestAdviseRecommendsProactiveForFourNines: with the paper's four-nines
// bar and meaningful revenue, the advisor lands on a proactive
// configuration and rejects pure spot.
func TestAdviseRecommendsProactiveForFourNines(t *testing.T) {
	rec, err := Advise(universe(t), cloud.DefaultParams(404), Request{
		Home:   home,
		Target: slo.FourNines,
		Revenue: econ.RevenueModel{
			RequestsPerSecond:  20,
			RevenuePerRequest:  0.001,
			DegradedLossFactor: 0.3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full matrix: 3 policies x 4 mechanisms.
	if len(rec.Candidates) != 12 {
		t.Fatalf("candidates = %d", len(rec.Candidates))
	}
	if rec.Best == nil {
		t.Fatalf("no recommendation:\n%s", rec.Render())
	}
	if rec.Best.Policy != sched.Proactive {
		t.Fatalf("recommended %v, want proactive:\n%s", rec.Best.Policy, rec.Render())
	}
	if !rec.Best.MeetsTarget || rec.Best.Analysis.Net <= 0 {
		t.Fatalf("best candidate unfit: %+v", rec.Best)
	}
	// Pure spot never meets four nines on this universe.
	for _, c := range rec.Candidates {
		if c.Policy == sched.PureSpot && c.MeetsTarget {
			t.Fatalf("pure spot met four nines: %+v", c.Report)
		}
	}
	// Ranking: compliant candidates precede non-compliant ones.
	seenNoncompliant := false
	for _, c := range rec.Candidates {
		if !c.MeetsTarget {
			seenNoncompliant = true
		} else if seenNoncompliant {
			t.Fatal("ranking interleaves compliant and non-compliant candidates")
		}
	}
	out := rec.Render()
	if !strings.Contains(out, "<= recommended") {
		t.Fatalf("render missing recommendation marker:\n%s", out)
	}
}

// TestAdviseHighRevenueSaysStayOnDemand: when a second of downtime costs
// more than a month of savings, no spot configuration survives the math.
func TestAdviseHighRevenueSaysStayOnDemand(t *testing.T) {
	rec, err := Advise(universe(t), cloud.DefaultParams(404), Request{
		Home:   home,
		Target: slo.FourNines,
		Revenue: econ.RevenueModel{
			RequestsPerSecond: 100000,
			RevenuePerRequest: 0.01, // $1000/s of revenue
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != nil {
		t.Fatalf("spot recommended despite ruinous downtime: %+v", rec.Best)
	}
	if !strings.Contains(rec.Render(), "stay on on-demand") {
		t.Fatalf("render missing the stay-on-demand verdict:\n%s", rec.Render())
	}
}

// TestAdviseNarrowedMatrix: explicit policy/mechanism lists narrow the
// sweep.
func TestAdviseNarrowedMatrix(t *testing.T) {
	rec, err := Advise(universe(t), cloud.DefaultParams(404), Request{
		Home:       home,
		Policies:   []sched.Bidding{sched.Proactive},
		Mechanisms: []vm.Mechanism{vm.CKPTLazyLive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 1 {
		t.Fatalf("candidates = %d", len(rec.Candidates))
	}
	// No target and free revenue: the single candidate wins on savings.
	if rec.Best == nil || rec.Best.Mechanism != vm.CKPTLazyLive {
		t.Fatalf("best = %+v", rec.Best)
	}
}
