package stats

import "math"

// WeightedMoments accumulates the weight-weighted first and second moments
// of a signal. For a piecewise-constant signal observed segment by segment
// with weight = segment duration, the results are the exact time-weighted
// mean and population variance — no sampling grid involved.
type WeightedMoments struct {
	W  float64 // total weight
	M1 float64 // sum of value * weight
	M2 float64 // sum of value^2 * weight
}

// Add incorporates one segment with the given value and weight.
func (m *WeightedMoments) Add(value, weight float64) {
	m.W += weight
	m.M1 += value * weight
	m.M2 += value * value * weight
}

// Mean returns the weighted mean, or 0 with no weight.
func (m *WeightedMoments) Mean() float64 {
	if m.W == 0 {
		return 0
	}
	return m.M1 / m.W
}

// PopVar returns the weighted population variance, clamped at 0 against
// floating-point cancellation.
func (m *WeightedMoments) PopVar() float64 {
	if m.W == 0 {
		return 0
	}
	mean := m.M1 / m.W
	v := m.M2/m.W - mean*mean
	if v < 0 {
		v = 0
	}
	return v
}

// PopStd returns the weighted population standard deviation.
func (m *WeightedMoments) PopStd() float64 { return math.Sqrt(m.PopVar()) }

// WeightedPair accumulates weighted comoments of two signals, yielding the
// exact weighted Pearson correlation for piecewise-constant signals merged
// segment by segment.
type WeightedPair struct {
	W   float64
	MA  float64 // sum of a * weight
	MB  float64 // sum of b * weight
	MAA float64 // sum of a^2 * weight
	MBB float64 // sum of b^2 * weight
	MAB float64 // sum of a*b * weight
}

// Add incorporates one segment during which the signals held values a and b.
func (p *WeightedPair) Add(a, b, weight float64) {
	p.W += weight
	p.MA += a * weight
	p.MB += b * weight
	p.MAA += a * a * weight
	p.MBB += b * b * weight
	p.MAB += a * b * weight
}

// Pearson returns the weighted Pearson correlation coefficient, or 0 when
// either signal is constant (correlation undefined) or no weight was added.
func (p *WeightedPair) Pearson() float64 {
	if p.W == 0 {
		return 0
	}
	ma, mb := p.MA/p.W, p.MB/p.W
	va := p.MAA/p.W - ma*ma
	vb := p.MBB/p.W - mb*mb
	cov := p.MAB/p.W - ma*mb
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
