package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocorrelationBasics(t *testing.T) {
	// Lag 0 is identically 1 for any non-constant series.
	xs := []float64{1, 3, 2, 5, 4, 6, 5, 7}
	if got := Autocorrelation(xs, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("lag-0 = %v", got)
	}
	// Negative lags mirror positive ones.
	if Autocorrelation(xs, 2) != Autocorrelation(xs, -2) {
		t.Fatal("lag sign not mirrored")
	}
	// Constant series: defined as 0.
	if Autocorrelation([]float64{5, 5, 5, 5}, 1) != 0 {
		t.Fatal("constant series should be 0")
	}
	// Too-short overlap.
	if Autocorrelation(xs, len(xs)-1) != 0 {
		t.Fatal("short overlap should be 0")
	}
}

func TestAutocorrelationPersistentVsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// AR(1) with phi=0.9 has high lag-1 autocorrelation...
	persistent := make([]float64, 5000)
	for i := 1; i < len(persistent); i++ {
		persistent[i] = 0.9*persistent[i-1] + rng.NormFloat64()
	}
	// ...white noise has ~0.
	noise := make([]float64, 5000)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if got := Autocorrelation(persistent, 1); got < 0.8 {
		t.Fatalf("AR(1) lag-1 = %v, want ~0.9", got)
	}
	if got := Autocorrelation(noise, 1); math.Abs(got) > 0.08 {
		t.Fatalf("noise lag-1 = %v, want ~0", got)
	}
	// The persistent series stays correlated longer.
	lp := DecorrelationLag(persistent, 0.2, 100)
	ln := DecorrelationLag(noise, 0.2, 100)
	if lp <= ln {
		t.Fatalf("decorrelation lags: persistent %d vs noise %d", lp, ln)
	}
}

func TestAutocorrelationFn(t *testing.T) {
	xs := []float64{1, 2, 1, 2, 1, 2, 1, 2}
	acf := AutocorrelationFn(xs, 2)
	if len(acf) != 3 || acf[0] != 1 {
		t.Fatalf("acf = %v", acf)
	}
	// An alternating series is negatively correlated at lag 1, positively
	// at lag 2.
	if acf[1] >= 0 || acf[2] <= 0 {
		t.Fatalf("alternating acf = %v", acf)
	}
	if got := AutocorrelationFn(xs, -3); len(got) != 1 {
		t.Fatalf("negative maxLag: %v", got)
	}
}

func TestDecorrelationLagNeverDrops(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // trend: stays correlated
	if got := DecorrelationLag(xs, 0.01, 3); got != 4 {
		t.Fatalf("never-drops lag = %d, want maxLag+1", got)
	}
}

func TestCrossCorrelation(t *testing.T) {
	// ys leads xs by 2 samples.
	ys := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	xs := []float64{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	best, bestLag := -2.0, 0
	for lag := -3; lag <= 3; lag++ {
		if r := CrossCorrelation(xs, ys, lag); r > best {
			best, bestLag = r, lag
		}
	}
	if bestLag != 2 && best < 0.999 {
		t.Fatalf("best lag = %d (r=%v), want 2", bestLag, best)
	}
	// Guards.
	if CrossCorrelation(xs, ys[:5], 0) != 0 {
		t.Fatal("length mismatch should be 0")
	}
	if CrossCorrelation(xs, ys, 99) != 0 || CrossCorrelation(xs, ys, -99) != 0 {
		t.Fatal("overlong lag should be 0")
	}
}

func TestRollingStd(t *testing.T) {
	xs := []float64{1, 1, 1, 5, 5, 5}
	rs := RollingStd(xs, 3)
	if !math.IsNaN(rs[0]) || !math.IsNaN(rs[1]) {
		t.Fatal("incomplete windows should be NaN")
	}
	if rs[2] != 0 { // window [1,1,1]
		t.Fatalf("flat window std = %v", rs[2])
	}
	if rs[3] <= 0 { // window [1,1,5]
		t.Fatalf("stepped window std = %v", rs[3])
	}
	if rs[5] != 0 { // window [5,5,5]
		t.Fatalf("flat tail std = %v", rs[5])
	}
	// Degenerate windows.
	for _, w := range []int{0, 1, 7} {
		out := RollingStd(xs, w)
		for _, v := range out {
			if !math.IsNaN(v) {
				t.Fatalf("window %d should be all NaN", w)
			}
		}
	}
}
