package stats

import "math"

// Autocorrelation returns the sample autocorrelation of xs at the given
// lag (lag 0 = 1 by definition). It returns 0 for constant series or when
// the lag leaves fewer than two overlapping points.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 {
		lag = -lag
	}
	if n-lag < 2 {
		return 0
	}
	mean := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	return num / den
}

// AutocorrelationFn returns autocorrelations for lags 0..maxLag.
func AutocorrelationFn(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = Autocorrelation(xs, lag)
	}
	return out
}

// DecorrelationLag returns the smallest lag at which the autocorrelation
// drops below the threshold, or maxLag+1 when it never does — a rough
// memory-length estimate for a price series.
func DecorrelationLag(xs []float64, threshold float64, maxLag int) int {
	for lag := 1; lag <= maxLag; lag++ {
		if Autocorrelation(xs, lag) < threshold {
			return lag
		}
	}
	return maxLag + 1
}

// CrossCorrelation returns the Pearson correlation between xs and ys with
// ys shifted forward by lag samples (positive lag: ys leads xs). Series
// must be equal length; insufficient overlap returns 0.
func CrossCorrelation(xs, ys []float64, lag int) float64 {
	if len(xs) != len(ys) {
		return 0
	}
	var a, b []float64
	switch {
	case lag >= 0:
		if lag >= len(xs) {
			return 0
		}
		a, b = xs[lag:], ys[:len(ys)-lag]
	default:
		lag = -lag
		if lag >= len(xs) {
			return 0
		}
		a, b = xs[:len(xs)-lag], ys[lag:]
	}
	r, err := Pearson(a, b)
	if err != nil {
		return 0
	}
	return r
}

// RollingStd returns the standard deviation of xs over a sliding window of
// the given width; positions with an incomplete window carry NaN.
func RollingStd(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = math.NaN()
	}
	if window < 2 || window > len(xs) {
		return out
	}
	for i := window - 1; i < len(xs); i++ {
		var w Welford
		for j := i - window + 1; j <= i; j++ {
			w.Add(xs[j])
		}
		out[i] = w.Std()
	}
	return out
}
