// Package stats provides the small statistics toolkit used by the spothost
// simulators and the experiment harness: streaming moments, correlation,
// percentiles, time-weighted averages and fixed-bin histograms.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Welford accumulates count, mean and variance in one pass with good
// numerical behaviour. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// PopStd returns the population standard deviation (dividing by n).
func (w *Welford) PopStd() float64 {
	if w.n == 0 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest observation, or 0 with no samples.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no samples.
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	mn, mx := w.min, w.max
	if o.min < mn {
		mn = o.min
	}
	if o.max > mx {
		mx = o.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: mn, max: mx}
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Std()
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It returns an error for mismatched lengths or fewer than two
// points, and 0 when either series is constant (correlation undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It copies and sorts the input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// TimeWeighted accumulates the time-weighted average of a piecewise-
// constant signal: call Observe at every change with the time at which the
// previous value stopped holding.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	weighted float64
	elapsed  float64
}

// Start begins the signal at time t with value v.
func (tw *TimeWeighted) Start(t, v float64) {
	tw.started = true
	tw.lastT = t
	tw.lastV = v
}

// Observe records that the signal changed to value v at time t; the
// previous value is credited for the interval since the last call.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.Start(t, v)
		return
	}
	if t < tw.lastT {
		return // out-of-order observation; ignore
	}
	dt := t - tw.lastT
	tw.weighted += tw.lastV * dt
	tw.elapsed += dt
	tw.lastT = t
	tw.lastV = v
}

// Finish closes the signal at time t and returns the time-weighted mean.
func (tw *TimeWeighted) Finish(t float64) float64 {
	tw.Observe(t, tw.lastV)
	if tw.elapsed == 0 {
		return tw.lastV
	}
	return tw.weighted / tw.elapsed
}

// Mean returns the time-weighted mean so far without closing the signal.
func (tw *TimeWeighted) Mean() float64 {
	if tw.elapsed == 0 {
		return tw.lastV
	}
	return tw.weighted / tw.elapsed
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); samples outside
// the range land in saturating under/overflow bins, so Count always equals
// the number of Add calls and no sample disappears silently.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	count     int
	sum       float64
}

// NewHistogram returns a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add inserts one sample.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // guard against float rounding at Hi
			i--
		}
		h.Bins[i]++
	}
}

// Count returns the total number of samples added, including those that
// fell outside [Lo, Hi).
func (h *Histogram) Count() int { return h.count }

// Sum returns the sum of all samples added, including out-of-range ones.
func (h *Histogram) Sum() float64 { return h.sum }

// Fraction returns the fraction of samples falling in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.count)
}

// UnderflowFraction returns the fraction of samples below Lo.
func (h *Histogram) UnderflowFraction() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Underflow) / float64(h.count)
}

// OverflowFraction returns the fraction of samples at or above Hi.
func (h *Histogram) OverflowFraction() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Overflow) / float64(h.count)
}

// BucketUpperBound returns the exclusive upper edge of bin i.
func (h *Histogram) BucketUpperBound(i int) float64 {
	return h.Lo + (h.Hi-h.Lo)*float64(i+1)/float64(len(h.Bins))
}

// Cumulative returns the number of samples at or below bin i's upper edge:
// the underflow bin plus bins 0..i. This is the Prometheus cumulative-
// bucket convention; the implicit +Inf bucket is Count().
func (h *Histogram) Cumulative(i int) int {
	c := h.Underflow
	for j := 0; j <= i && j < len(h.Bins); j++ {
		c += h.Bins[j]
	}
	return c
}

// Merge adds another histogram's samples into h. The two histograms must
// share the same shape (Lo, Hi, bin count); mismatched shapes panic since
// merging them bin-by-bin would silently misbin every sample.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Bins) != len(o.Bins) {
		panic("stats: Merge of mismatched histogram shapes")
	}
	for i, n := range o.Bins {
		h.Bins[i] += n
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	h.count += o.count
	h.sum += o.sum
}
