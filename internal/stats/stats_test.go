package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	if !almost(w.PopStd(), 2, 1e-12) {
		t.Fatalf("pop std = %v", w.PopStd())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.PopStd() != 0 {
		t.Fatal("empty accumulator should be all zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single sample: %+v", w)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(na, nb uint8) bool {
		var a, b, all Welford
		for i := 0; i < int(na)+1; i++ {
			x := rng.NormFloat64()*3 + 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb)+1; i++ {
			x := rng.NormFloat64()*5 - 2
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Var(), all.Var(), 1e-7) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty changes nothing
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge with empty corrupted: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty wrong: %+v", b)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("Std of single value should be 0")
	}
	if !almost(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7), 1e-12) {
		t.Fatal("Std wrong")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("r = %v err = %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4})
	if err != nil || r != 0 {
		t.Fatalf("constant series should give r=0, got %v, %v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("too-short input not detected")
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	for _, c := range []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v (err %v), want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile should error")
	}
	got, _ := Percentile([]float64{7}, 99)
	if got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
	// Out-of-range p clamps.
	got, _ = Percentile(xs, -5)
	if got != 15 {
		t.Fatalf("clamped p<0 = %v", got)
	}
	got, _ = Percentile(xs, 200)
	if got != 50 {
		t.Fatalf("clamped p>100 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Start(0, 10)
	tw.Observe(5, 20) // value 10 held for 5s
	tw.Observe(15, 0) // value 20 held for 10s
	got := tw.Finish(20)
	// (10*5 + 20*10 + 0*5) / 20 = 12.5
	if !almost(got, 12.5, 1e-12) {
		t.Fatalf("time-weighted mean = %v", got)
	}
}

func TestTimeWeightedAutoStart(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(3, 7) // acts as Start
	if got := tw.Finish(10); !almost(got, 7, 1e-12) {
		t.Fatalf("auto-start mean = %v", got)
	}
}

func TestTimeWeightedOutOfOrderIgnored(t *testing.T) {
	var tw TimeWeighted
	tw.Start(10, 1)
	tw.Observe(5, 99) // in the past: ignored
	if got := tw.Finish(20); !almost(got, 1, 1e-12) {
		t.Fatalf("out-of-order observation corrupted mean: %v", got)
	}
}

func TestTimeWeightedZeroElapsed(t *testing.T) {
	var tw TimeWeighted
	tw.Start(5, 3)
	if got := tw.Finish(5); got != 3 {
		t.Fatalf("zero-elapsed mean = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Bins[4])
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if !almost(h.Fraction(0), 2.0/7, 1e-12) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramConservation(t *testing.T) {
	h := NewHistogram(-3, 3, 12)
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	for i := 0; i < n; i++ {
		h.Add(rng.NormFloat64())
	}
	total := h.Underflow + h.Overflow
	for _, b := range h.Bins {
		total += b
	}
	if total != n {
		t.Fatalf("samples lost: %d != %d", total, n)
	}
}

func TestHistogramOverflowAccessors(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, -2, 3, 5, 12, 15, 20} {
		h.Add(x)
	}
	if !almost(h.UnderflowFraction(), 2.0/7, 1e-12) {
		t.Fatalf("underflow fraction = %v", h.UnderflowFraction())
	}
	if !almost(h.OverflowFraction(), 3.0/7, 1e-12) {
		t.Fatalf("overflow fraction = %v", h.OverflowFraction())
	}
	if !almost(h.Sum(), 52, 1e-12) {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 1, 3, 5, 12} {
		h.Add(x)
	}
	// underflow=1, bins = [1,1,1,0,0], overflow=1
	want := []int{2, 3, 4, 4, 4}
	for i, w := range want {
		if got := h.Cumulative(i); got != w {
			t.Fatalf("cumulative(%d) = %d, want %d", i, got, w)
		}
	}
	if ub := h.BucketUpperBound(0); !almost(ub, 2, 1e-12) {
		t.Fatalf("upper bound 0 = %v", ub)
	}
	if ub := h.BucketUpperBound(4); !almost(ub, 10, 1e-12) {
		t.Fatalf("upper bound 4 = %v", ub)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 1, 3} {
		a.Add(x)
	}
	for _, x := range []float64{5, 12} {
		b.Add(x)
	}
	a.Merge(b)
	if a.Count() != 5 || a.Underflow != 1 || a.Overflow != 1 {
		t.Fatalf("merged count=%d under=%d over=%d", a.Count(), a.Underflow, a.Overflow)
	}
	if !almost(a.Sum(), 20, 1e-12) {
		t.Fatalf("merged sum = %v", a.Sum())
	}
	a.Merge(nil) // no-op
	if a.Count() != 5 {
		t.Fatalf("nil merge changed count")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	a.Merge(NewHistogram(0, 10, 4))
}
