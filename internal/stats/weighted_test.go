package stats

import (
	"math"
	"math/rand"
	"testing"
)

// expand replicates each value proportionally to its (integer) weight so a
// plain unweighted computation can serve as the reference.
func expand(vals []float64, weights []int) []float64 {
	var out []float64
	for i, v := range vals {
		for k := 0; k < weights[i]; k++ {
			out = append(out, v)
		}
	}
	return out
}

func TestWeightedMomentsMatchesExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		weights := make([]int, n)
		var m WeightedMoments
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
			weights[i] = 1 + rng.Intn(5)
			m.Add(vals[i], float64(weights[i]))
		}
		flat := expand(vals, weights)
		var sum float64
		for _, v := range flat {
			sum += v
		}
		mean := sum / float64(len(flat))
		var ss float64
		for _, v := range flat {
			ss += (v - mean) * (v - mean)
		}
		std := math.Sqrt(ss / float64(len(flat)))
		if math.Abs(m.Mean()-mean) > 1e-9*(1+math.Abs(mean)) {
			t.Fatalf("trial %d: mean %v, want %v", trial, m.Mean(), mean)
		}
		if math.Abs(m.PopStd()-std) > 1e-9*(1+std) {
			t.Fatalf("trial %d: std %v, want %v", trial, m.PopStd(), std)
		}
	}
}

func TestWeightedPairMatchesExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(50)
		as := make([]float64, n)
		bs := make([]float64, n)
		weights := make([]int, n)
		var p WeightedPair
		for i := range as {
			as[i] = rng.NormFloat64()
			bs[i] = 0.5*as[i] + rng.NormFloat64() // correlated but noisy
			weights[i] = 1 + rng.Intn(5)
			p.Add(as[i], bs[i], float64(weights[i]))
		}
		fa := expand(as, weights)
		fb := expand(bs, weights)
		m := float64(len(fa))
		var sa, sb float64
		for i := range fa {
			sa += fa[i]
			sb += fb[i]
		}
		ma, mb := sa/m, sb/m
		var saa, sbb, sab float64
		for i := range fa {
			saa += (fa[i] - ma) * (fa[i] - ma)
			sbb += (fb[i] - mb) * (fb[i] - mb)
			sab += (fa[i] - ma) * (fb[i] - mb)
		}
		want := 0.0
		if saa > 0 && sbb > 0 {
			want = sab / math.Sqrt(saa*sbb)
		}
		if math.Abs(p.Pearson()-want) > 1e-9 {
			t.Fatalf("trial %d: pearson %v, want %v", trial, p.Pearson(), want)
		}
	}
}

func TestWeightedDegenerate(t *testing.T) {
	var m WeightedMoments
	if m.Mean() != 0 || m.PopStd() != 0 {
		t.Fatal("empty moments not zero")
	}
	m.Add(3, 5)
	if m.Mean() != 3 || m.PopStd() != 0 {
		t.Fatalf("single value: mean %v std %v", m.Mean(), m.PopStd())
	}
	var p WeightedPair
	if p.Pearson() != 0 {
		t.Fatal("empty pair correlation not zero")
	}
	p.Add(1, 2, 4)
	p.Add(1, 5, 2) // a constant: zero variance on one side
	if p.Pearson() != 0 {
		t.Fatal("constant-side correlation not zero")
	}
}
