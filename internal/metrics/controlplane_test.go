package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestTenantSeriesCardinalityCap: past MaxTenantSeries tenants, the
// per-tenant gauge keeps only the largest tenants (ties broken by name)
// and folds the tail into one tenant="_other" series, preserving the
// total fleet count.
func TestTenantSeriesCardinalityCap(t *testing.T) {
	st := ControlPlaneStats{TenantFleets: map[string]int{}}
	total := 0
	// MaxTenantSeries+10 tenants: t000 has the most fleets, counts
	// descend so the cut is deterministic.
	n := MaxTenantSeries + 10
	for i := 0; i < n; i++ {
		c := n - i
		st.TenantFleets[fmt.Sprintf("t%03d", i)] = c
		total += c
	}
	var buf bytes.Buffer
	st.WritePrometheus(&buf, "spotserve")
	out := buf.String()

	series := 0
	sum := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "spotserve_cp_tenant_fleets{") {
			continue
		}
		series++
		var v int
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		sum += v
	}
	if series != MaxTenantSeries+1 {
		t.Fatalf("rendered %d tenant series, want %d kept + 1 _other", series, MaxTenantSeries)
	}
	if sum != total {
		t.Fatalf("series sum %d != total fleets %d (folding must preserve the total)", sum, total)
	}
	if !strings.Contains(out, `spotserve_cp_tenant_fleets{tenant="_other"}`) {
		t.Fatal("missing _other fold series")
	}
	// The biggest tenant survives; the smallest folds.
	if !strings.Contains(out, `{tenant="t000"}`) {
		t.Fatal("largest tenant was folded")
	}
	if strings.Contains(out, fmt.Sprintf(`{tenant="t%03d"}`, n-1)) {
		t.Fatal("smallest tenant escaped the fold")
	}
}

// TestTenantSeriesUnderCap: at or below the cap every tenant keeps its
// own series, sorted by name, with no _other series.
func TestTenantSeriesUnderCap(t *testing.T) {
	st := ControlPlaneStats{TenantFleets: map[string]int{"b": 2, "a": 1}}
	var buf bytes.Buffer
	st.WritePrometheus(&buf, "spotserve")
	out := buf.String()
	ia := strings.Index(out, `{tenant="a"}`)
	ib := strings.Index(out, `{tenant="b"}`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("tenants missing or unsorted:\n%s", out)
	}
	if strings.Contains(out, `{tenant="_other"}`) {
		t.Fatalf("_other series rendered under the cap:\n%s", out)
	}
}
