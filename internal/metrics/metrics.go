// Package metrics provides the accounting primitives and the run report
// the spothost scheduler produces: downtime interval tracking, migration
// counters, placement time shares, and cost normalization against the
// on-demand-only baseline.
package metrics

import (
	"fmt"
	"strings"

	"spothost/internal/sim"
)

// Interval is one closed downtime episode.
type Interval struct {
	Start sim.Time
	End   sim.Time
}

// Duration returns the episode length.
func (iv Interval) Duration() sim.Duration { return iv.End - iv.Start }

// DowntimeTracker accumulates service downtime as mark-down/mark-up
// intervals. It also accumulates degraded-mode time (lazy-restore fault-in
// periods) separately, and keeps the episode log for SLO analysis.
type DowntimeTracker struct {
	down        bool
	downSince   sim.Time
	total       sim.Duration
	episodes    int
	degraded    sim.Duration
	longestDown sim.Duration
	log         []Interval
}

// MarkDown records the service going down at t. Marking an already-down
// service is a no-op (downtime causes can overlap).
func (d *DowntimeTracker) MarkDown(t sim.Time) {
	if d.down {
		return
	}
	d.down = true
	d.downSince = t
	d.episodes++
}

// MarkUp records the service coming back at t.
func (d *DowntimeTracker) MarkUp(t sim.Time) {
	if !d.down {
		return
	}
	d.down = false
	ep := t - d.downSince
	d.total += ep
	if ep > d.longestDown {
		d.longestDown = ep
	}
	d.log = append(d.log, Interval{Start: d.downSince, End: t})
}

// Log returns the closed downtime episodes in order. Callers must not
// modify the result.
func (d *DowntimeTracker) Log() []Interval { return d.log }

// AddDegraded records dt seconds of degraded (slower, but available)
// operation.
func (d *DowntimeTracker) AddDegraded(dt sim.Duration) {
	if dt > 0 {
		d.degraded += dt
	}
}

// Down reports whether the service is currently marked down.
func (d *DowntimeTracker) Down() bool { return d.down }

// Total returns accumulated downtime as of time t (including a currently
// open episode).
func (d *DowntimeTracker) Total(t sim.Time) sim.Duration {
	if d.down && t > d.downSince {
		return d.total + (t - d.downSince)
	}
	return d.total
}

// Episodes returns the number of downtime episodes started.
func (d *DowntimeTracker) Episodes() int { return d.episodes }

// Longest returns the longest closed downtime episode.
func (d *DowntimeTracker) Longest() sim.Duration { return d.longestDown }

// Degraded returns accumulated degraded-mode time.
func (d *DowntimeTracker) Degraded() sim.Duration { return d.degraded }

// MigrationCounts tallies the scheduler's migrations by class.
type MigrationCounts struct {
	// Forced migrations follow provider revocations.
	Forced int
	// Planned migrations voluntarily move spot->on-demand or spot->spot.
	Planned int
	// Reverse migrations move on-demand back to spot.
	Reverse int
	// CrossRegion counts migrations that changed region (subset of the
	// above).
	CrossRegion int
	// MemoryLost counts migrations that could not preserve memory state.
	MemoryLost int
}

// Total returns all migrations.
func (m MigrationCounts) Total() int { return m.Forced + m.Planned + m.Reverse }

// Report is the outcome of one hosting run.
type Report struct {
	Policy    string
	Mechanism string
	Horizon   sim.Duration // measured from service start
	VMs       int

	// Costs in dollars over the horizon.
	Cost         float64
	BaselineCost float64 // same service on on-demand servers only

	// Placement time shares in VM-seconds.
	SpotSeconds     float64
	OnDemandSeconds float64

	DowntimeSeconds float64
	DegradedSeconds float64
	DownEpisodes    int
	LongestDowntime sim.Duration

	Migrations MigrationCounts

	// CheckpointGB is the volume of background checkpoint writes issued
	// by the Yank-style daemon over the run (all VMs).
	CheckpointGB float64

	// DowntimeLog holds the closed downtime episodes of a single run for
	// SLO analysis (see package slo). Average leaves it nil: episode logs
	// from different seeds are not comparable.
	DowntimeLog []Interval
}

// NormalizedCost returns cost as a fraction of the on-demand baseline
// (the paper's "Normalized Cost (%)" divided by 100).
func (r Report) NormalizedCost() float64 {
	if r.BaselineCost == 0 {
		return 0
	}
	return r.Cost / r.BaselineCost
}

// Unavailability returns the fraction of VM-time the service was down
// (the paper's "Unavailability (%)" divided by 100).
func (r Report) Unavailability() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return r.DowntimeSeconds / float64(r.Horizon)
}

// ForcedPerHour returns forced migrations per hour of horizon.
func (r Report) ForcedPerHour() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.Migrations.Forced) / (float64(r.Horizon) / sim.Hour)
}

// PlannedReversePerHour returns voluntary migrations per hour of horizon.
func (r Report) PlannedReversePerHour() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.Migrations.Planned+r.Migrations.Reverse) / (float64(r.Horizon) / sim.Hour)
}

// SpotFraction returns the fraction of placed time spent on spot servers.
func (r Report) SpotFraction() float64 {
	tot := r.SpotSeconds + r.OnDemandSeconds
	if tot == 0 {
		return 0
	}
	return r.SpotSeconds / tot
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s mechanism=%s horizon=%.1fd vms=%d\n",
		r.Policy, r.Mechanism, float64(r.Horizon)/sim.Day, r.VMs)
	fmt.Fprintf(&b, "  cost=$%.2f baseline=$%.2f normalized=%.1f%%\n",
		r.Cost, r.BaselineCost, 100*r.NormalizedCost())
	fmt.Fprintf(&b, "  unavailability=%.4f%% downtime=%.0fs episodes=%d longest=%.0fs degraded=%.0fs\n",
		100*r.Unavailability(), r.DowntimeSeconds, r.DownEpisodes, float64(r.LongestDowntime), r.DegradedSeconds)
	fmt.Fprintf(&b, "  migrations: forced=%d planned=%d reverse=%d xregion=%d memlost=%d (%.4f forced/hr, %.4f voluntary/hr)\n",
		r.Migrations.Forced, r.Migrations.Planned, r.Migrations.Reverse,
		r.Migrations.CrossRegion, r.Migrations.MemoryLost, r.ForcedPerHour(), r.PlannedReversePerHour())
	fmt.Fprintf(&b, "  placement: %.1f%% spot", 100*r.SpotFraction())
	return b.String()
}

// Average combines reports from repeated runs (different seeds) of the
// same configuration into one mean report. Counts are averaged and
// rounded; it panics on an empty input because that is always a harness
// bug.
func Average(rs []Report) Report {
	if len(rs) == 0 {
		panic("metrics: Average of no reports")
	}
	out := rs[0]
	n := float64(len(rs))
	var cost, base, spotS, odS, down, degr, horizon float64
	var forced, planned, reverse, xr, lost, eps float64
	var ckpt float64
	var longest sim.Duration
	for _, r := range rs {
		ckpt += r.CheckpointGB
		cost += r.Cost
		base += r.BaselineCost
		spotS += r.SpotSeconds
		odS += r.OnDemandSeconds
		down += r.DowntimeSeconds
		degr += r.DegradedSeconds
		horizon += float64(r.Horizon)
		forced += float64(r.Migrations.Forced)
		planned += float64(r.Migrations.Planned)
		reverse += float64(r.Migrations.Reverse)
		xr += float64(r.Migrations.CrossRegion)
		lost += float64(r.Migrations.MemoryLost)
		eps += float64(r.DownEpisodes)
		if r.LongestDowntime > longest {
			longest = r.LongestDowntime
		}
	}
	out.DowntimeLog = nil // per-seed logs are not averageable
	out.CheckpointGB = ckpt / n
	out.Cost = cost / n
	out.BaselineCost = base / n
	out.SpotSeconds = spotS / n
	out.OnDemandSeconds = odS / n
	out.DowntimeSeconds = down / n
	out.DegradedSeconds = degr / n
	out.Horizon = horizon / n
	out.DownEpisodes = int(eps/n + 0.5)
	out.LongestDowntime = longest
	out.Migrations = MigrationCounts{
		Forced:      int(forced/n + 0.5),
		Planned:     int(planned/n + 0.5),
		Reverse:     int(reverse/n + 0.5),
		CrossRegion: int(xr/n + 0.5),
		MemoryLost:  int(lost/n + 0.5),
	}
	return out
}
