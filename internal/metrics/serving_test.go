package metrics

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestServingLifecycle(t *testing.T) {
	var s Serving
	done := s.Start()
	if st := s.Snapshot(); st.Started != 1 || st.InFlight != 1 {
		t.Fatalf("after Start: %+v", st)
	}
	done(nil)
	done(nil) // second call is a no-op
	s.Start()(context.Canceled)
	s.Start()(context.DeadlineExceeded)
	s.Start()(errors.New("boom"))
	s.Reject()
	st := s.Snapshot()
	if st.Started != 4 || st.Completed != 1 || st.Canceled != 2 || st.Failed != 1 ||
		st.Rejected != 1 || st.InFlight != 0 {
		t.Fatalf("snapshot: %+v", st)
	}
	if st.RunSecondsTotal < 0 {
		t.Fatalf("negative run seconds: %v", st.RunSecondsTotal)
	}
}

func TestServingKinds(t *testing.T) {
	var s Serving
	s.StartKind("experiment")(nil)
	s.StartKind("fleet")(nil)
	s.StartKind("fleet")(context.Canceled)
	fdone := s.StartKind("fleet")
	s.Start()(errors.New("boom")) // unkinded: aggregate only

	st := s.Snapshot()
	if st.Started != 5 || st.InFlight != 1 {
		t.Fatalf("aggregate: %+v", st)
	}
	fl := st.Kinds["fleet"]
	if fl.Started != 3 || fl.Completed != 1 || fl.Canceled != 1 || fl.InFlight != 1 {
		t.Fatalf("fleet kind: %+v", fl)
	}
	if ex := st.Kinds["experiment"]; ex.Started != 1 || ex.Completed != 1 {
		t.Fatalf("experiment kind: %+v", ex)
	}
	if _, ok := st.Kinds[""]; ok {
		t.Fatal("empty kind tracked")
	}

	var b strings.Builder
	st.WritePrometheus(&b, "spotserve")
	out := b.String()
	for _, want := range []string{
		`spotserve_kind_runs_total{kind="fleet",outcome="started"} 3`,
		`spotserve_kind_runs_total{kind="fleet",outcome="canceled"} 1`,
		`spotserve_kind_runs_total{kind="experiment",outcome="completed"} 1`,
		`spotserve_kind_runs_in_flight{kind="fleet"} 1`,
		"# TYPE spotserve_kind_runs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Kinds render in sorted order for deterministic scrapes.
	if strings.Index(out, `kind="experiment"`) > strings.Index(out, `kind="fleet"`) {
		t.Fatalf("kinds out of order:\n%s", out)
	}
	fdone(nil)
	if st := s.Snapshot(); st.Kinds["fleet"].InFlight != 0 {
		t.Fatalf("fleet in-flight after done: %+v", st.Kinds["fleet"])
	}
}

func TestServingRunSecondsHistogram(t *testing.T) {
	var s Serving
	s.Start()(nil) // sub-millisecond run: lands in the first bucket
	st := s.Snapshot()
	if st.RunSecondsCount != 1 {
		t.Fatalf("count: %+v", st)
	}
	bounds := RunSecondsBounds()
	if len(st.RunSecondsBuckets) != len(bounds) {
		t.Fatalf("bucket/bound mismatch: %d vs %d", len(st.RunSecondsBuckets), len(bounds))
	}
	if st.RunSecondsBuckets[0] != 1 {
		t.Fatalf("fast run not in first bucket: %v", st.RunSecondsBuckets)
	}

	var b strings.Builder
	st.WritePrometheus(&b, "spotserve")
	out := b.String()
	for _, want := range []string{
		"# TYPE spotserve_run_seconds histogram",
		`spotserve_run_seconds_bucket{le="0.1"} 1`,
		`spotserve_run_seconds_bucket{le="600"} 1`,
		`spotserve_run_seconds_bucket{le="+Inf"} 1`,
		"spotserve_run_seconds_count 1",
		"spotserve_run_seconds_sum",
		"spotserve_run_seconds_total", // legacy counter kept
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestServingWritePrometheus(t *testing.T) {
	var s Serving
	s.Start()(nil)
	s.Reject()
	var b strings.Builder
	s.Snapshot().WritePrometheus(&b, "spotserve")
	out := b.String()
	for _, want := range []string{
		"spotserve_runs_started_total 1",
		"spotserve_runs_completed_total 1",
		"spotserve_runs_canceled_total 0",
		"spotserve_runs_failed_total 0",
		"spotserve_runs_rejected_total 1",
		"spotserve_runs_in_flight 0",
		"# TYPE spotserve_runs_in_flight gauge",
		"# TYPE spotserve_runs_started_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
