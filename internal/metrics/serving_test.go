package metrics

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestServingLifecycle(t *testing.T) {
	var s Serving
	done := s.Start()
	if st := s.Snapshot(); st.Started != 1 || st.InFlight != 1 {
		t.Fatalf("after Start: %+v", st)
	}
	done(nil)
	done(nil) // second call is a no-op
	s.Start()(context.Canceled)
	s.Start()(context.DeadlineExceeded)
	s.Start()(errors.New("boom"))
	s.Reject()
	st := s.Snapshot()
	if st.Started != 4 || st.Completed != 1 || st.Canceled != 2 || st.Failed != 1 ||
		st.Rejected != 1 || st.InFlight != 0 {
		t.Fatalf("snapshot: %+v", st)
	}
	if st.RunSecondsTotal < 0 {
		t.Fatalf("negative run seconds: %v", st.RunSecondsTotal)
	}
}

func TestServingWritePrometheus(t *testing.T) {
	var s Serving
	s.Start()(nil)
	s.Reject()
	var b strings.Builder
	s.Snapshot().WritePrometheus(&b, "spotserve")
	out := b.String()
	for _, want := range []string{
		"spotserve_runs_started_total 1",
		"spotserve_runs_completed_total 1",
		"spotserve_runs_canceled_total 0",
		"spotserve_runs_failed_total 0",
		"spotserve_runs_rejected_total 1",
		"spotserve_runs_in_flight 0",
		"# TYPE spotserve_runs_in_flight gauge",
		"# TYPE spotserve_runs_started_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
