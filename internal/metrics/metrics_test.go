package metrics

import (
	"math"
	"strings"
	"testing"

	"spothost/internal/sim"
)

func TestDowntimeTracker(t *testing.T) {
	var d DowntimeTracker
	d.MarkDown(10)
	d.MarkDown(12) // no-op: already down
	d.MarkUp(40)
	d.MarkUp(50) // no-op: already up
	d.MarkDown(100)
	d.MarkUp(110)
	if got := d.Total(200); got != 40 {
		t.Fatalf("total = %v, want 40", got)
	}
	if d.Episodes() != 2 {
		t.Fatalf("episodes = %d", d.Episodes())
	}
	if d.Longest() != 30 {
		t.Fatalf("longest = %v", d.Longest())
	}
}

func TestDowntimeTrackerOpenEpisode(t *testing.T) {
	var d DowntimeTracker
	d.MarkDown(10)
	if got := d.Total(25); got != 15 {
		t.Fatalf("open episode total = %v", got)
	}
	if !d.Down() {
		t.Fatal("should be down")
	}
}

func TestDegraded(t *testing.T) {
	var d DowntimeTracker
	d.AddDegraded(30)
	d.AddDegraded(-5) // ignored
	if d.Degraded() != 30 {
		t.Fatalf("degraded = %v", d.Degraded())
	}
}

func TestReportDerived(t *testing.T) {
	r := Report{
		Horizon:         100 * sim.Hour,
		Cost:            25,
		BaselineCost:    100,
		DowntimeSeconds: 36,
		SpotSeconds:     900,
		OnDemandSeconds: 100,
		Migrations:      MigrationCounts{Forced: 2, Planned: 5, Reverse: 5},
	}
	if got := r.NormalizedCost(); got != 0.25 {
		t.Fatalf("normalized = %v", got)
	}
	if got := r.Unavailability(); math.Abs(got-36.0/360000) > 1e-12 {
		t.Fatalf("unavailability = %v", got)
	}
	if got := r.ForcedPerHour(); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("forced/hr = %v", got)
	}
	if got := r.PlannedReversePerHour(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("voluntary/hr = %v", got)
	}
	if got := r.SpotFraction(); got != 0.9 {
		t.Fatalf("spot fraction = %v", got)
	}
	if got := r.Migrations.Total(); got != 12 {
		t.Fatalf("total migrations = %v", got)
	}
}

func TestReportZeroGuards(t *testing.T) {
	var r Report
	if r.NormalizedCost() != 0 || r.Unavailability() != 0 ||
		r.ForcedPerHour() != 0 || r.SpotFraction() != 0 {
		t.Fatal("zero report should yield zero derived metrics")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Policy: "proactive", Mechanism: "CKPT LR + Live", Horizon: sim.Day}
	s := r.String()
	for _, want := range []string{"proactive", "CKPT LR + Live", "normalized", "unavailability"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q: %s", want, s)
		}
	}
}

func TestAverage(t *testing.T) {
	a := Report{Horizon: 100, Cost: 10, BaselineCost: 40, DowntimeSeconds: 2,
		Migrations: MigrationCounts{Forced: 1}, DownEpisodes: 1, LongestDowntime: 5}
	b := Report{Horizon: 100, Cost: 20, BaselineCost: 40, DowntimeSeconds: 4,
		Migrations: MigrationCounts{Forced: 2}, DownEpisodes: 3, LongestDowntime: 9}
	avg := Average([]Report{a, b})
	if avg.Cost != 15 || avg.BaselineCost != 40 || avg.DowntimeSeconds != 3 {
		t.Fatalf("avg = %+v", avg)
	}
	if avg.Migrations.Forced != 2 { // 1.5 rounds to 2
		t.Fatalf("forced = %d", avg.Migrations.Forced)
	}
	if avg.LongestDowntime != 9 {
		t.Fatalf("longest = %v", avg.LongestDowntime)
	}
}

func TestAverageEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Average(nil)
}
