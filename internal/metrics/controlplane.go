package metrics

import (
	"fmt"
	"io"
	"sort"
)

// ControlPlaneShard is one shard's counters: how many fleets it owns, how
// deep its ready queue is right now, and how much work it has done.
type ControlPlaneShard struct {
	// Fleets is the number of registered fleets hashed to this shard
	// (including finished ones not yet evicted).
	Fleets int
	// QueueDepth is the number of fleets waiting for their next time
	// slice — the backpressure signal Retry-After is derived from.
	QueueDepth int
	// Steps counts completed time slices; SimSeconds integrates the
	// virtual time those slices advanced.
	Steps      uint64
	SimSeconds float64
}

// MaxTenantSeries caps the per-tenant gauge's label cardinality on
// /metrics: the top MaxTenantSeries tenants by fleet count (ties broken
// by name) keep their own series and the remainder folds into one
// tenant="_other" series, so a many-tenant sweep cannot blow up the
// scrape payload. Evicted and unregistered tenants drop out entirely —
// the control plane deletes zero-count tenants from its registry rather
// than exporting stale zero-valued series.
const MaxTenantSeries = 64

// ControlPlaneStats is a point-in-time snapshot of a control plane: the
// long-lived multi-tenant fleet runtime behind the /v1/tenants API. The
// control plane produces it; WritePrometheus renders it alongside the
// serving counters on GET /metrics.
type ControlPlaneStats struct {
	// TenantFleets counts registered fleets per tenant (the quota gauge).
	TenantFleets map[string]int
	// Registered/Active/Done/Failed break the registry down by state;
	// Registered is their sum.
	Registered int
	Active     int
	Done       int
	Failed     int
	// Evicted counts finished fleets dropped to admit new ones; Rejected
	// counts registrations refused at admission (quota or capacity).
	Evicted  uint64
	Rejected uint64
	// Streams is the number of NDJSON subscriptions currently open.
	Streams int
	// StepsTotal and SimSecondsTotal aggregate the shards' progress
	// counters; StepsPerSecond is the recent step throughput measured
	// between stats snapshots.
	StepsTotal      uint64
	SimSecondsTotal float64
	StepsPerSecond  float64
	// Shards holds the per-shard breakdown, indexed by shard number.
	Shards []ControlPlaneShard
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format with every metric name prefixed by prefix + "_cp_". Tenant and
// shard series are emitted in sorted order, so the rendering is
// deterministic for a given snapshot.
func (st ControlPlaneStats) WritePrometheus(w io.Writer, prefix string) {
	p := prefix + "_cp"
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %v\n",
			p, name, help, p, name, p, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %v\n",
			p, name, help, p, name, p, name, v)
	}
	gauge("fleets_registered", "Fleets currently registered across all tenants.", st.Registered)
	gauge("fleets_active", "Registered fleets still advancing (not done or failed).", st.Active)
	gauge("fleets_done", "Registered fleets that reached their horizon.", st.Done)
	gauge("fleets_failed", "Registered fleets that stopped on an error.", st.Failed)
	counter("fleets_evicted_total", "Finished fleets evicted to admit new registrations.", st.Evicted)
	counter("registrations_rejected_total", "Registrations refused at admission (quota or capacity).", st.Rejected)
	gauge("streams_open", "NDJSON result streams currently open.", st.Streams)
	counter("steps_total", "Completed fleet time slices across all shards.", st.StepsTotal)
	counter("sim_seconds_total", "Virtual seconds advanced across all shards.", st.SimSecondsTotal)
	gauge("steps_per_second", "Recent step throughput (slices per wall second).", st.StepsPerSecond)

	if len(st.TenantFleets) > 0 {
		tenants := make([]string, 0, len(st.TenantFleets))
		for t := range st.TenantFleets {
			tenants = append(tenants, t)
		}
		other := 0
		if len(tenants) > MaxTenantSeries {
			// Keep the largest tenants; fold the tail into one series.
			sort.Slice(tenants, func(i, j int) bool {
				ci, cj := st.TenantFleets[tenants[i]], st.TenantFleets[tenants[j]]
				if ci != cj {
					return ci > cj
				}
				return tenants[i] < tenants[j]
			})
			for _, t := range tenants[MaxTenantSeries:] {
				other += st.TenantFleets[t]
			}
			tenants = tenants[:MaxTenantSeries]
		}
		sort.Strings(tenants)
		fmt.Fprintf(w, "# HELP %s_tenant_fleets Registered fleets by tenant (top %d; remainder folds into tenant=\"_other\").\n# TYPE %s_tenant_fleets gauge\n", p, MaxTenantSeries, p)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s_tenant_fleets{tenant=%q} %d\n", p, t, st.TenantFleets[t])
		}
		if other > 0 {
			fmt.Fprintf(w, "%s_tenant_fleets{tenant=\"_other\"} %d\n", p, other)
		}
	}
	if len(st.Shards) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s_shard_fleets Registered fleets by shard.\n# TYPE %s_shard_fleets gauge\n", p, p)
	for i, sh := range st.Shards {
		fmt.Fprintf(w, "%s_shard_fleets{shard=\"%d\"} %d\n", p, i, sh.Fleets)
	}
	fmt.Fprintf(w, "# HELP %s_shard_queue_depth Fleets awaiting their next slice, by shard.\n# TYPE %s_shard_queue_depth gauge\n", p, p)
	for i, sh := range st.Shards {
		fmt.Fprintf(w, "%s_shard_queue_depth{shard=\"%d\"} %d\n", p, i, sh.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP %s_shard_steps_total Completed time slices by shard.\n# TYPE %s_shard_steps_total counter\n", p, p)
	for i, sh := range st.Shards {
		fmt.Fprintf(w, "%s_shard_steps_total{shard=\"%d\"} %d\n", p, i, sh.Steps)
	}
	fmt.Fprintf(w, "# HELP %s_shard_sim_seconds_total Virtual seconds advanced by shard.\n# TYPE %s_shard_sim_seconds_total counter\n", p, p)
	for i, sh := range st.Shards {
		fmt.Fprintf(w, "%s_shard_sim_seconds_total{shard=\"%d\"} %v\n", p, i, sh.SimSeconds)
	}
}
