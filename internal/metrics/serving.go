package metrics

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Serving tracks the HTTP serving layer's run lifecycle: how many
// simulation runs were started, finished (and how), rejected at admission,
// and how many are in flight right now, plus total run wall time. It is
// the counter set behind spotserve's GET /metrics endpoint. All methods
// are safe for concurrent use.
type Serving struct {
	mu         sync.Mutex
	started    uint64
	completed  uint64
	canceled   uint64
	failed     uint64
	rejected   uint64
	inFlight   int64
	runSeconds float64
	runCount   uint64
	runBuckets []uint64 // per-bound counts, aligned with RunSecondsBounds
	kinds      map[string]*KindStats
}

// runSecondsBounds are the fixed upper bounds of the run-duration
// histogram, in seconds. They span sub-second smoke runs through the
// ten-minute serving deadline; durations beyond the last bound land only
// in the implicit +Inf bucket.
var runSecondsBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// RunSecondsBounds returns the histogram's bucket upper bounds (seconds),
// aligned with ServingStats.RunSecondsBuckets.
func RunSecondsBounds() []float64 {
	out := make([]float64, len(runSecondsBounds))
	copy(out, runSecondsBounds)
	return out
}

// KindStats is the per-run-kind counter subset: what the serving layer
// ran (experiment, scenario, fleet), broken out by outcome.
type KindStats struct {
	Started   uint64
	Completed uint64
	Canceled  uint64
	Failed    uint64
	InFlight  int64
}

// Start records a run entering execution and returns the done callback to
// invoke exactly once when it finishes. done classifies the outcome from
// the run's error: nil counts as completed, context cancellation or
// deadline expiry as canceled, anything else as failed; it also adds the
// run's wall time to the duration total and decrements the in-flight
// gauge.
func (s *Serving) Start() (done func(err error)) {
	return s.StartKind("")
}

// StartKind is Start with a run-kind label ("experiment", "scenario",
// "fleet", ...): the run is counted both in the aggregate counters and in
// a per-kind breakdown. An empty kind counts only in the aggregate.
func (s *Serving) StartKind(kind string) (done func(err error)) {
	s.mu.Lock()
	s.started++
	s.inFlight++
	k := s.kind(kind)
	if k != nil {
		k.Started++
		k.InFlight++
	}
	s.mu.Unlock()
	begin := time.Now()
	var once sync.Once
	return func(err error) {
		once.Do(func() {
			d := time.Since(begin).Seconds()
			s.mu.Lock()
			defer s.mu.Unlock()
			s.inFlight--
			s.runSeconds += d
			s.runCount++
			if s.runBuckets == nil {
				s.runBuckets = make([]uint64, len(runSecondsBounds))
			}
			for i, le := range runSecondsBounds {
				if d <= le {
					s.runBuckets[i]++
					break
				}
			}
			k := s.kind(kind)
			if k != nil {
				k.InFlight--
			}
			switch {
			case err == nil:
				s.completed++
				if k != nil {
					k.Completed++
				}
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				s.canceled++
				if k != nil {
					k.Canceled++
				}
			default:
				s.failed++
				if k != nil {
					k.Failed++
				}
			}
		})
	}
}

// kind returns the named kind's counters, creating them on first use.
// Callers must hold s.mu; an empty kind returns nil.
func (s *Serving) kind(name string) *KindStats {
	if name == "" {
		return nil
	}
	if s.kinds == nil {
		s.kinds = map[string]*KindStats{}
	}
	k, ok := s.kinds[name]
	if !ok {
		k = &KindStats{}
		s.kinds[name] = k
	}
	return k
}

// Reject records a run turned away at admission (e.g. HTTP 429).
func (s *Serving) Reject() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// ServingStats is a point-in-time snapshot of a Serving counter set.
type ServingStats struct {
	Started         uint64
	Completed       uint64
	Canceled        uint64
	Failed          uint64
	Rejected        uint64
	InFlight        int64
	RunSecondsTotal float64
	// RunSecondsCount is the number of finished runs observed by the
	// duration histogram; RunSecondsBuckets holds the per-bucket (not
	// cumulative) counts aligned with RunSecondsBounds(). Runs longer than
	// the last bound count only toward RunSecondsCount (the +Inf bucket).
	RunSecondsCount   uint64
	RunSecondsBuckets []uint64
	// Kinds breaks the run counters out by run kind (StartKind label).
	Kinds map[string]KindStats
}

// Snapshot returns a consistent snapshot of the counters.
func (s *Serving) Snapshot() ServingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServingStats{
		Started:         s.started,
		Completed:       s.completed,
		Canceled:        s.canceled,
		Failed:          s.failed,
		Rejected:        s.rejected,
		InFlight:        s.inFlight,
		RunSecondsTotal: s.runSeconds,
		RunSecondsCount: s.runCount,
	}
	if s.runBuckets != nil {
		st.RunSecondsBuckets = make([]uint64, len(s.runBuckets))
		copy(st.RunSecondsBuckets, s.runBuckets)
	}
	if len(s.kinds) > 0 {
		st.Kinds = make(map[string]KindStats, len(s.kinds))
		for name, k := range s.kinds {
			st.Kinds[name] = *k
		}
	}
	return st
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with every metric name prefixed by prefix + "_".
func (st ServingStats) WritePrometheus(w io.Writer, prefix string) {
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %v\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("runs_started_total", "Simulation runs admitted for execution.", st.Started)
	counter("runs_completed_total", "Runs that finished successfully.", st.Completed)
	counter("runs_canceled_total", "Runs aborted by client cancel or deadline.", st.Canceled)
	counter("runs_failed_total", "Runs that returned a non-cancellation error.", st.Failed)
	counter("runs_rejected_total", "Runs refused at admission control (HTTP 429).", st.Rejected)
	counter("run_seconds_total", "Total wall-clock seconds spent executing runs.", st.RunSecondsTotal)
	fmt.Fprintf(w, "# HELP %s_run_seconds Wall-clock run duration distribution.\n# TYPE %s_run_seconds histogram\n",
		prefix, prefix)
	var cum uint64
	for i, le := range runSecondsBounds {
		if i < len(st.RunSecondsBuckets) {
			cum += st.RunSecondsBuckets[i]
		}
		fmt.Fprintf(w, "%s_run_seconds_bucket{le=%q} %d\n", prefix, trimFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_run_seconds_bucket{le=\"+Inf\"} %d\n", prefix, st.RunSecondsCount)
	fmt.Fprintf(w, "%s_run_seconds_sum %v\n", prefix, st.RunSecondsTotal)
	fmt.Fprintf(w, "%s_run_seconds_count %d\n", prefix, st.RunSecondsCount)
	fmt.Fprintf(w, "# HELP %s_runs_in_flight Runs currently executing.\n# TYPE %s_runs_in_flight gauge\n%s_runs_in_flight %d\n",
		prefix, prefix, prefix, st.InFlight)
	if len(st.Kinds) == 0 {
		return
	}
	names := make([]string, 0, len(st.Kinds))
	for name := range st.Kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP %s_kind_runs_total Runs by kind and outcome.\n# TYPE %s_kind_runs_total counter\n",
		prefix, prefix)
	for _, name := range names {
		k := st.Kinds[name]
		for _, oc := range []struct {
			label string
			v     uint64
		}{{"started", k.Started}, {"completed", k.Completed}, {"canceled", k.Canceled}, {"failed", k.Failed}} {
			fmt.Fprintf(w, "%s_kind_runs_total{kind=%q,outcome=%q} %d\n", prefix, name, oc.label, oc.v)
		}
	}
	fmt.Fprintf(w, "# HELP %s_kind_runs_in_flight Runs currently executing, by kind.\n# TYPE %s_kind_runs_in_flight gauge\n",
		prefix, prefix)
	for _, name := range names {
		fmt.Fprintf(w, "%s_kind_runs_in_flight{kind=%q} %d\n", prefix, name, st.Kinds[name].InFlight)
	}
}

// trimFloat renders a bucket bound without trailing zeros ("0.1", "600").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
