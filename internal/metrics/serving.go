package metrics

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Serving tracks the HTTP serving layer's run lifecycle: how many
// simulation runs were started, finished (and how), rejected at admission,
// and how many are in flight right now, plus total run wall time. It is
// the counter set behind spotserve's GET /metrics endpoint. All methods
// are safe for concurrent use.
type Serving struct {
	mu         sync.Mutex
	started    uint64
	completed  uint64
	canceled   uint64
	failed     uint64
	rejected   uint64
	inFlight   int64
	runSeconds float64
}

// Start records a run entering execution and returns the done callback to
// invoke exactly once when it finishes. done classifies the outcome from
// the run's error: nil counts as completed, context cancellation or
// deadline expiry as canceled, anything else as failed; it also adds the
// run's wall time to the duration total and decrements the in-flight
// gauge.
func (s *Serving) Start() (done func(err error)) {
	s.mu.Lock()
	s.started++
	s.inFlight++
	s.mu.Unlock()
	begin := time.Now()
	var once sync.Once
	return func(err error) {
		once.Do(func() {
			d := time.Since(begin).Seconds()
			s.mu.Lock()
			defer s.mu.Unlock()
			s.inFlight--
			s.runSeconds += d
			switch {
			case err == nil:
				s.completed++
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				s.canceled++
			default:
				s.failed++
			}
		})
	}
}

// Reject records a run turned away at admission (e.g. HTTP 429).
func (s *Serving) Reject() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// ServingStats is a point-in-time snapshot of a Serving counter set.
type ServingStats struct {
	Started         uint64
	Completed       uint64
	Canceled        uint64
	Failed          uint64
	Rejected        uint64
	InFlight        int64
	RunSecondsTotal float64
}

// Snapshot returns a consistent snapshot of the counters.
func (s *Serving) Snapshot() ServingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServingStats{
		Started:         s.started,
		Completed:       s.completed,
		Canceled:        s.canceled,
		Failed:          s.failed,
		Rejected:        s.rejected,
		InFlight:        s.inFlight,
		RunSecondsTotal: s.runSeconds,
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with every metric name prefixed by prefix + "_".
func (st ServingStats) WritePrometheus(w io.Writer, prefix string) {
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %v\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("runs_started_total", "Simulation runs admitted for execution.", st.Started)
	counter("runs_completed_total", "Runs that finished successfully.", st.Completed)
	counter("runs_canceled_total", "Runs aborted by client cancel or deadline.", st.Canceled)
	counter("runs_failed_total", "Runs that returned a non-cancellation error.", st.Failed)
	counter("runs_rejected_total", "Runs refused at admission control (HTTP 429).", st.Rejected)
	counter("run_seconds_total", "Total wall-clock seconds spent executing runs.", st.RunSecondsTotal)
	fmt.Fprintf(w, "# HELP %s_runs_in_flight Runs currently executing.\n# TYPE %s_runs_in_flight gauge\n%s_runs_in_flight %d\n",
		prefix, prefix, prefix, st.InFlight)
}
