package cloud

import (
	"math"
	"testing"

	"spothost/internal/sim"
)

// buildLedgerFixture runs a mixed workload and returns the provider.
func buildLedgerFixture(t *testing.T) (*sim.Engine, *Provider) {
	t.Helper()
	eng, p := newTestProvider(t)
	// Spot instance revoked by the 7200 spike (partial hour refunded).
	if _, err := p.RequestSpot(mSmall, 0.06, Callbacks{}); err != nil {
		t.Fatal(err)
	}
	// On-demand instance running throughout.
	if _, err := p.RequestOnDemand(mLarge, Callbacks{}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * sim.Hour)
	return eng, p
}

func TestLedgerByMarket(t *testing.T) {
	_, p := buildLedgerFixture(t)
	by := p.Ledger().ByMarket()
	if len(by) != 2 {
		t.Fatalf("markets in ledger = %d", len(by))
	}
	sum := 0.0
	for _, v := range by {
		sum += v
	}
	if math.Abs(sum-p.Ledger().Total()) > 1e-9 {
		t.Fatalf("by-market sum %v != total %v", sum, p.Ledger().Total())
	}
	if by[mLarge] <= 0 {
		t.Fatalf("on-demand market spend = %v", by[mLarge])
	}
}

func TestLedgerByInstance(t *testing.T) {
	_, p := buildLedgerFixture(t)
	by := p.Ledger().ByInstance()
	sum := 0.0
	for _, v := range by {
		sum += v
	}
	if math.Abs(sum-p.Ledger().Total()) > 1e-9 {
		t.Fatalf("by-instance sum %v != total %v", sum, p.Ledger().Total())
	}
}

func TestLedgerRefunds(t *testing.T) {
	_, p := buildLedgerFixture(t)
	// The revoked spot instance's in-progress hour was refunded.
	if got := p.Ledger().Refunds(); got <= 0 {
		t.Fatalf("refunds = %v, want positive", got)
	}
}

func TestLedgerWindowTotal(t *testing.T) {
	_, p := buildLedgerFixture(t)
	l := p.Ledger()
	whole := l.WindowTotal(0, 100*sim.Hour)
	if math.Abs(whole-l.Total()) > 1e-9 {
		t.Fatalf("whole-window %v != total %v", whole, l.Total())
	}
	first := l.WindowTotal(0, 2*sim.Hour)
	rest := l.WindowTotal(2*sim.Hour, 100*sim.Hour)
	if math.Abs(first+rest-whole) > 1e-9 {
		t.Fatal("window partition not additive")
	}
}

func TestLedgerHourlySpend(t *testing.T) {
	_, p := buildLedgerFixture(t)
	l := p.Ledger()
	buckets := l.HourlySpend(sim.Hour, 10*sim.Hour)
	sum := 0.0
	for _, b := range buckets {
		sum += b
	}
	if math.Abs(sum-l.Total()) > 1e-9 {
		t.Fatalf("bucket sum %v != total %v", sum, l.Total())
	}
	if l.HourlySpend(0, 10) != nil || l.HourlySpend(10, 0) != nil {
		t.Fatal("degenerate buckets accepted")
	}
}
