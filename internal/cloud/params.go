// Package cloud simulates an EC2-like infrastructure cloud: spot and
// on-demand instance lifecycles, bid-indexed revocation with a two-minute
// grace warning, sampled allocation latencies, hourly billing with the
// 2015 EC2 partial-hour rules, and network-attached (EBS-like) volumes.
//
// The provider is driven by a sim.Engine and a market.Set of price traces;
// everything the paper's cloud scheduler can observe on real EC2 — prices,
// allocation delays, revocation warnings, bills — is reproduced here with
// the same semantics.
package cloud

import (
	"spothost/internal/market"
	"spothost/internal/sim"
)

// Params configures provider behaviour. DefaultParams matches the paper's
// measurements (Table 1) and the EC2 policies it describes.
type Params struct {
	// GracePeriod is the warning-to-termination window on revocation.
	// Amazon gives "an explicit two minute warning prior to revoking a
	// spot server".
	GracePeriod sim.Duration

	// BidCap is the maximum allowed bid as a multiple of the on-demand
	// price ("the largest bid price currently allowed by Amazon is four
	// times the on-demand price").
	BidCap float64

	// Startup latency means by region class (Table 1), plus the sampling
	// coefficient of variation. Lookups fall back to DefaultStartupClass.
	OnDemandStartupMean map[string]sim.Duration
	SpotStartupMean     map[string]sim.Duration
	StartupCV           float64

	// VolumeAttach is the latency of attaching a network volume to an
	// instance in the same region.
	VolumeAttach sim.Duration

	Seed int64
}

// DefaultStartupClass is the fallback key for regions absent from the
// startup maps.
const DefaultStartupClass = "default"

// DefaultParams returns parameters calibrated to Table 1 of the paper:
// on-demand servers allocate in ~1.5 minutes, spot servers in 3.5-4.5
// minutes, varying slightly by region.
func DefaultParams(seed int64) Params {
	return Params{
		GracePeriod: 2 * sim.Minute,
		BidCap:      4,
		OnDemandStartupMean: map[string]sim.Duration{
			"us-east-1":         94.85,
			"us-west-1":         93.63,
			"eu-west-1":         98.08,
			DefaultStartupClass: 95,
		},
		SpotStartupMean: map[string]sim.Duration{
			"us-east-1":         281.47,
			"us-west-1":         219.77,
			"eu-west-1":         233.37,
			DefaultStartupClass: 240,
		},
		StartupCV:    0.25,
		VolumeAttach: 5,
		Seed:         seed,
	}
}

// StartupClass maps an availability-zone-style region name ("us-east-1a")
// to its startup-latency class ("us-east-1"). It is market.RegionClass,
// re-exported under the name the latency tables use.
func StartupClass(r market.Region) string {
	return market.RegionClass(r)
}

// onDemandStartup returns the mean on-demand allocation latency for r.
func (p Params) onDemandStartup(r market.Region) sim.Duration {
	if m, ok := p.OnDemandStartupMean[StartupClass(r)]; ok {
		return m
	}
	return p.OnDemandStartupMean[DefaultStartupClass]
}

// spotStartup returns the mean spot allocation latency for r.
func (p Params) spotStartup(r market.Region) sim.Duration {
	if m, ok := p.SpotStartupMean[StartupClass(r)]; ok {
		return m
	}
	return p.SpotStartupMean[DefaultStartupClass]
}
