package cloud

import (
	"math"
	"testing"

	"spothost/internal/market"
	"spothost/internal/randx"
	"spothost/internal/sim"
)

// TestProviderRandomWorkload drives the provider with a random sequence of
// spot/on-demand requests and terminations over a volatile generated
// universe and checks global billing invariants:
//
//   - the ledger total equals the sum of per-instance charges,
//   - no instance is ever charged a negative net amount,
//   - every revoked instance's lifetime partial hour was forgiven,
//   - counters are mutually consistent.
func TestProviderRandomWorkload(t *testing.T) {
	mcfg := market.DefaultConfig(61)
	mcfg.Horizon = 8 * sim.Day
	mcfg.SpikesPerDay = 8 // busy revocation traffic
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	prov := NewProvider(eng, set, DefaultParams(61))
	rng := randx.Derive(61, "fuzz/cloud")

	ids := set.IDs()
	var mine []*Instance
	launch := func() {
		id := ids[rng.Intn(len(ids))]
		od := prov.OnDemandPrice(id)
		var in *Instance
		var err error
		if rng.Bernoulli(0.6) {
			bid := od * rng.Uniform(0.5, 4)
			in, err = prov.RequestSpot(id, bid, Callbacks{})
		} else {
			in, err = prov.RequestOnDemand(id, Callbacks{})
		}
		if err == nil {
			mine = append(mine, in)
		}
	}
	// Random request/terminate churn across the whole horizon.
	for i := 0; i < 400; i++ {
		at := rng.Uniform(0, 7*sim.Day)
		eng.Schedule(at, launch)
	}
	for i := 0; i < 200; i++ {
		at := rng.Uniform(sim.Hour, 8*sim.Day)
		eng.Schedule(at, func() {
			if len(mine) == 0 {
				return
			}
			in := mine[rng.Intn(len(mine))]
			if in.State() == Running || in.State() == Pending {
				_ = prov.Terminate(in)
			}
		})
	}
	eng.RunUntil(8 * sim.Day)

	// Invariant 1: ledger total = sum of instance charges.
	var sum float64
	for _, in := range mine {
		if in.Charged() < -1e-9 {
			t.Fatalf("%v charged negative: %v", in, in.Charged())
		}
		sum += in.Charged()
	}
	if math.Abs(sum-prov.Ledger().Total()) > 1e-6 {
		t.Fatalf("instance sum %v != ledger %v", sum, prov.Ledger().Total())
	}
	// Invariant 2: per-instance ledger agrees with Charged().
	byInst := prov.Ledger().ByInstance()
	for _, in := range mine {
		if got := byInst[in.ID()]; math.Abs(got-in.Charged()) > 1e-9 {
			t.Fatalf("%v: ledger %v vs charged %v", in, got, in.Charged())
		}
	}
	// Invariant 3: revoked instances never pay for the hour in progress
	// at revocation (their last charge interval is complete or refunded):
	// equivalently, charged = price-at-start of each COMPLETED hour. We
	// verify the weaker, universally-checkable form: the net charge is a
	// sum of non-negative hour charges (>= 0, already checked) and every
	// ReasonRevoked instance has a refund or died exactly on a boundary.
	refundsByInstance := map[InstanceID]bool{}
	for _, c := range prov.Ledger().Entries() {
		if c.Kind == ChargeRefund {
			refundsByInstance[c.Instance] = true
		}
	}
	for _, in := range mine {
		if in.State() == Terminated && in.Reason() == ReasonRevoked {
			elapsed := in.TerminatedAt() - in.RunningAt()
			onBoundary := math.Mod(elapsed, sim.Hour) < 1e-6
			if !onBoundary && !refundsByInstance[in.ID()] && in.Charged() > 0 {
				t.Fatalf("%v revoked mid-hour without refund", in)
			}
		}
	}
	// Invariant 4: counters consistent.
	c := prov.Counters()
	if c.SpotLaunched > c.SpotRequests {
		t.Fatalf("counters: %+v", c)
	}
	if c.Revocations < 0 || c.NeverGranted < 0 {
		t.Fatalf("counters: %+v", c)
	}
	if prov.Ledger().Total() <= 0 {
		t.Fatal("fuzz run billed nothing")
	}
}
