package cloud

import (
	"spothost/internal/market"
	"spothost/internal/sim"
)

// ChargeKind classifies ledger entries.
type ChargeKind int

const (
	// ChargeHour is one instance-hour billed at its start.
	ChargeHour ChargeKind = iota
	// ChargeRefund reverses the in-progress hour of a provider-revoked
	// spot instance ("partial hours are not billed if a spot server is
	// revoked before the end of an hourly billing period").
	ChargeRefund
)

// Charge is one billing ledger entry.
type Charge struct {
	At       sim.Time
	Instance InstanceID
	Market   market.ID
	Spot     bool
	Kind     ChargeKind
	Amount   float64 // negative for refunds
}

// Ledger accumulates all charges issued by a provider.
type Ledger struct {
	entries []Charge
	total   float64

	spotTotal     float64
	onDemandTotal float64
}

func (l *Ledger) add(c Charge) {
	l.entries = append(l.entries, c)
	l.total += c.Amount
	if c.Spot {
		l.spotTotal += c.Amount
	} else {
		l.onDemandTotal += c.Amount
	}
}

// Total returns the net amount billed.
func (l *Ledger) Total() float64 { return l.total }

// SpotTotal returns the net amount billed to spot instances.
func (l *Ledger) SpotTotal() float64 { return l.spotTotal }

// OnDemandTotal returns the net amount billed to on-demand instances.
func (l *Ledger) OnDemandTotal() float64 { return l.onDemandTotal }

// Entries returns the raw ledger. Callers must not modify the result.
func (l *Ledger) Entries() []Charge { return l.entries }

// ByMarket returns net spend per market.
func (l *Ledger) ByMarket() map[market.ID]float64 {
	out := map[market.ID]float64{}
	for _, c := range l.entries {
		out[c.Market] += c.Amount
	}
	return out
}

// ByInstance returns net spend per instance.
func (l *Ledger) ByInstance() map[InstanceID]float64 {
	out := map[InstanceID]float64{}
	for _, c := range l.entries {
		out[c.Instance] += c.Amount
	}
	return out
}

// WindowTotal returns net spend charged within [t0, t1).
func (l *Ledger) WindowTotal(t0, t1 sim.Time) float64 {
	total := 0.0
	for _, c := range l.entries {
		if c.At >= t0 && c.At < t1 {
			total += c.Amount
		}
	}
	return total
}

// Refunds returns the total amount refunded (as a positive number) for
// provider-revoked partial hours.
func (l *Ledger) Refunds() float64 {
	total := 0.0
	for _, c := range l.entries {
		if c.Kind == ChargeRefund {
			total -= c.Amount
		}
	}
	return total
}

// HourlySpend buckets net spend into consecutive windows of the given
// width over [0, horizon), for cost-over-time reporting.
func (l *Ledger) HourlySpend(bucket sim.Duration, horizon sim.Duration) []float64 {
	if bucket <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon/bucket) + 1
	out := make([]float64, n)
	for _, c := range l.entries {
		i := int(c.At / bucket)
		if i >= 0 && i < n {
			out[i] += c.Amount
		}
	}
	return out
}
