package cloud

import (
	"math"
	"testing"

	"spothost/internal/market"
	"spothost/internal/sim"
)

var (
	mSmall = market.ID{Region: "us-east-1a", Type: "small"}
	mLarge = market.ID{Region: "eu-west-1a", Type: "large"}
)

// fixedParams returns deterministic parameters: constant startup latencies
// (CV=0) of 95 s on-demand and 240 s spot.
func fixedParams() Params {
	p := DefaultParams(1)
	p.StartupCV = 0
	p.OnDemandStartupMean = map[string]sim.Duration{DefaultStartupClass: 95}
	p.SpotStartupMean = map[string]sim.Duration{DefaultStartupClass: 240}
	return p
}

// testSet builds a two-market set with hand-written prices:
//
//	small: 0.01 until t=7200, then 0.50 until t=10800, then back to 0.01
//	large: flat 0.05
func testSet(t *testing.T) *market.Set {
	t.Helper()
	end := sim.Time(40 * sim.Hour)
	small, err := market.NewTrace(mSmall, []market.Point{
		{T: 0, Price: 0.01}, {T: 7200, Price: 0.50}, {T: 10800, Price: 0.01},
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	large, err := market.NewTrace(mLarge, []market.Point{{T: 0, Price: 0.05}}, end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := market.NewSet([]*market.Trace{small, large},
		map[market.ID]float64{mSmall: 0.06, mLarge: 0.24})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestProvider(t *testing.T) (*sim.Engine, *Provider) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewProvider(eng, testSet(t), fixedParams())
}

func TestOnDemandLifecycleAndBilling(t *testing.T) {
	eng, p := newTestProvider(t)
	var runningAt sim.Time
	var terminated bool
	in, err := p.RequestOnDemand(mSmall, Callbacks{
		OnRunning:    func(in *Instance) { runningAt = eng.Now() },
		OnTerminated: func(in *Instance, r TerminationReason) { terminated = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.State() != Pending || in.Lifecycle() != OnDemand {
		t.Fatalf("fresh instance: %v", in)
	}
	// Run until well into the third billing hour, then terminate.
	eng.RunUntil(95 + 2*sim.Hour + 30)
	if runningAt != 95 {
		t.Fatalf("runningAt = %v, want 95", runningAt)
	}
	if in.State() != Running {
		t.Fatalf("state = %v", in.State())
	}
	if err := p.Terminate(in); err != nil {
		t.Fatal(err)
	}
	if !terminated || in.State() != Terminated || in.Reason() != ReasonUser {
		t.Fatalf("termination not delivered: %v reason=%v", in, in.Reason())
	}
	// Three hours started at 0.06 each; user termination forgives nothing.
	if got := in.Charged(); math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("charged = %v, want 0.18", got)
	}
	if got := p.Ledger().OnDemandTotal(); math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("ledger on-demand = %v", got)
	}
	// No further charges accrue after termination.
	eng.RunUntil(20 * sim.Hour)
	if got := in.Charged(); math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("charges continued after termination: %v", got)
	}
}

func TestSpotRequestValidation(t *testing.T) {
	_, p := newTestProvider(t)
	if _, err := p.RequestSpot(market.ID{Region: "nowhere", Type: "small"}, 0.06, Callbacks{}); err == nil {
		t.Error("unknown market accepted")
	}
	if _, err := p.RequestSpot(mSmall, 0, Callbacks{}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := p.RequestSpot(mSmall, 0.06*4+0.01, Callbacks{}); err == nil {
		t.Error("bid above cap accepted")
	}
	if _, err := p.RequestOnDemand(market.ID{Region: "nowhere", Type: "x"}, Callbacks{}); err == nil {
		t.Error("unknown market accepted for on-demand")
	}
}

func TestSpotRejectedWhenPriceAboveBid(t *testing.T) {
	eng, p := newTestProvider(t)
	eng.RunUntil(8000) // price is 0.50 now
	if _, err := p.RequestSpot(mSmall, 0.06, Callbacks{}); err == nil {
		t.Fatal("request granted while price above bid")
	}
	// The spike (0.50) exceeds even the 4x bid cap (0.24), so no
	// permissible bid can be granted in this market right now.
	if _, err := p.RequestSpot(mSmall, 0.24, Callbacks{}); err == nil {
		t.Fatal("capped bid granted above-cap price")
	}
	// A bid above the current price in another market is granted.
	if _, err := p.RequestSpot(mLarge, 0.06, Callbacks{}); err != nil {
		t.Fatalf("valid bid rejected: %v", err)
	}
}

func TestSpotRevocationWithGraceAndRefund(t *testing.T) {
	eng, p := newTestProvider(t)
	var warnedAt, deadline, terminatedAt sim.Time
	var reason TerminationReason
	in, err := p.RequestSpot(mSmall, 0.06, Callbacks{
		OnRevocationWarning: func(in *Instance, dl sim.Time) { warnedAt, deadline = eng.Now(), dl },
		OnTerminated: func(in *Instance, r TerminationReason) {
			terminatedAt, reason = eng.Now(), r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(12 * sim.Hour)
	// Price crosses 0.06 at t=7200; warning there, termination 120 s later.
	if warnedAt != 7200 || deadline != 7320 {
		t.Fatalf("warning at %v deadline %v, want 7200/7320", warnedAt, deadline)
	}
	if terminatedAt != 7320 || reason != ReasonRevoked {
		t.Fatalf("terminated at %v reason %v", terminatedAt, reason)
	}
	// Booted at 240; hours charged at 240 (0.01) and 3840 (0.01); the hour
	// started at 7440 never happened. The hour in progress at revocation
	// (started 7440-3600=3840... the second hour spans 3840-7440) is
	// refunded: net charge = first hour only.
	if got := in.Charged(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("charged = %v, want 0.01 (second hour refunded)", got)
	}
	if p.Counters().Revocations != 1 {
		t.Fatalf("counters: %+v", p.Counters())
	}
}

func TestSpotBilledAtHourStartPrice(t *testing.T) {
	eng, p := newTestProvider(t)
	// Request close to the spike so an hour boundary lands inside it:
	// boot at 4000+240=4240, hour boundaries at 4240 (0.01), 7840 (price
	// 0.50? no — bid 4x keeps it alive; price at 7840 is 0.50).
	var in *Instance
	eng.Schedule(4000, func() {
		var err error
		in, err = p.RequestSpot(mSmall, 0.24, Callbacks{}) // 4x bid, survives 0.50? no: 0.50 > 0.24
		if err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(7199)
	if got := in.Charged(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("first hour charge = %v, want 0.01", got)
	}
	// At 7200 price jumps to 0.50 > bid 0.24: revocation, refund of the
	// in-progress hour, net 0.
	eng.RunUntil(9000)
	if got := in.Charged(); got != 0 {
		t.Fatalf("net charge after refund = %v, want 0", got)
	}
}

func TestSpotSurvivesSpikeUnderHighBid(t *testing.T) {
	// A milder spike (0.20) stays under the 4x bid cap (0.24): a
	// max-bidding proactive instance rides it out and pays the spike rate
	// for the hour that starts inside it.
	end := sim.Time(40 * sim.Hour)
	small, err := market.NewTrace(mSmall, []market.Point{
		{T: 0, Price: 0.01}, {T: 7200, Price: 0.20}, {T: 10800, Price: 0.01},
	}, end)
	if err != nil {
		t.Fatal(err)
	}
	set, err := market.NewSet([]*market.Trace{small}, map[market.ID]float64{mSmall: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	p := NewProvider(eng, set, fixedParams())

	in, err := p.RequestSpot(mSmall, 0.24, Callbacks{}) // 4x on-demand
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(12 * sim.Hour)
	if in.State() != Running {
		t.Fatalf("high-bid instance lost: %v", in.State())
	}
	// Boot 240; hour boundaries every 3600 s from boot. By t=43200 twelve
	// hours have started (240 .. 39840); the one starting at 7440 lands
	// inside the spike and bills at 0.20, the rest at 0.01. Spot hours
	// bill at the hour-start price.
	want := 11*0.01 + 0.20
	if got := in.Charged(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("charged = %v, want %v", got, want)
	}
}

func TestPendingSpotCancelledOnPriceRise(t *testing.T) {
	eng, p := newTestProvider(t)
	var reason TerminationReason = -1
	var ran bool
	// Request at 7100; price jumps above bid at 7200, before the 240 s
	// allocation completes.
	eng.Schedule(7100, func() {
		_, err := p.RequestSpot(mSmall, 0.06, Callbacks{
			OnRunning:    func(*Instance) { ran = true },
			OnTerminated: func(_ *Instance, r TerminationReason) { reason = r },
		})
		if err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(12 * sim.Hour)
	if ran {
		t.Fatal("cancelled request still ran")
	}
	if reason != ReasonNeverGranted {
		t.Fatalf("reason = %v, want never-granted", reason)
	}
	if got := p.Ledger().Total(); got != 0 {
		t.Fatalf("never-granted request was billed: %v", got)
	}
	if p.Counters().NeverGranted != 1 {
		t.Fatalf("counters: %+v", p.Counters())
	}
}

func TestTerminateTwiceErrors(t *testing.T) {
	eng, p := newTestProvider(t)
	in, _ := p.RequestOnDemand(mSmall, Callbacks{})
	eng.RunUntil(200)
	if err := p.Terminate(in); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate(in); err == nil {
		t.Fatal("double terminate accepted")
	}
}

func TestTerminatePendingCancels(t *testing.T) {
	eng, p := newTestProvider(t)
	ran := false
	in, _ := p.RequestOnDemand(mSmall, Callbacks{OnRunning: func(*Instance) { ran = true }})
	eng.RunUntil(10)
	if err := p.Terminate(in); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(500)
	if ran {
		t.Fatal("cancelled pending instance ran")
	}
	if p.Ledger().Total() != 0 {
		t.Fatal("cancelled pending instance billed")
	}
}

func TestSubscribePrice(t *testing.T) {
	eng, p := newTestProvider(t)
	var times []sim.Time
	var prices []float64
	p.SubscribePrice(mSmall, func(at sim.Time, price float64) {
		times = append(times, at)
		prices = append(prices, price)
	})
	eng.RunUntil(12 * sim.Hour)
	if len(times) != 2 || times[0] != 7200 || times[1] != 10800 {
		t.Fatalf("price events at %v", times)
	}
	if prices[0] != 0.50 || prices[1] != 0.01 {
		t.Fatalf("prices %v", prices)
	}
}

func TestSpotPriceAndMaxBid(t *testing.T) {
	eng, p := newTestProvider(t)
	if got := p.SpotPrice(mSmall); got != 0.01 {
		t.Fatalf("SpotPrice = %v", got)
	}
	eng.RunUntil(8000)
	if got := p.SpotPrice(mSmall); got != 0.50 {
		t.Fatalf("SpotPrice after spike = %v", got)
	}
	if got := p.OnDemandPrice(mSmall); got != 0.06 {
		t.Fatalf("OnDemandPrice = %v", got)
	}
	if got := p.MaxBid(mSmall); math.Abs(got-0.24) > 1e-12 {
		t.Fatalf("MaxBid = %v", got)
	}
}

func TestVolumes(t *testing.T) {
	eng, p := newTestProvider(t)
	v, err := p.CreateVolume("us-east-1a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateVolume("us-east-1a", 0); err == nil {
		t.Error("zero-size volume accepted")
	}
	in, _ := p.RequestOnDemand(mSmall, Callbacks{})
	other, _ := p.RequestOnDemand(mLarge, Callbacks{})
	eng.RunUntil(200)

	attached := false
	if err := p.AttachVolume(v, in, func() { attached = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(300)
	if !attached {
		t.Fatal("attach completion not delivered")
	}
	if id, ok := v.Attached(); !ok || id != in.ID() {
		t.Fatalf("attachment state: %v %v", id, ok)
	}
	// Double attach fails.
	if err := p.AttachVolume(v, in, nil); err == nil {
		t.Error("double attach accepted")
	}
	// Delete while attached fails.
	if err := p.DeleteVolume(v); err == nil {
		t.Error("delete of attached volume accepted")
	}
	// Cross-region attach fails.
	v2, _ := p.CreateVolume("us-east-1a", 5)
	if err := p.AttachVolume(v2, other, nil); err == nil {
		t.Error("cross-region attach accepted")
	}
	// Terminating the instance auto-detaches.
	if err := p.Terminate(in); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.Attached(); ok {
		t.Error("volume still attached after instance termination")
	}
	if err := p.DeleteVolume(v); err != nil {
		t.Fatal(err)
	}
	if p.Volume(v.ID()) != nil {
		t.Error("deleted volume still present")
	}
}

func TestVolumeAttachToDeadInstance(t *testing.T) {
	eng, p := newTestProvider(t)
	in, _ := p.RequestOnDemand(mSmall, Callbacks{})
	eng.RunUntil(200)
	_ = p.Terminate(in)
	v, _ := p.CreateVolume("us-east-1a", 10)
	if err := p.AttachVolume(v, in, nil); err == nil {
		t.Fatal("attach to terminated instance accepted")
	}
}

func TestStartupClass(t *testing.T) {
	cases := map[market.Region]string{
		"us-east-1a": "us-east-1",
		"us-east-1b": "us-east-1",
		"eu-west-1a": "eu-west-1",
		"us-east-1":  "us-east-1",
		"local":      "local",
	}
	for in, want := range cases {
		if got := StartupClass(in); got != want {
			t.Errorf("StartupClass(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestLedgerConsistency(t *testing.T) {
	eng, p := newTestProvider(t)
	// A few instances across both markets with mixed outcomes.
	_, _ = p.RequestSpot(mSmall, 0.06, Callbacks{})
	_, _ = p.RequestSpot(mSmall, 0.24, Callbacks{})
	odIn, _ := p.RequestOnDemand(mLarge, Callbacks{})
	eng.Schedule(5*sim.Hour, func() { _ = p.Terminate(odIn) })
	eng.RunUntil(20 * sim.Hour)

	sum := 0.0
	for _, e := range p.Ledger().Entries() {
		sum += e.Amount
	}
	if math.Abs(sum-p.Ledger().Total()) > 1e-9 {
		t.Fatalf("ledger total %v != entry sum %v", p.Ledger().Total(), sum)
	}
	if math.Abs(p.Ledger().SpotTotal()+p.Ledger().OnDemandTotal()-p.Ledger().Total()) > 1e-9 {
		t.Fatal("spot+on-demand != total")
	}
	if p.Ledger().Total() <= 0 {
		t.Fatalf("expected positive spend, got %v", p.Ledger().Total())
	}
}

// TestGeneratedUniverseRevocations runs the provider against a synthetic
// universe and checks the end-to-end invariant: every on-demand instance
// survives, and spot instances at low bids eventually get revoked.
func TestGeneratedUniverseRevocations(t *testing.T) {
	cfg := market.DefaultConfig(31)
	cfg.Horizon = 10 * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	p := NewProvider(eng, set, DefaultParams(31))

	id := market.ID{Region: "us-east-1b", Type: "small"}
	od := p.OnDemandPrice(id)
	relaunch := func() {}
	relaunch = func() {
		_, err := p.RequestSpot(id, od, Callbacks{
			OnTerminated: func(_ *Instance, r TerminationReason) {
				// Keep a spot presence: re-request when the price drops.
				eng.After(10*sim.Minute, func() {
					if p.SpotPrice(id) <= od {
						relaunch()
					} else {
						eng.After(30*sim.Minute, relaunch)
					}
				})
			},
		})
		if err != nil {
			// Price above bid right now; retry later.
			eng.After(30*sim.Minute, relaunch)
		}
	}
	relaunch()
	odInst, err := p.RequestOnDemand(id, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * sim.Day)

	if odInst.State() != Running {
		t.Fatalf("on-demand instance died: %v", odInst.State())
	}
	c := Counters(p.Counters())
	if c.Revocations == 0 && c.NeverGranted == 0 {
		t.Error("bid-at-on-demand spot instance was never revoked in 10 volatile days")
	}
	if p.Ledger().Total() <= 0 {
		t.Error("no spend recorded")
	}
}
