package cloud

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// SpotRequestID identifies an open persistent spot request.
type SpotRequestID int64

// SpotRequest is a persistent spot request, mirroring EC2's persistent
// request type: it stays open while the market price exceeds the bid and
// launches an instance as soon as the price allows. After a revocation the
// request re-opens automatically and will launch again on the next price
// dip. Cancel closes it for good (a running instance, if any, is not
// terminated by cancellation — also EC2's behaviour).
type SpotRequest struct {
	id      SpotRequestID
	market  market.ID
	bid     float64
	cb      Callbacks
	open    bool
	current *Instance
	// launches counts instances ever launched by this request.
	launches int
}

// ID returns the request identifier.
func (r *SpotRequest) ID() SpotRequestID { return r.id }

// Open reports whether the request is still active (waiting or holding an
// instance).
func (r *SpotRequest) Open() bool { return r.open }

// Current returns the live instance fulfilled by the request, or nil while
// waiting.
func (r *SpotRequest) Current() *Instance {
	if r.current != nil && r.current.State() != Terminated {
		return r.current
	}
	return nil
}

// Launches returns how many instances the request has launched so far.
func (r *SpotRequest) Launches() int { return r.launches }

// RequestSpotPersistent opens a persistent spot request. The callbacks are
// invoked for every instance the request launches over its lifetime.
func (p *Provider) RequestSpotPersistent(id market.ID, bid float64, cb Callbacks) (*SpotRequest, error) {
	if p.set.Trace(id) == nil {
		return nil, fmt.Errorf("cloud: unknown market %s", id)
	}
	if bid <= 0 {
		return nil, fmt.Errorf("cloud: non-positive bid %v", bid)
	}
	if max := p.MaxBid(id); bid > max+1e-12 {
		return nil, fmt.Errorf("cloud: bid %v exceeds cap %v for %s", bid, max, id)
	}
	r := &SpotRequest{id: p.nextSpotReqID, market: id, bid: bid, cb: cb, open: true}
	p.nextSpotReqID++
	p.spotRequestsOpen[r.id] = r
	// Watch the market for grantability; also try immediately.
	p.SubscribePrice(id, func(t sim.Time, price float64) { p.tryFulfill(r) })
	p.tryFulfill(r)
	return r, nil
}

// CancelSpotRequest closes a persistent request. Idempotent. The currently
// running instance, if any, keeps running and must be terminated
// separately.
func (p *Provider) CancelSpotRequest(r *SpotRequest) {
	if !r.open {
		return
	}
	r.open = false
	delete(p.spotRequestsOpen, r.id)
}

// tryFulfill launches an instance for an open, idle request when the
// current price permits.
func (p *Provider) tryFulfill(r *SpotRequest) {
	if !r.open || r.Current() != nil {
		return
	}
	if p.SpotPrice(r.market) > r.bid {
		return
	}
	inner := r.cb
	in, err := p.RequestSpot(r.market, r.bid, Callbacks{
		OnRunning: func(in *Instance) {
			if inner.OnRunning != nil {
				inner.OnRunning(in)
			}
		},
		OnRevocationWarning: func(in *Instance, deadline sim.Time) {
			if inner.OnRevocationWarning != nil {
				inner.OnRevocationWarning(in, deadline)
			}
		},
		OnTerminated: func(in *Instance, reason TerminationReason) {
			if inner.OnTerminated != nil {
				inner.OnTerminated(in, reason)
			}
			if r.current == in {
				r.current = nil
			}
			// Persistent semantics: re-open after provider-initiated
			// terminations; a user termination leaves the request open
			// too, but EC2 cancels it if the user terminates via the
			// request — modelled as staying open, matching "persistent".
			if r.open {
				p.tryFulfill(r)
			}
		},
	})
	if err != nil {
		// Lost a race with a price change in this event round; the next
		// price event retries.
		return
	}
	r.current = in
	r.launches++
}

// OpenSpotRequests returns the number of open persistent requests.
func (p *Provider) OpenSpotRequests() int { return len(p.spotRequestsOpen) }
