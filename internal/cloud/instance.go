package cloud

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// InstanceID uniquely identifies an instance within one provider.
type InstanceID int64

// Lifecycle distinguishes the two purchase models.
type Lifecycle int

const (
	// OnDemand instances have a fixed price and are never revoked.
	OnDemand Lifecycle = iota
	// Spot instances are billed at the fluctuating market price and are
	// revoked when the price exceeds the customer's bid.
	Spot
)

// String implements fmt.Stringer.
func (l Lifecycle) String() string {
	if l == Spot {
		return "spot"
	}
	return "on-demand"
}

// State is an instance's lifecycle state.
type State int

const (
	// Pending: requested, allocation in progress.
	Pending State = iota
	// Running: allocated and booted; billing accrues.
	Running
	// Revoking: warned; termination is scheduled at WarnDeadline.
	Revoking
	// Terminated: gone.
	Terminated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Revoking:
		return "revoking"
	default:
		return "terminated"
	}
}

// TerminationReason explains why an instance stopped.
type TerminationReason int

const (
	// ReasonUser: the customer terminated the instance voluntarily.
	ReasonUser TerminationReason = iota
	// ReasonRevoked: the provider reclaimed a spot instance after the
	// grace period.
	ReasonRevoked
	// ReasonNeverGranted: a pending spot request was cancelled because the
	// price rose above the bid before allocation completed.
	ReasonNeverGranted
)

// String implements fmt.Stringer.
func (r TerminationReason) String() string {
	switch r {
	case ReasonUser:
		return "user-terminated"
	case ReasonRevoked:
		return "revoked"
	default:
		return "never-granted"
	}
}

// Callbacks receive instance lifecycle notifications. Any field may be nil.
type Callbacks struct {
	// OnRunning fires when the instance finishes allocation and boots.
	OnRunning func(*Instance)
	// OnRevocationWarning fires when the provider decides to reclaim a
	// spot instance; terminateAt is the hard deadline (warning time +
	// grace period).
	OnRevocationWarning func(inst *Instance, terminateAt sim.Time)
	// OnTerminated fires exactly once when the instance reaches
	// Terminated, for any reason.
	OnTerminated func(inst *Instance, reason TerminationReason)
}

// Instance is one leased server.
type Instance struct {
	id        InstanceID
	market    market.ID
	lifecycle Lifecycle
	bid       float64 // spot only; 0 for on-demand

	state        State
	requestedAt  sim.Time
	runningAt    sim.Time
	terminatedAt sim.Time
	warnDeadline sim.Time
	reason       TerminationReason

	cb Callbacks

	// Billing bookkeeping. hourFn is the persistent hourly billing
	// closure, allocated once at creation and rearmed every hour.
	hourEvent    *sim.Event
	hourFn       func()
	lastHourAt   sim.Time
	lastHourCost float64
	charged      float64

	revocationCheckDone bool // guards double warnings
}

// ID returns the instance identifier.
func (in *Instance) ID() InstanceID { return in.id }

// Market returns the (region, type) market the instance runs in.
func (in *Instance) Market() market.ID { return in.market }

// Region returns the instance's region.
func (in *Instance) Region() market.Region { return in.market.Region }

// Type returns the instance's size.
func (in *Instance) Type() market.InstanceType { return in.market.Type }

// Lifecycle returns Spot or OnDemand.
func (in *Instance) Lifecycle() Lifecycle { return in.lifecycle }

// Bid returns the spot bid price (0 for on-demand instances).
func (in *Instance) Bid() float64 { return in.bid }

// State returns the current lifecycle state.
func (in *Instance) State() State { return in.state }

// RequestedAt returns when the instance was requested.
func (in *Instance) RequestedAt() sim.Time { return in.requestedAt }

// RunningAt returns when the instance booted (meaningful once Running).
func (in *Instance) RunningAt() sim.Time { return in.runningAt }

// TerminatedAt returns when the instance terminated (meaningful once
// Terminated).
func (in *Instance) TerminatedAt() sim.Time { return in.terminatedAt }

// WarnDeadline returns the revocation deadline (meaningful once Revoking).
func (in *Instance) WarnDeadline() sim.Time { return in.warnDeadline }

// Reason returns the termination reason (meaningful once Terminated).
func (in *Instance) Reason() TerminationReason { return in.reason }

// Charged returns the total amount billed to this instance so far,
// including any revocation refund.
func (in *Instance) Charged() float64 { return in.charged }

// NextHourBoundary returns the end of the current billing hour: the next
// whole instance-hour after t, measured from boot. Panics if the instance
// has not booted.
func (in *Instance) NextHourBoundary(t sim.Time) sim.Time {
	if in.state == Pending {
		panic(fmt.Sprintf("cloud: NextHourBoundary on pending instance %d", in.id))
	}
	return sim.NextHourBoundary(in.runningAt, t)
}

// Alive reports whether the instance can still host work (Running or
// inside its revocation grace window).
func (in *Instance) Alive() bool { return in.state == Running || in.state == Revoking }

// String implements fmt.Stringer for debugging.
func (in *Instance) String() string {
	return fmt.Sprintf("inst%d(%s,%s,%s)", in.id, in.market, in.lifecycle, in.state)
}
