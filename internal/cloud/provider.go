package cloud

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/randx"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Provider is the simulated infrastructure cloud. All methods must be
// called from inside the owning sim.Engine's event loop (the simulation is
// single-threaded by design).
type Provider struct {
	eng    *sim.Engine
	set    *market.Set
	params Params
	rng    *randx.Stream

	// markets holds the per-market hot-path state: a monotone trace cursor
	// (the simulation clock only moves forward) and the persistent price-
	// event closure, so the steady-state price chain allocates nothing.
	markets map[market.ID]*marketState

	nextID    InstanceID
	instances map[InstanceID]*Instance
	// byMarket holds the live spot instances per market for revocation
	// checks on price changes.
	byMarket map[market.ID]map[InstanceID]*Instance
	// spotScratch is reused by liveSpot to snapshot a market's live spot
	// instances without allocating per price change.
	spotScratch []*Instance

	ledger Ledger

	priceSubs map[market.ID][]func(t sim.Time, price float64)

	nextVolumeID VolumeID
	volumes      map[VolumeID]*Volume

	nextSpotReqID    SpotRequestID
	spotRequestsOpen map[SpotRequestID]*SpotRequest

	// Counters for reports and tests.
	revocations   int
	spotRequests  int
	neverGranted  int
	spotLaunched  int
	odLaunched    int
	userTerminate int
}

// NewProvider builds a provider over the price set, wiring price-change
// events into the engine. The provider starts delivering price events from
// time 0.
func NewProvider(eng *sim.Engine, set *market.Set, params Params) *Provider {
	p := &Provider{
		eng:              eng,
		set:              set,
		params:           params,
		rng:              randx.Derive(params.Seed, "cloud/provider"),
		markets:          map[market.ID]*marketState{},
		instances:        map[InstanceID]*Instance{},
		byMarket:         map[market.ID]map[InstanceID]*Instance{},
		priceSubs:        map[market.ID][]func(sim.Time, float64){},
		volumes:          map[VolumeID]*Volume{},
		spotRequestsOpen: map[SpotRequestID]*SpotRequest{},
	}
	for _, id := range set.IDs() {
		ms := &marketState{p: p, id: id, cursor: market.NewCursor(set.Trace(id))}
		ms.stepFn = func() {
			at, price := ms.nextAt, ms.nextPrice
			p.onPriceChange(ms.id, price)
			ms.arm(at)
		}
		p.markets[id] = ms
		ms.arm(eng.Now())
	}
	return p
}

// marketState is the per-market hot-path state: a monotone cursor over the
// trace and one persistent closure that drives the whole price-event chain.
type marketState struct {
	p      *Provider
	id     market.ID
	cursor *market.Cursor
	stepFn func()
	// nextAt/nextPrice describe the armed price change stepFn will deliver.
	nextAt    sim.Time
	nextPrice float64
}

// arm schedules the next price change strictly after the given time.
func (ms *marketState) arm(after sim.Time) {
	at, price, ok := ms.cursor.NextChangeAfter(after)
	if !ok {
		return
	}
	ms.nextAt, ms.nextPrice = at, price
	ms.p.eng.Post(at, ms.stepFn)
}

// Engine returns the simulation engine driving this provider.
func (p *Provider) Engine() *sim.Engine { return p.eng }

// Markets returns the market universe.
func (p *Provider) Markets() *market.Set { return p.set }

// Params returns the provider parameters.
func (p *Provider) Params() Params { return p.params }

// Ledger returns the billing ledger.
func (p *Provider) Ledger() *Ledger { return &p.ledger }

// SpotPrice returns the current spot price of a market.
func (p *Provider) SpotPrice(id market.ID) float64 {
	if ms := p.markets[id]; ms != nil {
		return ms.cursor.PriceAt(p.eng.Now())
	}
	return p.set.Trace(id).PriceAt(p.eng.Now())
}

// OnDemandPrice returns the fixed on-demand price of a market.
func (p *Provider) OnDemandPrice(id market.ID) float64 {
	return p.set.OnDemand(id)
}

// MaxBid returns the largest bid the provider accepts for a market
// (BidCap x on-demand).
func (p *Provider) MaxBid(id market.ID) float64 {
	return p.params.BidCap * p.set.OnDemand(id)
}

// SubscribePrice registers fn to run on every price change of market id.
// The subscription lasts for the life of the provider.
func (p *Provider) SubscribePrice(id market.ID, fn func(t sim.Time, price float64)) {
	p.priceSubs[id] = append(p.priceSubs[id], fn)
}

func (p *Provider) onPriceChange(id market.ID, price float64) {
	now := p.eng.Now()
	// Revoke or cancel spot instances whose bid the price now exceeds.
	for _, in := range p.liveSpot(id) {
		if price > in.bid {
			p.beginRevocation(in)
		}
	}
	for _, fn := range p.priceSubs[id] {
		fn(now, price)
	}
}

// liveSpot snapshots a market's live spot instances in deterministic order
// (ascending instance ID) into a reused scratch buffer. The result is only
// valid until the next call; the simulation is single-threaded, so the one
// caller (onPriceChange) finishes with it before anyone else can ask.
func (p *Provider) liveSpot(id market.ID) []*Instance {
	m := p.byMarket[id]
	if len(m) == 0 {
		return nil
	}
	out := p.spotScratch[:0]
	for _, in := range m {
		out = append(out, in)
	}
	// Insertion sort: the per-market population is small and this avoids
	// sort.Slice's closure allocation on every price change.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	p.spotScratch = out
	return out
}

// RequestSpot requests a spot instance in market id at the given bid. The
// request fails immediately when the market is unknown, the bid is not
// positive, exceeds the provider's bid cap, or is below the current spot
// price. On success the instance is Pending; OnRunning fires after the
// sampled allocation latency unless the price overtakes the bid first, in
// which case OnTerminated(ReasonNeverGranted) fires instead.
func (p *Provider) RequestSpot(id market.ID, bid float64, cb Callbacks) (*Instance, error) {
	tr := p.set.Trace(id)
	if tr == nil {
		return nil, fmt.Errorf("cloud: unknown market %s", id)
	}
	if bid <= 0 {
		return nil, fmt.Errorf("cloud: non-positive bid %v", bid)
	}
	if max := p.MaxBid(id); bid > max+1e-12 {
		return nil, fmt.Errorf("cloud: bid %v exceeds cap %v for %s", bid, max, id)
	}
	now := p.eng.Now()
	var cur float64
	if ms := p.markets[id]; ms != nil {
		cur = ms.cursor.PriceAt(now)
	} else {
		cur = tr.PriceAt(now)
	}
	if cur > bid {
		return nil, fmt.Errorf("cloud: current price %v above bid %v in %s", cur, bid, id)
	}
	p.spotRequests++
	in := p.newInstance(id, Spot, bid, cb)
	delay := p.rng.LognormalMeanCV(p.params.spotStartup(id.Region), p.params.StartupCV)
	p.eng.PostAfter(delay, func() { p.finishAllocation(in) })
	return in, nil
}

// RequestOnDemand requests a non-revocable on-demand instance. OnRunning
// fires after the sampled allocation latency.
func (p *Provider) RequestOnDemand(id market.ID, cb Callbacks) (*Instance, error) {
	if p.set.Trace(id) == nil {
		return nil, fmt.Errorf("cloud: unknown market %s", id)
	}
	in := p.newInstance(id, OnDemand, 0, cb)
	delay := p.rng.LognormalMeanCV(p.params.onDemandStartup(id.Region), p.params.StartupCV)
	p.eng.PostAfter(delay, func() { p.finishAllocation(in) })
	return in, nil
}

func (p *Provider) newInstance(id market.ID, lc Lifecycle, bid float64, cb Callbacks) *Instance {
	in := &Instance{
		id:          p.nextID,
		market:      id,
		lifecycle:   lc,
		bid:         bid,
		state:       Pending,
		requestedAt: p.eng.Now(),
		cb:          cb,
	}
	// One persistent billing closure per instance instead of one per
	// instance-hour.
	in.hourFn = func() { p.chargeHour(in) }
	p.nextID++
	p.instances[in.id] = in
	if lc == Spot {
		if p.byMarket[id] == nil {
			p.byMarket[id] = map[InstanceID]*Instance{}
		}
		p.byMarket[id][in.id] = in
	}
	return in
}

func (p *Provider) finishAllocation(in *Instance) {
	if in.state != Pending {
		return // cancelled while allocating
	}
	now := p.eng.Now()
	// A spot request whose market overtook the bid during allocation was
	// already cancelled by beginRevocation (state != Pending); reaching
	// here means the bid still holds.
	in.state = Running
	in.runningAt = now
	if in.lifecycle == Spot {
		p.spotLaunched++
	} else {
		p.odLaunched++
	}
	p.chargeHour(in)
	if in.cb.OnRunning != nil {
		in.cb.OnRunning(in)
	}
}

// chargeHour bills the instance-hour starting now and schedules the next
// one.
func (p *Provider) chargeHour(in *Instance) {
	if !in.Alive() {
		return
	}
	now := p.eng.Now()
	rec := p.eng.Recorder()
	rate := p.set.OnDemand(in.market)
	class := "on-demand"
	if in.lifecycle == Spot {
		// "billed on an hourly basis, based on the spot price (not the
		// bid price) at the beginning of each hour".
		if ms := p.markets[in.market]; ms != nil {
			rate = ms.cursor.PriceAt(now)
		} else {
			rate = p.set.Trace(in.market).PriceAt(now)
		}
		class = "spot"
		rec.ObserveSpotPrice(rate)
	}
	rec.Instant(trace.KindBillingHour, class, "billing", now)
	in.lastHourAt = now
	in.lastHourCost = rate
	in.charged += rate
	p.ledger.add(Charge{
		At: now, Instance: in.id, Market: in.market,
		Spot: in.lifecycle == Spot, Kind: ChargeHour, Amount: rate,
	})
	if o := p.eng.Obs(); o != nil {
		o.Charge(float64(now), in.market.String(), string(in.market.Type), rate)
	}
	in.hourEvent = p.eng.After(sim.Hour, in.hourFn)
}

// beginRevocation warns a spot instance and schedules its termination
// after the grace period. Pending requests are cancelled immediately.
func (p *Provider) beginRevocation(in *Instance) {
	switch in.state {
	case Pending:
		// The request was never granted: cancel silently (no charge).
		p.neverGranted++
		p.terminate(in, ReasonNeverGranted)
		return
	case Running:
		// fall through to warn
	default:
		return // already revoking or gone
	}
	in.state = Revoking
	in.warnDeadline = p.eng.Now() + p.params.GracePeriod
	p.revocations++
	if in.cb.OnRevocationWarning != nil {
		in.cb.OnRevocationWarning(in, in.warnDeadline)
	}
	p.eng.Post(in.warnDeadline, func() {
		if in.state == Revoking {
			p.refundPartialHour(in)
			p.terminate(in, ReasonRevoked)
		}
	})
}

// refundPartialHour reverses the in-progress hour of a revoked spot
// instance when the revocation lands strictly inside the hour.
func (p *Provider) refundPartialHour(in *Instance) {
	now := p.eng.Now()
	if in.lastHourCost == 0 || now >= in.lastHourAt+sim.Hour {
		return
	}
	in.charged -= in.lastHourCost
	p.ledger.add(Charge{
		At: now, Instance: in.id, Market: in.market,
		Spot: true, Kind: ChargeRefund, Amount: -in.lastHourCost,
	})
	if o := p.eng.Obs(); o != nil {
		o.Charge(float64(now), in.market.String(), string(in.market.Type), -in.lastHourCost)
	}
}

// Terminate voluntarily releases an instance. A started hour remains
// billed in full (EC2 charged user-terminated partial hours). Terminating
// a Pending request cancels it without charge; terminating an instance
// that is already Terminated is an error.
func (p *Provider) Terminate(in *Instance) error {
	switch in.state {
	case Terminated:
		return fmt.Errorf("cloud: %v already terminated", in)
	case Pending:
		p.terminate(in, ReasonUser)
		return nil
	default:
		p.userTerminate++
		p.terminate(in, ReasonUser)
		return nil
	}
}

func (p *Provider) terminate(in *Instance, reason TerminationReason) {
	in.state = Terminated
	in.terminatedAt = p.eng.Now()
	in.reason = reason
	if in.hourEvent != nil {
		p.eng.Cancel(in.hourEvent)
		in.hourEvent = nil
	}
	if in.lifecycle == Spot {
		delete(p.byMarket[in.market], in.id)
	}
	// Detach any volumes still attached.
	for _, v := range p.volumes {
		if v.attachedTo == in.id {
			v.attachedTo = -1
		}
	}
	if in.cb.OnTerminated != nil {
		in.cb.OnTerminated(in, reason)
	}
}

// Instance returns a previously created instance by ID, or nil.
func (p *Provider) Instance(id InstanceID) *Instance { return p.instances[id] }

// Counters exposes aggregate provider statistics for reports and tests.
type Counters struct {
	SpotRequests    int
	SpotLaunched    int
	OnDemandLaunch  int
	Revocations     int
	NeverGranted    int
	UserTerminating int
}

// Counters returns a snapshot of the provider's aggregate statistics.
func (p *Provider) Counters() Counters {
	return Counters{
		SpotRequests:    p.spotRequests,
		SpotLaunched:    p.spotLaunched,
		OnDemandLaunch:  p.odLaunched,
		Revocations:     p.revocations,
		NeverGranted:    p.neverGranted,
		UserTerminating: p.userTerminate,
	}
}
