package cloud

import (
	"fmt"

	"spothost/internal/market"
)

// VolumeID identifies a network-attached volume.
type VolumeID int64

// Volume models an EBS-like network storage volume. Volumes are
// region-local: they survive instance termination and can be re-attached
// to any instance in the same region ("the volume can simply be
// re-attached to the new on-demand server"), which is what preserves disk
// state — and checkpointed memory state — across spot revocations.
type Volume struct {
	id         VolumeID
	region     market.Region
	sizeGB     float64
	attachedTo InstanceID // -1 when detached
}

// ID returns the volume identifier.
func (v *Volume) ID() VolumeID { return v.id }

// Region returns the region the volume lives in.
func (v *Volume) Region() market.Region { return v.region }

// SizeGB returns the volume size.
func (v *Volume) SizeGB() float64 { return v.sizeGB }

// Attached reports whether the volume is currently attached, and to which
// instance.
func (v *Volume) Attached() (InstanceID, bool) {
	return v.attachedTo, v.attachedTo >= 0
}

// CreateVolume provisions a new detached volume in a region.
func (p *Provider) CreateVolume(region market.Region, sizeGB float64) (*Volume, error) {
	if sizeGB <= 0 {
		return nil, fmt.Errorf("cloud: volume size must be positive, got %v", sizeGB)
	}
	v := &Volume{id: p.nextVolumeID, region: region, sizeGB: sizeGB, attachedTo: -1}
	p.nextVolumeID++
	p.volumes[v.id] = v
	return v, nil
}

// AttachVolume attaches v to instance in after the attach latency; done
// (optional) fires on completion. Attachment fails when the volume is
// already attached, the instance is not alive, or the regions differ
// (EBS volumes cannot cross regions — that constraint is why cross-region
// migrations must copy disk state, Table 2).
func (p *Provider) AttachVolume(v *Volume, in *Instance, done func()) error {
	if v.attachedTo >= 0 {
		return fmt.Errorf("cloud: volume %d already attached to instance %d", v.id, v.attachedTo)
	}
	if !in.Alive() {
		return fmt.Errorf("cloud: cannot attach volume %d to %v", v.id, in)
	}
	if v.region != in.Region() {
		return fmt.Errorf("cloud: volume %d in %s cannot attach across regions to %v",
			v.id, v.region, in)
	}
	v.attachedTo = in.id
	if done != nil {
		p.eng.PostAfter(p.params.VolumeAttach, done)
	}
	return nil
}

// DetachVolume detaches v from whatever instance holds it. Detaching a
// detached volume is a no-op.
func (p *Provider) DetachVolume(v *Volume) {
	v.attachedTo = -1
}

// DeleteVolume removes a volume. Attached volumes cannot be deleted.
func (p *Provider) DeleteVolume(v *Volume) error {
	if v.attachedTo >= 0 {
		return fmt.Errorf("cloud: volume %d is attached; detach first", v.id)
	}
	delete(p.volumes, v.id)
	return nil
}

// Volume returns a volume by ID, or nil.
func (p *Provider) Volume(id VolumeID) *Volume { return p.volumes[id] }
