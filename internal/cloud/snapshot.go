package cloud

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/randx"
	"spothost/internal/sim"
)

// instSnap is the plain-data image of one instance: every field except the
// lifecycle callbacks and the billing closure/event, which RestoreProvider
// rebuilds (they close over the owning provider and cannot be copied).
type instSnap struct {
	id           InstanceID
	market       market.ID
	lifecycle    Lifecycle
	bid          float64
	state        State
	requestedAt  sim.Time
	runningAt    sim.Time
	terminatedAt sim.Time
	warnDeadline sim.Time
	reason       TerminationReason
	lastHourAt   sim.Time
	lastHourCost float64
	charged      float64
}

// Snapshot is a deep copy of a provider's model state at a quiescent
// instant: instance records, billing ledger, counters, and the RNG
// position. The pending event heap is deliberately absent — at a quiescent
// instant every provider event is a deterministic function of this state
// (price chains from the market cursors, billing hours from lastHourAt),
// so RestoreProvider re-arms them instead of copying closures.
type Snapshot struct {
	at     sim.Time
	rng    randx.State
	nextID InstanceID
	insts  []instSnap

	ledgerEntries []Charge
	ledgerTotal   float64
	ledgerSpot    float64
	ledgerOD      float64

	counters Counters
}

// At returns the simulation time the snapshot was taken.
func (s *Snapshot) At() sim.Time { return s.at }

// Snapshot captures the provider's state if it is quiescent: no allocation
// in flight (Pending), no revocation mid-grace (Revoking), no open spot
// requests, and no network volumes. Those transients hold one-shot event
// closures that cannot be re-derived from model state, so a provider in
// such a state reports ok=false and the caller skips this checkpoint.
func (p *Provider) Snapshot() (*Snapshot, bool) {
	if len(p.spotRequestsOpen) != 0 || len(p.volumes) != 0 {
		return nil, false
	}
	s := &Snapshot{
		at:          p.eng.Now(),
		rng:         p.rng.State(),
		nextID:      p.nextID,
		ledgerTotal: p.ledger.total,
		ledgerSpot:  p.ledger.spotTotal,
		ledgerOD:    p.ledger.onDemandTotal,
		counters:    p.Counters(),
	}
	// Instance IDs are dense from 0, so this order is deterministic.
	s.insts = make([]instSnap, 0, len(p.instances))
	for id := InstanceID(0); id < p.nextID; id++ {
		in := p.instances[id]
		if in == nil {
			continue
		}
		if in.state == Pending || in.state == Revoking {
			return nil, false
		}
		s.insts = append(s.insts, instSnap{
			id:           in.id,
			market:       in.market,
			lifecycle:    in.lifecycle,
			bid:          in.bid,
			state:        in.state,
			requestedAt:  in.requestedAt,
			runningAt:    in.runningAt,
			terminatedAt: in.terminatedAt,
			warnDeadline: in.warnDeadline,
			reason:       in.reason,
			lastHourAt:   in.lastHourAt,
			lastHourCost: in.lastHourCost,
			charged:      in.charged,
		})
	}
	s.ledgerEntries = append([]Charge(nil), p.ledger.entries...)
	return s, true
}

// RestoreProvider rebuilds a provider from a snapshot on a fresh engine
// whose clock stands exactly at the snapshot time. Price chains re-arm
// from the current cursor position (NextChangeAfter(at) names the same
// pending change the original provider had in its heap), and each alive
// instance's hourly billing event is rescheduled at lastHourAt + 1h — the
// same float arithmetic the original chargeHour used — so the restored
// provider's future is bit-identical to the original's.
func RestoreProvider(eng *sim.Engine, set *market.Set, params Params, s *Snapshot) (*Provider, error) {
	if eng.Now() != s.at {
		return nil, fmt.Errorf("cloud: restore at t=%v but snapshot taken at t=%v", eng.Now(), s.at)
	}
	p := NewProvider(eng, set, params)
	p.rng = randx.Restore(s.rng)
	p.nextID = s.nextID
	p.revocations = s.counters.Revocations
	p.spotRequests = s.counters.SpotRequests
	p.neverGranted = s.counters.NeverGranted
	p.spotLaunched = s.counters.SpotLaunched
	p.odLaunched = s.counters.OnDemandLaunch
	p.userTerminate = s.counters.UserTerminating
	p.ledger = Ledger{
		entries:       append([]Charge(nil), s.ledgerEntries...),
		total:         s.ledgerTotal,
		spotTotal:     s.ledgerSpot,
		onDemandTotal: s.ledgerOD,
	}
	for _, si := range s.insts {
		in := &Instance{
			id:           si.id,
			market:       si.market,
			lifecycle:    si.lifecycle,
			bid:          si.bid,
			state:        si.state,
			requestedAt:  si.requestedAt,
			runningAt:    si.runningAt,
			terminatedAt: si.terminatedAt,
			warnDeadline: si.warnDeadline,
			reason:       si.reason,
			lastHourAt:   si.lastHourAt,
			lastHourCost: si.lastHourCost,
			charged:      si.charged,
		}
		in.hourFn = func() { p.chargeHour(in) }
		p.instances[in.id] = in
		if in.Alive() {
			if in.lifecycle == Spot {
				if p.byMarket[in.market] == nil {
					p.byMarket[in.market] = map[InstanceID]*Instance{}
				}
				p.byMarket[in.market][in.id] = in
			}
			in.hourEvent = eng.Schedule(si.lastHourAt+sim.Hour, in.hourFn)
		}
	}
	return p, nil
}

// AttachCallbacks rewires lifecycle callbacks onto a restored instance.
// Snapshots cannot carry callbacks (they close over the original owner),
// so the restoring scheduler re-registers its own.
func (p *Provider) AttachCallbacks(in *Instance, cb Callbacks) { in.cb = cb }

// Rebid overrides the bid of a live restored spot instance. A fork whose
// bid knob differs from its pilot's re-bids each inherited instance; this
// is sound only when the divergence oracle certified that no price change
// before the fork point fell between the two bids — which also guarantees
// the new bid still covers the current price, checked here defensively.
func (p *Provider) Rebid(in *Instance, bid float64) error {
	if in.lifecycle != Spot || !in.Alive() {
		return fmt.Errorf("cloud: rebid on %v", in)
	}
	if max := p.MaxBid(in.market); bid > max+1e-12 {
		return fmt.Errorf("cloud: rebid %v exceeds cap %v for %s", bid, max, in.market)
	}
	if cur := p.SpotPrice(in.market); cur > bid {
		return fmt.Errorf("cloud: rebid %v below current price %v in %s", bid, cur, in.market)
	}
	in.bid = bid
	return nil
}
