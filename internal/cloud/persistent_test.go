package cloud

import (
	"testing"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// persistentSet: price low (0.01), spikes above 0.06 during [7200, 10800)
// and again during [20000, 23000).
func persistentSet(t *testing.T) *market.Set {
	t.Helper()
	tr, err := market.NewTrace(mSmall, []market.Point{
		{T: 0, Price: 0.01},
		{T: 7200, Price: 0.50}, {T: 10800, Price: 0.01},
		{T: 20000, Price: 0.50}, {T: 23000, Price: 0.01},
	}, 40*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s, err := market.NewSet([]*market.Trace{tr}, map[market.ID]float64{mSmall: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPersistentRequestValidation(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProvider(eng, persistentSet(t), fixedParams())
	if _, err := p.RequestSpotPersistent(market.ID{Region: "x", Type: "y"}, 0.06, Callbacks{}); err == nil {
		t.Error("unknown market accepted")
	}
	if _, err := p.RequestSpotPersistent(mSmall, 0, Callbacks{}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := p.RequestSpotPersistent(mSmall, 1, Callbacks{}); err == nil {
		t.Error("over-cap bid accepted")
	}
}

// TestPersistentRelaunchesAfterRevocation: the request launches, is
// revoked by the first spike, relaunches when the price dips, is revoked
// again, and relaunches again.
func TestPersistentRelaunchesAfterRevocation(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProvider(eng, persistentSet(t), fixedParams())
	var running, terminated int
	r, err := p.RequestSpotPersistent(mSmall, 0.06, Callbacks{
		OnRunning:    func(*Instance) { running++ },
		OnTerminated: func(*Instance, TerminationReason) { terminated++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(40 * sim.Hour)

	if r.Launches() != 3 {
		t.Fatalf("launches = %d, want 3 (initial + 2 relaunches)", r.Launches())
	}
	if running != 3 || terminated != 2 {
		t.Fatalf("callbacks: running=%d terminated=%d", running, terminated)
	}
	cur := r.Current()
	if cur == nil || cur.State() != Running {
		t.Fatalf("request should end holding a live instance: %v", cur)
	}
	if !r.Open() {
		t.Fatal("request closed itself")
	}
}

// TestPersistentWaitsWhileAboveBid: opened during a spike, the request
// stays idle until the price drops.
func TestPersistentWaitsWhileAboveBid(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProvider(eng, persistentSet(t), fixedParams())
	var launchedAt sim.Time = -1
	eng.Schedule(8000, func() { // inside the first spike
		_, err := p.RequestSpotPersistent(mSmall, 0.06, Callbacks{
			OnRunning: func(*Instance) {
				if launchedAt < 0 {
					launchedAt = eng.Now()
				}
			},
		})
		if err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(15 * sim.Hour)
	// Price drops at 10800; the 240 s allocation makes it ~11040.
	if launchedAt < 10800 || launchedAt > 11200 {
		t.Fatalf("launched at %v, want shortly after 10800", launchedAt)
	}
}

// TestPersistentCancel: cancellation closes the request but keeps the
// running instance alive.
func TestPersistentCancel(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProvider(eng, persistentSet(t), fixedParams())
	r, err := p.RequestSpotPersistent(mSmall, 0.06, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3600)
	inst := r.Current()
	if inst == nil {
		t.Fatal("no instance launched")
	}
	if p.OpenSpotRequests() != 1 {
		t.Fatalf("open requests = %d", p.OpenSpotRequests())
	}
	p.CancelSpotRequest(r)
	p.CancelSpotRequest(r) // idempotent
	if r.Open() || p.OpenSpotRequests() != 0 {
		t.Fatal("cancel did not close the request")
	}
	if inst.State() != Running {
		t.Fatal("cancel terminated the running instance")
	}
	// After the instance is revoked, the cancelled request must NOT
	// relaunch.
	eng.RunUntil(40 * sim.Hour)
	if r.Launches() != 1 {
		t.Fatalf("cancelled request relaunched: %d", r.Launches())
	}
}

// TestPersistentUserTerminationRelaunches: persistent semantics keep the
// request open after the user terminates the fulfilled instance.
func TestPersistentUserTerminationRelaunches(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProvider(eng, persistentSet(t), fixedParams())
	r, err := p.RequestSpotPersistent(mSmall, 0.06, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3600)
	if err := p.Terminate(r.Current()); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * sim.Hour)
	if r.Launches() < 2 {
		t.Fatalf("request did not relaunch after user termination: %d", r.Launches())
	}
}
