package controlplane

import (
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync"
	"time"

	"spothost/internal/fleet"
	"spothost/internal/metrics"
	"spothost/internal/obs"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// State is a run's lifecycle position.
type State string

// Run states: a registered fleet is queued until its shard first picks it
// up, running while it advances, and done/failed terminally.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Snapshot is the externally visible state of one registered fleet: what
// GET /v1/tenants/{t}/fleets/{name} returns.
type Snapshot struct {
	Tenant      string        `json:"tenant"`
	Name        string        `json:"name"`
	State       State         `json:"state"`
	Shard       int           `json:"shard"`
	Seed        int64         `json:"seed"`
	Days        float64       `json:"days"`
	SimHours    float64       `json:"sim_hours"`
	Steps       int           `json:"steps"`
	Records     int           `json:"records"`
	Subscribers int           `json:"subscribers"`
	Error       string        `json:"error,omitempty"`
	Report      *fleet.Report `json:"report,omitempty"`
}

// StreamRecord is one line of the NDJSON stream: the fleet's cumulative
// report snapshot as of a completed simulated day (or the terminal
// record, flagged Done, whose Report matches a standalone run exactly).
type StreamRecord struct {
	Tenant   string        `json:"tenant"`
	Name     string        `json:"name"`
	Day      int           `json:"day"`
	SimHours float64       `json:"sim_hours"`
	Done     bool          `json:"done"`
	Error    string        `json:"error,omitempty"`
	Report   *fleet.Report `json:"report,omitempty"`
}

// run is one registered fleet: spec and config are immutable after
// registration, sim is owned exclusively by the shard goroutine, and the
// published state (snapshot fields, record log, subscriptions) is guarded
// by mu.
type run struct {
	tenant, name string
	spec         Spec
	fcfg         fleet.Config
	horizon      sim.Duration
	shard        *shard

	// sim, rec and ob are touched only by the shard goroutine; ledgerN
	// counts the ledger decisions already published to the mu-guarded
	// state, so each slice marshals only the new tail.
	sim     *fleet.Sim
	rec     *trace.Recorder
	ob      *obs.Recorder
	ledgerN int

	mu       sync.Mutex
	state    State
	err      error
	simNow   sim.Time
	steps    int
	report   *fleet.Report
	records  [][]byte // encoded NDJSON lines, newline-terminated
	tl       *obs.Timeline
	ledger   [][]byte // encoded ledger NDJSON lines, newline-terminated
	lastDay  int
	subs     int
	removed  bool
	terminal bool   // no further records will be appended
	doneSeq  uint64 // plane-wide finish order, for LRU eviction
	updated  chan struct{}
}

func newRun(tenant, name string, spec Spec, fcfg fleet.Config, horizon sim.Duration, sh *shard) *run {
	sh.assign()
	return &run{
		tenant:  tenant,
		name:    name,
		spec:    spec,
		fcfg:    fcfg,
		horizon: horizon,
		shard:   sh,
		state:   StateQueued,
		lastDay: -1,
		updated: make(chan struct{}),
	}
}

// notifyLocked wakes every waiter blocked on new records. Callers hold
// r.mu.
func (r *run) notifyLocked() {
	close(r.updated)
	r.updated = make(chan struct{})
}

// remove marks the run dropped from the registry: its shard discards it at
// the next dequeue and blocked stream readers see the log end.
func (r *run) remove() {
	r.mu.Lock()
	r.removed = true
	if !r.terminal {
		r.terminal = true
		r.doneSeq = 0 // removed runs evict first
	}
	r.notifyLocked()
	r.mu.Unlock()
}

func (r *run) isRemoved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removed
}

func (r *run) snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Tenant:      r.tenant,
		Name:        r.name,
		State:       r.state,
		Shard:       r.shard.id,
		Seed:        r.spec.Seed,
		Days:        r.spec.Days,
		SimHours:    r.simNow / sim.Hour,
		Steps:       r.steps,
		Records:     len(r.records),
		Subscribers: r.subs,
		Report:      r.report,
	}
	if r.err != nil {
		s.Error = r.err.Error()
	}
	return s
}

// publish stores the slice's report snapshot and, when a simulated day
// completed (or the run ended), appends one NDJSON record to the log.
// tl and ledger carry the slice's telemetry snapshot and newly marshaled
// decision lines (both nil when the plane runs without telemetry).
func (r *run) publish(rep fleet.Report, now sim.Time, done bool, tl *obs.Timeline, ledger [][]byte) {
	day := int(math.Floor(now/sim.Day + 1e-9))
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.removed {
		return
	}
	r.simNow = now
	r.steps++
	r.state = StateRunning
	r.report = &rep
	if tl != nil {
		r.tl = tl
	}
	r.ledger = append(r.ledger, ledger...)
	if day > r.lastDay || done {
		rec := StreamRecord{
			Tenant:   r.tenant,
			Name:     r.name,
			Day:      day,
			SimHours: now / sim.Hour,
			Done:     done,
			Report:   &rep,
		}
		line, err := json.Marshal(rec)
		if err == nil {
			r.records = append(r.records, append(line, '\n'))
			r.lastDay = day
		}
	}
	if done {
		r.state = StateDone
		r.terminal = true
	}
	r.notifyLocked()
}

// fail marks the run terminally failed and appends the terminal record.
func (r *run) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.removed || r.terminal {
		return
	}
	r.state = StateFailed
	r.err = err
	r.terminal = true
	rec := StreamRecord{
		Tenant: r.tenant,
		Name:   r.name,
		Day:    int(math.Floor(r.simNow/sim.Day + 1e-9)),
		Done:   true,
		Error:  err.Error(),
	}
	if line, jerr := json.Marshal(rec); jerr == nil {
		r.records = append(r.records, append(line, '\n'))
	}
	r.notifyLocked()
}

// shard is one runtime goroutine: a FIFO ready queue of runs awaiting
// their next time slice.
type shard struct {
	plane *Plane
	id    int
	col   *trace.Collector
	obs   *obs.Collector

	mu       sync.Mutex
	queue    []*run
	assigned int
	steps    uint64
	simSecs  float64
	wake     chan struct{}
}

func newShard(p *Plane, id int, col *trace.Collector, oc *obs.Collector) *shard {
	return &shard{plane: p, id: id, col: col, obs: oc, wake: make(chan struct{}, 1)}
}

func (sh *shard) assign() {
	sh.mu.Lock()
	sh.assigned++
	sh.mu.Unlock()
}

func (sh *shard) unassign() {
	sh.mu.Lock()
	sh.assigned--
	sh.mu.Unlock()
}

// enqueue appends the run to the ready queue and wakes the shard.
func (sh *shard) enqueue(r *run) {
	sh.mu.Lock()
	sh.queue = append(sh.queue, r)
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

func (sh *shard) queueDepth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue)
}

func (sh *shard) stats() metrics.ControlPlaneShard {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return metrics.ControlPlaneShard{
		Fleets:     sh.assigned,
		QueueDepth: len(sh.queue),
		Steps:      sh.steps,
		SimSeconds: sh.simSecs,
	}
}

// next pops the ready queue's head, blocking until a run is ready or the
// plane closes (nil).
func (sh *shard) next() *run {
	for {
		sh.mu.Lock()
		if len(sh.queue) > 0 {
			r := sh.queue[0]
			sh.queue[0] = nil
			sh.queue = sh.queue[1:]
			if len(sh.queue) == 0 {
				sh.queue = nil // let the drained backing array go
			}
			sh.mu.Unlock()
			return r
		}
		sh.mu.Unlock()
		select {
		case <-sh.plane.ctx.Done():
			return nil
		case <-sh.wake:
		}
	}
}

// loop is the shard goroutine: advance the next ready run by one slice,
// publish, re-enqueue until done.
func (sh *shard) loop() {
	defer sh.plane.wg.Done()
	for {
		r := sh.next()
		if r == nil {
			return
		}
		sh.advance(r)
	}
}

// advance gives one run one time slice: lazily build its simulation on
// first contact, step it by the plane's slice, publish the snapshot and
// day record, and re-enqueue unless it finished.
func (sh *shard) advance(r *run) {
	if r.isRemoved() {
		return
	}
	start := time.Now()
	if r.sim == nil {
		if sh.col != nil {
			r.rec = sh.col.Run(r.tenant + "/" + r.name)
		}
		if sh.obs != nil {
			r.ob = sh.obs.Run(r.tenant + "/" + r.name)
		}
		s, err := buildSim(r.spec, r.fcfg, r.horizon, r.rec, r.ob)
		if err != nil {
			sh.finish(r, err)
			return
		}
		r.sim = s
	}
	from := r.sim.Now()
	done, err := r.sim.Step(sh.plane.ctx, from+sh.plane.cfg.Slice)
	if err != nil {
		// The plane is shutting down: leave the run as-is so state stays
		// inspectable; it is not re-enqueued.
		return
	}
	now := r.sim.Now()
	sh.mu.Lock()
	sh.steps++
	sh.simSecs += now - from
	sh.mu.Unlock()
	sh.plane.observeStep(time.Since(start))

	var tl *obs.Timeline
	var lines [][]byte
	if r.ob != nil {
		// Snapshot telemetry on the shard goroutine (which owns the sim)
		// and hand copies to the mu-guarded published state.
		t := r.sim.Timeline()
		tl = &t
		ds := r.ob.Ledger()
		for _, d := range ds[r.ledgerN:] {
			if b, err := d.AppendNDJSON(nil); err == nil {
				lines = append(lines, b)
			}
		}
		r.ledgerN = len(ds)
	}
	r.publish(r.sim.Report(), now, done, tl, lines)
	if done {
		sh.finish(r, nil)
		return
	}
	sh.enqueue(r)
}

// finish retires a run: terminal state, eviction stamp, trace hand-back,
// simulation released.
func (sh *shard) finish(r *run, err error) {
	if err != nil {
		r.fail(err)
	}
	// Take the plane lock (nextDoneSeq) before the run lock: the eviction
	// scan acquires them in that order too.
	seq := sh.plane.nextDoneSeq()
	r.mu.Lock()
	r.doneSeq = seq
	r.mu.Unlock()
	if r.rec != nil {
		sh.col.Done(r.rec)
		r.rec = nil
	}
	if r.ob != nil {
		sh.obs.Done(r.ob)
		r.ob = nil
	}
	r.sim = nil // the heavy engine/provider state is no longer needed
}

// nextDoneSeq stamps finish order for LRU eviction.
func (p *Plane) nextDoneSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doneSeq++
	return p.doneSeq
}

func sortSnapshots(s []Snapshot) {
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
}

// Stream is a cursor over one fleet's NDJSON record log.
type Stream struct {
	plane  *Plane
	r      *run
	next   int
	closed bool
}

// Next returns the records past the cursor, blocking while none exist and
// more may come. done=true means the log is complete (the run reached its
// horizon, failed, or was unregistered) and every record has been
// returned. A canceled ctx or a closed plane returns the ctx error.
func (st *Stream) Next(ctx context.Context) (records [][]byte, done bool, err error) {
	for {
		st.r.mu.Lock()
		if st.next < len(st.r.records) {
			records = st.r.records[st.next:]
			st.next = len(st.r.records)
			terminal := st.r.terminal
			st.r.mu.Unlock()
			return records, terminal, nil
		}
		if st.r.terminal {
			st.r.mu.Unlock()
			return nil, true, nil
		}
		wait := st.r.updated
		st.r.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-st.plane.ctx.Done():
			return nil, false, st.plane.ctx.Err()
		case <-wait:
		}
	}
}

// Close releases the subscription slot. Idempotent.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	st.r.mu.Lock()
	st.r.subs--
	st.r.mu.Unlock()
}
