//go:build !race

package controlplane

// scaleFleets is the registered-fleet count for the scale test: the 10k
// target from the control plane's design envelope.
const scaleFleets = 10000
