package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/scenario"
	"spothost/internal/sim"
)

func testSpec(seed int64, days float64) Spec {
	return Spec{Seed: seed, Days: days, Fleet: scenario.FleetDef{Strategy: "diversified"}}
}

// waitState polls the fleet's snapshot until it reaches the wanted state.
func waitState(t *testing.T, p *Plane, tenant, name string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := p.Snapshot(tenant, name)
		if err != nil {
			t.Fatalf("Snapshot(%s/%s): %v", tenant, name, err)
		}
		if s.State == want {
			return s
		}
		if s.State == StateFailed && want != StateFailed {
			t.Fatalf("fleet %s/%s failed: %s", tenant, name, s.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet %s/%s stuck in %q, want %q", tenant, name, s.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// standaloneReport runs the spec the way the one-shot path would: same
// universe cache, same cloud params, same fleet config.
func standaloneReport(t *testing.T, spec Spec) fleet.Report {
	t.Helper()
	horizon := spec.Days * sim.Day
	fcfg, err := spec.Fleet.Config(horizon, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := market.DefaultConfig(spec.Seed)
	mcfg.Horizon = horizon
	set, err := market.SharedCache().Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(set, cloud.DefaultParams(spec.Seed), fcfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStreamMatchesStandaloneRun is the determinism contract: a fleet
// advanced by the sharded runtime in uneven 7-hour slices, snapshotted
// concurrently the whole way, must stream a final record whose report is
// byte-identical to a standalone fleet.Run of the same spec and seed.
func TestStreamMatchesStandaloneRun(t *testing.T) {
	p := New(Config{Shards: 3, Slice: 7 * sim.Hour})
	defer p.Close()

	spec := testSpec(11, 3)
	if _, err := p.Register("acme", "web", spec); err != nil {
		t.Fatal(err)
	}

	// Hammer snapshots while the run advances: reading must not perturb
	// the simulation (the byte comparison below would catch it).
	stop := make(chan struct{})
	var snaps atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := p.Snapshot("acme", "web"); err == nil {
					snaps.Add(1)
				}
			}
		}
	}()

	st, err := p.Stream("acme", "web")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var lines [][]byte
	for {
		recs, done, err := st.Next(ctx)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		lines = append(lines, recs...)
		if done {
			break
		}
	}
	close(stop)

	if len(lines) < int(spec.Days) {
		t.Fatalf("got %d stream records, want at least %g (one per day)", len(lines), spec.Days)
	}
	want := standaloneReport(t, spec)
	wantLine, err := json.Marshal(StreamRecord{
		Tenant:   "acme",
		Name:     "web",
		Day:      3,
		SimHours: 72,
		Done:     true,
		Report:   &want,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := bytes.TrimRight(lines[len(lines)-1], "\n")
	if !bytes.Equal(got, wantLine) {
		t.Errorf("final stream record differs from standalone run\n got: %s\nwant: %s", got, wantLine)
	}

	// The terminal snapshot carries the same report.
	s := waitState(t, p, "acme", "web", StateDone)
	gotSnap, err := json.Marshal(s.Report)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := json.Marshal(&want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Errorf("snapshot report differs from standalone run\n got: %s\nwant: %s", gotSnap, wantSnap)
	}
	if snaps.Load() == 0 {
		t.Error("snapshot hammer never completed a read")
	}

	// A late subscriber replays the full history.
	late, err := p.Stream("acme", "web")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	recs, done, err := late.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !done || len(recs) != len(lines) {
		t.Errorf("late subscriber got %d records (done=%v), want %d (done=true)", len(recs), done, len(lines))
	}
}

// TestRegisterValidation covers the 400-class rejections: they are plain
// errors, never CapacityError, and leave the registry untouched.
func TestRegisterValidation(t *testing.T) {
	p := New(Config{Shards: 1})
	defer p.Close()

	cases := []struct {
		name         string
		tenant, flt  string
		spec         Spec
		wantContains string
	}{
		{"empty tenant", "", "f", testSpec(1, 1), "required"},
		{"empty name", "t", "", testSpec(1, 1), "required"},
		{"zero days", "t", "f", testSpec(1, 0), "positive"},
		{"negative days", "t", "f", testSpec(1, -3), "positive"},
		{"days over cap", "t", "f", testSpec(1, 91), "at most"},
		{"bad strategy", "t", "f", Spec{Seed: 1, Days: 1, Fleet: scenario.FleetDef{Strategy: "bogus"}}, "unknown strategy"},
		{"bad market", "t", "f", Spec{Seed: 1, Days: 1, Fleet: scenario.FleetDef{Markets: []string{"nowhere"}}}, "market"},
	}
	for _, tc := range cases {
		_, err := p.Register(tc.tenant, tc.flt, tc.spec)
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		var ce *CapacityError
		if errors.As(err, &ce) {
			t.Errorf("%s: got CapacityError %v, want plain validation error", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantContains) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantContains)
		}
	}
	if st := p.Stats(); st.Registered != 0 {
		t.Errorf("validation failures registered %d fleets", st.Registered)
	}

	if _, err := p.Register("t", "dup", testSpec(1, 90)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("t", "dup", testSpec(2, 1)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate registration: got %v, want ErrExists", err)
	}
	if err := p.Unregister("t", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Unregister(ghost): got %v, want ErrNotFound", err)
	}
	if _, err := p.Snapshot("t", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Snapshot(ghost): got %v, want ErrNotFound", err)
	}
}

// TestQuotaAndRetryAfter: a tenant at quota is rejected with a
// CapacityError whose Retry-After is at least a second, and unregistering
// frees the slot immediately.
func TestQuotaAndRetryAfter(t *testing.T) {
	p := New(Config{Shards: 1, TenantQuota: 2, Slice: sim.Hour})
	defer p.Close()

	// Long horizons so the fleets are still resident when we probe.
	if _, err := p.Register("a", "f1", testSpec(1, 90)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("a", "f2", testSpec(2, 90)); err != nil {
		t.Fatal(err)
	}
	_, err := p.Register("a", "f3", testSpec(3, 90))
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("over-quota registration: got %v, want CapacityError", err)
	}
	if ce.RetryAfterSeconds < 1 || ce.RetryAfterSeconds > 120 {
		t.Errorf("RetryAfterSeconds = %d, want in [1, 120]", ce.RetryAfterSeconds)
	}
	if !strings.Contains(ce.Error(), "quota") {
		t.Errorf("error %q does not mention quota", ce)
	}

	// Another tenant is unaffected by a's quota.
	if _, err := p.Register("b", "f1", testSpec(4, 90)); err != nil {
		t.Fatalf("tenant b blocked by tenant a's quota: %v", err)
	}

	if err := p.Unregister("a", "f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("a", "f3", testSpec(3, 90)); err != nil {
		t.Errorf("register after unregister freed quota: %v", err)
	}

	st := p.Stats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if got := st.TenantFleets["a"]; got != 2 {
		t.Errorf("TenantFleets[a] = %d, want 2", got)
	}
	if ra := p.RetryAfterSeconds(); ra < 1 || ra > 120 {
		t.Errorf("RetryAfterSeconds() = %d, want in [1, 120]", ra)
	}
}

// TestCapacityEviction: at MaxFleets, a finished fleet is evicted LRU to
// admit the newcomer; with nothing finished the registration is refused
// with a CapacityError.
func TestCapacityEviction(t *testing.T) {
	p := New(Config{Shards: 1, MaxFleets: 2, Slice: sim.Day})
	defer p.Close()

	// Fill the plane with one fast fleet (finishes in one slice) and one
	// long one.
	if _, err := p.Register("a", "fast", testSpec(1, 1)); err != nil {
		t.Fatal(err)
	}
	waitState(t, p, "a", "fast", StateDone)
	if _, err := p.Register("a", "slow", testSpec(2, 90)); err != nil {
		t.Fatal(err)
	}

	// At capacity with one finished fleet: the newcomer evicts it.
	if _, err := p.Register("a", "next", testSpec(3, 90)); err != nil {
		t.Fatalf("register at capacity with an evictable fleet: %v", err)
	}
	if _, err := p.Snapshot("a", "fast"); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted fleet still visible: %v", err)
	}

	// At capacity with nothing finished: refused with backpressure.
	_, err := p.Register("a", "more", testSpec(4, 90))
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("register at capacity with nothing evictable: got %v, want CapacityError", err)
	}
	if !strings.Contains(ce.Reason, "capacity") {
		t.Errorf("reason %q does not mention capacity", ce.Reason)
	}

	st := p.Stats()
	if st.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", st.Evicted)
	}
	if st.Registered != 2 {
		t.Errorf("Registered = %d, want 2", st.Registered)
	}
}

// TestStreamDisconnectFreesSlot proves a mid-stream consumer going away
// (its context canceled, then Close) releases the subscription slot.
func TestStreamDisconnectFreesSlot(t *testing.T) {
	p := New(Config{Shards: 1, Slice: sim.Hour})
	defer p.Close()
	if _, err := p.Register("t", "f", testSpec(1, 90)); err != nil {
		t.Fatal(err)
	}

	st, err := p.Stream("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := p.Snapshot("t", "f"); s.Subscribers != 1 {
		t.Fatalf("Subscribers = %d after Stream, want 1", s.Subscribers)
	}
	if got := p.Stats().Streams; got != 1 {
		t.Fatalf("Stats().Streams = %d, want 1", got)
	}

	// A consumer blocked in Next whose connection drops: its context is
	// canceled, Next returns, and the handler closes the stream.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		for {
			_, done, err := st.Next(ctx)
			if err != nil || done {
				errc <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the reader drain history and block
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next after disconnect: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream reader did not observe the disconnect")
	}
	st.Close()
	st.Close() // idempotent

	if s, _ := p.Snapshot("t", "f"); s.Subscribers != 0 {
		t.Errorf("Subscribers = %d after Close, want 0", s.Subscribers)
	}
	if got := p.Stats().Streams; got != 0 {
		t.Errorf("Stats().Streams = %d after Close, want 0", got)
	}
}

// TestUnregisterEndsStream: dropping a fleet terminates its open streams
// rather than leaving them blocked.
func TestUnregisterEndsStream(t *testing.T) {
	p := New(Config{Shards: 1, Slice: sim.Hour})
	defer p.Close()
	if _, err := p.Register("t", "f", testSpec(1, 90)); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stream("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	donec := make(chan struct{})
	go func() {
		defer close(donec)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for {
			_, done, err := st.Next(ctx)
			if err != nil {
				t.Errorf("stream: %v", err)
				return
			}
			if done {
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := p.Unregister("t", "f"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("stream reader not released by Unregister")
	}
}

// TestCloseReleasesEverything: Close cancels in-flight slices, refuses new
// registrations, and unblocks stream readers.
func TestCloseReleasesEverything(t *testing.T) {
	p := New(Config{Shards: 2, Slice: sim.Hour})
	if _, err := p.Register("t", "f", testSpec(1, 90)); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stream("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		for {
			_, done, err := st.Next(context.Background())
			if err != nil || done {
				errc <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	p.Close()
	p.Close() // idempotent
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("stream after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream reader not released by Close")
	}
	st.Close()
	if _, err := p.Register("t", "g", testSpec(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close: got %v, want ErrClosed", err)
	}
	// State remains readable after Close.
	if _, err := p.Snapshot("t", "f"); err != nil {
		t.Errorf("Snapshot after Close: %v", err)
	}
}

// TestConcurrentOps is the race test: registrations, snapshots, lists,
// streams, unregistrations, and stats from many goroutines across shards.
// Run with -race.
func TestConcurrentOps(t *testing.T) {
	p := New(Config{Shards: 4, Slice: 6 * sim.Hour, MaxFleets: 64, TenantQuota: 16})
	defer p.Close()

	const goroutines = 6
	const perG = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g)
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("f%d", i)
				if _, err := p.Register(tenant, name, testSpec(int64(i%3), 1)); err != nil {
					var ce *CapacityError
					if !errors.As(err, &ce) {
						t.Errorf("register %s/%s: %v", tenant, name, err)
					}
					continue
				}
				if _, err := p.Snapshot(tenant, name); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("snapshot %s/%s: %v", tenant, name, err)
				}
				p.List(tenant)
				if st, err := p.Stream(tenant, name); err == nil {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
					_, _, _ = st.Next(ctx)
					cancel()
					st.Close()
				}
				if i%2 == 0 {
					if err := p.Unregister(tenant, name); err != nil {
						t.Errorf("unregister %s/%s: %v", tenant, name, err)
					}
				}
			}
		}(g)
	}
	// Stats and backpressure probes race the mutators.
	statsStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-statsStop:
				return
			default:
				p.Stats()
				p.RetryAfterSeconds()
			}
		}
	}()
	wg.Wait()
	close(statsStop)

	// Everything left registered eventually completes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := p.Stats()
		if st.Active == 0 {
			if st.Failed != 0 {
				t.Fatalf("%d fleets failed", st.Failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleets stuck active: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestScaleManyFleets registers scaleFleets fleets (10k; reduced under
// -race) across the default shard count and waits for all of them to
// complete, verifying round-robin progress and bounded memory via shared
// universes. Slices are 6 simulated hours so every fleet is time-sliced
// through multiple scheduling rounds.
func TestScaleManyFleets(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	n := scaleFleets
	p := New(Config{MaxFleets: n, TenantQuota: n, Slice: 6 * sim.Hour})
	defer p.Close()

	spec := testSpec(3, 1) // one shared universe across all fleets
	for i := 0; i < n; i++ {
		if _, err := p.Register("scale", fmt.Sprintf("f%05d", i), spec); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.Registered != n {
		t.Fatalf("Registered = %d, want %d", st.Registered, n)
	}

	deadline := time.Now().Add(5 * time.Minute)
	for {
		st := p.Stats()
		if st.Done+st.Failed == n {
			if st.Failed != 0 {
				t.Fatalf("%d fleets failed", st.Failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scale run stalled: %d/%d done", st.Done+st.Failed, n)
		}
		time.Sleep(25 * time.Millisecond)
	}

	st := p.Stats()
	if st.StepsTotal < uint64(n)*4 {
		t.Errorf("StepsTotal = %d, want >= %d (4 six-hour slices per fleet)", st.StepsTotal, n*4)
	}
	wantSim := float64(n) * float64(sim.Day)
	if st.SimSecondsTotal < wantSim {
		t.Errorf("SimSecondsTotal = %g, want >= %g", st.SimSecondsTotal, wantSim)
	}
	// Work is spread over every shard.
	for i, sh := range st.Shards {
		if sh.Steps == 0 {
			t.Errorf("shard %d did no work", i)
		}
	}
	// Spot-check a fleet: terminal report present, records streamed.
	s, err := p.Snapshot("scale", "f00000")
	if err != nil {
		t.Fatal(err)
	}
	if s.Report == nil || s.Records == 0 || s.State != StateDone {
		t.Errorf("spot-check snapshot incomplete: state=%q records=%d report=%v",
			s.State, s.Records, s.Report != nil)
	}
}
