//go:build race

package controlplane

// scaleFleets is reduced under the race detector: instrumented simulation
// is ~10x slower, and the cross-shard interleavings the detector checks
// appear at hundreds of fleets just as well as at ten thousand.
const scaleFleets = 400
