// Package controlplane is the long-lived, multi-tenant fleet runtime
// behind spotserve's /v1/tenants API: instead of one blocking simulation
// per HTTP request, tenants register fleet scenarios into a resident
// registry and a sharded runtime advances all of them concurrently in
// bounded slices of virtual time.
//
// Architecture:
//
//   - The Plane owns a registry of runs keyed by tenant/name and N shards.
//     A run is pinned to the shard its key hashes to, so all simulation
//     work for one fleet happens on one goroutine — the fleet.Sim needs no
//     locking, and two operations on the same fleet never race.
//   - Each shard is one goroutine draining a FIFO ready queue: pop a run,
//     advance its simulation by one time slice (Config.Slice of virtual
//     time, default one day) via fleet.Sim.Step, publish a snapshot and a
//     stream record, re-enqueue. FIFO re-enqueue is round-robin: every
//     registered fleet makes progress at the same virtual rate regardless
//     of how many are resident.
//   - Results stream incrementally: each completed simulated day appends
//     one NDJSON record (a full fleet.Report snapshot) to the run's record
//     log; subscribers are cursors over that log, so a late subscriber
//     replays history and then follows live. Slicing never perturbs the
//     simulation (see fleet.Sim), so the final record is byte-identical to
//     a standalone fleet.Run of the same spec and seed.
//   - Admission is controlled at registration: per-tenant quotas and a
//     global fleet cap, with finished fleets evicted LRU to make room.
//     Rejections carry a Retry-After derived from the target shard's queue
//     depth and the measured per-slice wall time, not a constant.
package controlplane

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/obs"
	"spothost/internal/scenario"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxFleets bounds the registry: the 10k-fleet scale target
	// with headroom.
	DefaultMaxFleets = 16384
	// DefaultTenantQuota bounds one tenant's registrations.
	DefaultTenantQuota = 1024
	// DefaultSlice is the virtual time a fleet advances per scheduling
	// slice — one simulated day, matching the streaming granularity.
	DefaultSlice = sim.Day
	// DefaultMaxDays caps a registration's horizon, mirroring the API's
	// MaxRequestDays bound on one-shot runs.
	DefaultMaxDays = 90
)

// DefaultShards returns the default shard count: one per CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// Config tunes a Plane.
type Config struct {
	// Shards is the number of runtime goroutines. Zero or negative means
	// DefaultShards().
	Shards int
	// MaxFleets caps registered fleets across all tenants; at the cap,
	// finished fleets are evicted oldest-first to admit new ones, and
	// registration fails with a CapacityError when none is evictable.
	// Zero means DefaultMaxFleets.
	MaxFleets int
	// TenantQuota caps one tenant's registered fleets. Zero means
	// DefaultTenantQuota.
	TenantQuota int
	// Slice is the virtual time one scheduling slice advances a fleet.
	// Zero means DefaultSlice.
	Slice sim.Duration
	// MaxDays caps a registration's horizon. Zero means DefaultMaxDays.
	MaxDays float64
	// Trace, when non-nil, collects each fleet run's histograms under a
	// per-shard scope ("shard-N/tenant/name"). Use a histogram collector:
	// the plane hands recorders back as runs finish, so memory stays
	// bounded.
	Trace *trace.Collector
	// Obs, when non-nil, attaches a telemetry recorder to every fleet run
	// under the same per-shard scope: timelines and decision ledgers are
	// published per slice (GET .../timeline) and finished recorders are
	// handed back for /metrics roll-up. Use obs.NewAggregateCollector for
	// long-lived servers so memory stays bounded.
	Obs *obs.Collector
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards()
	}
	if cfg.MaxFleets <= 0 {
		cfg.MaxFleets = DefaultMaxFleets
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = DefaultTenantQuota
	}
	if cfg.Slice <= 0 {
		cfg.Slice = DefaultSlice
	}
	if cfg.MaxDays <= 0 {
		cfg.MaxDays = DefaultMaxDays
	}
	return cfg
}

// Spec is one fleet registration: the scenario-file fleet schema plus the
// universe parameters (seed, horizon) a standalone run would take on the
// command line.
type Spec struct {
	Seed  int64             `json:"seed"`
	Days  float64           `json:"days"`
	Fleet scenario.FleetDef `json:"fleet"`
}

// Registration/lookup errors. CapacityError carries the backpressure
// signal; the API layer maps it to 429 + Retry-After.
var (
	// ErrExists rejects a duplicate tenant/name registration.
	ErrExists = errors.New("controlplane: fleet already registered")
	// ErrNotFound reports an unknown tenant/name.
	ErrNotFound = errors.New("controlplane: no such fleet")
	// ErrClosed reports an operation on a closed plane.
	ErrClosed = errors.New("controlplane: plane is closed")
	// ErrNoObs rejects a timeline request on a plane running without a
	// telemetry collector (Config.Obs nil).
	ErrNoObs = errors.New("controlplane: telemetry is not enabled")
)

// CapacityError is an admission rejection: the tenant's quota or the
// global fleet cap is exhausted. RetryAfterSeconds is derived from the
// target shard's queue depth and the measured per-slice wall time — the
// time by which capacity plausibly freed up — never less than 1.
type CapacityError struct {
	Reason            string
	RetryAfterSeconds int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("controlplane: %s (retry after %ds)", e.Reason, e.RetryAfterSeconds)
}

// Plane is the control plane: registry + sharded runtime. Construct with
// New, stop with Close. All exported methods are safe for concurrent use.
type Plane struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	shards []*shard

	// stepNanos is an EWMA of per-slice wall time (nanoseconds), the
	// unit-of-work estimate behind Retry-After. Guarded by mu.
	stepNanos float64

	mu        sync.Mutex
	closed    bool
	runs      map[string]*run
	perTenant map[string]int
	doneSeq   uint64 // stamps finished runs for LRU eviction
	evicted   uint64
	rejected  uint64

	// Stats-throughput window, guarded by mu.
	lastStatsAt    time.Time
	lastStatsSteps uint64
}

// New builds a plane and starts its shard goroutines.
func New(cfg Config) *Plane {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Plane{
		cfg:         cfg,
		ctx:         ctx,
		cancel:      cancel,
		runs:        make(map[string]*run),
		perTenant:   make(map[string]int),
		lastStatsAt: time.Now(),
	}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		scope := fmt.Sprintf("shard-%d", i)
		p.shards[i] = newShard(p, i, cfg.Trace.Scope(scope), cfg.Obs.Scope(scope))
		p.wg.Add(1)
		go p.shards[i].loop()
	}
	return p
}

// Close stops the runtime: in-flight slices are canceled through the
// plane's context, the shard goroutines exit, and every blocked stream
// reader is released. Registered state remains readable; registration is
// refused afterwards.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	p.wg.Wait()
}

// key is the registry key and shard-hash input.
func key(tenant, name string) string { return tenant + "/" + name }

func (p *Plane) shardFor(k string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// Register admits one fleet under the tenant. The spec is validated up
// front (bad specs fail with a plain error the API maps to 400); quota and
// capacity rejections return a *CapacityError. On success the fleet is
// queued on its shard and the queued snapshot is returned.
func (p *Plane) Register(tenant, name string, spec Spec) (Snapshot, error) {
	if tenant == "" || name == "" {
		return Snapshot{}, fmt.Errorf("controlplane: tenant and fleet name are required")
	}
	if spec.Days <= 0 {
		return Snapshot{}, fmt.Errorf("controlplane: days must be positive, got %g", spec.Days)
	}
	if spec.Days > p.cfg.MaxDays {
		return Snapshot{}, fmt.Errorf("controlplane: days must be at most %g, got %g", p.cfg.MaxDays, spec.Days)
	}
	horizon := spec.Days * sim.Day
	fcfg, err := spec.Fleet.Config(horizon, spec.Seed)
	if err != nil {
		return Snapshot{}, fmt.Errorf("controlplane: fleet spec: %w", err)
	}
	sh := p.shardFor(key(tenant, name))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	k := key(tenant, name)
	if _, taken := p.runs[k]; taken {
		p.mu.Unlock()
		return Snapshot{}, ErrExists
	}
	if p.perTenant[tenant] >= p.cfg.TenantQuota {
		p.rejected++
		ra := p.retryAfter(sh) // before Unlock: reads the p.mu-guarded EWMA
		p.mu.Unlock()
		return Snapshot{}, &CapacityError{
			Reason:            fmt.Sprintf("tenant %q at quota (%d fleets)", tenant, p.cfg.TenantQuota),
			RetryAfterSeconds: ra,
		}
	}
	if len(p.runs) >= p.cfg.MaxFleets && !p.evictOneLocked() {
		p.rejected++
		ra := p.retryAfter(sh)
		p.mu.Unlock()
		return Snapshot{}, &CapacityError{
			Reason:            fmt.Sprintf("plane at capacity (%d fleets, none finished)", p.cfg.MaxFleets),
			RetryAfterSeconds: ra,
		}
	}
	r := newRun(tenant, name, spec, fcfg, horizon, sh)
	p.runs[k] = r
	p.perTenant[tenant]++
	p.mu.Unlock()

	sh.enqueue(r)
	return r.snapshot(), nil
}

// evictOneLocked drops the longest-finished run to make room, reporting
// false when no run has finished. Callers hold p.mu.
func (p *Plane) evictOneLocked() bool {
	var victim *run
	var victimSeq uint64
	for _, r := range p.runs {
		r.mu.Lock()
		finished := r.terminal
		seq := r.doneSeq
		r.mu.Unlock()
		if !finished {
			continue
		}
		if victim == nil || seq < victimSeq {
			victim, victimSeq = r, seq
		}
	}
	if victim == nil {
		return false
	}
	delete(p.runs, key(victim.tenant, victim.name))
	p.perTenant[victim.tenant]--
	if p.perTenant[victim.tenant] == 0 {
		delete(p.perTenant, victim.tenant)
	}
	p.evicted++
	victim.remove()
	victim.shard.unassign()
	return true
}

// Unregister removes a fleet: its shard drops it at the next dequeue, open
// streams see the log end, and its quota slot frees immediately.
func (p *Plane) Unregister(tenant, name string) error {
	p.mu.Lock()
	r, ok := p.runs[key(tenant, name)]
	if ok {
		delete(p.runs, key(tenant, name))
		p.perTenant[tenant]--
		if p.perTenant[tenant] == 0 {
			delete(p.perTenant, tenant)
		}
	}
	p.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	r.remove()
	r.shard.unassign()
	return nil
}

// Snapshot returns the fleet's latest published state.
func (p *Plane) Snapshot(tenant, name string) (Snapshot, error) {
	p.mu.Lock()
	r, ok := p.runs[key(tenant, name)]
	p.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return r.snapshot(), nil
}

// List returns snapshots of the tenant's fleets, sorted by name.
func (p *Plane) List(tenant string) []Snapshot {
	p.mu.Lock()
	runs := make([]*run, 0, 8)
	for _, r := range p.runs {
		if r.tenant == tenant {
			runs = append(runs, r)
		}
	}
	p.mu.Unlock()
	out := make([]Snapshot, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.snapshot())
	}
	sortSnapshots(out)
	return out
}

// Timeline returns the fleet's latest published telemetry timeline and a
// copy of its decision-ledger NDJSON lines. Before the first slice
// completes the timeline is empty except for the schema stamp. ErrNoObs
// when the plane runs without telemetry; ErrNotFound for unknown fleets.
func (p *Plane) Timeline(tenant, name string) (obs.Timeline, [][]byte, error) {
	if p.cfg.Obs == nil {
		return obs.Timeline{}, nil, ErrNoObs
	}
	p.mu.Lock()
	r, ok := p.runs[key(tenant, name)]
	p.mu.Unlock()
	if !ok {
		return obs.Timeline{}, nil, ErrNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl := obs.Timeline{Schema: obs.TimelineSchema}
	if r.tl != nil {
		tl = *r.tl
	}
	ledger := make([][]byte, len(r.ledger))
	copy(ledger, r.ledger)
	return tl, ledger, nil
}

// Stream opens a cursor over the fleet's NDJSON record log: history first,
// then live records as simulated days complete. Callers must Close it.
func (p *Plane) Stream(tenant, name string) (*Stream, error) {
	p.mu.Lock()
	r, ok := p.runs[key(tenant, name)]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	r.mu.Lock()
	r.subs++
	r.mu.Unlock()
	return &Stream{plane: p, r: r}, nil
}

// retryAfter derives the backpressure hint from a shard's queue depth and
// the measured per-slice wall time: roughly how long until that shard has
// drained its current queue once. Callers hold p.mu. Clamped to [1, 120].
func (p *Plane) retryAfter(sh *shard) int {
	depth := sh.queueDepth()
	per := p.stepNanos / 1e9
	if per <= 0 {
		per = 0.01 // no slice measured yet: assume a fast one
	}
	secs := int(math.Ceil(float64(depth+1) * per))
	if secs < 1 {
		secs = 1
	}
	if secs > 120 {
		secs = 120
	}
	return secs
}

// RetryAfterSeconds estimates the current backpressure hint across the
// busiest shard — what a rejected request should wait before retrying.
func (p *Plane) RetryAfterSeconds() int {
	var busiest *shard
	depth := -1
	for _, sh := range p.shards {
		if d := sh.queueDepth(); d > depth {
			depth, busiest = d, sh
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retryAfter(busiest)
}

// observeStep folds one slice's wall time into the EWMA.
func (p *Plane) observeStep(d time.Duration) {
	p.mu.Lock()
	if p.stepNanos == 0 {
		p.stepNanos = float64(d)
	} else {
		p.stepNanos += (float64(d) - p.stepNanos) / 8
	}
	p.mu.Unlock()
}

// Stats snapshots the plane for /metrics. Step throughput is measured
// over the window since the previous Stats call.
func (p *Plane) Stats() metrics.ControlPlaneStats {
	st := metrics.ControlPlaneStats{
		TenantFleets: map[string]int{},
		Shards:       make([]metrics.ControlPlaneShard, len(p.shards)),
	}
	p.mu.Lock()
	for t, n := range p.perTenant {
		st.TenantFleets[t] = n
	}
	st.Evicted = p.evicted
	st.Rejected = p.rejected
	runs := make([]*run, 0, len(p.runs))
	for _, r := range p.runs {
		runs = append(runs, r)
	}
	p.mu.Unlock()

	st.Registered = len(runs)
	for _, r := range runs {
		r.mu.Lock()
		switch r.state {
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		default:
			st.Active++
		}
		st.Streams += r.subs
		r.mu.Unlock()
	}
	for i, sh := range p.shards {
		st.Shards[i] = sh.stats()
		st.StepsTotal += st.Shards[i].Steps
		st.SimSecondsTotal += st.Shards[i].SimSeconds
	}

	p.mu.Lock()
	now := time.Now()
	if dt := now.Sub(p.lastStatsAt).Seconds(); dt > 0 && st.StepsTotal >= p.lastStatsSteps {
		st.StepsPerSecond = float64(st.StepsTotal-p.lastStatsSteps) / dt
	}
	p.lastStatsAt = now
	p.lastStatsSteps = st.StepsTotal
	p.mu.Unlock()
	return st
}

// buildSet resolves a spec's market universe through the process-wide
// cache, so the ten thousand fleets of one tenant sweep share one set of
// price traces per (seed, horizon).
func buildSet(spec Spec) (*market.Set, error) {
	mcfg := market.DefaultConfig(spec.Seed)
	mcfg.Horizon = spec.Days * sim.Day
	types, err := spec.Fleet.TypeSpecs()
	if err != nil {
		return nil, err
	}
	if types != nil {
		mcfg.Types = types
	}
	return market.SharedCache().Generate(mcfg)
}

// buildSim constructs the run's resumable simulation.
func buildSim(spec Spec, fcfg fleet.Config, horizon sim.Duration, rec *trace.Recorder, ob *obs.Recorder) (*fleet.Sim, error) {
	set, err := buildSet(spec)
	if err != nil {
		return nil, err
	}
	return fleet.NewSimObs(set, cloud.DefaultParams(spec.Seed), fcfg, horizon, rec, ob)
}
