package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/sim"
)

// TestTimelinePublished drives one fleet to completion on a telemetry-
// enabled plane and checks the published timeline and ledger against a
// standalone obs-instrumented run of the same spec: same series
// integrals, same number of decisions, schema-stamped ledger lines.
func TestTimelinePublished(t *testing.T) {
	col := obs.NewAggregateCollector(obs.Config{})
	p := New(Config{Shards: 2, Slice: 7 * sim.Hour, Obs: col})
	defer p.Close()

	spec := testSpec(3, 4)
	if _, err := p.Register("acme", "web", spec); err != nil {
		t.Fatal(err)
	}
	waitState(t, p, "acme", "web", StateDone)

	tl, ledger, err := p.Timeline("acme", "web")
	if err != nil {
		t.Fatal(err)
	}
	if tl.Schema != obs.TimelineSchema {
		t.Fatalf("timeline schema = %d, want %d", tl.Schema, obs.TimelineSchema)
	}
	if len(tl.Series) < 9 {
		t.Fatalf("timeline has %d series, want at least the 9 fixed ones", len(tl.Series))
	}
	if tl.Decisions == 0 || len(ledger) != tl.Decisions {
		t.Fatalf("published %d ledger lines, timeline counts %d decisions", len(ledger), tl.Decisions)
	}
	for _, line := range ledger {
		var d obs.Decision
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("bad ledger line %q: %v", line, err)
		}
		if d.Schema != obs.LedgerSchema || d.Action == "" {
			t.Fatalf("ledger line missing schema/action: %+v", d)
		}
	}

	// The standalone comparison run: same universe, same config, its own
	// recorder.
	horizon := spec.Days * sim.Day
	fcfg, err := spec.Fleet.Config(horizon, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := market.DefaultConfig(spec.Seed)
	mcfg.Horizon = horizon
	set, err := market.SharedCache().Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.NewRecorder("x", obs.Config{})
	if _, err := fleet.RunObsCtx(context.Background(), set, cloud.DefaultParams(spec.Seed), fcfg, horizon, nil, ob); err != nil {
		t.Fatal(err)
	}
	want := ob.SnapshotFinal()
	if len(want.Series) != len(tl.Series) {
		t.Fatalf("plane timeline has %d series, standalone %d", len(tl.Series), len(want.Series))
	}
	for i := range want.Series {
		a, b := tl.Series[i], want.Series[i]
		if a.Name != b.Name || math.Abs(a.Integral-b.Integral) > 1e-9*(1+math.Abs(b.Integral)) {
			t.Fatalf("series %s: plane integral %g, standalone %s %g", a.Name, a.Integral, b.Name, b.Integral)
		}
	}
	if len(ledger) != len(ob.Ledger()) {
		t.Fatalf("plane ledger %d records, standalone %d", len(ledger), len(ob.Ledger()))
	}

	// Finished recorders rolled into the collector's /metrics totals.
	var buf bytes.Buffer
	col.WritePrometheus(&buf, "spotserve")
	if !strings.Contains(buf.String(), "spotserve_obs_runs_total 1") {
		t.Fatalf("collector missed the finished run:\n%s", buf.String())
	}
}

// TestTimelineDisabled pins the off switch: a plane without a collector
// refuses timeline reads with ErrNoObs and runs fleets untouched.
func TestTimelineDisabled(t *testing.T) {
	p := New(Config{Shards: 1})
	defer p.Close()
	if _, err := p.Register("acme", "web", testSpec(1, 1)); err != nil {
		t.Fatal(err)
	}
	waitState(t, p, "acme", "web", StateDone)
	if _, _, err := p.Timeline("acme", "web"); !errors.Is(err, ErrNoObs) {
		t.Fatalf("Timeline on obs-less plane = %v, want ErrNoObs", err)
	}
	if _, _, err := p.Timeline("acme", "nope"); !errors.Is(err, ErrNoObs) {
		t.Fatalf("ErrNoObs must win over lookup: got %v", err)
	}
}

func TestTimelineUnknownFleet(t *testing.T) {
	p := New(Config{Shards: 1, Obs: obs.NewAggregateCollector(obs.Config{})})
	defer p.Close()
	if _, _, err := p.Timeline("acme", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Timeline(unknown) = %v, want ErrNotFound", err)
	}
}

// TestTenantGaugeDropsOnRemoval is the staleness regression test: once a
// tenant's last fleet is unregistered or evicted, the per-tenant fleet
// gauge must disappear from Stats (and hence from /metrics) rather than
// exporting a zero-valued series forever.
func TestTenantGaugeDropsOnRemoval(t *testing.T) {
	p := New(Config{Shards: 1, MaxFleets: 2})
	defer p.Close()

	if _, err := p.Register("acme", "web", testSpec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("globex", "api", testSpec(2, 1)); err != nil {
		t.Fatal(err)
	}
	if n := p.Stats().TenantFleets["acme"]; n != 1 {
		t.Fatalf("acme gauge = %d, want 1", n)
	}

	// Unregistration frees the label immediately.
	if err := p.Unregister("acme", "web"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Stats().TenantFleets["acme"]; ok {
		t.Fatal("unregistered tenant still exported in TenantFleets")
	}

	// Eviction at capacity frees the evicted tenant's label too.
	waitState(t, p, "globex", "api", StateDone)
	if _, err := p.Register("hooli", "web", testSpec(3, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register("initech", "web", testSpec(4, 1)); err != nil {
		t.Fatal(err) // at MaxFleets=2 this must evict globex's finished fleet
	}
	st := p.Stats()
	if _, ok := st.TenantFleets["globex"]; ok {
		t.Fatal("evicted tenant still exported in TenantFleets")
	}
	if st.TenantFleets["hooli"] != 1 || st.TenantFleets["initech"] != 1 {
		t.Fatalf("surviving tenants wrong: %v", st.TenantFleets)
	}

	// Rendered form: only live tenants appear.
	var buf bytes.Buffer
	st.WritePrometheus(&buf, "spotserve")
	out := buf.String()
	for _, gone := range []string{`tenant="acme"`, `tenant="globex"`} {
		if strings.Contains(out, gone) {
			t.Fatalf("stale series %s still rendered:\n%s", gone, out)
		}
	}
	if !strings.Contains(out, `spotserve_cp_tenant_fleets{tenant="hooli"} 1`) {
		t.Fatalf("live tenant missing:\n%s", out)
	}
}
