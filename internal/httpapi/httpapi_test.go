package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

func TestListExperiments(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[map[string][]string](t, resp)
	names := body["experiments"]
	if len(names) < 13 {
		t.Fatalf("experiments = %v", names)
	}
	// Method guard.
	resp2, _ := http.Post(srv.URL+"/v1/experiments", "application/json", nil)
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on list = %d", resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestRunExperiment(t *testing.T) {
	srv := newServer(t)
	body := strings.NewReader(`{"quick": true, "seeds": 1, "days": 8}`)
	resp, err := http.Post(srv.URL+"/v1/experiments/figure7", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ExperimentResponse](t, resp)
	if out.Name != "figure7" || !strings.Contains(out.Text, "CKPT LR + Live") {
		t.Fatalf("response: %+v", out)
	}
	if !strings.Contains(out.CSV, "mechanism,unavail_typical") {
		t.Fatalf("csv missing: %q", out.CSV)
	}
}

func TestRunExperimentWithoutBody(t *testing.T) {
	srv := newServer(t)
	// table2 is cheap even at default fidelity; empty body = defaults.
	resp, err := http.Post(srv.URL+"/v1/experiments/table2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ExperimentResponse](t, resp)
	if !strings.Contains(out.Text, "Table 2") {
		t.Fatalf("text: %q", out.Text)
	}
}

func TestExperimentErrors(t *testing.T) {
	srv := newServer(t)
	// Unknown experiment.
	resp, _ := http.Post(srv.URL+"/v1/experiments/figure99", "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown = %d", resp.StatusCode)
	}
	e := decode[map[string]string](t, resp)
	if !strings.Contains(e["error"], "figure99") {
		t.Fatalf("error body: %v", e)
	}
	// Wrong method.
	resp2, _ := http.Get(srv.URL + "/v1/experiments/figure7")
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp2.StatusCode)
	}
	resp2.Body.Close()
	// Garbage body.
	resp3, _ := http.Post(srv.URL+"/v1/experiments/figure7", "application/json",
		strings.NewReader(`{"quick": "yes-please"}`))
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
}

func TestScenarioEndpoint(t *testing.T) {
	srv := newServer(t)
	doc := `{
	  "seed": 3, "days": 5,
	  "services": [
	    {"name": "shop", "region": "us-east-1a", "type": "small",
	     "policy": "proactive",
	     "revenue": {"requests_per_second": 10, "revenue_per_request": 0.001}}
	  ]
	}`
	resp, err := http.Post(srv.URL+"/v1/scenario", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ScenarioResponse](t, resp)
	if len(out.Services) != 1 || out.Services[0].Name != "shop" {
		t.Fatalf("response: %+v", out)
	}
	svc := out.Services[0]
	if svc.NormalizedCost <= 0 || svc.NormalizedCost > 0.6 {
		t.Fatalf("cost: %+v", svc)
	}
	if svc.WorthIt == nil || !*svc.WorthIt {
		t.Fatalf("econ verdict missing: %+v", svc)
	}
	if out.WorstService != "shop" {
		t.Fatalf("totals: %+v", out)
	}
}

func TestScenarioEndpointFleet(t *testing.T) {
	srv := newServer(t)
	doc := `{
	  "seed": 5, "days": 3,
	  "fleets": [
	    {"name": "web", "strategy": "diversified",
	     "base_load": 300, "peak_load": 600, "per_replica_load": 150}
	  ]
	}`
	resp, err := http.Post(srv.URL+"/v1/scenario", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ScenarioResponse](t, resp)
	if len(out.Fleets) != 1 || len(out.Services) != 0 {
		t.Fatalf("response: %+v", out)
	}
	fl := out.Fleets[0]
	if fl.Name != "web" || fl.Strategy != "diversified" {
		t.Fatalf("fleet: %+v", fl)
	}
	if fl.NormalizedCost <= 0 || fl.NormalizedCost >= 1 {
		t.Fatalf("fleet cost: %+v", fl)
	}
	if fl.PeakTarget < 3 || fl.CapacityShortfall > 0.05 {
		t.Fatalf("fleet capacity: %+v", fl)
	}

	// The fleet run surfaces in /metrics under its own kind.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `spotserve_kind_runs_total{kind="fleet",outcome="completed"} 1`) {
		t.Fatalf("metrics missing fleet kind:\n%s", b.String())
	}
}

func TestScenarioEndpointErrors(t *testing.T) {
	srv := newServer(t)
	// Invalid document.
	resp, _ := http.Post(srv.URL+"/v1/scenario", "application/json",
		strings.NewReader(`{"days": 5, "services": []}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid doc = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Server-side file access is refused.
	resp2, _ := http.Post(srv.URL+"/v1/scenario", "application/json",
		strings.NewReader(`{"traces": "/etc/passwd", "services": [
		  {"name":"x","region":"us-east-1a","type":"small"}]}`))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("traces over API = %d", resp2.StatusCode)
	}
	body := decode[map[string]string](t, resp2)
	if !strings.Contains(body["error"], "not available") {
		t.Fatalf("error: %v", body)
	}
	// Wrong method.
	resp3, _ := http.Get(srv.URL + "/v1/scenario")
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET scenario = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
}
