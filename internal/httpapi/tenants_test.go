package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spothost/internal/controlplane"
)

// newTenantServer builds a server with direct access to its control plane
// so tests can observe subscription slots.
func newTenantServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

// TestStatusWriterForwardsFlush: the logging wrapper must not hide the
// underlying writer's http.Flusher, or streaming responses sit in the
// server's buffer until the handler returns.
func TestStatusWriterForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	var w http.ResponseWriter = &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not satisfy http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush was not forwarded to the wrapped writer")
	}
	// A wrapped writer with no Flusher underneath is a no-op, not a panic.
	bare := &statusWriter{ResponseWriter: nopWriter{}, status: http.StatusOK}
	bare.Flush()
}

type nopWriter struct{}

func (nopWriter) Header() http.Header         { return http.Header{} }
func (nopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (nopWriter) WriteHeader(int)             {}

// TestOversizedBody413: request bodies over the 1 MiB cap are rejected
// with 413 on every body-accepting route, not a generic 400.
func TestOversizedBody413(t *testing.T) {
	_, srv := newTenantServer(t, Config{})
	pad := strings.Repeat("x", 2<<20)
	routes := []struct {
		path, body string
	}{
		{"/v1/experiments/figure7", `{"pad":"` + pad + `"}`},
		{"/v1/scenario", `{"product":"` + pad + `"}`},
		{"/v1/tenants/acme/fleets", `{"name":"` + pad + `"}`},
	}
	for _, tc := range routes {
		resp, body := post(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413 (%s)", tc.path, resp.StatusCode, body)
		}
		if !strings.Contains(body, "exceeds") {
			t.Errorf("%s: error %q does not mention the limit", tc.path, body)
		}
	}
}

// TestScenarioDaysCap: /v1/scenario enforces MaxRequestDays — a scenario
// document is client-controlled, so an unbounded horizon would let one
// request monopolize the server (the CLI path stays uncapped).
func TestScenarioDaysCap(t *testing.T) {
	_, srv := newTenantServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/scenario",
		`{"days": 3650, "fleets": [{"name": "f"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "at most 90") {
		t.Errorf("error %q does not mention the 90-day cap", body)
	}
}

// TestTenantLifecycle walks the control-plane API end to end: register,
// list, snapshot, stream to completion, duplicate conflict, unregister.
func TestTenantLifecycle(t *testing.T) {
	_, srv := newTenantServer(t, Config{Shards: 2})
	base := srv.URL + "/v1/tenants/acme/fleets"

	resp, body := post(t, base,
		`{"name": "web", "seed": 7, "days": 2, "fleet": {"strategy": "diversified"}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status = %d, want 201 (%s)", resp.StatusCode, body)
	}
	var snap controlplane.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tenant != "acme" || snap.Name != "web" || snap.Days != 2 {
		t.Errorf("register snapshot = %+v", snap)
	}

	if resp, body := post(t, base, `{"name": "web", "days": 1}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: status = %d, want 409 (%s)", resp.StatusCode, body)
	}
	if resp, body := post(t, base, `{"name": "bad", "days": 500}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-horizon register: status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if resp, _ := post(t, base, `{"days": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless register: status = %d, want 400", resp.StatusCode)
	}

	resp, body = get(t, base)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"web"`) {
		t.Errorf("list: status = %d body = %s", resp.StatusCode, body)
	}

	// The stream replays history and follows the run to its terminal
	// record: exactly one record per simulated day for day-aligned slices.
	sresp, err := http.Get(base + "/web/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var records []controlplane.StreamRecord
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var rec controlplane.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d stream records, want 2 (one per simulated day)", len(records))
	}
	last := records[len(records)-1]
	if !last.Done || last.Day != 2 || last.Report == nil || last.Report.Seed != 7 {
		t.Errorf("terminal record = %+v", last)
	}

	resp, body = get(t, base+"/web")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status = %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != controlplane.StateDone || snap.Report == nil {
		t.Errorf("terminal snapshot = %+v", snap)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/web", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: status = %d, want 204", dresp.StatusCode)
	}
	if resp, _ := get(t, base+"/web"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("snapshot after delete: status = %d, want 404", resp.StatusCode)
	}
}

// TestTenantStreamClientDisconnect: a mid-stream NDJSON consumer going
// away must free its subscription slot while the fleet is still running —
// the handler notices the dropped connection through the request context.
// Receiving the first record mid-run also proves the response is flushed
// incrementally through the logging wrapper.
func TestTenantStreamClientDisconnect(t *testing.T) {
	s, srv := newTenantServer(t, Config{Shards: 1})
	base := srv.URL + "/v1/tenants/acme/fleets"

	// A deliberately heavy fleet (64 replicas, 1-minute autoscaler ticks,
	// 90 days) so the run is still in flight when the client vanishes.
	resp, body := post(t, base,
		`{"name": "big", "days": 90, "fleet": {"strategy": "diversified",
		  "base_load": 9600, "peak_load": 9600, "tick_minutes": 1}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status = %d (%s)", resp.StatusCode, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/big/stream", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	// One flushed record arrives while the run is still going.
	if sc := bufio.NewScanner(sresp.Body); !sc.Scan() {
		t.Fatalf("no stream record before disconnect: %v", sc.Err())
	}
	snap, err := s.plane.Snapshot("acme", "big")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State == controlplane.StateDone {
		t.Fatal("fleet finished before the disconnect; make the spec heavier")
	}
	if snap.Subscribers != 1 {
		t.Fatalf("Subscribers = %d mid-stream, want 1", snap.Subscribers)
	}

	cancel() // the client disconnects mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := s.plane.Snapshot("acme", "big")
		if err != nil {
			t.Fatal(err)
		}
		if snap.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription not freed after disconnect: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsIncludeControlPlane: GET /metrics carries the per-tenant and
// per-shard control-plane series.
func TestMetricsIncludeControlPlane(t *testing.T) {
	_, srv := newTenantServer(t, Config{Shards: 2})
	if resp, body := post(t, srv.URL+"/v1/tenants/acme/fleets",
		`{"name": "m", "days": 1, "fleet": {}}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status = %d (%s)", resp.StatusCode, body)
	}
	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"spotserve_cp_fleets_registered 1",
		`spotserve_cp_tenant_fleets{tenant="acme"} 1`,
		`spotserve_cp_shard_queue_depth{shard="0"}`,
		"spotserve_cp_steps_per_second",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantRouteErrors covers the route-shape and lookup failures.
func TestTenantRouteErrors(t *testing.T) {
	_, srv := newTenantServer(t, Config{})
	if resp, _ := get(t, srv.URL+"/v1/tenants/acme/other"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad route: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/tenants/acme/fleets/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fleet: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/tenants/acme/fleets/ghost/stream"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream: status = %d, want 404", resp.StatusCode)
	}
	resp, body := post(t, srv.URL+"/v1/tenants/acme/fleets", `{"name": "f", "days": 1, "fleet": {"strategy": "bogus"}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "unknown strategy") {
		t.Errorf("bad spec: status = %d body = %s, want 400", resp.StatusCode, body)
	}
}

// TestTenantQuota429: quota rejections surface as 429 with the computed
// Retry-After header.
func TestTenantQuota429(t *testing.T) {
	_, srv := newTenantServer(t, Config{Shards: 1, TenantQuota: 1})
	base := srv.URL + "/v1/tenants/small/fleets"
	if resp, body := post(t, base, `{"name": "a", "days": 90, "fleet": {}}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status = %d (%s)", resp.StatusCode, body)
	}
	resp, body := post(t, base, `{"name": "b", "days": 1, "fleet": {}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}
	if !strings.Contains(body, "quota") {
		t.Errorf("error %q does not mention quota", body)
	}
}

// TestRegisterRejectsBadCatalog: a fleet registration with a malformed
// instance catalog must fail fast at registration with a 400 — not be
// accepted and then die inside its simulation shard.
func TestRegisterRejectsBadCatalog(t *testing.T) {
	_, srv := newTenantServer(t, Config{})
	base := srv.URL + "/v1/tenants/acme/fleets"
	cases := map[string]string{
		"unknown anchor_type": `{"name": "f1", "days": 1,
		  "fleet": {"catalog": "default", "anchor_type": "mega"}}`,
		"unknown catalog": `{"name": "f2", "days": 1,
		  "fleet": {"catalog": "exotic", "anchor_type": "small"}}`,
		"anchor without catalog": `{"name": "f3", "days": 1,
		  "fleet": {"anchor_type": "small"}}`,
		"malformed entries": `{"name": "f4", "days": 1,
		  "fleet": {"catalog": "custom", "anchor_type": "a",
		    "catalog_entries": [{"name": "a", "vcpu": 1, "memory_gb": 1, "units": 3, "on_demand": 0.1}]}}`,
	}
	for label, body := range cases {
		resp, out := post(t, base, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", label, resp.StatusCode, out)
		}
	}
	// The tenant must be left with no registered fleets after the rejects.
	resp, out := get(t, base)
	if resp.StatusCode != http.StatusOK || !strings.Contains(out, `"fleets":[]`) {
		t.Errorf("list after rejects: status %d body %s", resp.StatusCode, out)
	}

	// Sanity: the same shape with a valid catalog is accepted.
	resp, out = post(t, base, `{"name": "ok", "days": 1,
	  "fleet": {"catalog": "default", "anchor_type": "small"}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("valid catalog register: status = %d, want 201 (%s)", resp.StatusCode, out)
	}
}

// TestScenarioEndpointRejectsBadCatalog: the /v1/scenario document path
// runs the same catalog validation.
func TestScenarioEndpointRejectsBadCatalog(t *testing.T) {
	_, srv := newTenantServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/scenario",
		`{"days": 1, "fleets": [{"name": "f", "catalog": "default", "anchor_type": "mega"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "anchor") {
		t.Errorf("error %q does not mention the anchor type", body)
	}
}
