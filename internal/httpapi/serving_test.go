package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spothost/internal/experiments"
	"spothost/internal/sim"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestRequestValidation(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		body string
		want string
	}{
		{`{"seeds": 17}`, "seeds"},
		{`{"seeds": -1}`, "seeds"},
		{`{"days": -4}`, "days"},
		{`{"days": 10000}`, "days"},
		{`{"quick": true`, "truncated"}, // cut-off JSON must not silently run defaults
	}
	for _, tc := range cases {
		resp, body := post(t, srv.URL+"/v1/experiments/figure7", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", tc.body, resp.StatusCode)
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("body %q: error %q does not mention %q", tc.body, body, tc.want)
		}
	}
}

func TestHealthzMethodGuard(t *testing.T) {
	srv := newServer(t)
	resp, _ := post(t, srv.URL+"/healthz", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

func TestListEncodesArrayNotNull(t *testing.T) {
	srv := newServer(t)
	resp, body := get(t, srv.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if strings.Contains(body, "null") {
		t.Fatalf("list body contains null: %s", body)
	}
	if !strings.Contains(body, `"experiments":[`) {
		t.Fatalf("list body not an array: %s", body)
	}
}

// runTrace records one blockingServer run: its processed-event count at
// the moment an event first observed cancellation, at return, and the
// run's error.
type runTrace struct {
	atCancel uint64
	atReturn uint64
	err      error
}

// blockingServer returns a Server whose experiment runs spin a real sim
// engine until their context is canceled, signaling started once running
// and reporting a runTrace on return.
func blockingServer(cfg Config, started chan<- struct{}, traces chan<- runTrace) *Server {
	s := New(cfg)
	s.runExperiment = func(ctx context.Context, _ experiments.Entry, _ experiments.Options) (experiments.Renderer, error) {
		eng := sim.NewEngine()
		eng.SetCancelPollInterval(256)
		var atCancel atomic.Uint64
		var tick func()
		tick = func() {
			if ctx.Err() != nil && atCancel.Load() == 0 {
				atCancel.Store(eng.Processed())
			}
			eng.PostAfter(sim.Second, tick)
		}
		eng.PostAfter(sim.Second, tick)
		select {
		case started <- struct{}{}:
		default:
		}
		err := eng.RunUntilCtx(ctx, 1e12) // effectively unbounded
		traces <- runTrace{atCancel: atCancel.Load(), atReturn: eng.Processed(), err: err}
		if err != nil {
			return nil, err
		}
		return experiments.Table2Result{}, nil
	}
	return s
}

// TestClientDisconnectCancelsRun is the acceptance test: a canceled
// request aborts the in-flight simulation within one cancellation-poll
// batch of events and frees its admission slot.
func TestClientDisconnectCancelsRun(t *testing.T) {
	started := make(chan struct{}, 1)
	traces := make(chan runTrace, 1)
	s := blockingServer(Config{MaxConcurrent: 1}, started, traces)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/experiments/figure6", strings.NewReader(`{"quick":true}`))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-started // the run is executing
	cancel()  // client disconnects

	var tr runTrace
	select {
	case tr = <-traces:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after client disconnect")
	}
	if !errors.Is(tr.err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", tr.err)
	}
	// The engine may execute at most one poll batch (256 events here,
	// +1 for the event that observed the cancel) past the cancellation.
	if tr.atCancel == 0 || tr.atReturn-tr.atCancel > 256+1 {
		t.Fatalf("run executed %d events past cancellation (batch is 256)",
			tr.atReturn-tr.atCancel)
	}
	if err := <-errc; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}

	// The admission slot must be freed once the canceled handler unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.sem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Metrics must reflect the canceled run and an empty in-flight gauge.
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"spotserve_runs_started_total 1",
		"spotserve_runs_canceled_total 1",
		"spotserve_runs_in_flight 0",
		"spotserve_market_cache_hits_total",
		"spotserve_market_cache_misses_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestAdmissionControl429(t *testing.T) {
	started := make(chan struct{}, 1)
	traces := make(chan runTrace, 1)
	s := blockingServer(Config{MaxConcurrent: 1}, started, traces)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/experiments/figure6", strings.NewReader(`{"quick":true}`))
	go func() { _, _ = http.DefaultClient.Do(req) }()
	<-started // slot taken

	resp, body := post(t, srv.URL+"/v1/experiments/figure6", `{"quick":true}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	cancel()
	<-traces

	resp2, mbody := get(t, srv.URL+"/metrics")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(mbody, "spotserve_runs_rejected_total 1") {
		t.Fatalf("metrics after 429:\n%s", mbody)
	}
}

func TestRunTimeout504(t *testing.T) {
	started := make(chan struct{}, 1)
	traces := make(chan runTrace, 1)
	s := blockingServer(Config{MaxConcurrent: 1, RunTimeout: 50 * time.Millisecond}, started, traces)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, body := post(t, srv.URL+"/v1/experiments/figure6", `{"quick":true}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	tr := <-traces
	if !errors.Is(tr.err, context.DeadlineExceeded) {
		t.Fatalf("run err = %v, want context.DeadlineExceeded", tr.err)
	}
}

func TestMetricsMethodGuard(t *testing.T) {
	srv := newServer(t)
	resp, _ := post(t, srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}
