// Package httpapi exposes the spothost simulators over HTTP, so
// dashboards and notebooks can run hosting studies without linking Go
// code:
//
//	GET  /healthz               liveness
//	GET  /v1/experiments        list the paper's tables/figures
//	POST /v1/experiments/{name} run one experiment  {"quick": true, "seeds": 2, "days": 10}
//	POST /v1/scenario           run a declarative portfolio scenario (internal/scenario schema)
//
// Responses are JSON; experiment responses carry both the rendered text
// table and, where available, the CSV series.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"spothost/internal/experiments"
	"spothost/internal/metrics"
	"spothost/internal/scenario"
	"spothost/internal/sim"
)

// ExperimentRequest tunes one experiment run.
type ExperimentRequest struct {
	Quick bool    `json:"quick"`
	Seeds int     `json:"seeds"` // 0 = default
	Days  float64 `json:"days"`  // 0 = default
}

// ExperimentResponse is the run outcome.
type ExperimentResponse struct {
	Name string `json:"name"`
	Text string `json:"text"`
	CSV  string `json:"csv,omitempty"`
}

// ServiceResponse serializes one scenario service outcome.
type ServiceResponse struct {
	Name           string  `json:"name"`
	NormalizedCost float64 `json:"normalized_cost"`
	Unavailability float64 `json:"unavailability"`
	Cost           float64 `json:"cost"`
	BaselineCost   float64 `json:"baseline_cost"`
	Forced         int     `json:"forced_migrations"`
	Planned        int     `json:"planned_migrations"`
	Reverse        int     `json:"reverse_migrations"`
	DowntimeSec    float64 `json:"downtime_seconds"`
	NetBenefit     float64 `json:"net_benefit,omitempty"`
	WorthIt        *bool   `json:"worth_it,omitempty"`
}

// ScenarioResponse is the portfolio outcome.
type ScenarioResponse struct {
	Services       []ServiceResponse `json:"services"`
	TotalCost      float64           `json:"total_cost"`
	NormalizedCost float64           `json:"normalized_cost"`
	WorstService   string            `json:"worst_service"`
	WorstUnavail   float64           `json:"worst_unavailability"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the API's http.Handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/v1/experiments", handleList)
	mux.HandleFunc("/v1/experiments/", handleExperiment)
	mux.HandleFunc("/v1/scenario", handleScenario)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var names []string
	for _, e := range experiments.All() {
		names = append(names, e.Name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"experiments": names})
}

func handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	entry, ok := experiments.Find(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", name)
		return
	}
	var req ExperimentRequest
	if r.Body != nil {
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&req); err != nil && err.Error() != "EOF" {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	opts := experiments.Defaults()
	if req.Quick {
		opts = experiments.Quick()
	}
	if req.Seeds > 0 && req.Seeds <= 16 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < req.Seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(11*(i+1)))
		}
	}
	if req.Days > 0 {
		opts.Horizon = req.Days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}
	res, err := entry.Run(opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "experiment failed: %v", err)
		return
	}
	resp := ExperimentResponse{Name: name, Text: res.Render()}
	if exp, ok := res.(experiments.CSVExporter); ok {
		resp.CSV = exp.CSV()
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	sc, err := scenario.Load(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sc.Traces != "" {
		// The API must not read server-side files on client demand.
		writeError(w, http.StatusBadRequest, "trace replay is not available over the API")
		return
	}
	res, err := sc.Run()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "scenario failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toScenarioResponse(res))
}

func toScenarioResponse(res scenario.Result) ScenarioResponse {
	out := ScenarioResponse{
		TotalCost:      res.Totals.Cost,
		NormalizedCost: res.Totals.NormalizedCost(),
		WorstService:   res.Totals.WorstService,
		WorstUnavail:   res.Totals.WorstUnavailability,
	}
	for _, sr := range res.Services {
		out.Services = append(out.Services, toServiceResponse(sr.Name, sr.Report, sr))
	}
	return out
}

func toServiceResponse(name string, rep metrics.Report, sr scenario.ServiceResult) ServiceResponse {
	s := ServiceResponse{
		Name:           name,
		NormalizedCost: rep.NormalizedCost(),
		Unavailability: rep.Unavailability(),
		Cost:           rep.Cost,
		BaselineCost:   rep.BaselineCost,
		Forced:         rep.Migrations.Forced,
		Planned:        rep.Migrations.Planned,
		Reverse:        rep.Migrations.Reverse,
		DowntimeSec:    rep.DowntimeSeconds,
	}
	if sr.Analysis != nil {
		s.NetBenefit = sr.Analysis.Net
		worth := sr.Analysis.WorthIt()
		s.WorthIt = &worth
	}
	return s
}
