// Package httpapi exposes the spothost simulators over HTTP, so
// dashboards and notebooks can run hosting studies without linking Go
// code:
//
//	GET  /healthz               liveness
//	GET  /metrics               serving + control-plane + market-cache metrics (Prometheus text)
//	GET  /v1/experiments        list the paper's tables/figures
//	POST /v1/experiments/{name} run one experiment  {"quick": true, "seeds": 2, "days": 10}
//	POST /v1/scenario           run a declarative scenario: services and/or fleets (internal/scenario schema)
//
// and the multi-tenant control plane (internal/controlplane), where fleets
// are registered once and advanced by a resident sharded runtime instead
// of blocking a request for the whole run:
//
//	POST   /v1/tenants/{tenant}/fleets               register a fleet  {"name": ..., "seed": ..., "days": ..., "fleet": {...}}
//	GET    /v1/tenants/{tenant}/fleets               list the tenant's fleets
//	GET    /v1/tenants/{tenant}/fleets/{name}          snapshot one fleet's progress and report
//	DELETE /v1/tenants/{tenant}/fleets/{name}          unregister
//	GET    /v1/tenants/{tenant}/fleets/{name}/stream   NDJSON: one report record per simulated day
//	GET    /v1/tenants/{tenant}/fleets/{name}/timeline telemetry timeline (JSON); ?ledger=1 streams the decision ledger (NDJSON)
//
// Responses are JSON; experiment responses carry both the rendered text
// table and, where available, the CSV series.
//
// The serving layer is admission-controlled and cancelable: at most
// Config.MaxConcurrent simulation runs execute at once (excess requests
// get 429 with a Retry-After derived from the control plane's measured
// backpressure), each run inherits the request's context (bounded by
// Config.RunTimeout when set), and a client disconnect aborts the
// underlying simulation within one engine cancellation-poll batch,
// freeing its pool workers. Oversized request bodies (over 1 MiB) get
// 413; API horizons are capped at MaxRequestDays with a 400.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spothost/internal/controlplane"
	"spothost/internal/experiments"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/obs"
	"spothost/internal/scenario"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Request-validation bounds, enforced with 400 responses rather than
// silently falling back to defaults.
const (
	// MaxRequestSeeds caps the per-request seed count.
	MaxRequestSeeds = 16
	// MaxRequestDays caps the per-request horizon: 90 days is three times
	// the paper's month-long traces and keeps a single request's work
	// bounded.
	MaxRequestDays = 90
)

// DefaultMaxConcurrent is the admission-control bound used when
// Config.MaxConcurrent is unset. Each admitted run already fans its
// (config, seed) cells out over every CPU, so a small number of
// concurrent runs saturates the machine.
const DefaultMaxConcurrent = 2

// Config tunes the serving layer.
type Config struct {
	// MaxConcurrent bounds simultaneously executing experiment/scenario
	// runs; requests beyond it receive 429 with a Retry-After header.
	// Zero or negative means DefaultMaxConcurrent.
	MaxConcurrent int
	// RunTimeout bounds one run's execution; a run exceeding it is
	// canceled and reported as 504. Zero means no server-side deadline
	// (the client's disconnect still cancels).
	RunTimeout time.Duration
	// Logger receives one structured line per request and one per run
	// outcome. Nil discards logs.
	Logger *log.Logger

	// Shards, MaxFleets and TenantQuota tune the resident control plane
	// behind /v1/tenants (see internal/controlplane). Zero means the
	// control plane's defaults.
	Shards      int
	MaxFleets   int
	TenantQuota int
}

// Server is the API's handler: a mux wrapped with per-request logging,
// run admission control, and serving metrics.
type Server struct {
	cfg     Config
	logger  *log.Logger
	sem     chan struct{}
	serving metrics.Serving
	// traces aggregates simulation histograms (downtime by migration
	// class, migration latency, spot prices paid) across every run the
	// server executes; spans are discarded as runs finish, so memory stays
	// bounded. Rendered into GET /metrics alongside the serving counters.
	traces *trace.Collector
	// obsCol aggregates simulation telemetry (decision/alert/cost totals)
	// across control-plane fleet runs; recorders are folded into scalar
	// totals as runs finish, so memory stays bounded. Per-fleet timelines
	// are served from the control plane's published state instead.
	obsCol *obs.Collector
	// plane is the resident multi-tenant fleet runtime behind /v1/tenants.
	plane *controlplane.Plane
	mux   *http.ServeMux

	// runExperiment is a seam for tests to substitute a controllable run.
	runExperiment func(ctx context.Context, entry experiments.Entry, opts experiments.Options) (experiments.Renderer, error)
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		cfg:    cfg,
		logger: logger,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		traces: trace.NewHistogramCollector(),
		obsCol: obs.NewAggregateCollector(obs.Config{}),
		runExperiment: func(ctx context.Context, entry experiments.Entry, opts experiments.Options) (experiments.Renderer, error) {
			opts.Context = ctx
			return entry.Run(opts)
		},
	}
	s.plane = controlplane.New(controlplane.Config{
		Shards:      cfg.Shards,
		MaxFleets:   cfg.MaxFleets,
		TenantQuota: cfg.TenantQuota,
		MaxDays:     MaxRequestDays,
		Trace:       s.traces,
		Obs:         s.obsCol,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/experiments", s.handleList)
	mux.HandleFunc("/v1/experiments/", s.handleExperiment)
	mux.HandleFunc("/v1/scenario", s.handleScenario)
	mux.HandleFunc("/v1/tenants/", s.handleTenants)
	s.mux = mux
	return s
}

// Close stops the control plane's shard runtime: in-flight fleet slices
// are canceled and blocked stream readers released. Read-only routes stay
// usable; registrations are refused afterwards.
func (s *Server) Close() { s.plane.Close() }

// Handler returns the API's http.Handler with default configuration.
func Handler() http.Handler {
	return New(Config{})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers behind the
// logging wrapper still see an http.Flusher: embedding alone would hide
// the underlying writer's optional interfaces.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP dispatches to the mux with per-request structured logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.logger.Printf("http method=%s path=%s status=%d dur=%s",
		r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Millisecond))
}

// acquire claims an admission slot without blocking. It reports false —
// and records the rejection — when MaxConcurrent runs are already in
// flight.
func (s *Server) acquire() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		s.serving.Reject()
		return false
	}
}

func (s *Server) release() { <-s.sem }

// rejectBusy answers an admission rejection: 429 with a Retry-After
// derived from the control plane's measured per-slice wall time and queue
// depth — the live backpressure signal — rather than a constant.
func (s *Server) rejectBusy(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.plane.RetryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests,
		"at most %d concurrent runs; retry shortly", s.cfg.MaxConcurrent)
}

// runCtx derives a run's context from the request: the client's context
// (so a disconnect cancels the simulation) bounded by RunTimeout.
func (s *Server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RunTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RunTimeout)
	}
	return context.WithCancel(r.Context())
}

// ExperimentRequest tunes one experiment run.
type ExperimentRequest struct {
	Quick bool    `json:"quick"`
	Seeds int     `json:"seeds"` // 0 = default; 1..MaxRequestSeeds
	Days  float64 `json:"days"`  // 0 = default; up to MaxRequestDays
}

// ExperimentResponse is the run outcome.
type ExperimentResponse struct {
	Name string `json:"name"`
	Text string `json:"text"`
	CSV  string `json:"csv,omitempty"`
}

// ServiceResponse serializes one scenario service outcome.
type ServiceResponse struct {
	Name           string  `json:"name"`
	NormalizedCost float64 `json:"normalized_cost"`
	Unavailability float64 `json:"unavailability"`
	Cost           float64 `json:"cost"`
	BaselineCost   float64 `json:"baseline_cost"`
	Forced         int     `json:"forced_migrations"`
	Planned        int     `json:"planned_migrations"`
	Reverse        int     `json:"reverse_migrations"`
	DowntimeSec    float64 `json:"downtime_seconds"`
	NetBenefit     float64 `json:"net_benefit,omitempty"`
	WorthIt        *bool   `json:"worth_it,omitempty"`
}

// FleetResponse serializes one scenario fleet outcome.
type FleetResponse struct {
	Name                string  `json:"name"`
	Strategy            string  `json:"strategy"`
	NormalizedCost      float64 `json:"normalized_cost"`
	Cost                float64 `json:"cost"`
	BaselineCost        float64 `json:"baseline_cost"`
	CapacityShortfall   float64 `json:"capacity_shortfall"`
	PeakTarget          int     `json:"peak_target"`
	ReplicasLost        int     `json:"replicas_lost"`
	MaxSimultaneousLoss int     `json:"max_simultaneous_loss"`
	OnDemandFallbacks   int     `json:"on_demand_fallbacks"`
	ReverseReplacements int     `json:"reverse_replacements"`
}

// ScenarioResponse is the portfolio outcome.
type ScenarioResponse struct {
	Services       []ServiceResponse `json:"services"`
	Fleets         []FleetResponse   `json:"fleets,omitempty"`
	TotalCost      float64           `json:"total_cost"`
	NormalizedCost float64           `json:"normalized_cost"`
	WorstService   string            `json:"worst_service"`
	WorstUnavail   float64           `json:"worst_unavailability"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeRunError maps a run's failure to a response: cancellations caused
// by the client's disconnect get 499 (the conventional "client closed
// request" code — the write is usually moot, the connection is gone),
// server-side deadline expiry gets 504, anything else 500.
func writeRunError(w http.ResponseWriter, what string, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "%s canceled", what)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "%s exceeded the run timeout", what)
	default:
		writeError(w, http.StatusInternalServerError, "%s failed: %v", what, err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.serving.Snapshot().WritePrometheus(w, "spotserve")
	s.plane.Stats().WritePrometheus(w, "spotserve")
	s.traces.WritePrometheus(w, "spotserve")
	s.obsCol.WritePrometheus(w, "spotserve")
	cs := market.SharedCache().Stats()
	fmt.Fprintf(w, "# HELP spotserve_market_cache_hits_total Universe lookups served from cache.\n"+
		"# TYPE spotserve_market_cache_hits_total counter\nspotserve_market_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP spotserve_market_cache_misses_total Universe lookups that had to generate.\n"+
		"# TYPE spotserve_market_cache_misses_total counter\nspotserve_market_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP spotserve_market_cache_universes Distinct universes resident in cache.\n"+
		"# TYPE spotserve_market_cache_universes gauge\nspotserve_market_cache_universes %d\n", cs.Universes)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	names := []string{}
	for _, e := range experiments.All() {
		names = append(names, e.Name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"experiments": names})
}

// writeBodyError maps a request-body failure to a response: a body over
// the MaxBytesReader limit is 413 (and the reader has already told the
// server to close the connection), anything else 400.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", mbe.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// decodeExperimentRequest parses and validates the request body. An empty
// body means defaults; truncated or malformed JSON and out-of-range
// fields are rejected. The writer is handed to MaxBytesReader so an
// oversized body also closes the connection.
func decodeExperimentRequest(w http.ResponseWriter, r *http.Request) (ExperimentRequest, error) {
	var req ExperimentRequest
	if r.Body == nil {
		return req, nil
	}
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req)
	switch {
	case err == nil, errors.Is(err, io.EOF): // EOF: empty body = defaults
	case errors.Is(err, io.ErrUnexpectedEOF):
		return req, fmt.Errorf("truncated JSON body")
	default:
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if req.Seeds < 0 || req.Seeds > MaxRequestSeeds {
		return req, fmt.Errorf("seeds must be between 0 and %d, got %d", MaxRequestSeeds, req.Seeds)
	}
	if req.Days < 0 || req.Days > MaxRequestDays {
		return req, fmt.Errorf("days must be between 0 and %d, got %g", MaxRequestDays, req.Days)
	}
	return req, nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	entry, ok := experiments.Find(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", name)
		return
	}
	req, err := decodeExperimentRequest(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	opts := experiments.Defaults()
	if req.Quick {
		opts = experiments.Quick()
	}
	if req.Seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < req.Seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(11*(i+1)))
		}
	}
	if req.Days > 0 {
		opts.Horizon = req.Days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}

	if !s.acquire() {
		s.rejectBusy(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r)
	defer cancel()

	kind := "experiment"
	if name == "fleet" {
		kind = "fleet"
	}
	opts.Trace = s.traces.Scope(name)
	done := s.serving.StartKind(kind)
	start := time.Now()
	res, err := s.runExperiment(ctx, entry, opts)
	done(err)
	s.logger.Printf("run experiment=%s dur=%s err=%v",
		name, time.Since(start).Round(time.Millisecond), err)
	if err != nil {
		writeRunError(w, "experiment", err)
		return
	}
	resp := ExperimentResponse{Name: name, Text: res.Render()}
	if exp, ok := res.(experiments.CSVExporter); ok {
		resp.CSV = exp.CSV()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	sc, err := scenario.Load(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if sc.Traces != "" {
		// The API must not read server-side files on client demand.
		writeError(w, http.StatusBadRequest, "trace replay is not available over the API")
		return
	}
	if sc.Days > MaxRequestDays {
		// The CLI runs arbitrary horizons; one HTTP request's work stays
		// bounded.
		writeError(w, http.StatusBadRequest,
			"days must be at most %d for API runs, got %g", MaxRequestDays, sc.Days)
		return
	}

	if !s.acquire() {
		s.rejectBusy(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r)
	defer cancel()

	kind := "scenario"
	if len(sc.Fleets) > 0 {
		kind = "fleet"
	}
	done := s.serving.StartKind(kind)
	start := time.Now()
	res, err := sc.RunTracedCtx(ctx, s.traces.Scope("scenario"))
	done(err)
	s.logger.Printf("run scenario services=%d fleets=%d dur=%s err=%v",
		len(sc.Services), len(sc.Fleets), time.Since(start).Round(time.Millisecond), err)
	if err != nil {
		writeRunError(w, "scenario", err)
		return
	}
	writeJSON(w, http.StatusOK, toScenarioResponse(res))
}

func toScenarioResponse(res scenario.Result) ScenarioResponse {
	out := ScenarioResponse{
		TotalCost:      res.Totals.Cost,
		NormalizedCost: res.Totals.NormalizedCost(),
		WorstService:   res.Totals.WorstService,
		WorstUnavail:   res.Totals.WorstUnavailability,
	}
	for _, sr := range res.Services {
		out.Services = append(out.Services, toServiceResponse(sr.Name, sr.Report, sr))
	}
	for _, fr := range res.Fleets {
		rep := fr.Report
		out.Fleets = append(out.Fleets, FleetResponse{
			Name:                fr.Name,
			Strategy:            rep.Strategy,
			NormalizedCost:      rep.NormalizedCost(),
			Cost:                rep.Cost,
			BaselineCost:        rep.BaselineCost,
			CapacityShortfall:   rep.CapacityShortfall(),
			PeakTarget:          rep.PeakTarget,
			ReplicasLost:        rep.ReplicasLost,
			MaxSimultaneousLoss: rep.MaxSimultaneousLoss(),
			OnDemandFallbacks:   rep.OnDemandFallbacks,
			ReverseReplacements: rep.ReverseReplacements,
		})
	}
	return out
}

func toServiceResponse(name string, rep metrics.Report, sr scenario.ServiceResult) ServiceResponse {
	s := ServiceResponse{
		Name:           name,
		NormalizedCost: rep.NormalizedCost(),
		Unavailability: rep.Unavailability(),
		Cost:           rep.Cost,
		BaselineCost:   rep.BaselineCost,
		Forced:         rep.Migrations.Forced,
		Planned:        rep.Migrations.Planned,
		Reverse:        rep.Migrations.Reverse,
		DowntimeSec:    rep.DowntimeSeconds,
	}
	if sr.Analysis != nil {
		s.NetBenefit = sr.Analysis.Net
		worth := sr.Analysis.WorthIt()
		s.WorthIt = &worth
	}
	return s
}
