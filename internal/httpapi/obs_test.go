package httpapi

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"spothost/internal/controlplane"
	"spothost/internal/obs"
)

// waitDone polls the plane until the named fleet reaches its horizon.
func waitDone(t *testing.T, s *Server, tenant, name string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.plane.Snapshot(tenant, name)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == controlplane.StateDone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fleet %s/%s never finished", tenant, name)
}

// TestTimelineEndpoint: the server always runs with telemetry on, so a
// finished fleet serves its downsampled timeline as JSON, its decision
// ledger as NDJSON under ?ledger=1, and the aggregate obs totals appear
// on /metrics.
func TestTimelineEndpoint(t *testing.T) {
	s, srv := newTenantServer(t, Config{Shards: 2})
	base := srv.URL + "/v1/tenants/acme/fleets"

	resp, body := post(t, base,
		`{"name": "web", "seed": 7, "days": 2, "fleet": {"strategy": "diversified"}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status = %d (%s)", resp.StatusCode, body)
	}
	waitDone(t, s, "acme", "web")

	resp, body = get(t, base+"/web/timeline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: status = %d (%s)", resp.StatusCode, body)
	}
	var tr TimelineResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Tenant != "acme" || tr.Name != "web" || tr.Schema != obs.TimelineSchema {
		t.Errorf("timeline envelope = tenant %q name %q schema %d", tr.Tenant, tr.Name, tr.Schema)
	}
	if len(tr.Series) < 2 {
		t.Fatalf("timeline has %d series, want at least cost and shortfall", len(tr.Series))
	}
	names := map[string]bool{}
	for _, sd := range tr.Series {
		names[sd.Name] = true
	}
	for _, want := range []string{"cost_dollars", "shortfall_units"} {
		if !names[want] {
			t.Errorf("timeline missing series %q (have %v)", want, names)
		}
	}
	if tr.Decisions == 0 {
		t.Error("timeline reports zero decisions for a fleet that launched instances")
	}

	// The ledger view streams one well-formed NDJSON record per decision.
	lresp, err := http.Get(base + "/web/timeline?ledger=1")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if ct := lresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("ledger Content-Type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(lresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var d obs.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		if d.Schema != obs.LedgerSchema || d.Action == "" || d.Market == "" {
			t.Fatalf("ledger record missing fields: %+v", d)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != tr.Decisions {
		t.Errorf("ledger streamed %d lines, timeline counts %d decisions", lines, tr.Decisions)
	}

	// Aggregate obs gauges are merged into /metrics.
	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"spotserve_obs_runs_total 1",
		"spotserve_obs_decisions_total{",
		"spotserve_obs_cost_dollars_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if resp, _ := get(t, base+"/nope/timeline"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("timeline for unknown fleet: status = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/web/timeline", nil)
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST timeline: status = %d, want 405", presp.StatusCode)
	}
}
