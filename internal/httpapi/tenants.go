package httpapi

// The /v1/tenants routes: the HTTP face of internal/controlplane. Unlike
// /v1/scenario, which blocks one admission slot for a whole simulation,
// these handlers only touch the resident registry — registration enqueues
// the fleet on its shard and returns immediately, and results arrive
// through snapshots or the NDJSON stream.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"spothost/internal/controlplane"
	"spothost/internal/obs"
	"spothost/internal/scenario"
)

// FleetRegistration is the POST /v1/tenants/{tenant}/fleets body: the
// scenario-file fleet schema plus the universe parameters a standalone run
// would take on the command line.
type FleetRegistration struct {
	Name  string            `json:"name"`
	Seed  int64             `json:"seed"`
	Days  float64           `json:"days"`
	Fleet scenario.FleetDef `json:"fleet"`
}

// handleTenants dispatches the /v1/tenants/{tenant}/fleets... routes.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	parts := strings.Split(rest, "/")
	if len(parts) < 2 || parts[0] == "" || parts[1] != "fleets" {
		writeError(w, http.StatusNotFound, "unknown route; see /v1/tenants/{tenant}/fleets")
		return
	}
	tenant := parts[0]
	switch {
	case len(parts) == 2:
		switch r.Method {
		case http.MethodPost:
			s.handleTenantRegister(w, r, tenant)
		case http.MethodGet:
			writeJSON(w, http.StatusOK,
				map[string][]controlplane.Snapshot{"fleets": s.plane.List(tenant)})
		default:
			writeError(w, http.StatusMethodNotAllowed, "use POST or GET")
		}
	case len(parts) == 3 && parts[2] != "":
		name := parts[2]
		switch r.Method {
		case http.MethodGet:
			snap, err := s.plane.Snapshot(tenant, name)
			if err != nil {
				writePlaneError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, snap)
		case http.MethodDelete:
			if err := s.plane.Unregister(tenant, name); err != nil {
				writePlaneError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
		}
	case len(parts) == 4 && parts[2] != "" && parts[3] == "stream":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		s.handleTenantStream(w, r, tenant, parts[2])
	case len(parts) == 4 && parts[2] != "" && parts[3] == "timeline":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		s.handleTenantTimeline(w, r, tenant, parts[2])
	default:
		writeError(w, http.StatusNotFound, "unknown route; see /v1/tenants/{tenant}/fleets")
	}
}

func (s *Server) handleTenantRegister(w http.ResponseWriter, r *http.Request, tenant string) {
	var reg FleetRegistration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&reg); err != nil {
		writeBodyError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	name := reg.Name
	if name == "" {
		name = reg.Fleet.Name
	}
	if name == "" {
		writeError(w, http.StatusBadRequest, "fleet name is required")
		return
	}
	snap, err := s.plane.Register(tenant, name, controlplane.Spec{
		Seed:  reg.Seed,
		Days:  reg.Days,
		Fleet: reg.Fleet,
	})
	if err != nil {
		writePlaneError(w, err)
		return
	}
	s.logger.Printf("register tenant=%s fleet=%s days=%g seed=%d shard=%d",
		tenant, name, reg.Days, reg.Seed, snap.Shard)
	writeJSON(w, http.StatusCreated, snap)
}

// handleTenantStream serves the NDJSON result stream: history first, then
// one record per completed simulated day as the shard advances the fleet.
// A client disconnect cancels the cursor and frees its subscription slot.
func (s *Server) handleTenantStream(w http.ResponseWriter, r *http.Request, tenant, name string) {
	st, err := s.plane.Stream(tenant, name)
	if err != nil {
		writePlaneError(w, err)
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		recs, done, err := st.Next(r.Context())
		if err != nil {
			return // client disconnected or the plane closed
		}
		for _, rec := range recs {
			if _, err := w.Write(rec); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

// TimelineResponse is the GET .../timeline body: the fleet's published
// telemetry timeline (see internal/obs) stamped with its registry key.
type TimelineResponse struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	obs.Timeline
}

// handleTenantTimeline serves the fleet's latest published telemetry
// timeline as JSON; with ?ledger=1 it streams the decision ledger as
// NDJSON instead. Both views are snapshots of the published state — they
// never touch the shard goroutine's live simulation.
func (s *Server) handleTenantTimeline(w http.ResponseWriter, r *http.Request, tenant, name string) {
	tl, ledger, err := s.plane.Timeline(tenant, name)
	if err != nil {
		writePlaneError(w, err)
		return
	}
	if r.URL.Query().Get("ledger") != "" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		for _, line := range ledger {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, TimelineResponse{Tenant: tenant, Name: name, Timeline: tl})
}

// writePlaneError maps a control-plane error to a response: admission
// rejections carry their computed Retry-After, conflicts and lookups map
// to the usual codes, and anything else is a validation failure.
func writePlaneError(w http.ResponseWriter, err error) {
	var ce *controlplane.CapacityError
	switch {
	case errors.As(err, &ce):
		w.Header().Set("Retry-After", strconv.Itoa(ce.RetryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, controlplane.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, controlplane.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, controlplane.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, controlplane.ErrNoObs):
		writeError(w, http.StatusNotImplemented, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}
