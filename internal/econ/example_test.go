package econ_test

import (
	"fmt"
	"log"

	"spothost/internal/econ"
	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// Example prices a month of spot hosting for a shop earning $360/hour:
// the paper's savings survive 23 seconds of monthly downtime with room to
// spare.
func Example() {
	shop := econ.RevenueModel{
		RequestsPerSecond:  100,
		RevenuePerRequest:  0.001, // $0.10/s = $360/hr
		DegradedLossFactor: 0.25,
	}
	run := metrics.Report{
		Horizon:         30 * sim.Day,
		Cost:            8.20,  // what the proactive scheduler paid
		BaselineCost:    43.20, // on-demand for the same month
		DowntimeSeconds: 23,    // one revocation, lazily restored
		DegradedSeconds: 120,
	}
	a, err := econ.Analyze(shop, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("savings=$%.2f lost=$%.2f net=$%.2f worth-it=%v\n",
		a.Savings, a.LostToDowntime+a.LostToDegradation, a.Net, a.WorthIt())
	fmt.Printf("downtime headroom: %.0fx\n", a.HeadroomFactor)
	// Output:
	// savings=$35.00 lost=$5.30 net=$29.70 worth-it=true
	// downtime headroom: 15x
}
