// Package econ turns a hosting run into business terms — the calculation
// behind the paper's motivation ("a large e-tailer ... could lose a
// significant amount of revenue if their website is down even for a few
// minutes"): infrastructure savings versus revenue lost to downtime and
// degraded operation, and the break-even availability a spot-hosted
// service must clear for the savings to be worth it.
package econ

import (
	"fmt"

	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// RevenueModel prices a service's traffic.
type RevenueModel struct {
	// RequestsPerSecond is the mean served request rate.
	RequestsPerSecond float64
	// RevenuePerRequest is the value of one served request, in dollars
	// (conversions x basket value / requests, for a shop).
	RevenuePerRequest float64
	// DegradedLossFactor is the fraction of revenue lost while the
	// service runs degraded (lazy-restore fault-in windows): users see
	// slow pages and some leave. 0 = degradation is free, 1 = as bad as
	// downtime.
	DegradedLossFactor float64
}

// Validate reports an unusable model.
func (m RevenueModel) Validate() error {
	switch {
	case m.RequestsPerSecond < 0:
		return fmt.Errorf("econ: negative request rate")
	case m.RevenuePerRequest < 0:
		return fmt.Errorf("econ: negative revenue per request")
	case m.DegradedLossFactor < 0 || m.DegradedLossFactor > 1:
		return fmt.Errorf("econ: DegradedLossFactor %v outside [0,1]", m.DegradedLossFactor)
	}
	return nil
}

// RevenuePerSecond returns the model's revenue rate.
func (m RevenueModel) RevenuePerSecond() float64 {
	return m.RequestsPerSecond * m.RevenuePerRequest
}

// Analysis is the business outcome of one hosting run.
type Analysis struct {
	// Savings is the infrastructure cost avoided versus the on-demand
	// baseline.
	Savings float64
	// LostToDowntime prices the downtime seconds.
	LostToDowntime float64
	// LostToDegradation prices the degraded-mode seconds.
	LostToDegradation float64
	// Net is Savings minus both losses: positive means spot hosting paid
	// off.
	Net float64
	// BreakEvenDowntime is how much downtime (seconds over the horizon)
	// would exactly cancel the savings; +Inf when revenue is free.
	BreakEvenDowntime sim.Duration
	// HeadroomFactor is BreakEvenDowntime / actual downtime: how many
	// times worse availability could get before spot hosting stops
	// paying. 0 when already negative-net with no downtime headroom.
	HeadroomFactor float64
}

// WorthIt reports whether spot hosting beat the baseline after revenue
// losses.
func (a Analysis) WorthIt() bool { return a.Net > 0 }

// Analyze prices a run report under the model.
func Analyze(m RevenueModel, r metrics.Report) (Analysis, error) {
	if err := m.Validate(); err != nil {
		return Analysis{}, err
	}
	rate := m.RevenuePerSecond()
	a := Analysis{
		Savings:           r.BaselineCost - r.Cost,
		LostToDowntime:    rate * r.DowntimeSeconds,
		LostToDegradation: rate * m.DegradedLossFactor * r.DegradedSeconds,
	}
	a.Net = a.Savings - a.LostToDowntime - a.LostToDegradation
	if rate > 0 {
		// Downtime that would consume all savings (ignoring degradation,
		// which scales with downtime mechanics, not linearly with it).
		a.BreakEvenDowntime = a.Savings / rate
		switch {
		case r.DowntimeSeconds > 0:
			a.HeadroomFactor = float64(a.BreakEvenDowntime) / r.DowntimeSeconds
		case a.Savings > 0:
			a.HeadroomFactor = 1e12 // effectively unlimited headroom
		}
	} else {
		a.BreakEvenDowntime = sim.Duration(1e18)
		a.HeadroomFactor = 1e12
	}
	return a, nil
}

// String renders the analysis.
func (a Analysis) String() string {
	return fmt.Sprintf(
		"savings=$%.2f lost(down)=$%.2f lost(degraded)=$%.2f net=$%.2f headroom=%.1fx worth-it=%v",
		a.Savings, a.LostToDowntime, a.LostToDegradation, a.Net, a.HeadroomFactor, a.WorthIt())
}

// MaxTolerableUnavailability returns the unavailability fraction at which
// the given normalized savings fraction is exactly cancelled, for a
// service whose revenue rate is revenuePerHour and whose on-demand
// baseline costs baselinePerHour. Above it, stay on-demand.
//
//	savings/hour = baselinePerHour x (1 - normalizedCost)
//	loss/hour    = revenuePerHour x unavailability
func MaxTolerableUnavailability(baselinePerHour, normalizedCost, revenuePerHour float64) float64 {
	if revenuePerHour <= 0 {
		return 1
	}
	u := baselinePerHour * (1 - normalizedCost) / revenuePerHour
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}
