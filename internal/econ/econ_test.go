package econ

import (
	"math"
	"strings"
	"testing"

	"spothost/internal/metrics"
	"spothost/internal/sim"
)

var shop = RevenueModel{
	RequestsPerSecond:  50,
	RevenuePerRequest:  0.002, // $0.10/s of revenue
	DegradedLossFactor: 0.3,
}

func TestModelValidation(t *testing.T) {
	if err := shop.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RevenueModel{
		{RequestsPerSecond: -1},
		{RevenuePerRequest: -1},
		{DegradedLossFactor: 2},
		{DegradedLossFactor: -0.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	if _, err := Analyze(bad[0], metrics.Report{}); err == nil {
		t.Fatal("Analyze accepted a bad model")
	}
}

func TestAnalyzeArithmetic(t *testing.T) {
	r := metrics.Report{
		Horizon:         30 * sim.Day,
		Cost:            10,
		BaselineCost:    45,
		DowntimeSeconds: 60,
		DegradedSeconds: 100,
	}
	a, err := Analyze(shop, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Savings-35) > 1e-9 {
		t.Fatalf("savings = %v", a.Savings)
	}
	// $0.10/s x 60 s = $6 down; $0.10 x 0.3 x 100 = $3 degraded.
	if math.Abs(a.LostToDowntime-6) > 1e-9 || math.Abs(a.LostToDegradation-3) > 1e-9 {
		t.Fatalf("losses: %v / %v", a.LostToDowntime, a.LostToDegradation)
	}
	if math.Abs(a.Net-26) > 1e-9 || !a.WorthIt() {
		t.Fatalf("net = %v", a.Net)
	}
	// Break-even: $35 / $0.10 per second = 350 s of downtime.
	if math.Abs(float64(a.BreakEvenDowntime)-350) > 1e-9 {
		t.Fatalf("break-even = %v", a.BreakEvenDowntime)
	}
	if math.Abs(a.HeadroomFactor-350.0/60) > 1e-9 {
		t.Fatalf("headroom = %v", a.HeadroomFactor)
	}
	if !strings.Contains(a.String(), "worth-it=true") {
		t.Fatalf("render: %s", a.String())
	}
}

func TestAnalyzeHighValueTraffic(t *testing.T) {
	// A service earning $20/s: one pure-spot style outage of 1000 s wipes
	// out any infrastructure savings.
	whale := RevenueModel{RequestsPerSecond: 1000, RevenuePerRequest: 0.02}
	r := metrics.Report{Cost: 10, BaselineCost: 45, DowntimeSeconds: 1000}
	a, err := Analyze(whale, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.WorthIt() {
		t.Fatalf("spot hosting should not pay here: %+v", a)
	}
	if a.HeadroomFactor >= 1 {
		t.Fatalf("headroom %v should be < 1 when under water", a.HeadroomFactor)
	}
}

func TestAnalyzeFreeTraffic(t *testing.T) {
	free := RevenueModel{}
	r := metrics.Report{Cost: 10, BaselineCost: 45, DowntimeSeconds: 1e6}
	a, err := Analyze(free, r)
	if err != nil {
		t.Fatal(err)
	}
	if !a.WorthIt() || a.LostToDowntime != 0 {
		t.Fatalf("free traffic: %+v", a)
	}
	if a.HeadroomFactor < 1e9 {
		t.Fatalf("free traffic headroom should be unbounded: %v", a.HeadroomFactor)
	}
}

func TestAnalyzeZeroDowntimeHeadroom(t *testing.T) {
	r := metrics.Report{Cost: 10, BaselineCost: 45}
	a, err := Analyze(shop, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.HeadroomFactor < 1e9 {
		t.Fatalf("zero-downtime headroom should be unbounded: %v", a.HeadroomFactor)
	}
}

func TestMaxTolerableUnavailability(t *testing.T) {
	// Baseline $0.06/hr, spot at 20%: saves $0.048/hr. Revenue $48/hr:
	// tolerable unavailability = 0.048/48 = 0.1%.
	got := MaxTolerableUnavailability(0.06, 0.2, 48)
	if math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("tolerable = %v, want 0.001", got)
	}
	// Free traffic tolerates anything.
	if MaxTolerableUnavailability(0.06, 0.2, 0) != 1 {
		t.Fatal("free traffic should tolerate 1")
	}
	// Tiny revenue: clamped to 1.
	if MaxTolerableUnavailability(100, 0, 1) != 1 {
		t.Fatal("clamp high failed")
	}
	// Negative savings: clamped to 0.
	if MaxTolerableUnavailability(0.06, 1.5, 48) != 0 {
		t.Fatal("clamp low failed")
	}
}

// TestFourNinesConsistency ties the econ model back to the paper: with the
// measured proactive numbers (19% cost, ~0.004% unavailability on a small
// server) spot hosting pays off for any service whose revenue is below
// ~$1.2/hr per $0.06/hr server — and the four-nines bar itself (0.01%) is
// the tolerable limit when revenue is ~$0.48/hr per server.
func TestFourNinesConsistency(t *testing.T) {
	tolerable := MaxTolerableUnavailability(0.06, 0.19, 0.486)
	if tolerable < 0.9999e-1 && math.Abs(tolerable-0.0001) > 2e-5 {
		t.Fatalf("tolerable = %v, want ~1e-4 (four nines)", tolerable)
	}
}
