package market

import (
	"math"
	"math/rand"
	"testing"

	"spothost/internal/sim"
)

// gridStd is the old sampling-based standard deviation: sample the trace on
// a uniform grid and take the population std of the samples. Kept here as
// the slow-path reference the closed-form segment statistics must agree
// with (exactly, in the limit of a fine grid).
func gridStd(tr *Trace, step sim.Duration) float64 {
	xs := tr.Sample(0, tr.End(), step)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// gridCorrelation is the old sampling-based Pearson correlation over the
// common span of two traces.
func gridCorrelation(a, b *Trace, step sim.Duration) float64 {
	end := a.End()
	if b.End() < end {
		end = b.End()
	}
	as := a.Sample(0, end, step)
	bs := b.Sample(0, end, step)
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += as[i]
		sb += bs[i]
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var saa, sbb, sab float64
	for i := 0; i < n; i++ {
		da, db := as[i]-ma, bs[i]-mb
		saa += da * da
		sbb += db * db
		sab += da * db
	}
	// Guard with a relative epsilon: a constant series can pick up tiny
	// nonzero variance from summation rounding, which would correlate as
	// pure noise (±1).
	if saa <= 1e-18*float64(n)*ma*ma || sbb <= 1e-18*float64(n)*mb*mb {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// Tolerances for the closed-form vs. sampled comparison: correlations are
// dimensionless on [-1, 1], so they are compared on an absolute scale
// (0.01 — the same tolerance EXPERIMENTS.md documents for the Fig. 8b/9b
// columns); standard deviations are compared at 1% relative.
const (
	corrTol = 0.01
	stdTol  = 0.01
)

func TestStdDevMatchesFineGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng)
		got := StdDev(tr)
		want := gridStd(tr, 2)
		if math.Abs(got-want) > stdTol*(want+1e-6) {
			t.Fatalf("trial %d: closed-form std %v vs fine-grid %v", trial, got, want)
		}
	}
}

func TestCorrelationMatchesFineGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		// Correlate a trace with a noisy copy of itself so the reference
		// correlation is well away from zero.
		a := randomTrace(rng)
		pts := make([]Point, 0, a.Len())
		for _, p := range a.Points() {
			pts = append(pts, Point{T: p.T, Price: p.Price * (0.5 + rng.Float64())})
		}
		b, err := NewTrace(a.ID(), pts, a.End())
		if err != nil {
			t.Fatal(err)
		}
		got := Correlation(a, b)
		want := gridCorrelation(a, b, 2)
		if math.Abs(got-want) > corrTol {
			t.Fatalf("trial %d: closed-form corr %v vs fine-grid %v", trial, got, want)
		}
	}
}

func TestCorrelationIndependentTraces(t *testing.T) {
	// Fully independent traces: closed-form and fine grid must agree that
	// the correlation is small, and with each other.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		a, b := randomTrace(rng), randomTrace(rng)
		got := Correlation(a, b)
		want := gridCorrelation(a, b, 2)
		if math.Abs(got-want) > corrTol {
			t.Fatalf("trial %d: closed-form corr %v vs fine-grid %v", trial, got, want)
		}
	}
}

func TestTimeWeightedMeanMatchesFineGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng)
		got := tr.TimeWeightedMean(0, tr.End())
		xs := tr.Sample(0, tr.End(), 2)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		want := sum / float64(len(xs))
		if math.Abs(got-want) > stdTol*(want+1e-6) {
			t.Fatalf("trial %d: closed-form mean %v vs fine-grid %v", trial, got, want)
		}
	}
}
