package market_test

import (
	"fmt"
	"log"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// ExampleGenerate builds a synthetic month of spot prices and inspects the
// statistics the paper's algorithms exploit.
func ExampleGenerate() {
	set, err := market.Generate(market.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	id := market.ID{Region: "us-east-1a", Type: "small"}
	s := market.Summarize(set, id)
	fmt.Printf("markets=%d regions=%d\n", len(set.IDs()), len(set.Regions()))
	fmt.Printf("cheap=%v spiky=%v\n",
		s.Mean < 0.5*s.OnDemand, // mean price far below on-demand
		s.Max > s.OnDemand)      // but it does spike past it
	// Output:
	// markets=16 regions=4
	// cheap=true spiky=true
}

// ExampleNewTrace builds a hand-written price script and queries it.
func ExampleNewTrace() {
	id := market.ID{Region: "us-east-1a", Type: "small"}
	tr, err := market.NewTrace(id, []market.Point{
		{T: 0, Price: 0.010},
		{T: 7200, Price: 0.095},
		{T: 10800, Price: 0.012},
	}, 24*sim.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("price@1h=%.3f price@2.5h=%.3f\n", tr.PriceAt(3600), tr.PriceAt(9000))
	fmt.Printf("time above $0.06: %.1f%%\n", 100*tr.FractionAbove(0.06, 0, tr.End()))
	// Output:
	// price@1h=0.010 price@2.5h=0.095
	// time above $0.06: 4.2%
}
