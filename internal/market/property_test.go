package market

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spothost/internal/sim"
)

// randomTrace builds a random but valid trace from a quick-check seed.
func randomTrace(rng *rand.Rand) *Trace {
	n := rng.Intn(40) + 1
	pts := make([]Point, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		pts = append(pts, Point{T: t, Price: rng.Float64()*2 + 0.001})
		t += rng.Float64()*5000 + 1
	}
	tr, err := NewTrace(ID{Region: "r-1a", Type: "small"}, pts, t+3600)
	if err != nil {
		panic(err)
	}
	return tr
}

// TestTracePriceAtWithinMinMax: PriceAt never escapes [Min, Max].
func TestTracePriceAtWithinMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(q uint16) bool {
		tr := randomTrace(rng)
		at := float64(q) / 65535 * tr.End() * 1.2 // include past-end queries
		p := tr.PriceAt(at)
		return p >= tr.Min() && p <= tr.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceTimeWeightedMeanWithinMinMax: the mean of any window lies
// between the extremes.
func TestTraceTimeWeightedMeanWithinMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func(a, b uint16) bool {
		tr := randomTrace(rng)
		t0 := float64(a) / 65535 * tr.End()
		t1 := float64(b) / 65535 * tr.End()
		if t1 < t0 {
			t0, t1 = t1, t0
		}
		m := tr.TimeWeightedMean(t0, t1)
		return m >= tr.Min()-1e-12 && m <= tr.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceFractionAboveBounds: always a fraction, monotone in the
// threshold.
func TestTraceFractionAboveBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(q uint8) bool {
		tr := randomTrace(rng)
		lo := float64(q) / 255 * 2
		hi := lo + 0.2
		fa := tr.FractionAbove(lo, 0, tr.End())
		fb := tr.FractionAbove(hi, 0, tr.End())
		return fa >= 0 && fa <= 1 && fb >= 0 && fb <= 1 && fb <= fa+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceNextChangeConsistency: walking the trace via NextChangeAfter
// visits exactly the coalesced points and their prices match PriceAt.
func TestTraceNextChangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		tr := randomTrace(rng)
		cur := tr.Start()
		visited := 1
		for {
			nt, np, ok := tr.NextChangeAfter(cur)
			if !ok {
				break
			}
			if nt <= cur {
				t.Fatal("NextChangeAfter did not advance")
			}
			if got := tr.PriceAt(nt); got != np {
				t.Fatalf("PriceAt(%v) = %v, change says %v", nt, got, np)
			}
			cur = nt
			visited++
		}
		if visited != tr.Len() {
			t.Fatalf("visited %d of %d points", visited, tr.Len())
		}
	}
}

// TestSampleMatchesPriceAt: every sampled value equals a PriceAt query.
func TestSampleMatchesPriceAt(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng)
		step := sim.Duration(rng.Float64()*900 + 10)
		samples := tr.Sample(0, tr.End(), step)
		for i, v := range samples {
			at := sim.Time(i) * step
			if got := tr.PriceAt(at); got != v {
				t.Fatalf("sample %d: %v vs PriceAt %v", i, v, got)
			}
		}
	}
}
