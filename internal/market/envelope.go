package market

import (
	"sort"

	"spothost/internal/sim"
)

// envSeg is one piece of a lower envelope: from t until the next segment's
// t, candidate arg is the (weighted) cheapest market.
type envSeg struct {
	t        sim.Time
	arg      int     // index into Envelope.ids
	price    float64 // winner's raw spot price
	weighted float64 // weights[arg] * price
}

// Envelope is the precomputed lower envelope of a candidate market subset:
// for every instant it records which candidate has the lowest weighted spot
// price and what that price is. It replaces the per-decision "scan all M
// traces" loop in the scheduler and fleet strategies with an O(1) amortized
// cursor lookup.
//
// The winner at each instant is the FIRST candidate (in ids order) whose
// weighted price is strictly minimal — exactly the pick of a linear scan
// over ids using strict-< comparison, so adopting the envelope cannot
// change results.
//
// An Envelope is immutable after construction and safe to share across
// goroutines; EnvelopeCursor holds the per-run mutable position.
type Envelope struct {
	ids     []ID
	weights []float64
	segs    []envSeg
	end     sim.Time
}

// buildEnvelope sweeps the merged segment boundaries of the candidate
// traces and records the weighted argmin on each piece. Cost is
// O(T log T + T*M) for T total points across M candidates, paid once per
// (set, candidates, weights) and memoized on the Set.
func buildEnvelope(s *Set, ids []ID, weights []float64) *Envelope {
	traces := make([]*Trace, len(ids))
	total := 0
	end := sim.Time(0)
	for i, id := range ids {
		tr := s.Trace(id)
		if tr == nil {
			return nil
		}
		traces[i] = tr
		total += tr.Len()
		if i == 0 || tr.End() < end {
			end = tr.End()
		}
	}
	w := weights
	if w == nil {
		w = make([]float64, len(ids))
		for i := range w {
			w[i] = 1
		}
	} else {
		w = append([]float64(nil), w...)
	}

	// Merged boundary times: every candidate's change points, plus 0 so the
	// envelope covers clamped queries before the first change.
	times := make([]sim.Time, 0, total+1)
	times = append(times, 0)
	for _, tr := range traces {
		for _, t := range tr.times {
			if t < end {
				times = append(times, t)
			}
		}
	}
	sort.Float64s(times)

	e := &Envelope{ids: append([]ID(nil), ids...), weights: w, end: end}
	e.segs = make([]envSeg, 0, len(times))
	idx := make([]int, len(ids)) // per-trace index of last point with T <= t
	prev := sim.Time(-1)
	for _, t := range times {
		if t == prev {
			continue // dedupe shared boundaries
		}
		prev = t
		arg, best, bestW := -1, 0.0, 0.0
		for i, tr := range traces {
			j := idx[i]
			for j+1 < len(tr.times) && tr.times[j+1] <= t {
				j++
			}
			idx[i] = j
			p := tr.prices[j]
			wp := w[i] * p
			if arg == -1 || wp < bestW {
				arg, best, bestW = i, p, wp
			}
		}
		if n := len(e.segs); n > 0 && e.segs[n-1].arg == arg && e.segs[n-1].price == best {
			continue // coalesce: winner and price unchanged
		}
		e.segs = append(e.segs, envSeg{t: t, arg: arg, price: best, weighted: bestW})
	}
	return e
}

// IDs returns the candidate markets, in scan order. Callers must not modify
// the result.
func (e *Envelope) IDs() []ID { return e.ids }

// Len returns the number of envelope segments.
func (e *Envelope) Len() int { return len(e.segs) }

// End returns the envelope's horizon (the earliest candidate trace end).
func (e *Envelope) End() sim.Time { return e.end }

// At returns the cheapest candidate at time t by binary search: the market,
// its raw price, and its weighted price. Prefer Cursor for the monotone
// queries of a simulation clock.
func (e *Envelope) At(t sim.Time) (id ID, price, weighted float64) {
	i := sort.Search(len(e.segs), func(j int) bool { return e.segs[j].t > t }) - 1
	if i < 0 {
		i = 0
	}
	s := e.segs[i]
	return e.ids[s.arg], s.price, s.weighted
}

// Cursor returns a new cursor over the envelope, positioned at the start.
type EnvelopeCursor struct {
	e *Envelope
	i int
}

// Cursor returns a fresh per-run cursor for monotone queries.
func (e *Envelope) Cursor() *EnvelopeCursor { return &EnvelopeCursor{e: e} }

// At returns the cheapest candidate at time t with O(1) amortized cost for
// non-decreasing t; backward queries re-seek with a binary search.
func (c *EnvelopeCursor) At(t sim.Time) (id ID, price, weighted float64) {
	segs := c.e.segs
	i := c.i
	if segs[i].t > t {
		i = sort.Search(len(segs), func(j int) bool { return segs[j].t > t }) - 1
		if i < 0 {
			i = 0
		}
	} else {
		steps := 0
		for i+1 < len(segs) && segs[i+1].t <= t {
			i++
			steps++
			if steps == cursorGallopLimit {
				rest := segs[i+1:]
				i += sort.Search(len(rest), func(j int) bool { return rest[j].t > t })
				break
			}
		}
	}
	c.i = i
	s := segs[i]
	return c.e.ids[s.arg], s.price, s.weighted
}
