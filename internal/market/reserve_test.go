package market

import (
	"testing"

	"spothost/internal/sim"
)

func TestReserveConfigValidation(t *testing.T) {
	good := DefaultReserveConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ReserveConfig){
		func(c *ReserveConfig) { c.Regions = nil },
		func(c *ReserveConfig) { c.Types = nil },
		func(c *ReserveConfig) { c.Horizon = 10 },
		func(c *ReserveConfig) { c.FloorRatio = 0 },
		func(c *ReserveConfig) { c.CeilRatio = c.FloorRatio },
		func(c *ReserveConfig) { c.ChangeMean = 0 },
		func(c *ReserveConfig) { c.Persistence = 1 },
		func(c *ReserveConfig) { c.SpikesPerDay = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultReserveConfig(1)
		mutate(&cfg)
		if _, err := GenerateReserve(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestReserveBandedRegime: without spikes, every price stays strictly
// inside the [floor, ceiling] x on-demand band — below the on-demand price,
// so bid = on-demand can never be revoked.
func TestReserveBandedRegime(t *testing.T) {
	cfg := DefaultReserveConfig(5)
	cfg.Horizon = 10 * sim.Day
	set, err := GenerateReserve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.IDs()) != 16 {
		t.Fatalf("markets = %d", len(set.IDs()))
	}
	for _, id := range set.IDs() {
		tr := set.Trace(id)
		od := set.OnDemand(id)
		lo, hi := cfg.FloorRatio*od, cfg.CeilRatio*od
		if tr.Min() < lo-1e-12 || tr.Max() > hi+1e-12 {
			t.Errorf("%s: prices [%v, %v] escape band [%v, %v]",
				id, tr.Min(), tr.Max(), lo, hi)
		}
		if tr.FractionAbove(od, 0, tr.End()) != 0 {
			t.Errorf("%s: banded price exceeded on-demand", id)
		}
		if tr.Len() < 50 {
			t.Errorf("%s: suspiciously static trace (%d points)", id, tr.Len())
		}
	}
}

// TestReserveWithSpikesEscapesBand: the spike overlay restores excursions
// above on-demand.
func TestReserveWithSpikesEscapesBand(t *testing.T) {
	cfg := DefaultReserveConfig(7)
	cfg.Horizon = 15 * sim.Day
	cfg.SpikesPerDay = 3
	set, err := GenerateReserve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	escaped := false
	for _, id := range set.IDs() {
		if set.Trace(id).Max() > set.OnDemand(id) {
			escaped = true
			break
		}
	}
	if !escaped {
		t.Fatal("no market ever exceeded on-demand despite spikes")
	}
}

func TestReserveDeterminism(t *testing.T) {
	cfg := DefaultReserveConfig(3)
	cfg.Horizon = 3 * sim.Day
	a, err := GenerateReserve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateReserve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := a.IDs()[0]
	pa, pb := a.Trace(id).Points(), b.Trace(id).Points()
	if len(pa) != len(pb) {
		t.Fatalf("lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}
