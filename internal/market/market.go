// Package market models cloud spot markets: identifiers for (region,
// instance type) pairs, piecewise-constant price traces, a synthetic price
// generator whose dynamics are calibrated to the behaviour the paper's
// algorithms exploit, and CSV import/export for replaying real AWS spot
// price history.
//
// The paper seeds its simulations with Amazon's published spot price
// history (Fig. 1). That data is not available offline, so Generate
// produces synthetic traces with the same load-bearing properties:
//
//   - a low, slowly wandering base price (10-30 % of on-demand),
//   - a Poisson process of sharp price spikes with heavy-tailed magnitude,
//     occasionally exceeding the on-demand price and, rarely, the 4x
//     on-demand bid cap,
//   - region-scaled volatility (us-east markets spike more than eu-west,
//     Fig. 10),
//   - weak cross-market and cross-region correlation produced by shared
//     shock processes (Fig. 8b, 9b).
package market

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"spothost/internal/sim"
)

// Region names a cloud region/availability-zone, e.g. "us-east-1a".
type Region string

// InstanceType names a server size, e.g. "small".
type InstanceType string

// ID identifies one spot market: an instance type sold in a region.
type ID struct {
	Region Region
	Type   InstanceType
}

// String returns "region/type".
func (id ID) String() string { return string(id.Region) + "/" + string(id.Type) }

// MarshalText renders the ID as "region/type", making it usable as a JSON
// map key (fleet reports keyed by market stream over the control-plane
// API). encoding/json sorts text-marshaled map keys, so such documents
// are deterministic.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses "region/type".
func (id *ID) UnmarshalText(b []byte) error {
	s := string(b)
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return fmt.Errorf("market: bad ID %q, want region/type", s)
	}
	id.Region, id.Type = Region(s[:i]), InstanceType(s[i+1:])
	return nil
}

// Point is one step of a piecewise-constant price trace: the price holds
// from T until the next point's T.
type Point struct {
	T     sim.Time
	Price float64
}

// Trace is a piecewise-constant spot price series for one market over
// [Start, End). Steps are strictly increasing in time; the first step is
// at Start.
//
// Storage is columnar (struct-of-arrays): step times and prices live in
// separate slices, so the cursor seek loops and the sweep engine's
// divergence oracles scan 8 bytes per step instead of 16, and NewSet can
// repack every trace of a universe into one shared arena for locality.
// The AoS view is still available through Points(), materialized lazily
// for compatibility.
type Trace struct {
	id     ID
	times  []sim.Time // column: step times, strictly increasing
	prices []float64  // column: price in effect from times[i]
	end    sim.Time

	// pts is the lazily materialized []Point compatibility view.
	ptsOnce sync.Once
	pts     []Point
}

// NewTrace builds a trace from points, which must be non-empty, sorted by
// time, and all have positive prices; end must be after the last point.
// Consecutive points with equal prices are coalesced.
func NewTrace(id ID, points []Point, end sim.Time) (*Trace, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("market: trace %s has no points", id)
	}
	times := make([]sim.Time, 0, len(points))
	prices := make([]float64, 0, len(points))
	for i, p := range points {
		if p.Price <= 0 {
			return nil, fmt.Errorf("market: trace %s has non-positive price %v at t=%v", id, p.Price, p.T)
		}
		if i > 0 && p.T <= points[i-1].T {
			return nil, fmt.Errorf("market: trace %s has non-increasing time at index %d", id, i)
		}
		if len(prices) > 0 && prices[len(prices)-1] == p.Price {
			continue // coalesce equal consecutive prices
		}
		times = append(times, p.T)
		prices = append(prices, p.Price)
	}
	if end <= times[len(times)-1] {
		return nil, fmt.Errorf("market: trace %s end %v not after last point %v", id, end, times[len(times)-1])
	}
	return &Trace{id: id, times: times, prices: prices, end: end}, nil
}

// ID returns the market this trace belongs to.
func (tr *Trace) ID() ID { return tr.id }

// Start returns the time of the first point.
func (tr *Trace) Start() sim.Time { return tr.times[0] }

// End returns the exclusive end of the trace.
func (tr *Trace) End() sim.Time { return tr.end }

// Len returns the number of price steps.
func (tr *Trace) Len() int { return len(tr.times) }

// Times returns the step-time column: strictly increasing times at which
// the price changes. Callers must not modify the result.
func (tr *Trace) Times() []sim.Time { return tr.times }

// Prices returns the price column: Prices()[i] holds from Times()[i] until
// Times()[i+1] (or End). Callers must not modify the result.
func (tr *Trace) Prices() []float64 { return tr.prices }

// Points returns the steps as an array-of-structs view, materialized
// lazily on first call (the canonical storage is columnar; hot paths read
// Times/Prices directly). Callers must not modify the result.
func (tr *Trace) Points() []Point {
	tr.ptsOnce.Do(func() {
		pts := make([]Point, len(tr.times))
		for i, t := range tr.times {
			pts[i] = Point{T: t, Price: tr.prices[i]}
		}
		tr.pts = pts
	})
	return tr.pts
}

// PriceAt returns the price in effect at time t. Times before Start clamp
// to the first price; times at or beyond End clamp to the last.
func (tr *Trace) PriceAt(t sim.Time) float64 {
	// Index of the last step with time <= t.
	i := sort.Search(len(tr.times), func(i int) bool { return tr.times[i] > t })
	if i == 0 {
		return tr.prices[0]
	}
	return tr.prices[i-1]
}

// NextChangeAfter returns the time and price of the first step strictly
// after t. ok is false when no further change exists before End.
func (tr *Trace) NextChangeAfter(t sim.Time) (at sim.Time, price float64, ok bool) {
	i := sort.Search(len(tr.times), func(i int) bool { return tr.times[i] > t })
	if i >= len(tr.times) {
		return 0, 0, false
	}
	return tr.times[i], tr.prices[i], true
}

// Sample evaluates the trace on a uniform grid [start, end) with the given
// step and returns the sampled prices. The statistics of Fig. 8b, 9b and 10
// are now computed in closed form (see analysis.go); Sample remains as the
// slow-path reference those property tests compare against.
func (tr *Trace) Sample(start, end sim.Time, step sim.Duration) []float64 {
	if step <= 0 || end <= start {
		return nil
	}
	n := int((end - start) / step)
	out := make([]float64, 0, n)
	ts := tr.times
	i := sort.Search(len(ts), func(j int) bool { return ts[j] > start }) - 1
	if i < 0 {
		i = 0 // grid points before the first step clamp to the first price
	}
	for t := start; t < end; t += step {
		for i+1 < len(ts) && ts[i+1] <= t {
			i++
		}
		out = append(out, tr.prices[i])
	}
	return out
}

// TimeWeightedMean returns the time-weighted average price over the window
// [start, end) (clamped to the trace extent).
func (tr *Trace) TimeWeightedMean(start, end sim.Time) float64 {
	if end > tr.end {
		end = tr.end
	}
	if start < tr.Start() {
		start = tr.Start()
	}
	if end <= start {
		return tr.PriceAt(start)
	}
	ts := tr.times
	i := sort.Search(len(ts), func(j int) bool { return ts[j] > start }) - 1
	if i < 0 {
		i = 0
	}
	total := 0.0
	t := start
	p := tr.prices[i]
	for i+1 < len(ts) && ts[i+1] < end {
		total += p * (ts[i+1] - t)
		t, p = ts[i+1], tr.prices[i+1]
		i++
	}
	total += p * (end - t)
	return total / (end - start)
}

// FractionAbove returns the fraction of [start, end) during which the price
// strictly exceeds threshold. This drives the pure-spot unavailability
// analysis (Fig. 11b).
func (tr *Trace) FractionAbove(threshold float64, start, end sim.Time) float64 {
	if end > tr.end {
		end = tr.end
	}
	if start < tr.Start() {
		start = tr.Start()
	}
	if end <= start {
		return 0
	}
	ts := tr.times
	i := sort.Search(len(ts), func(j int) bool { return ts[j] > start }) - 1
	if i < 0 {
		i = 0
	}
	above := 0.0
	t := start
	p := tr.prices[i]
	for {
		seg := end
		if i+1 < len(ts) && ts[i+1] < end {
			seg = ts[i+1]
		}
		if p > threshold {
			above += seg - t
		}
		if i+1 >= len(ts) || ts[i+1] >= end {
			break
		}
		i++
		t, p = ts[i], tr.prices[i]
	}
	frac := above / (end - start)
	// Clamp float accumulation error: the result is a fraction by
	// construction.
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

// Max returns the maximum price over the whole trace.
func (tr *Trace) Max() float64 {
	m := 0.0
	for _, p := range tr.prices {
		if p > m {
			m = p
		}
	}
	return m
}

// Min returns the minimum price over the whole trace.
func (tr *Trace) Min() float64 {
	m := tr.prices[0]
	for _, p := range tr.prices {
		if p < m {
			m = p
		}
	}
	return m
}

// Set is a collection of traces for a universe of markets plus the
// on-demand price catalog they were generated against.
type Set struct {
	traces   map[ID]*Trace
	onDemand map[ID]float64
	types    map[InstanceType]TypeSpec // typed view; nil for untyped sets
	start    sim.Time
	end      sim.Time

	// Lower-envelope memoization: sets are immutable once built and shared
	// across runs via market.Cache, so each (candidates, weights) envelope
	// is built once and reused by every concurrent simulation.
	envMu sync.Mutex
	envs  map[string]*envEntry
}

type envEntry struct {
	once sync.Once
	env  *Envelope
}

// Envelope returns the precomputed lower envelope over the given candidate
// markets, memoized on the set. weights scales each candidate's price when
// comparing (nil means all 1). The result is shared and immutable; use
// Envelope.Cursor for monotone queries. Returns nil when ids is empty or
// any id has no trace in the set.
func (s *Set) Envelope(ids []ID, weights []float64) *Envelope {
	if len(ids) == 0 || (weights != nil && len(weights) != len(ids)) {
		return nil
	}
	var key strings.Builder
	for i, id := range ids {
		key.WriteString(id.String())
		key.WriteByte('|')
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		key.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
		key.WriteByte(';')
	}
	k := key.String()
	s.envMu.Lock()
	e, ok := s.envs[k]
	if !ok {
		if s.envs == nil {
			s.envs = map[string]*envEntry{}
		}
		e = &envEntry{}
		s.envs[k] = e
	}
	s.envMu.Unlock()
	e.once.Do(func() { e.env = buildEnvelope(s, ids, weights) })
	return e.env
}

// NewSet assembles a Set from traces and an on-demand price catalog. Every
// trace must have a catalog entry.
//
// The set repacks every trace's columns into one shared arena (one times
// slab, one prices slab for the whole universe): a Set is immutable and
// shared read-only across all concurrent workers of a sweep, so the arena
// gives every simulation of the universe the same two contiguous,
// cache-friendly slabs instead of two allocations per market. The input
// traces are not modified.
func NewSet(traces []*Trace, onDemand map[ID]float64) (*Set, error) {
	return NewSetTyped(traces, onDemand, nil)
}

// NewSetTyped is NewSet with an attached instance-type table: the typed
// source of truth for sets built from a catalog (Generate attaches its
// config's types automatically). types may be nil for untyped sets
// (replayed price files without size metadata); when present, every
// trace's instance type must appear in it.
func NewSetTyped(traces []*Trace, onDemand map[ID]float64, types []TypeSpec) (*Set, error) {
	s := &Set{traces: map[ID]*Trace{}, onDemand: map[ID]float64{}}
	if types != nil {
		s.types = make(map[InstanceType]TypeSpec, len(types))
		for _, ts := range types {
			s.types[ts.Name] = ts
		}
	}
	total := 0
	for _, tr := range traces {
		if _, dup := s.traces[tr.id]; dup {
			return nil, fmt.Errorf("market: duplicate trace %s", tr.id)
		}
		od, ok := onDemand[tr.id]
		if !ok || od <= 0 {
			return nil, fmt.Errorf("market: missing/invalid on-demand price for %s", tr.id)
		}
		if s.types != nil {
			if _, ok := s.types[tr.id.Type]; !ok {
				return nil, fmt.Errorf("market: trace %s has no type table entry for %q", tr.id, tr.id.Type)
			}
		}
		s.traces[tr.id] = tr
		s.onDemand[tr.id] = od
		total += tr.Len()
		if s.end == 0 || tr.End() < s.end {
			s.end = tr.End()
		}
	}
	if len(s.traces) == 0 {
		return nil, fmt.Errorf("market: empty set")
	}
	// Repack into the arena in deterministic (sorted-ID) order.
	arenaT := make([]sim.Time, 0, total)
	arenaP := make([]float64, 0, total)
	for _, id := range s.IDs() {
		tr := s.traces[id]
		lo := len(arenaT)
		arenaT = append(arenaT, tr.times...)
		arenaP = append(arenaP, tr.prices...)
		s.traces[id] = &Trace{
			id:     tr.id,
			times:  arenaT[lo:len(arenaT):len(arenaT)],
			prices: arenaP[lo:len(arenaP):len(arenaP)],
			end:    tr.end,
		}
	}
	return s, nil
}

// Trace returns the trace for id, or nil when absent.
func (s *Set) Trace(id ID) *Trace { return s.traces[id] }

// OnDemand returns the fixed on-demand price for the market's instance
// type in its region, or 0 when unknown.
func (s *Set) OnDemand(id ID) float64 { return s.onDemand[id] }

// TypeSpec returns the set's size metadata for an instance type, with
// ok=false for untyped sets (replayed files) or unknown types.
func (s *Set) TypeSpec(t InstanceType) (TypeSpec, bool) {
	ts, ok := s.types[t]
	return ts, ok
}

// Horizon returns the common usable end time across all traces.
func (s *Set) Horizon() sim.Time { return s.end }

// IDs returns all market identifiers, sorted for determinism.
func (s *Set) IDs() []ID {
	ids := make([]ID, 0, len(s.traces))
	for id := range s.traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Region != ids[j].Region {
			return ids[i].Region < ids[j].Region
		}
		return ids[i].Type < ids[j].Type
	})
	return ids
}

// Regions returns the distinct regions present, sorted.
func (s *Set) Regions() []Region {
	seen := map[Region]bool{}
	var out []Region
	for _, id := range s.IDs() {
		if !seen[id.Region] {
			seen[id.Region] = true
			out = append(out, id.Region)
		}
	}
	return out
}

// TypesIn returns the instance types available in a region, sorted.
func (s *Set) TypesIn(r Region) []InstanceType {
	var out []InstanceType
	for _, id := range s.IDs() {
		if id.Region == r {
			out = append(out, id.Type)
		}
	}
	return out
}
