package market

import (
	"spothost/internal/sim"
	"spothost/internal/stats"
)

// DefaultSampleStep is the grid formerly used to sample traces for
// correlation and standard-deviation statistics (5 minutes, matching
// typical spot price history granularity). The statistics below are now
// exact closed forms over the piecewise-constant segments; the grid
// remains as the slow-path reference their property tests compare against.
const DefaultSampleStep sim.Duration = 5 * sim.Minute

// Correlation returns the exact time-weighted Pearson correlation between
// two traces over their shared horizon [0, min end), computed by a
// two-pointer merge over the piecewise-constant segments — the statistic
// behind Fig. 8(b) and Fig. 9(b), without discretization error.
func Correlation(a, b *Trace) float64 {
	end := a.End()
	if b.End() < end {
		end = b.End()
	}
	if end <= 0 {
		return 0
	}
	ap, bp := a.points, b.points
	ia, ib := 0, 0 // index of the segment in effect at t (clamped to 0)
	t := sim.Time(0)
	for ia+1 < len(ap) && ap[ia+1].T <= t {
		ia++
	}
	for ib+1 < len(bp) && bp[ib+1].T <= t {
		ib++
	}
	pa, pb := ap[ia].Price, bp[ib].Price
	var pair stats.WeightedPair
	for t < end {
		nt := end
		if ia+1 < len(ap) && ap[ia+1].T < nt {
			nt = ap[ia+1].T
		}
		if ib+1 < len(bp) && bp[ib+1].T < nt {
			nt = bp[ib+1].T
		}
		pair.Add(pa, pb, nt-t)
		t = nt
		for ia+1 < len(ap) && ap[ia+1].T <= t {
			ia++
			pa = ap[ia].Price
		}
		for ib+1 < len(bp) && bp[ib+1].T <= t {
			ib++
			pb = bp[ib].Price
		}
	}
	return pair.Pearson()
}

// StdDev returns the exact time-weighted standard deviation of a trace's
// price over [0, End) — the per-market variability statistic of Fig. 10,
// computed in closed form over the trace segments.
func StdDev(tr *Trace) float64 {
	end := tr.End()
	if end <= 0 {
		return 0
	}
	pts := tr.points
	var m stats.WeightedMoments
	t := sim.Time(0)
	i := 0
	for i+1 < len(pts) && pts[i+1].T <= t {
		i++
	}
	for t < end {
		nt := end
		if i+1 < len(pts) && pts[i+1].T < nt {
			nt = pts[i+1].T
		}
		m.Add(pts[i].Price, nt-t)
		t = nt
		for i+1 < len(pts) && pts[i+1].T <= t {
			i++
		}
	}
	return m.PopStd()
}

// PairwiseAvgCorrelation returns the mean Pearson correlation over all
// unordered pairs of the given markets' traces. Used for the per-region
// bars of Fig. 8(b).
func PairwiseAvgCorrelation(s *Set, ids []ID) float64 {
	var sum float64
	n := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += Correlation(s.Trace(ids[i]), s.Trace(ids[j]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CrossRegionCorrelation returns the mean correlation between same-type
// markets across two regions — the statistic of Fig. 9(b).
func CrossRegionCorrelation(s *Set, a, b Region) float64 {
	var sum float64
	n := 0
	for _, t := range s.TypesIn(a) {
		ta := s.Trace(ID{Region: a, Type: t})
		tb := s.Trace(ID{Region: b, Type: t})
		if ta == nil || tb == nil {
			continue
		}
		sum += Correlation(ta, tb)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TraceSummary captures the headline statistics of one market's trace for
// reporting (Fig. 1 is rendered from these plus the raw series).
type TraceSummary struct {
	Market        ID
	OnDemand      float64
	Mean          float64 // time-weighted mean price
	Min, Max      float64
	StdDev        float64
	FracAboveOD   float64 // fraction of time price > on-demand
	FracAbove4xOD float64 // fraction of time price > 4x on-demand (bid cap)
	Steps         int
}

// Summarize computes a TraceSummary for one market of the set.
func Summarize(s *Set, id ID) TraceSummary {
	tr := s.Trace(id)
	od := s.OnDemand(id)
	return TraceSummary{
		Market:        id,
		OnDemand:      od,
		Mean:          tr.TimeWeightedMean(0, tr.End()),
		Min:           tr.Min(),
		Max:           tr.Max(),
		StdDev:        StdDev(tr),
		FracAboveOD:   tr.FractionAbove(od, 0, tr.End()),
		FracAbove4xOD: tr.FractionAbove(4*od, 0, tr.End()),
		Steps:         tr.Len(),
	}
}
