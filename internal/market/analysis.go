package market

import (
	"spothost/internal/sim"
	"spothost/internal/stats"
)

// DefaultSampleStep is the grid used when sampling traces for correlation
// and standard-deviation statistics (5 minutes, matching typical spot
// price history granularity).
const DefaultSampleStep sim.Duration = 5 * sim.Minute

// Correlation returns the Pearson correlation coefficient between two
// traces sampled on a common grid over their shared horizon. It mirrors
// the statistic behind Fig. 8(b) and Fig. 9(b).
func Correlation(a, b *Trace) float64 {
	end := a.End()
	if b.End() < end {
		end = b.End()
	}
	xs := a.Sample(0, end, DefaultSampleStep)
	ys := b.Sample(0, end, DefaultSampleStep)
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		return 0
	}
	return r
}

// StdDev returns the sampled standard deviation of a trace's price — the
// per-market variability statistic of Fig. 10.
func StdDev(tr *Trace) float64 {
	return stats.Std(tr.Sample(0, tr.End(), DefaultSampleStep))
}

// PairwiseAvgCorrelation returns the mean Pearson correlation over all
// unordered pairs of the given markets' traces. Used for the per-region
// bars of Fig. 8(b).
func PairwiseAvgCorrelation(s *Set, ids []ID) float64 {
	var sum float64
	n := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += Correlation(s.Trace(ids[i]), s.Trace(ids[j]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CrossRegionCorrelation returns the mean correlation between same-type
// markets across two regions — the statistic of Fig. 9(b).
func CrossRegionCorrelation(s *Set, a, b Region) float64 {
	var sum float64
	n := 0
	for _, t := range s.TypesIn(a) {
		ta := s.Trace(ID{Region: a, Type: t})
		tb := s.Trace(ID{Region: b, Type: t})
		if ta == nil || tb == nil {
			continue
		}
		sum += Correlation(ta, tb)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TraceSummary captures the headline statistics of one market's trace for
// reporting (Fig. 1 is rendered from these plus the raw series).
type TraceSummary struct {
	Market        ID
	OnDemand      float64
	Mean          float64 // time-weighted mean price
	Min, Max      float64
	StdDev        float64
	FracAboveOD   float64 // fraction of time price > on-demand
	FracAbove4xOD float64 // fraction of time price > 4x on-demand (bid cap)
	Steps         int
}

// Summarize computes a TraceSummary for one market of the set.
func Summarize(s *Set, id ID) TraceSummary {
	tr := s.Trace(id)
	od := s.OnDemand(id)
	return TraceSummary{
		Market:        id,
		OnDemand:      od,
		Mean:          tr.TimeWeightedMean(0, tr.End()),
		Min:           tr.Min(),
		Max:           tr.Max(),
		StdDev:        StdDev(tr),
		FracAboveOD:   tr.FractionAbove(od, 0, tr.End()),
		FracAbove4xOD: tr.FractionAbove(4*od, 0, tr.End()),
		Steps:         tr.Len(),
	}
}
