package market

import (
	"spothost/internal/sim"
	"spothost/internal/stats"
)

// DefaultSampleStep is the grid formerly used to sample traces for
// correlation and standard-deviation statistics (5 minutes, matching
// typical spot price history granularity). The statistics below are now
// exact closed forms over the piecewise-constant segments; the grid
// remains as the slow-path reference their property tests compare against.
const DefaultSampleStep sim.Duration = 5 * sim.Minute

// Correlation returns the exact time-weighted Pearson correlation between
// two traces over their shared horizon [0, min end), computed by a
// two-pointer merge over the piecewise-constant segments — the statistic
// behind Fig. 8(b) and Fig. 9(b), without discretization error.
func Correlation(a, b *Trace) float64 {
	end := a.End()
	if b.End() < end {
		end = b.End()
	}
	if end <= 0 {
		return 0
	}
	at, bt := a.times, b.times
	ia, ib := 0, 0 // index of the segment in effect at t (clamped to 0)
	t := sim.Time(0)
	for ia+1 < len(at) && at[ia+1] <= t {
		ia++
	}
	for ib+1 < len(bt) && bt[ib+1] <= t {
		ib++
	}
	pa, pb := a.prices[ia], b.prices[ib]
	var pair stats.WeightedPair
	for t < end {
		nt := end
		if ia+1 < len(at) && at[ia+1] < nt {
			nt = at[ia+1]
		}
		if ib+1 < len(bt) && bt[ib+1] < nt {
			nt = bt[ib+1]
		}
		pair.Add(pa, pb, nt-t)
		t = nt
		for ia+1 < len(at) && at[ia+1] <= t {
			ia++
			pa = a.prices[ia]
		}
		for ib+1 < len(bt) && bt[ib+1] <= t {
			ib++
			pb = b.prices[ib]
		}
	}
	return pair.Pearson()
}

// StdDev returns the exact time-weighted standard deviation of a trace's
// price over [0, End) — the per-market variability statistic of Fig. 10,
// computed in closed form over the trace segments.
func StdDev(tr *Trace) float64 {
	end := tr.End()
	if end <= 0 {
		return 0
	}
	ts := tr.times
	var m stats.WeightedMoments
	t := sim.Time(0)
	i := 0
	for i+1 < len(ts) && ts[i+1] <= t {
		i++
	}
	for t < end {
		nt := end
		if i+1 < len(ts) && ts[i+1] < nt {
			nt = ts[i+1]
		}
		m.Add(tr.prices[i], nt-t)
		t = nt
		for i+1 < len(ts) && ts[i+1] <= t {
			i++
		}
	}
	return m.PopStd()
}

// PairwiseAvgCorrelation returns the mean Pearson correlation over all
// unordered pairs of the given markets' traces. Used for the per-region
// bars of Fig. 8(b).
func PairwiseAvgCorrelation(s *Set, ids []ID) float64 {
	var sum float64
	n := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += Correlation(s.Trace(ids[i]), s.Trace(ids[j]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CrossRegionCorrelation returns the mean correlation between same-type
// markets across two regions — the statistic of Fig. 9(b).
func CrossRegionCorrelation(s *Set, a, b Region) float64 {
	var sum float64
	n := 0
	for _, t := range s.TypesIn(a) {
		ta := s.Trace(ID{Region: a, Type: t})
		tb := s.Trace(ID{Region: b, Type: t})
		if ta == nil || tb == nil {
			continue
		}
		sum += Correlation(ta, tb)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TraceSummary captures the headline statistics of one market's trace for
// reporting (Fig. 1 is rendered from these plus the raw series).
type TraceSummary struct {
	Market        ID
	OnDemand      float64
	Mean          float64 // time-weighted mean price
	Min, Max      float64
	StdDev        float64
	FracAboveOD   float64 // fraction of time price > on-demand
	FracAbove4xOD float64 // fraction of time price > 4x on-demand (bid cap)
	Steps         int
}

// Summarize computes a TraceSummary for one market of the set.
func Summarize(s *Set, id ID) TraceSummary {
	tr := s.Trace(id)
	od := s.OnDemand(id)
	return TraceSummary{
		Market:        id,
		OnDemand:      od,
		Mean:          tr.TimeWeightedMean(0, tr.End()),
		Min:           tr.Min(),
		Max:           tr.Max(),
		StdDev:        StdDev(tr),
		FracAboveOD:   tr.FractionAbove(od, 0, tr.End()),
		FracAbove4xOD: tr.FractionAbove(4*od, 0, tr.End()),
		Steps:         tr.Len(),
	}
}
