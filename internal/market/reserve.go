package market

import (
	"fmt"
	"math"
	"sort"

	"spothost/internal/randx"
	"spothost/internal/sim"
)

// ReserveConfig parameterizes the alternative price generator modelled on
// Agmon Ben-Yehuda et al., "Deconstructing Amazon EC2 Spot Instance
// Pricing" (2013): in the 2010-2012 era, spot prices were found to be
// drawn from a banded dynamic reserve price — an AR(1)-persistent draw
// inside [Floor, Ceiling] x on-demand, updated at random intervals —
// rather than from a real supply/demand market. An optional spike overlay
// adds the post-2012 demand-driven excursions.
//
// The generator exists as a robustness check: the paper's conclusions
// should (and do) degrade gracefully under it — with no spikes there are
// no revocations, so proactive and reactive behave identically and pure
// spot becomes safe; re-adding spikes restores the paper's separations.
type ReserveConfig struct {
	Regions []RegionSpec
	Types   []TypeSpec
	Horizon sim.Duration
	Seed    int64

	// FloorRatio and CeilRatio bound the reserve band as fractions of the
	// on-demand price (the 2013 study measured bands like [0.35, 0.60]).
	FloorRatio float64
	CeilRatio  float64
	// ChangeMean is the mean interval between reserve updates.
	ChangeMean sim.Duration
	// Persistence is the AR(1) coefficient of consecutive draws in (0,1):
	// high values produce slowly wandering prices.
	Persistence float64

	// SpikesPerDay layers demand spikes on top of the band (0 disables,
	// reproducing the pure 2010-2012 regime). Spike magnitude and
	// duration reuse the main generator's calibration.
	SpikesPerDay float64
}

// DefaultReserveConfig returns the banded regime measured by the 2013
// study, without spikes.
func DefaultReserveConfig(seed int64) ReserveConfig {
	return ReserveConfig{
		Regions:     DefaultRegions(),
		Types:       DefaultTypes(),
		Horizon:     30 * sim.Day,
		Seed:        seed,
		FloorRatio:  0.35,
		CeilRatio:   0.60,
		ChangeMean:  time45min,
		Persistence: 0.7,
	}
}

const time45min = 45 * sim.Minute

// Validate reports configuration errors.
func (c ReserveConfig) Validate() error {
	switch {
	case len(c.Regions) == 0 || len(c.Types) == 0:
		return fmt.Errorf("market: reserve config needs regions and types")
	case c.Horizon <= sim.Hour:
		return fmt.Errorf("market: reserve horizon %v too short", c.Horizon)
	case c.FloorRatio <= 0 || c.CeilRatio <= c.FloorRatio:
		return fmt.Errorf("market: reserve band [%v,%v] invalid", c.FloorRatio, c.CeilRatio)
	case c.ChangeMean <= 0:
		return fmt.Errorf("market: ChangeMean must be positive")
	case c.Persistence <= 0 || c.Persistence >= 1:
		return fmt.Errorf("market: Persistence must be in (0,1)")
	case c.SpikesPerDay < 0:
		return fmt.Errorf("market: negative spike rate")
	}
	return nil
}

// GenerateReserve produces a Set under the banded-reserve regime.
func GenerateReserve(cfg ReserveConfig) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Optional spike overlay reuses the main generator's shock machinery.
	var shockCfg Config
	if cfg.SpikesPerDay > 0 {
		shockCfg = DefaultConfig(cfg.Seed)
		shockCfg.Horizon = cfg.Horizon
		shockCfg.SpikesPerDay = cfg.SpikesPerDay
	}

	onDemand := map[ID]float64{}
	var traces []*Trace
	for _, rs := range cfg.Regions {
		for _, ts := range cfg.Types {
			id := ID{Region: rs.Name, Type: ts.Name}
			od := OnDemandPrice(rs, ts)
			onDemand[id] = od
			rng := randx.Derive(cfg.Seed, "reserve/"+id.String())

			var shocks []shock
			if cfg.SpikesPerDay > 0 {
				shocks = poissonShocks(rng.Derive("shocks"), shockCfg,
					cfg.SpikesPerDay*rs.Volatility, 1)
			}

			points := synthesizeReserve(rng, cfg, od, shocks)
			tr, err := NewTrace(id, points, cfg.Horizon)
			if err != nil {
				return nil, fmt.Errorf("market: reserve %s: %w", id, err)
			}
			traces = append(traces, tr)
		}
	}
	return NewSet(traces, onDemand)
}

// synthesizeReserve draws the banded AR(1) reserve series for one market,
// clamping to the band and overlaying any demand spikes.
func synthesizeReserve(rng *randx.Stream, cfg ReserveConfig, od float64, shocks []shock) []Point {
	lo, hi := cfg.FloorRatio*od, cfg.CeilRatio*od
	mid := (lo + hi) / 2
	halfBand := (hi - lo) / 2

	// The latent AR(1) state wanders in roughly [-1, 1].
	x := rng.Uniform(-1, 1)
	priceOf := func(t sim.Time) float64 {
		p := mid + halfBand*x
		if p < lo {
			p = lo
		}
		if p > hi {
			p = hi
		}
		for _, sh := range shocks {
			if t >= sh.start && t < sh.end {
				if sp := sh.ratio * od; sp > p {
					p = sp
				}
			}
		}
		return p
	}

	type boundary struct {
		t      sim.Time
		isDraw bool
	}
	var bounds []boundary
	for t := rng.Exp(cfg.ChangeMean); t < cfg.Horizon; t += rng.Exp(cfg.ChangeMean) {
		bounds = append(bounds, boundary{t: t, isDraw: true})
	}
	for _, sh := range shocks {
		bounds = append(bounds, boundary{t: sh.start}, boundary{t: sh.end})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })

	points := []Point{{T: 0, Price: priceOf(0)}}
	for _, bd := range bounds {
		if bd.t <= 0 || bd.t >= cfg.Horizon {
			continue
		}
		if bd.isDraw {
			x = cfg.Persistence*x + math.Sqrt(1-cfg.Persistence*cfg.Persistence)*rng.Uniform(-1, 1)
		}
		points = append(points, Point{T: bd.t, Price: priceOf(bd.t)})
	}
	return points
}
