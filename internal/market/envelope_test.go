package market

import (
	"fmt"
	"math/rand"
	"testing"

	"spothost/internal/sim"
)

// randomEnvelopeSet builds a set of m random traces (distinct IDs in a
// fixed order) and returns the set plus the ordered candidate IDs.
func randomEnvelopeSet(t *testing.T, rng *rand.Rand, m int) (*Set, []ID) {
	t.Helper()
	traces := make([]*Trace, 0, m)
	od := map[ID]float64{}
	ids := make([]ID, 0, m)
	for i := 0; i < m; i++ {
		id := ID{Region: Region(fmt.Sprintf("r-%da", i)), Type: "small"}
		n := 1 + rng.Intn(60)
		pts := make([]Point, 0, n)
		tm := sim.Time(0)
		for j := 0; j < n; j++ {
			pts = append(pts, Point{T: tm, Price: 0.01 + rng.Float64()})
			tm += sim.Time(1 + rng.Float64()*800)
		}
		tr := mustTrace(t, id, pts, tm+sim.Time(1+rng.Float64()*800))
		traces = append(traces, tr)
		od[id] = 2.0
		ids = append(ids, id)
	}
	s, err := NewSet(traces, od)
	if err != nil {
		t.Fatal(err)
	}
	return s, ids
}

// bruteArgmin is the linear scan the envelope replaces: the first candidate
// (in ids order) whose weighted price is strictly minimal at time t.
func bruteArgmin(s *Set, ids []ID, weights []float64, t sim.Time) (ID, float64, float64) {
	arg, best, bestW := -1, 0.0, 0.0
	for i, id := range ids {
		p := s.Trace(id).PriceAt(t)
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if wp := w * p; arg == -1 || wp < bestW {
			arg, best, bestW = i, p, wp
		}
	}
	return ids[arg], best, bestW
}

func TestEnvelopeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(8)
		s, ids := randomEnvelopeSet(t, rng, m)
		var weights []float64
		if rng.Float64() < 0.5 {
			weights = make([]float64, m)
			for i := range weights {
				weights[i] = 1 + rng.Float64()*5
			}
		}
		env := s.Envelope(ids, weights)
		if env == nil {
			t.Fatal("nil envelope for valid candidates")
		}
		for i := 0; i < 400; i++ {
			q := sim.Time(rng.Float64() * float64(env.End()))
			id, price, weighted := env.At(q)
			wid, wprice, wweighted := bruteArgmin(s, ids, weights, q)
			if id != wid || price != wprice || weighted != wweighted {
				t.Fatalf("trial %d: At(%v) = (%v,%v,%v), brute force (%v,%v,%v)",
					trial, q, id, price, weighted, wid, wprice, wweighted)
			}
		}
	}
}

func TestEnvelopeCursorMatchesBruteForce(t *testing.T) {
	// The cursor under the scheduler's access pattern: mostly monotone
	// queries with occasional backward re-seeks.
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(8)
		s, ids := randomEnvelopeSet(t, rng, m)
		env := s.Envelope(ids, nil)
		cur := env.Cursor()
		q := sim.Time(0)
		for i := 0; i < 400; i++ {
			if rng.Float64() < 0.9 {
				q += sim.Time(rng.Float64() * 500)
				if q > env.End() {
					q = env.End() - 1
				}
			} else {
				q = sim.Time(rng.Float64() * float64(env.End()))
			}
			id, price, weighted := cur.At(q)
			wid, wprice, wweighted := bruteArgmin(s, ids, nil, q)
			if id != wid || price != wprice || weighted != wweighted {
				t.Fatalf("trial %d: cursor At(%v) = (%v,%v,%v), brute force (%v,%v,%v)",
					trial, q, id, price, weighted, wid, wprice, wweighted)
			}
		}
	}
}

func TestEnvelopeMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	s, ids := randomEnvelopeSet(t, rng, 4)
	a := s.Envelope(ids, nil)
	b := s.Envelope(ids, nil)
	if a != b {
		t.Fatal("same candidates did not share an envelope")
	}
	c := s.Envelope(ids, []float64{1, 2, 3, 4})
	if c == a {
		t.Fatal("different weights shared an envelope")
	}
	if got := s.Envelope(ids[:2], []float64{1}); got != nil {
		t.Fatal("mismatched weights length did not return nil")
	}
	if got := s.Envelope(nil, nil); got != nil {
		t.Fatal("empty candidates did not return nil")
	}
	unknown := append(append([]ID(nil), ids...), ID{Region: "nope", Type: "small"})
	if got := s.Envelope(unknown, nil); got != nil {
		t.Fatal("unknown candidate did not return nil")
	}
}
