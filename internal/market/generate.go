package market

import (
	"fmt"
	"math"
	"sort"

	"spothost/internal/randx"
	"spothost/internal/sim"
)

// Config parameterizes the synthetic price generator. DefaultConfig returns
// the calibration used throughout the experiments; tests tweak individual
// fields.
type Config struct {
	Regions []RegionSpec
	Types   []TypeSpec
	Horizon sim.Duration // trace length, seconds
	Seed    int64

	// Base-level process: a slow AR(1) wobble in log space around
	// BaseRatio x on-demand, re-sampled every ~StepMean seconds.
	StepMean sim.Duration
	BaseCV   float64 // log-space stddev of the wobble
	BaseAR   float64 // AR(1) coefficient per step, in (0,1)

	// Spike process: Poisson arrivals at SpikesPerDay x region volatility;
	// each spike lifts the price to ratio x on-demand for an Exp(SpikeMeanDur)
	// interval, ratio drawn from BoundedPareto(SpikeMin, SpikeAlpha, SpikeMax).
	SpikesPerDay float64
	SpikeMeanDur sim.Duration
	SpikeMin     float64
	SpikeAlpha   float64
	SpikeMax     float64

	// Shared-shock structure controlling cross-market correlation.
	// A fraction of each market's spikes come from a per-region shock
	// process (shared by markets in the region with RegionShareProb) and a
	// global process (shared across regions with GlobalShareProb).
	RegionShareProb float64
	GlobalShareProb float64

	// Factor loadings of the base-level wobble on shared components:
	// each market's log-price wobble is a weighted mix of a global factor,
	// a per-region factor and an idiosyncratic term. These produce the
	// weak-but-nonzero Pearson correlations of Fig. 8(b) and Fig. 9(b);
	// squares must sum to at most 1 (the remainder is idiosyncratic).
	GlobalBaseWeight float64
	RegionBaseWeight float64
}

// DefaultConfig returns the calibrated generator configuration for a
// 30-day universe over the default regions and types.
func DefaultConfig(seed int64) Config {
	return Config{
		Regions:         DefaultRegions(),
		Types:           DefaultTypes(),
		Horizon:         30 * sim.Day,
		Seed:            seed,
		StepMean:        10 * sim.Minute,
		BaseCV:          0.22,
		BaseAR:          0.97,
		SpikesPerDay:    2.2,
		SpikeMeanDur:    28 * sim.Minute,
		SpikeMin:        0.35,
		SpikeAlpha:      1.35,
		SpikeMax:        15,
		RegionShareProb: 0.5,
		GlobalShareProb: 0.25,

		GlobalBaseWeight: 0.28,
		RegionBaseWeight: 0.45,
	}
}

// Validate reports configuration errors early with actionable messages.
func (c Config) Validate() error {
	switch {
	case len(c.Regions) == 0:
		return fmt.Errorf("market: config has no regions")
	case len(c.Types) == 0:
		return fmt.Errorf("market: config has no types")
	case c.Horizon <= sim.Hour:
		return fmt.Errorf("market: horizon %v too short", c.Horizon)
	case c.StepMean <= 0:
		return fmt.Errorf("market: StepMean must be positive")
	case c.BaseAR <= 0 || c.BaseAR >= 1:
		return fmt.Errorf("market: BaseAR must be in (0,1)")
	case c.SpikeMin <= 0 || c.SpikeMax < c.SpikeMin:
		return fmt.Errorf("market: invalid spike ratio bounds [%v,%v]", c.SpikeMin, c.SpikeMax)
	case c.SpikeAlpha <= 0:
		return fmt.Errorf("market: SpikeAlpha must be positive")
	case c.GlobalBaseWeight < 0 || c.RegionBaseWeight < 0 ||
		c.GlobalBaseWeight*c.GlobalBaseWeight+c.RegionBaseWeight*c.RegionBaseWeight > 1:
		return fmt.Errorf("market: base factor weights invalid (squares must sum to <= 1)")
	}
	return nil
}

// factorSeries is a shared AR(1) wobble sampled on a fixed grid; Value
// interpolates piecewise-constantly so every market sees the same factor
// path regardless of its own step times.
type factorSeries struct {
	step sim.Duration
	vals []float64
}

func newFactorSeries(rng *randx.Stream, horizon sim.Duration, step sim.Duration, ar float64) *factorSeries {
	n := int(horizon/step) + 2
	vals := make([]float64, n)
	vals[0] = rng.NormFloat64()
	for i := 1; i < n; i++ {
		vals[i] = ar*vals[i-1] + math.Sqrt(1-ar*ar)*rng.NormFloat64()
	}
	return &factorSeries{step: step, vals: vals}
}

func (f *factorSeries) Value(t sim.Time) float64 {
	i := int(t / f.step)
	if i < 0 {
		i = 0
	}
	if i >= len(f.vals) {
		i = len(f.vals) - 1
	}
	return f.vals[i]
}

// shock is one external demand event: while active it lifts the market
// price to ratio x on-demand.
type shock struct {
	start sim.Time
	end   sim.Time
	ratio float64 // multiple of the on-demand price
}

// poissonShocks draws shock arrivals over [0, horizon) at the given daily
// rate. Ratios come from the bounded-Pareto magnitude distribution scaled
// by severity.
func poissonShocks(rng *randx.Stream, cfg Config, ratePerDay, severity float64) []shock {
	if ratePerDay <= 0 {
		return nil
	}
	var out []shock
	meanGap := sim.Day / ratePerDay
	t := rng.Exp(meanGap)
	for t < cfg.Horizon {
		dur := rng.Exp(cfg.SpikeMeanDur)
		if dur < sim.Minute {
			dur = sim.Minute
		}
		ratio := rng.BoundedPareto(cfg.SpikeMin, cfg.SpikeAlpha, cfg.SpikeMax) * severity
		out = append(out, shock{start: t, end: math.Min(t+dur, cfg.Horizon), ratio: ratio})
		t += rng.Exp(meanGap)
	}
	return out
}

// Generate produces a Set of synthetic traces for every (region, type)
// pair in the config. Generation is deterministic in cfg.Seed.
func Generate(cfg Config) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Global shocks, visible to every market with GlobalShareProb.
	globalRng := randx.Derive(cfg.Seed, "shock/global")
	global := poissonShocks(globalRng, cfg, cfg.SpikesPerDay*0.6, 1)
	globalFactor := newFactorSeries(randx.Derive(cfg.Seed, "factor/global"),
		cfg.Horizon, cfg.StepMean, cfg.BaseAR)

	onDemand := map[ID]float64{}
	var traces []*Trace
	for _, rs := range cfg.Regions {
		// Region-level shocks shared by markets in the region.
		regionRng := randx.Derive(cfg.Seed, "shock/region/"+string(rs.Name))
		regional := poissonShocks(regionRng, cfg, cfg.SpikesPerDay*rs.Volatility, 1)
		regionFactor := newFactorSeries(randx.Derive(cfg.Seed, "factor/region/"+string(rs.Name)),
			cfg.Horizon, cfg.StepMean, cfg.BaseAR)

		for _, ts := range cfg.Types {
			id := ID{Region: rs.Name, Type: ts.Name}
			od := OnDemandPrice(rs, ts)
			onDemand[id] = od
			rng := randx.Derive(cfg.Seed, "market/"+id.String())

			// Assemble this market's shocks: adopted regional + global
			// shocks (with a market-specific severity twist so shared
			// spikes are correlated but not identical) plus local-only
			// arrivals topping the rate up to SpikesPerDay*Volatility.
			var shocks []shock
			for _, sh := range regional {
				if rng.Bernoulli(cfg.RegionShareProb) {
					sh.ratio *= rng.LognormalMeanCV(1, 0.25)
					shocks = append(shocks, sh)
				}
			}
			for _, sh := range global {
				if rng.Bernoulli(cfg.GlobalShareProb) {
					sh.ratio *= rng.LognormalMeanCV(1, 0.25)
					shocks = append(shocks, sh)
				}
			}
			localRate := cfg.SpikesPerDay * rs.Volatility * (1 - cfg.RegionShareProb)
			shocks = append(shocks, poissonShocks(rng.Derive("local"), cfg, localRate, 1)...)
			sort.Slice(shocks, func(i, j int) bool { return shocks[i].start < shocks[j].start })

			points := synthesize(rng.Derive("base"), cfg, rs, od, shocks, globalFactor, regionFactor)
			tr, err := NewTrace(id, points, cfg.Horizon)
			if err != nil {
				return nil, fmt.Errorf("market: generating %s: %w", id, err)
			}
			traces = append(traces, tr)
		}
	}
	return NewSetTyped(traces, onDemand, cfg.Types)
}

// synthesize builds the piecewise-constant price series for one market
// from its base-level factor-model wobble and its shock list.
func synthesize(rng *randx.Stream, cfg Config, rs RegionSpec, od float64, shocks []shock,
	globalFactor, regionFactor *factorSeries) []Point {
	// Base-level wobble in log space, region-scaled; a factor model mixes
	// the shared global/region components with an idiosyncratic AR(1).
	sigma := cfg.BaseCV * math.Sqrt(rs.Volatility)
	gw, rw := cfg.GlobalBaseWeight, cfg.RegionBaseWeight
	lw := math.Sqrt(1 - gw*gw - rw*rw)
	wLocal := rng.NormFloat64()
	now := sim.Time(0)
	base := func() float64 {
		w := sigma * (gw*globalFactor.Value(now) + rw*regionFactor.Value(now) + lw*wLocal)
		p := rs.BaseRatio * od * math.Exp(w-sigma*sigma/2)
		if p < 0.001 {
			p = 0.001
		}
		return p
	}

	// Boundary times: base re-samples plus shock starts/ends.
	type boundary struct {
		t      sim.Time
		isBase bool
	}
	var bounds []boundary
	for t := rng.Exp(cfg.StepMean); t < cfg.Horizon; t += rng.Exp(cfg.StepMean) {
		bounds = append(bounds, boundary{t: t, isBase: true})
	}
	for _, sh := range shocks {
		bounds = append(bounds, boundary{t: sh.start}, boundary{t: sh.end})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })

	// activeShockRatio returns the max shock ratio covering time t, or 0.
	activeShockRatio := func(t sim.Time) float64 {
		r := 0.0
		for _, sh := range shocks {
			if sh.start > t {
				break
			}
			if t >= sh.start && t < sh.end && sh.ratio > r {
				r = sh.ratio
			}
		}
		return r
	}

	priceAt := func(t sim.Time) float64 {
		now = t
		b := base()
		if r := activeShockRatio(t); r > 0 {
			// During a shock the market clears at the shock level, but
			// never below the prevailing base price.
			p := r * od
			if p < b {
				p = b
			}
			return p
		}
		return b
	}

	points := []Point{{T: 0, Price: priceAt(0)}}
	for _, bd := range bounds {
		if bd.t <= 0 || bd.t >= cfg.Horizon {
			continue
		}
		if bd.isBase {
			// Advance the idiosyncratic AR(1) wobble.
			wLocal = cfg.BaseAR*wLocal + math.Sqrt(1-cfg.BaseAR*cfg.BaseAR)*rng.NormFloat64()
		}
		points = append(points, Point{T: bd.t, Price: priceAt(bd.t)})
	}
	return points
}
