package market

import (
	"sort"

	"spothost/internal/sim"
)

// cursorGallopLimit bounds the linear advance of a cursor seek: after this
// many steps the remaining distance is covered by one binary search, so a
// single far-forward query costs O(log n) instead of O(n) while the common
// one-segment advance stays O(1).
const cursorGallopLimit = 32

// Cursor is a stateful iterator over one trace, optimized for the
// forward-moving clocks of a simulation. Queries at non-decreasing times
// cost O(1) amortized (each trace segment is crossed at most once);
// occasional backward queries re-seek with a binary search and remain
// correct. A Cursor returns exactly the same values as Trace.PriceAt and
// Trace.NextChangeAfter at every time.
//
// A Cursor is NOT safe for concurrent use; each goroutine (each simulation
// run) must own its own cursors. The underlying Trace stays shared and
// immutable.
type Cursor struct {
	tr *Trace
	i  int // index of the last point with T <= the last queried time (clamped to 0)
}

// NewCursor returns a cursor positioned at the start of the trace.
func NewCursor(tr *Trace) *Cursor { return &Cursor{tr: tr} }

// Trace returns the trace this cursor iterates over.
func (c *Cursor) Trace() *Trace { return c.tr }

// seek moves the cursor so that c.i is the index of the last step with
// time <= t, clamped to 0 for times before the first step. Seeks scan the
// times column only — 8 bytes per crossed step.
func (c *Cursor) seek(t sim.Time) {
	ts := c.tr.times
	i := c.i
	if ts[i] > t {
		// Backward query (or a query before the first point): binary
		// search from scratch.
		i = sort.Search(len(ts), func(j int) bool { return ts[j] > t }) - 1
		if i < 0 {
			i = 0
		}
		c.i = i
		return
	}
	steps := 0
	for i+1 < len(ts) && ts[i+1] <= t {
		i++
		steps++
		if steps == cursorGallopLimit {
			// Far forward jump: finish with a binary search over the tail.
			rest := ts[i+1:]
			i += sort.Search(len(rest), func(j int) bool { return rest[j] > t })
			break
		}
	}
	c.i = i
}

// PriceAt returns the price in effect at time t, identical to
// Trace.PriceAt.
func (c *Cursor) PriceAt(t sim.Time) float64 {
	c.seek(t)
	return c.tr.prices[c.i]
}

// NextChangeAfter returns the time and price of the first step strictly
// after t, identical to Trace.NextChangeAfter.
func (c *Cursor) NextChangeAfter(t sim.Time) (at sim.Time, price float64, ok bool) {
	c.seek(t)
	tr := c.tr
	if tr.times[c.i] > t {
		// t is before the first point; the first point is the next change.
		return tr.times[c.i], tr.prices[c.i], true
	}
	if c.i+1 >= len(tr.times) {
		return 0, 0, false
	}
	return tr.times[c.i+1], tr.prices[c.i+1], true
}
