package market

import (
	"sort"

	"spothost/internal/sim"
)

// cursorGallopLimit bounds the linear advance of a cursor seek: after this
// many steps the remaining distance is covered by one binary search, so a
// single far-forward query costs O(log n) instead of O(n) while the common
// one-segment advance stays O(1).
const cursorGallopLimit = 32

// Cursor is a stateful iterator over one trace, optimized for the
// forward-moving clocks of a simulation. Queries at non-decreasing times
// cost O(1) amortized (each trace segment is crossed at most once);
// occasional backward queries re-seek with a binary search and remain
// correct. A Cursor returns exactly the same values as Trace.PriceAt and
// Trace.NextChangeAfter at every time.
//
// A Cursor is NOT safe for concurrent use; each goroutine (each simulation
// run) must own its own cursors. The underlying Trace stays shared and
// immutable.
type Cursor struct {
	tr *Trace
	i  int // index of the last point with T <= the last queried time (clamped to 0)
}

// NewCursor returns a cursor positioned at the start of the trace.
func NewCursor(tr *Trace) *Cursor { return &Cursor{tr: tr} }

// Trace returns the trace this cursor iterates over.
func (c *Cursor) Trace() *Trace { return c.tr }

// seek moves the cursor so that c.i is the index of the last point with
// T <= t, clamped to 0 for times before the first point.
func (c *Cursor) seek(t sim.Time) {
	pts := c.tr.points
	i := c.i
	if pts[i].T > t {
		// Backward query (or a query before the first point): binary
		// search from scratch.
		i = sort.Search(len(pts), func(j int) bool { return pts[j].T > t }) - 1
		if i < 0 {
			i = 0
		}
		c.i = i
		return
	}
	steps := 0
	for i+1 < len(pts) && pts[i+1].T <= t {
		i++
		steps++
		if steps == cursorGallopLimit {
			// Far forward jump: finish with a binary search over the tail.
			rest := pts[i+1:]
			i += sort.Search(len(rest), func(j int) bool { return rest[j].T > t })
			break
		}
	}
	c.i = i
}

// PriceAt returns the price in effect at time t, identical to
// Trace.PriceAt.
func (c *Cursor) PriceAt(t sim.Time) float64 {
	c.seek(t)
	return c.tr.points[c.i].Price
}

// NextChangeAfter returns the time and price of the first step strictly
// after t, identical to Trace.NextChangeAfter.
func (c *Cursor) NextChangeAfter(t sim.Time) (at sim.Time, price float64, ok bool) {
	c.seek(t)
	pts := c.tr.points
	if pts[c.i].T > t {
		// t is before the first point; the first point is the next change.
		return pts[c.i].T, pts[c.i].Price, true
	}
	if c.i+1 >= len(pts) {
		return 0, 0, false
	}
	return pts[c.i+1].T, pts[c.i+1].Price, true
}
