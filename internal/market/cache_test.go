package market

import (
	"reflect"
	"sync"
	"testing"

	"spothost/internal/sim"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Horizon = 2 * sim.Day
	return cfg
}

// TestCacheMemoizes checks a repeated lookup returns the same *Set without
// regenerating, and that the result matches an uncached Generate.
func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	cfg := smallConfig(7)
	a, err := c.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the cached Set")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Universes != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 universe", st)
	}

	fresh, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range fresh.IDs() {
		if !reflect.DeepEqual(a.Trace(id).Points(), fresh.Trace(id).Points()) {
			t.Fatalf("cached trace %s differs from direct generation", id)
		}
	}
}

// TestCacheKeyedBySeedAndConfig checks distinct seeds and tweaked configs
// occupy distinct entries.
func TestCacheKeyedBySeedAndConfig(t *testing.T) {
	c := NewCache()
	if _, err := c.Generate(smallConfig(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(smallConfig(2)); err != nil {
		t.Fatal(err)
	}
	tweaked := smallConfig(1)
	tweaked.SpikesPerDay = 9
	if _, err := c.Generate(tweaked); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Universes != 3 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 3 distinct universes", st)
	}
}

// TestCacheReserve checks the banded-reserve generator is memoized under
// its own key space.
func TestCacheReserve(t *testing.T) {
	c := NewCache()
	rcfg := DefaultReserveConfig(3)
	rcfg.Horizon = 2 * sim.Day
	a, err := c.GenerateReserve(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.GenerateReserve(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("reserve set not memoized")
	}
	spiky := rcfg
	spiky.SpikesPerDay = 3
	sp, err := c.GenerateReserve(spiky)
	if err != nil {
		t.Fatal(err)
	}
	if sp == a {
		t.Fatal("spiky reserve config collided with the banded one")
	}
}

// TestCacheError checks invalid configs propagate their error (memoized,
// not re-validated) and don't poison valid entries.
func TestCacheError(t *testing.T) {
	c := NewCache()
	bad := smallConfig(1)
	bad.Regions = nil
	if _, err := c.Generate(bad); err == nil {
		t.Fatal("want validation error")
	}
	if _, err := c.Generate(bad); err == nil {
		t.Fatal("want memoized validation error")
	}
	if _, err := c.Generate(smallConfig(1)); err != nil {
		t.Fatal(err)
	}
}

// TestCacheSingleflight checks concurrent lookups of one universe share a
// single generation and all get the same Set.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	cfg := smallConfig(11)
	const n = 16
	sets := make([]*Set, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Generate(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			sets[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if sets[i] != sets[0] {
			t.Fatal("concurrent lookups returned distinct Sets")
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Universes != 1 {
		t.Fatalf("stats = %+v, want a single generation", st)
	}
}

// TestCachePurge checks Purge drops entries and resets counters.
func TestCachePurge(t *testing.T) {
	c := NewCache()
	if _, err := c.Generate(smallConfig(5)); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if st := c.Stats(); st.Universes != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after purge = %+v", st)
	}
	if _, err := c.Generate(smallConfig(5)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats after repopulate = %+v", st)
	}
}

// TestSharedCache checks the process-wide cache exists and memoizes.
func TestSharedCache(t *testing.T) {
	cfg := smallConfig(99)
	a, err := SharedCache().Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedCache().Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("shared cache did not memoize")
	}
}
