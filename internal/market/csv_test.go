package market

import (
	"bytes"
	"strings"
	"testing"

	"spothost/internal/sim"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultConfig(23)
	cfg.Horizon = 2 * sim.Day
	// Shrink the universe to keep the file small.
	cfg.Regions = cfg.Regions[:2]
	cfg.Types = cfg.Types[:2]
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.IDs()) != len(orig.IDs()) {
		t.Fatalf("market count: %d vs %d", len(got.IDs()), len(orig.IDs()))
	}
	if got.Horizon() != orig.Horizon() {
		t.Fatalf("horizon: %v vs %v", got.Horizon(), orig.Horizon())
	}
	for _, id := range orig.IDs() {
		a, b := orig.Trace(id), got.Trace(id)
		if b == nil {
			t.Fatalf("%s missing after round trip", id)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s: point count %d vs %d", id, a.Len(), b.Len())
		}
		pa, pb := a.Points(), b.Points()
		for i := range pa {
			if pa[i].T != pb[i].T || pa[i].Price != pb[i].Price {
				t.Fatalf("%s: point %d: %v vs %v", id, i, pa[i], pb[i])
			}
		}
		if got.OnDemand(id) != orig.OnDemand(id) {
			t.Fatalf("%s: on-demand %v vs %v", id, got.OnDemand(id), orig.OnDemand(id))
		}
	}
}

func TestReadCSVHandwritten(t *testing.T) {
	in := strings.Join([]string{
		csvHeader,
		"0,us-east-1a,small,0.02",
		"100,us-east-1a,small,0.05",
		"0,us-east-1a,large,0.08",
		"#ondemand,us-east-1a,small,0.06",
		"#ondemand,us-east-1a,large,0.24",
		"#end,,,200",
	}, "\n") + "\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace(ID{Region: "us-east-1a", Type: "small"})
	if tr == nil || tr.Len() != 2 || tr.PriceAt(150) != 0.05 {
		t.Fatalf("bad parse: %+v", tr)
	}
	if s.Horizon() != 200 {
		t.Fatalf("horizon = %v", s.Horizon())
	}
}

func TestReadCSVMissingCatalogFallsBack(t *testing.T) {
	in := strings.Join([]string{
		csvHeader,
		"0,us-east-1a,small,0.02",
		"0,us-east-1a,exotic,0.50",
	}, "\n") + "\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Known type: default catalog price.
	if got := s.OnDemand(ID{Region: "us-east-1a", Type: "small"}); got != 0.06 {
		t.Fatalf("small fallback = %v", got)
	}
	// Unknown type: trace max heuristic.
	if got := s.OnDemand(ID{Region: "us-east-1a", Type: "exotic"}); got != 0.50 {
		t.Fatalf("exotic fallback = %v", got)
	}
	// No #end row: horizon extends one hour past the last point.
	if s.Horizon() != sim.Hour {
		t.Fatalf("horizon = %v", s.Horizon())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		csvHeader + "\n",
		csvHeader + "\nnotanumber,us-east-1a,small,0.02\n",
		csvHeader + "\n0,us-east-1a,small,bad\n",
		csvHeader + "\n0,us-east-1a,small,0.02\n#ondemand,us-east-1a,small,bad\n",
		csvHeader + "\n0,us-east-1a,small,0.02\n#end,,,bad\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad csv accepted", i)
		}
	}
}
