package market

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"spothost/internal/sim"
)

// CSV format, one row per price step:
//
//	seconds,region,instance_type,price
//
// plus a header row. This mirrors flattened AWS spot price history dumps
// (with timestamps rebased to seconds from the window start) so real
// traces can be replayed through the same pipeline as synthetic ones.

const csvHeader = "seconds,region,instance_type,price"

// WriteCSV serializes every trace in the set, followed by one
// "#ondemand" comment row per market carrying the on-demand catalog and a
// "#end" row with the horizon, so ReadCSV can reconstruct the Set exactly.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "region", "instance_type", "price"}); err != nil {
		return err
	}
	for _, id := range s.IDs() {
		tr := s.Trace(id)
		for _, p := range tr.Points() {
			rec := []string{
				strconv.FormatFloat(p.T, 'f', -1, 64),
				string(id.Region),
				string(id.Type),
				strconv.FormatFloat(p.Price, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	for _, id := range s.IDs() {
		rec := []string{"#ondemand", string(id.Region), string(id.Type),
			strconv.FormatFloat(s.OnDemand(id), 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"#end", "", "", strconv.FormatFloat(s.Horizon(), 'f', -1, 64)}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a Set previously written by WriteCSV (or hand-assembled
// from real price history in the same format).
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("market: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("market: empty csv")
	}
	pts := map[ID][]Point{}
	onDemand := map[ID]float64{}
	end := 0.0
	haveEnd := false
	for i, row := range rows {
		if i == 0 && row[0] == "seconds" {
			continue // header
		}
		switch row[0] {
		case "#ondemand":
			id := ID{Region: Region(row[1]), Type: InstanceType(row[2])}
			p, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return nil, fmt.Errorf("market: row %d: bad on-demand price %q", i+1, row[3])
			}
			onDemand[id] = p
		case "#end":
			e, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return nil, fmt.Errorf("market: row %d: bad end %q", i+1, row[3])
			}
			end, haveEnd = e, true
		default:
			t, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				return nil, fmt.Errorf("market: row %d: bad time %q", i+1, row[0])
			}
			p, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return nil, fmt.Errorf("market: row %d: bad price %q", i+1, row[3])
			}
			id := ID{Region: Region(row[1]), Type: InstanceType(row[2])}
			pts[id] = append(pts[id], Point{T: t, Price: p})
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("market: csv has no price rows")
	}
	var ids []ID
	for id := range pts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Region != ids[j].Region {
			return ids[i].Region < ids[j].Region
		}
		return ids[i].Type < ids[j].Type
	})
	var traces []*Trace
	for _, id := range ids {
		ps := pts[id]
		sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
		e := end
		if !haveEnd {
			e = ps[len(ps)-1].T + sim.Hour
		}
		tr, err := NewTrace(id, ps, e)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
		if _, ok := onDemand[id]; !ok {
			// Real dumps may omit the catalog; approximate the on-demand
			// price as the default catalog entry, falling back to the 95th
			// percentile heuristic used in spot-market literature.
			if ts, ok := FindType(DefaultTypes(), id.Type); ok {
				onDemand[id] = ts.OnDemand
			} else {
				onDemand[id] = tr.Max()
			}
		}
	}
	return NewSet(traces, onDemand)
}
