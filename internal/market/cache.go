package market

import (
	"fmt"
	"sync"
)

// Cache memoizes universe generation by canonical configuration, so each
// distinct (Config, Seed) universe is generated exactly once per process
// no matter how many experiments (or how many concurrent workers) ask for
// it. Generated Sets are immutable, which is what makes sharing one *Set
// across concurrently running simulations safe.
//
// Lookups are singleflight-deduplicated: when several workers request the
// same not-yet-generated universe at once, exactly one generates it and
// the rest block until it is ready.
//
// Entries are retained for the life of the cache; an evaluation touches a
// few dozen universes at a few MB each. Call Purge to drop them all (e.g.
// between unrelated sweeps in a long-lived process).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	once sync.Once
	set  *Set
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

// Generate returns the memoized Set for cfg, generating it on first use.
func (c *Cache) Generate(cfg Config) (*Set, error) {
	return c.lookup(cacheKey("generate", cfg), func() (*Set, error) {
		return Generate(cfg)
	})
}

// GenerateReserve returns the memoized Set for the banded-reserve regime
// cfg, generating it on first use.
func (c *Cache) GenerateReserve(cfg ReserveConfig) (*Set, error) {
	return c.lookup(cacheKey("reserve", cfg), func() (*Set, error) {
		return GenerateReserve(cfg)
	})
}

// cacheKey renders a config to a canonical string key. Both config types
// are plain value structs (slices of value structs, numbers, strings), so
// %#v is deterministic and injective over distinct configurations.
func cacheKey(kind string, cfg any) string {
	return kind + ":" + fmt.Sprintf("%#v", cfg)
}

func (c *Cache) lookup(key string, gen func() (*Set, error)) (*Set, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	}
	c.mu.Unlock()
	// Generation runs outside the cache lock so distinct universes build
	// concurrently; Once blocks duplicate requests for this universe.
	e.once.Do(func() { e.set, e.err = gen() })
	return e.set, e.err
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64 // lookups served from an existing entry
	Misses    uint64 // lookups that had to generate
	Universes int    // distinct universes resident
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Universes: len(c.entries)}
}

// Purge drops every cached universe and resets the counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*cacheEntry{}
	c.hits, c.misses = 0, 0
}

// sharedCache is the process-wide universe cache used by the simulation
// harness (sched.RunSeeds, the experiments) by default.
var sharedCache = NewCache()

// SharedCache returns the process-wide universe cache.
func SharedCache() *Cache { return sharedCache }
