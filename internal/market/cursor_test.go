package market

import (
	"math/rand"
	"testing"

	"spothost/internal/sim"
)

// randomOffsetTrace builds a trace with n random step times whose first
// point may sit after 0, so the before-first-point path gets exercised
// (randomTrace in property_test.go always starts at 0).
func randomOffsetTrace(t *testing.T, rng *rand.Rand, n int) *Trace {
	t.Helper()
	pts := make([]Point, 0, n)
	tm := sim.Time(rng.Float64() * 100)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{T: tm, Price: 0.01 + rng.Float64()})
		tm += sim.Time(1 + rng.Float64()*500)
	}
	return mustTrace(t, testID, pts, tm+sim.Time(1+rng.Float64()*500))
}

func TestCursorMatchesTraceMonotone(t *testing.T) {
	// Monotone (and frequently repeated) queries — the access pattern the
	// provider clock, forecast windows, and scheduler scans generate — must
	// agree exactly with the trace's binary-search lookups.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		tr := randomOffsetTrace(t, rng, 1+rng.Intn(200))
		c := NewCursor(tr)
		q := sim.Time(-50)
		for i := 0; i < 500; i++ {
			// Mostly advance, sometimes repeat the same query time.
			if rng.Float64() < 0.7 {
				q += sim.Time(rng.Float64() * 300)
			}
			if got, want := c.PriceAt(q), tr.PriceAt(q); got != want {
				t.Fatalf("trial %d: PriceAt(%v) = %v, want %v", trial, q, got, want)
			}
			gat, gp, gok := c.NextChangeAfter(q)
			wat, wp, wok := tr.NextChangeAfter(q)
			if gat != wat || gp != wp || gok != wok {
				t.Fatalf("trial %d: NextChangeAfter(%v) = (%v,%v,%v), want (%v,%v,%v)",
					trial, q, gat, gp, gok, wat, wp, wok)
			}
		}
	}
}

func TestCursorMatchesTraceBackward(t *testing.T) {
	// Backward queries re-seek from scratch; interleave arbitrary jumps in
	// both directions, including before the first point.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		tr := randomOffsetTrace(t, rng, 1+rng.Intn(200))
		c := NewCursor(tr)
		span := float64(tr.End()-tr.Start()) + 200
		for i := 0; i < 500; i++ {
			q := tr.Start() - 100 + sim.Time(rng.Float64()*span)
			if got, want := c.PriceAt(q), tr.PriceAt(q); got != want {
				t.Fatalf("trial %d: PriceAt(%v) = %v, want %v", trial, q, got, want)
			}
			gat, gp, gok := c.NextChangeAfter(q)
			wat, wp, wok := tr.NextChangeAfter(q)
			if gat != wat || gp != wp || gok != wok {
				t.Fatalf("trial %d: NextChangeAfter(%v) = (%v,%v,%v), want (%v,%v,%v)",
					trial, q, gat, gp, gok, wat, wp, wok)
			}
		}
	}
}

func TestCursorBeforeFirstPoint(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{10, 0.1}, {20, 0.3}}, 30)
	c := NewCursor(tr)
	if got := c.PriceAt(0); got != tr.PriceAt(0) {
		t.Fatalf("PriceAt before first point = %v, want %v", got, tr.PriceAt(0))
	}
	at, p, ok := c.NextChangeAfter(0)
	if !ok || at != 10 || p != 0.1 {
		t.Fatalf("NextChangeAfter(0) = (%v,%v,%v), want (10,0.1,true)", at, p, ok)
	}
	// Past the last change there is nothing left.
	if _, _, ok := c.NextChangeAfter(25); ok {
		t.Fatal("NextChangeAfter past last point reported a change")
	}
}
