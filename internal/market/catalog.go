package market

// TypeSpec describes one instance size in the catalog: its capacity in
// packing units, its nominal memory footprint (which drives migration
// latency) and its baseline on-demand price before the regional factor.
//
// The sizes and hourly prices follow the 2015-era EC2 figures the paper
// quotes ("from 6 cents per hour for the small configuration"); capacities
// double per step so a larger server can pack the equivalent number of
// small nested VMs.
type TypeSpec struct {
	Name     InstanceType
	Units    int     // capacity in unit-VM slots
	MemoryGB float64 // RAM visible to the nested VM
	OnDemand float64 // baseline on-demand $/hour (region factor applies)
}

// DefaultTypes is the four-market catalog the paper evaluates
// (small/medium/large/xlarge).
func DefaultTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "small", Units: 1, MemoryGB: 1.7, OnDemand: 0.06},
		{Name: "medium", Units: 2, MemoryGB: 3.75, OnDemand: 0.12},
		{Name: "large", Units: 4, MemoryGB: 7.5, OnDemand: 0.24},
		{Name: "xlarge", Units: 8, MemoryGB: 15, OnDemand: 0.48},
	}
}

// RegionSpec describes one region's price regime.
type RegionSpec struct {
	Name Region
	// ODFactor scales the baseline on-demand price (regions differ
	// slightly in list price).
	ODFactor float64
	// Volatility scales both the spike arrival rate and the base-level
	// wobble. The paper observes us-east markets are cheaper but far more
	// variable than us-west or eu-west (Fig. 10).
	Volatility float64
	// BaseRatio is the mean spot/on-demand price ratio outside spikes.
	BaseRatio float64
}

// DefaultRegions is the four-region universe the paper reports on:
// US East 1A, US East 1B, US West 1A, Europe West 1A.
func DefaultRegions() []RegionSpec {
	return []RegionSpec{
		{Name: "us-east-1a", ODFactor: 1.00, Volatility: 1.6, BaseRatio: 0.14},
		{Name: "us-east-1b", ODFactor: 1.00, Volatility: 1.9, BaseRatio: 0.13},
		{Name: "us-west-1a", ODFactor: 1.05, Volatility: 1.0, BaseRatio: 0.18},
		{Name: "eu-west-1a", ODFactor: 1.08, Volatility: 0.55, BaseRatio: 0.26},
	}
}

// FindType returns the TypeSpec named t from types, with ok=false when
// absent.
func FindType(types []TypeSpec, t InstanceType) (TypeSpec, bool) {
	for _, ts := range types {
		if ts.Name == t {
			return ts, true
		}
	}
	return TypeSpec{}, false
}

// FindRegion returns the RegionSpec named r from regions, with ok=false
// when absent.
func FindRegion(regions []RegionSpec, r Region) (RegionSpec, bool) {
	for _, rs := range regions {
		if rs.Name == r {
			return rs, true
		}
	}
	return RegionSpec{}, false
}

// OnDemandPrice returns the regional on-demand price for a type.
func OnDemandPrice(rs RegionSpec, ts TypeSpec) float64 {
	return ts.OnDemand * rs.ODFactor
}

// RegionClass maps an availability-zone-style region name ("us-east-1a")
// to its parent region ("us-east-1") by stripping a trailing zone letter.
// Names without a digit+letter suffix are returned unchanged. Latency
// models (instance start-up, WAN links) are keyed by region class because
// zones of one region share a geography.
func RegionClass(r Region) string {
	s := string(r)
	if n := len(s); n >= 2 {
		c := s[n-1]
		if c >= 'a' && c <= 'z' && s[n-2] >= '0' && s[n-2] <= '9' {
			return s[:n-1]
		}
	}
	return s
}

// SameRegionClass reports whether two zones belong to the same parent
// region (migrations between them are LAN migrations).
func SameRegionClass(a, b Region) bool { return RegionClass(a) == RegionClass(b) }
