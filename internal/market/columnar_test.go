package market

import (
	"reflect"
	"testing"
	"unsafe"

	"spothost/internal/sim"
)

// TestColumnarViewConsistency checks the three views of a trace — the
// times/prices columns and the lazily materialized Points() view — agree
// step for step.
func TestColumnarViewConsistency(t *testing.T) {
	set, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range set.IDs() {
		tr := set.Trace(id)
		ts, ps, pts := tr.Times(), tr.Prices(), tr.Points()
		if len(ts) != len(ps) || len(ts) != len(pts) || len(ts) != tr.Len() {
			t.Fatalf("%s: column lengths disagree: times=%d prices=%d points=%d len=%d",
				id, len(ts), len(ps), len(pts), tr.Len())
		}
		for i := range ts {
			if pts[i].T != ts[i] || pts[i].Price != ps[i] {
				t.Fatalf("%s: step %d: Points()=%+v columns=(%v, %v)", id, i, pts[i], ts[i], ps[i])
			}
			if i > 0 && ts[i] <= ts[i-1] {
				t.Fatalf("%s: times not strictly increasing at %d", id, i)
			}
		}
	}
}

// TestSetArenaSharing checks that NewSet repacks every trace of a universe
// into one contiguous arena: consecutive traces (in sorted-ID order) must
// be adjacent slices of the same backing slab.
func TestSetArenaSharing(t *testing.T) {
	set, err := Generate(DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	ids := set.IDs()
	if len(ids) < 2 {
		t.Skip("need at least two markets")
	}
	for i := 1; i < len(ids); i++ {
		prev, cur := set.Trace(ids[i-1]), set.Trace(ids[i])
		pt, ct := prev.Times(), cur.Times()
		// Adjacent in one slab: cur's first element sits right after prev's
		// last element in memory.
		endOfPrev := uintptr(unsafe.Pointer(&pt[0])) + uintptr(len(pt))*unsafe.Sizeof(pt[0])
		startOfCur := uintptr(unsafe.Pointer(&ct[0]))
		if endOfPrev != startOfCur {
			t.Fatalf("traces %s and %s are not adjacent in the arena (end %#x vs start %#x)",
				ids[i-1], ids[i], endOfPrev, startOfCur)
		}
	}
}

// TestNewSetDoesNotMutateInputs checks that the arena repack copies: the
// traces passed to NewSet keep their own storage and values.
func TestNewSetDoesNotMutateInputs(t *testing.T) {
	id := ID{Region: "r", Type: "t"}
	pts := []Point{{T: 0, Price: 1}, {T: 10, Price: 2}, {T: 20, Price: 1.5}}
	tr, err := NewTrace(id, pts, 30)
	if err != nil {
		t.Fatal(err)
	}
	wantT := append([]sim.Time(nil), tr.Times()...)
	wantP := append([]float64(nil), tr.Prices()...)

	set, err := NewSet([]*Trace{tr}, map[ID]float64{id: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Times(), wantT) || !reflect.DeepEqual(tr.Prices(), wantP) {
		t.Fatalf("NewSet mutated its input trace")
	}
	// The set's copy carries the same values.
	got := set.Trace(id)
	if !reflect.DeepEqual(got.Times(), wantT) || !reflect.DeepEqual(got.Prices(), wantP) {
		t.Fatalf("set trace differs from input: times %v vs %v, prices %v vs %v",
			got.Times(), wantT, got.Prices(), wantP)
	}
	if got.End() != tr.End() || got.ID() != id {
		t.Fatalf("set trace metadata differs")
	}
}

// TestPointsViewMatchesQueries spot-checks that PriceAt / NextChangeAfter
// (column readers) agree with a scan of the compatibility view.
func TestPointsViewMatchesQueries(t *testing.T) {
	set, err := Generate(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	id := set.IDs()[0]
	tr := set.Trace(id)
	pts := tr.Points()
	for _, q := range []sim.Time{-5, 0, 1, 3600, 86400, tr.End() - 1, tr.End() + 10} {
		want := pts[0].Price
		for _, p := range pts {
			if p.T <= q {
				want = p.Price
			}
		}
		if got := tr.PriceAt(q); got != want {
			t.Fatalf("PriceAt(%v) = %v, scan says %v", q, got, want)
		}
	}
}
