package market

import (
	"math"
	"testing"
	"testing/quick"

	"spothost/internal/sim"
)

func mustTrace(t *testing.T, id ID, pts []Point, end sim.Time) *Trace {
	t.Helper()
	tr, err := NewTrace(id, pts, end)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var testID = ID{Region: "us-east-1a", Type: "small"}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(testID, nil, 10); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := NewTrace(testID, []Point{{0, 0.1}, {0, 0.2}}, 10); err == nil {
		t.Error("non-increasing time accepted")
	}
	if _, err := NewTrace(testID, []Point{{0, -1}}, 10); err == nil {
		t.Error("negative price accepted")
	}
	if _, err := NewTrace(testID, []Point{{0, 0.1}, {5, 0.2}}, 5); err == nil {
		t.Error("end not after last point accepted")
	}
}

func TestTraceCoalesce(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 0.1}, {5, 0.1}, {10, 0.2}}, 20)
	if tr.Len() != 2 {
		t.Fatalf("equal consecutive prices not coalesced: len=%d", tr.Len())
	}
}

func TestPriceAt(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 0.1}, {10, 0.3}, {20, 0.05}}, 30)
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{-5, 0.1}, {0, 0.1}, {9.99, 0.1}, {10, 0.3}, {15, 0.3}, {20, 0.05}, {100, 0.05},
	}
	for _, c := range cases {
		if got := tr.PriceAt(c.t); got != c.want {
			t.Errorf("PriceAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNextChangeAfter(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 0.1}, {10, 0.3}, {20, 0.05}}, 30)
	at, p, ok := tr.NextChangeAfter(0)
	if !ok || at != 10 || p != 0.3 {
		t.Fatalf("NextChangeAfter(0) = %v,%v,%v", at, p, ok)
	}
	at, p, ok = tr.NextChangeAfter(10)
	if !ok || at != 20 || p != 0.05 {
		t.Fatalf("NextChangeAfter(10) = %v,%v,%v", at, p, ok)
	}
	if _, _, ok = tr.NextChangeAfter(20); ok {
		t.Fatal("NextChangeAfter past last point should report !ok")
	}
}

func TestSample(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 1}, {10, 2}}, 20)
	got := tr.Sample(0, 20, 5)
	want := []float64{1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("sample = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample = %v, want %v", got, want)
		}
	}
	if tr.Sample(0, 20, 0) != nil || tr.Sample(20, 0, 5) != nil {
		t.Fatal("degenerate sampling should return nil")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 1}, {10, 3}}, 20)
	if got := tr.TimeWeightedMean(0, 20); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if got := tr.TimeWeightedMean(10, 20); got != 3 {
		t.Fatalf("window mean = %v, want 3", got)
	}
	// Window clamping beyond the trace end.
	if got := tr.TimeWeightedMean(0, 100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("clamped mean = %v, want 2", got)
	}
}

func TestFractionAbove(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 1}, {10, 5}, {15, 1}}, 20)
	if got := tr.FractionAbove(2, 0, 20); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("FractionAbove = %v, want 0.25", got)
	}
	if got := tr.FractionAbove(10, 0, 20); got != 0 {
		t.Fatalf("FractionAbove high threshold = %v", got)
	}
	if got := tr.FractionAbove(0.5, 0, 20); got != 1 {
		t.Fatalf("FractionAbove low threshold = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 0.3}, {10, 0.05}, {20, 2}}, 30)
	if tr.Min() != 0.05 || tr.Max() != 2 {
		t.Fatalf("min/max = %v/%v", tr.Min(), tr.Max())
	}
}

func TestSetValidation(t *testing.T) {
	tr := mustTrace(t, testID, []Point{{0, 0.1}}, 10)
	if _, err := NewSet([]*Trace{tr}, map[ID]float64{}); err == nil {
		t.Error("missing on-demand accepted")
	}
	if _, err := NewSet([]*Trace{tr, tr}, map[ID]float64{testID: 0.06}); err == nil {
		t.Error("duplicate trace accepted")
	}
	if _, err := NewSet(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	s, err := NewSet([]*Trace{tr}, map[ID]float64{testID: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	if s.OnDemand(testID) != 0.06 {
		t.Fatal("on-demand lookup broken")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Horizon = 3 * sim.Day
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.IDs() {
		pa, pb := a.Trace(id).Points(), b.Trace(id).Points()
		if len(pa) != len(pb) {
			t.Fatalf("%s: lengths differ: %d vs %d", id, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: point %d differs: %v vs %v", id, i, pa[i], pb[i])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Horizon = 2 * sim.Day
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	id := a.IDs()[0]
	if a.Trace(id).Len() == b.Trace(id).Len() {
		same := true
		pa, pb := a.Trace(id).Points(), b.Trace(id).Points()
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateUniverseShape(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Horizon = 5 * sim.Day
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.IDs()); got != 16 {
		t.Fatalf("want 4 regions x 4 types = 16 markets, got %d", got)
	}
	if got := len(s.Regions()); got != 4 {
		t.Fatalf("regions = %v", s.Regions())
	}
	if got := s.TypesIn("us-east-1a"); len(got) != 4 {
		t.Fatalf("types in us-east-1a = %v", got)
	}
	if s.Horizon() != cfg.Horizon {
		t.Fatalf("horizon = %v", s.Horizon())
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Regions = nil },
		func(c *Config) { c.Types = nil },
		func(c *Config) { c.Horizon = 10 },
		func(c *Config) { c.StepMean = 0 },
		func(c *Config) { c.BaseAR = 1.5 },
		func(c *Config) { c.SpikeMin = 0 },
		func(c *Config) { c.SpikeMax = 0.1 },
		func(c *Config) { c.SpikeAlpha = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestCalibrationLowMeanPrice checks the property the paper's cost savings
// rest on: spot prices average well below on-demand.
func TestCalibrationLowMeanPrice(t *testing.T) {
	cfg := DefaultConfig(3)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.IDs() {
		sum := Summarize(s, id)
		ratio := sum.Mean / sum.OnDemand
		if ratio < 0.05 || ratio > 0.55 {
			t.Errorf("%s: mean/on-demand = %.3f, want low spot regime", id, ratio)
		}
	}
}

// TestCalibrationSpikeRegime checks that prices occasionally exceed
// on-demand (driving migrations) and, more rarely, the 4x bid cap
// (driving proactive forced migrations) — but not so often that spot
// hosting stops making sense.
func TestCalibrationSpikeRegime(t *testing.T) {
	cfg := DefaultConfig(5)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	anyAboveOD, anyAbove4x := false, false
	for _, id := range s.IDs() {
		sum := Summarize(s, id)
		if sum.FracAboveOD > 0.15 {
			t.Errorf("%s: price above on-demand %.1f%% of the time — too hot", id, sum.FracAboveOD*100)
		}
		if sum.FracAboveOD > 0 {
			anyAboveOD = true
		}
		if sum.FracAbove4xOD > 0 {
			anyAbove4x = true
		}
		if sum.FracAbove4xOD > sum.FracAboveOD {
			t.Errorf("%s: impossible spike fractions", id)
		}
	}
	if !anyAboveOD {
		t.Error("no market ever exceeded on-demand price: spikes missing")
	}
	if !anyAbove4x {
		t.Error("no market ever exceeded the 4x bid cap: tail too thin")
	}
}

// TestCalibrationRegionalVolatility checks the Fig. 10 property: us-east
// markets are more variable than eu-west.
func TestCalibrationRegionalVolatility(t *testing.T) {
	cfg := DefaultConfig(9)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avgStd := func(r Region) float64 {
		var sum float64
		types := s.TypesIn(r)
		for _, ty := range types {
			tr := s.Trace(ID{Region: r, Type: ty})
			sum += StdDev(tr) / s.OnDemand(ID{Region: r, Type: ty})
		}
		return sum / float64(len(types))
	}
	east := (avgStd("us-east-1a") + avgStd("us-east-1b")) / 2
	eu := avgStd("eu-west-1a")
	if east <= eu {
		t.Errorf("us-east normalized stddev (%.3f) should exceed eu-west (%.3f)", east, eu)
	}
}

// TestCalibrationLowCorrelation checks the Fig. 8(b)/9(b) property: spot
// markets are only weakly correlated, within and across regions.
func TestCalibrationLowCorrelation(t *testing.T) {
	cfg := DefaultConfig(13)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Regions() {
		var ids []ID
		for _, ty := range s.TypesIn(r) {
			ids = append(ids, ID{Region: r, Type: ty})
		}
		c := PairwiseAvgCorrelation(s, ids)
		if c < -0.2 || c > 0.6 {
			t.Errorf("region %s intra correlation %.3f outside weak band", r, c)
		}
	}
	c := CrossRegionCorrelation(s, "us-east-1a", "eu-west-1a")
	if c < -0.2 || c > 0.5 {
		t.Errorf("cross-region correlation %.3f outside weak band", c)
	}
}

func TestPriceAtConsistentWithSample(t *testing.T) {
	cfg := DefaultConfig(17)
	cfg.Horizon = 2 * sim.Day
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace(s.IDs()[0])
	f := func(x uint16) bool {
		tt := float64(x) / 65535 * tr.End()
		p := tr.PriceAt(tt)
		return p > 0 && p >= tr.Min() && p <= tr.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogLookups(t *testing.T) {
	if _, ok := FindType(DefaultTypes(), "small"); !ok {
		t.Fatal("small missing from catalog")
	}
	if _, ok := FindType(DefaultTypes(), "nope"); ok {
		t.Fatal("phantom type found")
	}
	if _, ok := FindRegion(DefaultRegions(), "us-east-1a"); !ok {
		t.Fatal("us-east-1a missing")
	}
	if _, ok := FindRegion(DefaultRegions(), "mars-1a"); ok {
		t.Fatal("phantom region found")
	}
	rs, _ := FindRegion(DefaultRegions(), "eu-west-1a")
	ts, _ := FindType(DefaultTypes(), "small")
	if got := OnDemandPrice(rs, ts); math.Abs(got-0.06*1.08) > 1e-12 {
		t.Fatalf("OnDemandPrice = %v", got)
	}
}

func TestCorrelationSelfIsOne(t *testing.T) {
	cfg := DefaultConfig(19)
	cfg.Horizon = 2 * sim.Day
	s, _ := Generate(cfg)
	tr := s.Trace(s.IDs()[0])
	if r := Correlation(tr, tr); math.Abs(r-1) > 1e-9 {
		t.Fatalf("self correlation = %v", r)
	}
}
