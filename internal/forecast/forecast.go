// Package forecast provides online spot-price statistics and simple
// predictive models used by stability-aware bidding — the extension the
// paper names as future work ("bidding strategies that take spot price
// stability into account"): decaying moments over piecewise-constant price
// signals, trailing-window trace statistics, excursion (spike) rates and
// an AR(1) fit for mean-reverting log prices.
package forecast

import (
	"errors"
	"math"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// DecayingMoments tracks the exponentially-decayed mean and variance of a
// piecewise-constant signal (such as a spot price) in O(1) per change.
// Each observation states that the signal held value v since the previous
// observation; history is discounted with the configured half-life, so
// recent behaviour dominates. The zero value is not usable; construct with
// NewDecayingMoments.
type DecayingMoments struct {
	tau    float64 // decay time constant (halflife / ln 2)
	primed bool
	lastT  sim.Time
	lastV  float64
	w      float64 // total decayed weight
	m1     float64 // decayed sum of v
	m2     float64 // decayed sum of v^2
}

// NewDecayingMoments returns a tracker whose memory halves every halflife
// seconds. Panics on a non-positive half-life (always a configuration
// bug).
func NewDecayingMoments(halflife sim.Duration) *DecayingMoments {
	if halflife <= 0 {
		panic("forecast: non-positive halflife")
	}
	return &DecayingMoments{tau: float64(halflife) / math.Ln2}
}

// Observe records that the signal changed to value v at time t (the
// previous value held during [lastT, t)). Out-of-order observations are
// ignored.
func (dm *DecayingMoments) Observe(t sim.Time, v float64) {
	if !dm.primed {
		dm.primed = true
		dm.lastT, dm.lastV = t, v
		return
	}
	if t < dm.lastT {
		return
	}
	d := t - dm.lastT
	if d > 0 {
		decay := math.Exp(-d / dm.tau)
		segW := dm.tau * (1 - decay)
		dm.w = dm.w*decay + segW
		dm.m1 = dm.m1*decay + segW*dm.lastV
		dm.m2 = dm.m2*decay + segW*dm.lastV*dm.lastV
	}
	dm.lastT, dm.lastV = t, v
}

// advance returns the moments as of time t (crediting the current value
// for [lastT, t)) without mutating the tracker.
func (dm *DecayingMoments) advance(t sim.Time) (w, m1, m2 float64) {
	w, m1, m2 = dm.w, dm.m1, dm.m2
	if !dm.primed || t <= dm.lastT {
		return
	}
	d := t - dm.lastT
	decay := math.Exp(-d / dm.tau)
	segW := dm.tau * (1 - decay)
	w = w*decay + segW
	m1 = m1*decay + segW*dm.lastV
	m2 = m2*decay + segW*dm.lastV*dm.lastV
	return
}

// Mean returns the decayed mean as of time t. Before any observation it
// returns 0.
func (dm *DecayingMoments) Mean(t sim.Time) float64 {
	w, m1, _ := dm.advance(t)
	if w == 0 {
		if dm.primed {
			return dm.lastV
		}
		return 0
	}
	return m1 / w
}

// Std returns the decayed standard deviation as of time t.
func (dm *DecayingMoments) Std(t sim.Time) float64 {
	w, m1, m2 := dm.advance(t)
	if w == 0 {
		return 0
	}
	mean := m1 / w
	v := m2/w - mean*mean
	if v < 0 {
		v = 0 // numerical floor
	}
	return math.Sqrt(v)
}

// Primed reports whether at least one observation has been recorded.
func (dm *DecayingMoments) Primed() bool { return dm.primed }

// TrailingStd returns the sampled standard deviation of a trace over the
// window (t-window, t], using the given sampling step. It looks only at
// the past, so it is a legitimate online statistic.
func TrailingStd(tr *market.Trace, t sim.Time, window, step sim.Duration) float64 {
	if step <= 0 || window <= 0 {
		return 0
	}
	start := t - window
	if start < tr.Start() {
		start = tr.Start()
	}
	// The grid is walked in time order, so one cursor makes every lookup
	// O(1) amortized instead of a binary search per sample.
	cur := market.NewCursor(tr)
	var n int
	var mean, m2 float64
	for s := start; s <= t; s += step {
		x := cur.PriceAt(s)
		n++
		d := x - mean
		mean += d / float64(n)
		m2 += d * (x - mean)
	}
	if n < 2 {
		return 0
	}
	return math.Sqrt(m2 / float64(n-1))
}

// TrailingMean returns the time-weighted mean of a trace over the window
// (t-window, t].
func TrailingMean(tr *market.Trace, t sim.Time, window sim.Duration) float64 {
	start := t - window
	if start < tr.Start() {
		start = tr.Start()
	}
	if t <= start {
		return tr.PriceAt(t)
	}
	return tr.TimeWeightedMean(start, t)
}

// ExcursionRate returns how many upward crossings of the threshold the
// trace made per day over the trailing window — an empirical spike-hazard
// estimate.
func ExcursionRate(tr *market.Trace, t sim.Time, window sim.Duration, threshold float64) float64 {
	start := t - window
	if start < tr.Start() {
		start = tr.Start()
	}
	if t <= start {
		return 0
	}
	crossings := 0
	c := market.NewCursor(tr)
	prev := c.PriceAt(start)
	cur := start
	for {
		nt, np, ok := c.NextChangeAfter(cur)
		if !ok || nt > t {
			break
		}
		if prev <= threshold && np > threshold {
			crossings++
		}
		prev, cur = np, nt
	}
	return float64(crossings) / (float64(t-start) / sim.Day)
}

// AR1 is a first-order autoregressive model x_t = Mu + Phi*(x_{t-1} - Mu)
// + eps, eps ~ N(0, Sigma^2), fitted to a uniformly sampled series.
type AR1 struct {
	Mu    float64
	Phi   float64
	Sigma float64
}

// ErrShortSeries is returned when there are too few points to fit.
var ErrShortSeries = errors.New("forecast: series too short for AR(1) fit")

// FitAR1 estimates an AR(1) model from a sampled series by least squares.
func FitAR1(xs []float64) (AR1, error) {
	n := len(xs)
	if n < 3 {
		return AR1{}, ErrShortSeries
	}
	// Regress x_t on x_{t-1}.
	var sx, sy, sxx, sxy float64
	m := float64(n - 1)
	for i := 1; i < n; i++ {
		x, y := xs[i-1], xs[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := sxx - sx*sx/m
	if den == 0 {
		// Constant series: perfectly persistent, no noise.
		return AR1{Mu: xs[0], Phi: 1, Sigma: 0}, nil
	}
	phi := (sxy - sx*sy/m) / den
	alpha := (sy - phi*sx) / m
	mu := alpha
	if phi < 1 {
		mu = alpha / (1 - phi)
	}
	// Residual standard deviation.
	var ss float64
	for i := 1; i < n; i++ {
		r := xs[i] - (alpha + phi*xs[i-1])
		ss += r * r
	}
	return AR1{Mu: mu, Phi: phi, Sigma: math.Sqrt(ss / m)}, nil
}

// Forecast returns the h-step-ahead conditional mean given the current
// value x.
func (m AR1) Forecast(x float64, h int) float64 {
	if h <= 0 {
		return x
	}
	p := math.Pow(m.Phi, float64(h))
	return m.Mu + p*(x-m.Mu)
}

// ForecastStd returns the h-step-ahead conditional standard deviation.
func (m AR1) ForecastStd(h int) float64 {
	if h <= 0 {
		return 0
	}
	phi2 := m.Phi * m.Phi
	if phi2 >= 1 {
		return m.Sigma * math.Sqrt(float64(h))
	}
	return m.Sigma * math.Sqrt((1-math.Pow(phi2, float64(h)))/(1-phi2))
}

// StationaryStd returns the model's long-run standard deviation (infinite
// horizon), or +Inf for non-stationary fits.
func (m AR1) StationaryStd() float64 {
	phi2 := m.Phi * m.Phi
	if phi2 >= 1 {
		return math.Inf(1)
	}
	return m.Sigma / math.Sqrt(1-phi2)
}

// Score ranks a market for stability-aware bidding: expected hourly cost
// plus lambda times its volatility. Lower is better. With lambda = 0 this
// degenerates to the paper's greedy cheapest-market rule.
func Score(mean, std, lambda float64) float64 {
	return mean + lambda*std
}
