package forecast_test

import (
	"fmt"

	"spothost/internal/forecast"
)

// ExampleDecayingMoments tracks a spot price online and shows how a
// stability-aware bidder would rank a jumpy market against a steady one.
func ExampleDecayingMoments() {
	steady := forecast.NewDecayingMoments(3600)
	jumpy := forecast.NewDecayingMoments(3600)
	for ts := 0.0; ts < 36000; ts += 600 {
		steady.Observe(ts, 0.024)
		price := 0.004
		if int(ts/3600)%2 == 1 {
			price = 0.036 // alternates every hour around the same mean
		}
		jumpy.Observe(ts, price)
	}
	at := 36000.0
	lambda := 1.0
	steadyScore := forecast.Score(steady.Mean(at), steady.Std(at), lambda)
	jumpyScore := forecast.Score(jumpy.Mean(at), jumpy.Std(at), lambda)
	fmt.Printf("steady beats jumpy despite the higher mean: %v\n", steadyScore < jumpyScore)
	// Output:
	// steady beats jumpy despite the higher mean: true
}

// ExampleFitAR1 fits a mean-reverting model to a sampled price series and
// forecasts its return to the mean.
func ExampleFitAR1() {
	series := []float64{10, 10.5, 10.2, 10.4, 9.9, 10.1, 10.0, 10.3, 9.8, 10.2,
		10.0, 9.9, 10.1, 10.2, 10.0, 9.8, 10.1, 10.0, 10.2, 9.9}
	m, err := forecast.FitAR1(series)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mean-reverting=%v forecast-approaches-mu=%v\n",
		m.Phi < 1, m.Forecast(12, 50) < 12)
	// Output:
	// mean-reverting=true forecast-approaches-mu=true
}
