package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spothost/internal/market"
	"spothost/internal/sim"
)

func TestDecayingMomentsConstantSignal(t *testing.T) {
	dm := NewDecayingMoments(3600)
	dm.Observe(0, 5)
	dm.Observe(1000, 5)
	dm.Observe(5000, 5)
	if got := dm.Mean(6000); math.Abs(got-5) > 1e-9 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := dm.Std(6000); got > 1e-6 { // floating-point floor
		t.Fatalf("std of constant = %v", got)
	}
}

func TestDecayingMomentsStep(t *testing.T) {
	// Signal 0 for a long time, then 10: with a short half-life the mean
	// converges toward 10 quickly.
	dm := NewDecayingMoments(60)
	dm.Observe(0, 0)
	dm.Observe(10000, 10) // 0 held for 10000 s
	if got := dm.Mean(10000); got > 0.01 {
		t.Fatalf("mean right at the step = %v, want ~0", got)
	}
	if got := dm.Mean(10600); got < 9.9 {
		t.Fatalf("mean 10 half-lives after step = %v, want ~10", got)
	}
}

func TestDecayingMomentsTwoLevels(t *testing.T) {
	// Long-run alternation between 1 and 3 with equal durations: mean ~2,
	// std ~1.
	dm := NewDecayingMoments(2000)
	v := 1.0
	for ts := 0.0; ts < 100000; ts += 100 {
		dm.Observe(ts, v)
		if v == 1 {
			v = 3
		} else {
			v = 1
		}
	}
	if got := dm.Mean(100000); math.Abs(got-2) > 0.1 {
		t.Fatalf("mean = %v, want ~2", got)
	}
	if got := dm.Std(100000); math.Abs(got-1) > 0.1 {
		t.Fatalf("std = %v, want ~1", got)
	}
}

func TestDecayingMomentsOutOfOrderIgnored(t *testing.T) {
	dm := NewDecayingMoments(100)
	dm.Observe(1000, 5)
	dm.Observe(500, 99) // ignored
	dm.Observe(2000, 5)
	if got := dm.Std(2000); got > 1e-9 {
		t.Fatalf("out-of-order corrupted: std=%v", got)
	}
}

func TestDecayingMomentsUnprimed(t *testing.T) {
	dm := NewDecayingMoments(100)
	if dm.Primed() || dm.Mean(10) != 0 || dm.Std(10) != 0 {
		t.Fatal("unprimed tracker should be zero")
	}
	dm.Observe(0, 7)
	if !dm.Primed() {
		t.Fatal("not primed after observation")
	}
	// Single observation, no elapsed weight: mean falls back to the value.
	if got := dm.Mean(0); got != 7 {
		t.Fatalf("single-obs mean = %v", got)
	}
}

func TestDecayingMomentsPanicsOnBadHalflife(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDecayingMoments(0)
}

func TestDecayingMomentsStdNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n uint8) bool {
		dm := NewDecayingMoments(500)
		ts := 0.0
		for i := 0; i < int(n)+2; i++ {
			ts += rng.Float64() * 1000
			dm.Observe(ts, rng.Float64()*10)
		}
		return dm.Std(ts+100) >= 0 && !math.IsNaN(dm.Std(ts+100))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mkTrace(t *testing.T, pts []market.Point, end sim.Time) *market.Trace {
	t.Helper()
	tr, err := market.NewTrace(market.ID{Region: "r", Type: "small"}, pts, end)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrailingStats(t *testing.T) {
	tr := mkTrace(t, []market.Point{{T: 0, Price: 1}, {T: 1000, Price: 3}}, 5000)
	// Window covering only the flat tail: zero std, mean 3.
	if got := TrailingStd(tr, 3000, 1000, 100); got != 0 {
		t.Fatalf("flat trailing std = %v", got)
	}
	if got := TrailingMean(tr, 3000, 1000); got != 3 {
		t.Fatalf("trailing mean = %v", got)
	}
	// Window straddling the step: positive std, mean between levels.
	if got := TrailingStd(tr, 1500, 1500, 100); got <= 0 {
		t.Fatalf("straddling std = %v", got)
	}
	m := TrailingMean(tr, 2000, 2000)
	if m <= 1 || m >= 3 {
		t.Fatalf("straddling mean = %v", m)
	}
	// Degenerate inputs.
	if TrailingStd(tr, 1000, 0, 100) != 0 || TrailingStd(tr, 1000, 100, 0) != 0 {
		t.Fatal("degenerate windows should be 0")
	}
}

func TestExcursionRate(t *testing.T) {
	tr := mkTrace(t, []market.Point{
		{T: 0, Price: 0.01},
		{T: 10000, Price: 0.5}, {T: 11000, Price: 0.01},
		{T: 50000, Price: 0.7}, {T: 51000, Price: 0.01},
	}, 2*sim.Day)
	// Two upward crossings of 0.1 in the first day.
	got := ExcursionRate(tr, sim.Day, sim.Day, 0.1)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("excursion rate = %v, want 2/day", got)
	}
	// No crossings of a very high threshold.
	if got := ExcursionRate(tr, sim.Day, sim.Day, 10); got != 0 {
		t.Fatalf("high-threshold rate = %v", got)
	}
	// Empty window.
	if got := ExcursionRate(tr, 0, sim.Day, 0.1); got != 0 {
		t.Fatalf("empty-window rate = %v", got)
	}
}

func TestFitAR1Recovers(t *testing.T) {
	// Simulate a known AR(1) and refit.
	const mu, phi, sigma = 2.0, 0.9, 0.3
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 20000)
	xs[0] = mu
	for i := 1; i < len(xs); i++ {
		xs[i] = mu + phi*(xs[i-1]-mu) + sigma*rng.NormFloat64()
	}
	m, err := FitAR1(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi-phi) > 0.03 {
		t.Fatalf("phi = %v, want ~%v", m.Phi, phi)
	}
	if math.Abs(m.Mu-mu) > 0.2 {
		t.Fatalf("mu = %v, want ~%v", m.Mu, mu)
	}
	if math.Abs(m.Sigma-sigma) > 0.03 {
		t.Fatalf("sigma = %v, want ~%v", m.Sigma, sigma)
	}
}

func TestFitAR1Degenerate(t *testing.T) {
	if _, err := FitAR1([]float64{1, 2}); err != ErrShortSeries {
		t.Fatal("short series accepted")
	}
	m, err := FitAR1([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma != 0 || m.Phi != 1 {
		t.Fatalf("constant series fit: %+v", m)
	}
}

func TestAR1Forecast(t *testing.T) {
	m := AR1{Mu: 10, Phi: 0.5, Sigma: 1}
	if got := m.Forecast(14, 1); math.Abs(got-12) > 1e-9 {
		t.Fatalf("1-step forecast = %v, want 12", got)
	}
	if got := m.Forecast(14, 0); got != 14 {
		t.Fatalf("0-step forecast = %v", got)
	}
	// Long-horizon forecast converges to the mean.
	if got := m.Forecast(14, 100); math.Abs(got-10) > 1e-6 {
		t.Fatalf("long forecast = %v, want mu", got)
	}
	// Forecast std grows toward the stationary value.
	if m.ForecastStd(0) != 0 {
		t.Fatal("0-step std should be 0")
	}
	s1, s10 := m.ForecastStd(1), m.ForecastStd(10)
	if !(s1 < s10) {
		t.Fatalf("std not increasing: %v vs %v", s1, s10)
	}
	if math.Abs(s10-m.StationaryStd()) > 0.01 {
		t.Fatalf("10-step std %v far from stationary %v", s10, m.StationaryStd())
	}
	// Non-stationary model.
	rw := AR1{Mu: 0, Phi: 1, Sigma: 1}
	if !math.IsInf(rw.StationaryStd(), 1) {
		t.Fatal("random walk should have infinite stationary std")
	}
	if got := rw.ForecastStd(4); math.Abs(got-2) > 1e-9 {
		t.Fatalf("random-walk 4-step std = %v, want 2", got)
	}
}

func TestScore(t *testing.T) {
	if Score(1, 2, 0) != 1 {
		t.Fatal("lambda 0 should be pure mean")
	}
	if Score(1, 2, 0.5) != 2 {
		t.Fatal("score arithmetic wrong")
	}
	// A cheap volatile market can lose to a pricier stable one.
	cheapVolatile := Score(0.02, 0.10, 1)
	pricierStable := Score(0.04, 0.01, 1)
	if cheapVolatile < pricierStable {
		t.Fatal("stability penalty had no effect")
	}
}

// TestDecayingMomentsMatchesTrailingStd cross-validates the two volatility
// estimators on a generated trace: both should agree on which of two
// markets is more volatile.
func TestDecayingMomentsMatchesTrailingStd(t *testing.T) {
	cfg := market.DefaultConfig(3)
	cfg.Horizon = 6 * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	volatile := set.Trace(market.ID{Region: "us-east-1b", Type: "small"})
	stable := set.Trace(market.ID{Region: "eu-west-1a", Type: "small"})

	measure := func(tr *market.Trace) (decayed, trailing float64) {
		dm := NewDecayingMoments(12 * sim.Hour)
		cur := tr.Start()
		dm.Observe(cur, tr.PriceAt(cur))
		for {
			nt, np, ok := tr.NextChangeAfter(cur)
			if !ok {
				break
			}
			dm.Observe(nt, np)
			cur = nt
		}
		at := tr.End() - 1
		return dm.Std(at) / tr.PriceAt(0), TrailingStd(tr, at, 2*sim.Day, 300) / tr.PriceAt(0)
	}
	dv, tv := measure(volatile)
	ds, ts := measure(stable)
	if (dv > ds) != (tv > ts) {
		t.Fatalf("estimators disagree: decayed %v/%v, trailing %v/%v", dv, ds, tv, ts)
	}
}
