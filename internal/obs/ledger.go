package obs

import (
	"encoding/json"
	"io"
)

// LedgerSchema versions the decision-ledger record layout. Consumers
// must check it before parsing: fields are only ever added (all optional
// ones carry omitempty), and any removal or change of meaning bumps the
// version.
const LedgerSchema = 1

// Decision is one controller action together with the inputs that
// justified it, serialized as one NDJSON line per record.
type Decision struct {
	Schema int     `json:"schema"`
	At     float64 `json:"at_seconds"`
	// Action is the request class: "spot", "on-demand", "reverse",
	// "rebalance", "downsize" or "bridge".
	Action string `json:"action"`
	Market string `json:"market,omitempty"`
	Type   string `json:"type,omitempty"`
	// Price is the chosen market's per-capacity-unit hourly price at
	// decision time; Bid is the raw bid covering it (spot classes only).
	Price float64 `json:"price,omitempty"`
	Bid   float64 `json:"bid,omitempty"`
	Units int     `json:"units,omitempty"`
	// Rank is the chosen market's index in the controller's sorted
	// candidate universe (the catalog rank in typed mode).
	Rank int `json:"rank"`
	// ArgminMarket/ArgminPrice are the price envelope's global per-unit
	// argmin at decision time — what the controller compared against.
	ArgminMarket string  `json:"argmin_market,omitempty"`
	ArgminPrice  float64 `json:"argmin_price,omitempty"`
	// Margin is the hysteresis margin the action cleared (reverse,
	// rebalance and downsize classes).
	Margin float64 `json:"margin,omitempty"`
	// TargetUnits/CapacityUnits/QuotaUnits are the quota state at
	// decision time: the unit target, the counted capacity before this
	// request, and the MaxReplicas ceiling in capacity units.
	TargetUnits   int `json:"target_units"`
	CapacityUnits int `json:"capacity_units"`
	QuotaUnits    int `json:"quota_units"`
	// Replaces names the market of the replica this launch drains.
	Replaces string `json:"replaces,omitempty"`
	Note     string `json:"note,omitempty"`
	// Label identifies the run when ledgers from several runs merge into
	// one stream; empty inside a single run.
	Label string `json:"label,omitempty"`
}

// AppendNDJSON appends the decision to dst as one JSON line.
func (d Decision) AppendNDJSON(dst []byte) ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// WriteLedger streams decisions to w as NDJSON.
func WriteLedger(w io.Writer, ds []Decision) error {
	var buf []byte
	for _, d := range ds {
		var err error
		if buf, err = d.AppendNDJSON(buf[:0]); err != nil {
			return err
		}
		if _, err = w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
