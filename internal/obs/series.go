package obs

// SeriesKind distinguishes how bucket sums are interpreted.
type SeriesKind uint8

const (
	// CounterSeries buckets sum event weights (dollars charged, launches).
	CounterSeries SeriesKind = iota
	// GaugeSeries buckets hold the time integral of a step function
	// (capacity units x seconds); exported per-bucket values are
	// time-weighted means.
	GaugeSeries
)

func (k SeriesKind) String() string {
	if k == GaugeSeries {
		return "gauge"
	}
	return "counter"
}

// bucket is one fixed-width window of simulated time: a running sum
// (event weights for counters, value x seconds for gauges) and a sample
// count.
type bucket struct {
	sum float64
	n   int64
}

// Series is a fixed-memory series over simulated time. Buckets are
// aligned at t=0 with a uniform width; while the observed horizon fits
// the bucket budget the series is exact at that width, and when it
// outgrows the budget adjacent bucket pairs merge (the width doubles).
// Merging adds sums, so counter totals and gauge integrals are preserved
// exactly, and the downsampled shape is a pure function of the
// observation sequence — deterministic no matter when overflow happens.
type Series struct {
	name   string
	kind   SeriesKind
	budget int
	width  float64
	b      []bucket
	lastT  float64 // gauges: end of the last credited interval
}

func newSeries(name string, kind SeriesKind, budget int, width float64) *Series {
	return &Series{name: name, kind: kind, budget: budget, width: width}
}

// ensure compacts until the bucket covering t fits the budget and grows
// the slice to include it, returning its index.
func (s *Series) ensure(t float64) int {
	if t < 0 {
		t = 0
	}
	for int(t/s.width) >= s.budget {
		s.compact()
	}
	i := int(t / s.width)
	for len(s.b) <= i {
		s.b = append(s.b, bucket{})
	}
	return i
}

// compact merges adjacent bucket pairs, halving resolution.
func (s *Series) compact() {
	half := (len(s.b) + 1) / 2
	for i := 0; i < half; i++ {
		m := s.b[2*i]
		if 2*i+1 < len(s.b) {
			m.sum += s.b[2*i+1].sum
			m.n += s.b[2*i+1].n
		}
		s.b[i] = m
	}
	s.b = s.b[:half]
	s.width *= 2
}

// add records a point sample (counter semantics).
func (s *Series) add(t, v float64) {
	i := s.ensure(t)
	s.b[i].sum += v
	s.b[i].n++
}

// until credits value v over the interval since the last credit (gauge
// semantics): sum accumulates v x seconds per covered bucket. Calls with
// non-advancing t are no-ops, mirroring the accounting they shadow.
func (s *Series) until(t, v float64) {
	if t <= s.lastT {
		return
	}
	s.ensure(t)
	lo := s.lastT
	for lo < t {
		i := int(lo / s.width)
		hi := float64(i+1) * s.width
		if hi > t {
			hi = t
		}
		s.b[i].sum += v * (hi - lo)
		s.b[i].n++
		lo = hi
	}
	s.lastT = t
}

// clone returns an independent copy; snapshots fold open tails into
// clones so the live series is never mutated by an export.
func (s *Series) clone() *Series {
	c := *s
	c.b = append([]bucket(nil), s.b...)
	return &c
}

// rangeIntegral integrates the series over [lo, hi], spreading each
// bucket's sum uniformly over its covered span. now bounds the last
// bucket's coverage (a partially filled tail bucket covers only up to
// now, not its full width).
func (s *Series) rangeIntegral(lo, hi, now float64) float64 {
	if len(s.b) == 0 || hi <= lo {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	i0 := int(lo / s.width)
	i1 := int(hi / s.width)
	if i1 >= len(s.b) {
		i1 = len(s.b) - 1
	}
	total := 0.0
	for i := i0; i <= i1; i++ {
		b0 := float64(i) * s.width
		covered := s.width
		if c := now - b0; c < covered {
			covered = c
		}
		if covered <= 0 {
			break
		}
		o0, o1 := lo, hi
		if b0 > o0 {
			o0 = b0
		}
		if e := b0 + covered; e < o1 {
			o1 = e
		}
		if o1 > o0 {
			total += s.b[i].sum * (o1 - o0) / covered
		}
	}
	return total
}

// SeriesData is one exported series: for counters Buckets holds
// per-bucket sums and Integral their total; for gauges Buckets holds
// time-weighted means and Integral the full time integral
// (value x seconds).
type SeriesData struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Width    float64   `json:"width_seconds"`
	Buckets  []float64 `json:"buckets"`
	Integral float64   `json:"integral"`
}

// data exports the series as of simulated time now.
func (s *Series) data(now float64) SeriesData {
	d := SeriesData{Name: s.name, Kind: s.kind.String(), Width: s.width, Buckets: make([]float64, len(s.b))}
	for i := range s.b {
		v := s.b[i].sum
		d.Integral += v
		if s.kind == GaugeSeries {
			covered := s.width
			if c := now - float64(i)*s.width; c < covered {
				covered = c
			}
			if covered > 0 {
				v /= covered
			} else {
				v = 0
			}
		}
		d.Buckets[i] = v
	}
	return d
}
