package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Collector aggregates per-run Recorders, mirroring trace.Collector:
// Scope returns prefix-joined views over the same shared state, Run
// mints a recorder (a nil collector mints nil recorders, so callers need
// no branches), and Done merges a finished run back. Export orders runs
// by label, so output is byte-identical no matter how many workers raced
// the runs.
type Collector struct {
	shared *collectorShared
	prefix string
}

type collectorShared struct {
	mu       sync.Mutex
	cfg      Config
	keepRuns bool
	runs     map[string]*Recorder

	// Rolled-up totals for /metrics, kept even when runs are dropped.
	done      int64
	decisions map[string]int64
	alerts    int64
	cost      float64
	shortfall float64 // unit-seconds
}

// NewCollector returns a collector that retains every finished recorder
// for timeline/ledger export (CLI and experiment use).
func NewCollector(cfg Config) *Collector {
	return &Collector{shared: &collectorShared{
		cfg:       cfg.withDefaults(),
		keepRuns:  true,
		runs:      map[string]*Recorder{},
		decisions: map[string]int64{},
	}}
}

// NewAggregateCollector returns a collector that folds finished runs
// into scalar totals and drops the recorders — bounded memory for
// long-lived servers that only export /metrics.
func NewAggregateCollector(cfg Config) *Collector {
	c := NewCollector(cfg)
	c.shared.keepRuns = false
	return c
}

// Scope returns a view whose run labels are prefixed with prefix + "/".
func (c *Collector) Scope(prefix string) *Collector {
	if c == nil {
		return nil
	}
	p := prefix
	if c.prefix != "" {
		p = c.prefix + "/" + prefix
	}
	return &Collector{shared: c.shared, prefix: p}
}

// Run mints a recorder for one simulation run.
func (c *Collector) Run(label string) *Recorder {
	if c == nil {
		return nil
	}
	if c.prefix != "" {
		label = c.prefix + "/" + label
	}
	return NewRecorder(label, c.shared.cfg)
}

// Done hands a finished run's recorder back: its totals roll into the
// collector aggregates and (in keep-runs mode) the recorder is retained
// under its label, deduplicated with a "#n" suffix on collision.
func (c *Collector) Done(rec *Recorder) {
	if c == nil || rec == nil {
		return
	}
	tl := rec.SnapshotFinal()
	s := c.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	for _, d := range rec.ledger {
		s.decisions[d.Action]++
	}
	s.alerts += int64(len(tl.Alerts))
	for _, sd := range tl.Series {
		switch sd.Name {
		case "cost_dollars":
			s.cost += sd.Integral
		case "shortfall_units":
			s.shortfall += sd.Integral
		}
	}
	if !s.keepRuns {
		return
	}
	label := rec.label
	if _, taken := s.runs[label]; taken {
		for n := 2; ; n++ {
			alt := fmt.Sprintf("%s#%d", label, n)
			if _, taken := s.runs[alt]; !taken {
				label = alt
				break
			}
		}
		rec.label = label
	}
	s.runs[label] = rec
}

// sortedRuns returns the retained recorders ordered by label; callers
// hold s.mu.
func (c *Collector) sortedRuns() []*Recorder {
	s := c.shared
	out := make([]*Recorder, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// Timelines returns the finished runs' final timelines sorted by label.
func (c *Collector) Timelines() []Timeline {
	if c == nil {
		return nil
	}
	c.shared.mu.Lock()
	defer c.shared.mu.Unlock()
	recs := c.sortedRuns()
	out := make([]Timeline, len(recs))
	for i, r := range recs {
		out[i] = r.SnapshotFinal()
	}
	return out
}

// WriteTimelineCSV emits every retained run's timeline in long form,
// header first, runs ordered by label.
func (c *Collector) WriteTimelineCSV(w io.Writer) error {
	if c == nil {
		return nil
	}
	if _, err := io.WriteString(w, TimelineCSVHeader); err != nil {
		return err
	}
	for _, tl := range c.Timelines() {
		if err := tl.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteLedgerNDJSON streams every retained run's decisions as NDJSON,
// label-stamped, runs ordered by label.
func (c *Collector) WriteLedgerNDJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.shared.mu.Lock()
	recs := c.sortedRuns()
	c.shared.mu.Unlock()
	var buf []byte
	for _, r := range recs {
		for _, d := range r.ledger {
			d.Label = r.label
			var err error
			if buf, err = d.AppendNDJSON(buf[:0]); err != nil {
				return err
			}
			if _, err = w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFiles writes <prefix>-timeline.csv and <prefix>-ledger.ndjson,
// the CLI export behind the -obs-out flag.
func (c *Collector) WriteFiles(prefix string) error {
	if c == nil {
		return nil
	}
	tf, err := os.Create(prefix + "-timeline.csv")
	if err != nil {
		return err
	}
	if err := c.WriteTimelineCSV(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	lf, err := os.Create(prefix + "-ledger.ndjson")
	if err != nil {
		return err
	}
	if err := c.WriteLedgerNDJSON(lf); err != nil {
		lf.Close()
		return err
	}
	return lf.Close()
}

// WritePrometheus emits the rolled-up obs totals in Prometheus text
// format under the metric prefix (merged into GET /metrics).
func (c *Collector) WritePrometheus(w io.Writer, prefix string) {
	if c == nil {
		return
	}
	s := c.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s_obs_runs_total counter\n%s_obs_runs_total %d\n", prefix, prefix, s.done)
	actions := make([]string, 0, len(s.decisions))
	for a := range s.decisions {
		actions = append(actions, a)
	}
	sort.Strings(actions)
	fmt.Fprintf(w, "# TYPE %s_obs_decisions_total counter\n", prefix)
	for _, a := range actions {
		fmt.Fprintf(w, "%s_obs_decisions_total{action=%q} %d\n", prefix, a, s.decisions[a])
	}
	fmt.Fprintf(w, "# TYPE %s_obs_slo_alerts_total counter\n%s_obs_slo_alerts_total %d\n", prefix, prefix, s.alerts)
	fmt.Fprintf(w, "# TYPE %s_obs_cost_dollars_total counter\n%s_obs_cost_dollars_total %g\n", prefix, prefix, s.cost)
	fmt.Fprintf(w, "# TYPE %s_obs_shortfall_unit_seconds_total counter\n%s_obs_shortfall_unit_seconds_total %g\n", prefix, prefix, s.shortfall)
}
