package obs

import (
	"fmt"
	"io"
)

// Timeline is one run's exported telemetry: the downsampled series, the
// SLO alerts derived from them, and the ledger size. It marshals to the
// JSON served by GET /v1/tenants/{t}/fleets/{f}/timeline.
type Timeline struct {
	Schema    int          `json:"schema"`
	Label     string       `json:"label,omitempty"`
	End       float64      `json:"end_seconds"`
	Budget    int          `json:"budget"`
	Series    []SeriesData `json:"series"`
	Alerts    []Alert      `json:"alerts"`
	Decisions int          `json:"decisions"`
}

// TimelineCSVHeader is the header row of the long-form CSV export.
const TimelineCSVHeader = "label,series,kind,t0_seconds,width_seconds,value\n"

// WriteCSV emits the timeline in long form, one row per bucket —
// label,series,kind,t0_seconds,width_seconds,value — ready for pivoting
// in any plotting tool (see EXPERIMENTS.md for a walkthrough).
func (tl Timeline) WriteCSV(w io.Writer) error {
	for _, s := range tl.Series {
		for i, v := range s.Buckets {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%g,%g,%g\n",
				tl.Label, s.Name, s.Kind, float64(i)*s.Width, s.Width, v); err != nil {
				return err
			}
		}
	}
	return nil
}
