package obs

import "sort"

// SLOConfig derives an error budget from an availability objective and
// alerts when the burn rate over a trailing window exceeds a threshold —
// the standard multiwindow burn-rate policy, evaluated over simulated
// time instead of a live metrics store.
type SLOConfig struct {
	// Availability is the served/target objective (e.g. 0.999); the
	// error budget is 1 - Availability. Zero means DefaultAvailability.
	Availability float64
	// FastWindow/FastBurn page on sharp budget burn (default 1h at
	// 14.4x); SlowWindow/SlowBurn ticket on sustained burn (default 6h
	// at 6x). Windows are simulated seconds.
	FastWindow, FastBurn float64
	SlowWindow, SlowBurn float64
}

// DefaultAvailability is the default served/target objective.
const DefaultAvailability = 0.999

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = DefaultAvailability
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 3600
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 6 * 3600
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	return c
}

// Alert is one upward burn-rate threshold crossing.
type Alert struct {
	At       float64 `json:"at_seconds"`
	Window   float64 `json:"window_seconds"`
	Burn     float64 `json:"burn"`
	Severity string  `json:"severity"` // "page" (fast window) or "ticket" (slow)
}

// evaluateSLO walks bucket edges of the folded shortfall/target series
// and emits an alert at every upward crossing of a window's burn
// threshold. The burn rate at time t over window w is the fraction of
// capacity demand unserved in [t-w, t] divided by the error budget:
// burning at exactly 1x would exhaust the budget in one objective
// period. Evaluation is a pure function of the bucketized series, so
// alerts are deterministic for a given run.
func evaluateSLO(cfg SLOConfig, shortfall, target *Series, now float64) []Alert {
	cfg = cfg.withDefaults()
	budget := 1 - cfg.Availability
	var alerts []Alert
	for _, w := range []struct {
		width, thresh float64
		sev           string
	}{
		{cfg.FastWindow, cfg.FastBurn, "page"},
		{cfg.SlowWindow, cfg.SlowBurn, "ticket"},
	} {
		prev := 0.0
		for i := 0; i < len(shortfall.b); i++ {
			t := float64(i+1) * shortfall.width
			if t > now {
				t = now
			}
			tg := target.rangeIntegral(t-w.width, t, now)
			if tg > 0 {
				burn := shortfall.rangeIntegral(t-w.width, t, now) / tg / budget
				if burn >= w.thresh && prev < w.thresh {
					alerts = append(alerts, Alert{At: t, Window: w.width, Burn: burn, Severity: w.sev})
				}
				prev = burn
			}
			if t >= now {
				break
			}
		}
	}
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].At != alerts[j].At {
			return alerts[i].Window < alerts[j].Window
		}
		return alerts[i].At < alerts[j].At
	})
	return alerts
}
