// Package obs is the simulated-time telemetry layer: fixed-memory
// downsampled timelines (cost accrual, capacity vs demand, shortfall,
// per-market and per-type spend, interruption/rebalance counts), a
// structured decision ledger explaining every controller action, and SLO
// burn-rate alerting over the shortfall series.
//
// It follows internal/trace's contract exactly: a *Recorder rides on the
// engine, every method is nil-safe, call sites guard on nil before
// building arguments so the disabled path allocates nothing, and export
// is deterministic — ordered by run label, independent of worker count.
// Time is simulated seconds (plain float64, the representation under
// sim.Time), never wall clock.
package obs

import "sort"

// Default series sizing: budget bounds the bucket count of every series
// regardless of horizon; width is the initial bucket granularity and
// doubles (merging pairs) whenever the horizon outgrows the budget.
const (
	DefaultBudget = 512
	DefaultWidth  = 300 // seconds
)

// TimelineSchema versions the exported timeline layout (see LedgerSchema
// for the versioning rules).
const TimelineSchema = 1

// Config sizes a Recorder's series and its SLO policy.
type Config struct {
	// Budget bounds the bucket count of every series; 0 means
	// DefaultBudget. Memory per series is Budget buckets, fixed.
	Budget int
	// Width is the initial bucket width in simulated seconds; 0 means
	// DefaultWidth.
	Width float64
	// SLO configures burn-rate alerting over the shortfall timeline; the
	// zero value applies the defaults documented on SLOConfig.
	SLO SLOConfig
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.Width <= 0 {
		c.Width = DefaultWidth
	}
	return c
}

// CountKind enumerates the event counters a Recorder keeps.
type CountKind uint8

const (
	CountLaunch CountKind = iota
	CountInterruption
	CountLoss
	CountRebalance
	CountMigration
	nCounts
)

var countNames = [nCounts]string{"launches", "interruptions", "losses", "rebalances", "migrations"}

// Recorder accumulates one run's telemetry. It is nil-safe — every
// method no-ops on a nil receiver — and single-goroutine, like the
// simulation feeding it.
type Recorder struct {
	label string
	cfg   Config

	cost      *Series
	served    *Series
	target    *Series
	shortfall *Series
	counts    [nCounts]*Series
	mkt       map[string]*Series
	typ       map[string]*Series

	ledger []Decision
	end    float64
}

// NewRecorder returns a recorder labeled label (usually via
// Collector.Run rather than directly).
func NewRecorder(label string, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	o := &Recorder{label: label, cfg: cfg}
	o.cost = newSeries("cost_dollars", CounterSeries, cfg.Budget, cfg.Width)
	o.served = newSeries("served_units", GaugeSeries, cfg.Budget, cfg.Width)
	o.target = newSeries("target_units", GaugeSeries, cfg.Budget, cfg.Width)
	o.shortfall = newSeries("shortfall_units", GaugeSeries, cfg.Budget, cfg.Width)
	for k := CountKind(0); k < nCounts; k++ {
		o.counts[k] = newSeries(countNames[k], CounterSeries, cfg.Budget, cfg.Width)
	}
	return o
}

// Label returns the recorder's run label.
func (o *Recorder) Label() string {
	if o == nil {
		return ""
	}
	return o.label
}

// Capacity credits the capacity state that held since the previous call:
// served/target capacity units up to simulated time t. Call it exactly
// where the run's accounting advances (fleet.Controller.advance) so the
// gauge integrals reproduce the report's replica-second sums.
func (o *Recorder) Capacity(t float64, served, target int) {
	if o == nil {
		return
	}
	o.served.until(t, float64(served))
	o.target.until(t, float64(target))
	sf := target - served
	if sf < 0 {
		sf = 0
	}
	o.shortfall.until(t, float64(sf))
}

// Charge records a billing event of amount dollars against a market and
// instance type (refunds are negative).
func (o *Recorder) Charge(t float64, mkt, itype string, amount float64) {
	if o == nil {
		return
	}
	o.cost.add(t, amount)
	o.sub(&o.mkt, "spend:", mkt).add(t, amount)
	o.sub(&o.typ, "spend_type:", itype).add(t, amount)
}

func (o *Recorder) sub(m *map[string]*Series, prefix, key string) *Series {
	if *m == nil {
		*m = map[string]*Series{}
	}
	s, ok := (*m)[key]
	if !ok {
		s = newSeries(prefix+key, CounterSeries, o.cfg.Budget, o.cfg.Width)
		(*m)[key] = s
	}
	return s
}

// Count records one event on counter k.
func (o *Recorder) Count(t float64, k CountKind) {
	if o == nil || k >= nCounts {
		return
	}
	o.counts[k].add(t, 1)
}

// Decide appends one ledger record, stamping the schema version.
func (o *Recorder) Decide(d Decision) {
	if o == nil {
		return
	}
	d.Schema = LedgerSchema
	o.ledger = append(o.ledger, d)
}

// Ledger returns the decisions recorded so far, in order. The slice is
// the recorder's own backing store; callers must not mutate it.
func (o *Recorder) Ledger() []Decision {
	if o == nil {
		return nil
	}
	return o.ledger
}

// Finalize commits the open capacity tail at the end of the run, so
// subsequent snapshots need no fold.
func (o *Recorder) Finalize(t float64, served, target int) {
	if o == nil {
		return
	}
	o.Capacity(t, served, target)
	if t > o.end {
		o.end = t
	}
}

// Snapshot exports the timeline as of simulated time now without
// mutating the recorder: the interval since each gauge's last credit is
// folded into a copy, with served/target the capacity state holding over
// that open tail — the same read-only delta fold fleet reports use, so a
// mid-run snapshot never perturbs later ones or the final export.
func (o *Recorder) Snapshot(now float64, served, target int) Timeline {
	if o == nil {
		return Timeline{}
	}
	if now < o.end {
		now = o.end
	}
	tl := Timeline{
		Schema:    TimelineSchema,
		Label:     o.label,
		End:       now,
		Budget:    o.cfg.Budget,
		Decisions: len(o.ledger),
	}
	fold := func(s *Series, v int) *Series {
		c := s.clone()
		c.until(now, float64(v))
		return c
	}
	sf := target - served
	if sf < 0 {
		sf = 0
	}
	servedS, targetS, sfS := fold(o.served, served), fold(o.target, target), fold(o.shortfall, sf)
	tl.Series = append(tl.Series, o.cost.data(now), servedS.data(now), targetS.data(now), sfS.data(now))
	for k := CountKind(0); k < nCounts; k++ {
		tl.Series = append(tl.Series, o.counts[k].data(now))
	}
	for _, m := range []map[string]*Series{o.mkt, o.typ} {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tl.Series = append(tl.Series, m[k].data(now))
		}
	}
	tl.Alerts = evaluateSLO(o.cfg.SLO, sfS, targetS, now)
	if tl.Alerts == nil {
		tl.Alerts = []Alert{}
	}
	return tl
}

// SnapshotFinal exports the timeline of a finalized run (the gauge tails
// were committed by Finalize, so no fold values are needed).
func (o *Recorder) SnapshotFinal() Timeline {
	if o == nil {
		return Timeline{}
	}
	return o.Snapshot(o.end, 0, 0)
}
