package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// A counter series under budget is exact: every event lands in its own
// aligned bucket at the initial width and the integral is the plain sum.
func TestSeriesExactUnderBudget(t *testing.T) {
	s := newSeries("x", CounterSeries, 8, 10)
	s.add(5, 1)
	s.add(15, 2)
	s.add(15, 3)
	s.add(79, 4)
	d := s.data(80)
	if d.Width != 10 {
		t.Fatalf("width = %g, want 10 (no compaction under budget)", d.Width)
	}
	want := []float64{1, 5, 0, 0, 0, 0, 0, 4}
	if !reflect.DeepEqual(d.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", d.Buckets, want)
	}
	if d.Integral != 10 {
		t.Fatalf("integral = %g, want 10", d.Integral)
	}
}

// Outgrowing the budget merges bucket pairs: the width doubles, the
// bucket count stays bounded, and the total is preserved exactly.
func TestSeriesCompactPreservesTotal(t *testing.T) {
	s := newSeries("x", CounterSeries, 4, 1)
	total := 0.0
	for i := 0; i < 1000; i++ {
		s.add(float64(i), 1)
		total++
	}
	if len(s.b) > 4 {
		t.Fatalf("bucket count %d exceeds budget 4", len(s.b))
	}
	if got := s.data(1000).Integral; got != total {
		t.Fatalf("integral = %g, want %g", got, total)
	}
	if s.width != 256 {
		t.Fatalf("width = %g, want 256 (1000s horizon over 4 buckets)", s.width)
	}
}

// The downsampled shape is a pure function of the observation sequence:
// replaying the same adds always produces identical buckets.
func TestSeriesDeterministicDownsample(t *testing.T) {
	build := func() SeriesData {
		s := newSeries("x", CounterSeries, 16, 2)
		for i := 0; i < 5000; i++ {
			s.add(float64(i)*1.7, float64(i%7))
		}
		return s.data(5000 * 1.7)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same observation sequence produced different series data")
	}
}

// Gauge until() credits value x elapsed time, split across buckets, so
// the integral matches the exact step-function integral.
func TestGaugeUntilIntegral(t *testing.T) {
	s := newSeries("g", GaugeSeries, 8, 10)
	s.until(7, 3)   // 3 units over [0,7)
	s.until(25, 5)  // 5 units over [7,25)
	s.until(25, 99) // non-advancing: no-op
	s.until(40, 0)  // 0 units over [25,40)
	want := 7*3.0 + 18*5.0
	if got := s.data(40).Integral; math.Abs(got-want) > 1e-9 {
		t.Fatalf("integral = %g, want %g", got, want)
	}
	// Bucket 0 covers [0,10): 7s at 3 + 3s at 5 = 36 unit-seconds, mean 3.6.
	if got := s.data(40).Buckets[0]; math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("bucket 0 mean = %g, want 3.6", got)
	}
}

// A partially covered tail bucket reports a mean over its covered span,
// not its full width.
func TestGaugeTailCoverage(t *testing.T) {
	s := newSeries("g", GaugeSeries, 8, 10)
	s.until(15, 4) // [0,15) at 4
	d := s.data(15)
	if got := d.Buckets[1]; math.Abs(got-4) > 1e-9 {
		t.Fatalf("tail bucket mean = %g, want 4 (5s covered of a 10s bucket)", got)
	}
}

func TestRangeIntegral(t *testing.T) {
	s := newSeries("g", GaugeSeries, 8, 10)
	s.until(40, 2) // flat 2 over [0,40)
	if got := s.rangeIntegral(5, 25, 40); math.Abs(got-40) > 1e-9 {
		t.Fatalf("rangeIntegral(5,25) = %g, want 40", got)
	}
	if got := s.rangeIntegral(-10, 10, 40); math.Abs(got-20) > 1e-9 {
		t.Fatalf("rangeIntegral(-10,10) = %g, want 20", got)
	}
}

// Every Recorder method must no-op on a nil receiver.
func TestRecorderNilSafe(t *testing.T) {
	var o *Recorder
	o.Capacity(1, 2, 3)
	o.Charge(1, "m", "t", 4)
	o.Count(1, CountLaunch)
	o.Decide(Decision{})
	o.Finalize(10, 0, 0)
	if got := o.Ledger(); got != nil {
		t.Fatalf("nil recorder ledger = %v, want nil", got)
	}
	if tl := o.Snapshot(10, 0, 0); len(tl.Series) != 0 {
		t.Fatalf("nil recorder snapshot has %d series", len(tl.Series))
	}
	if o.Label() != "" {
		t.Fatal("nil recorder label non-empty")
	}
}

// A mid-run snapshot folds the open gauge tail into a copy: it must not
// perturb either later snapshots or the final export.
func TestSnapshotReadOnly(t *testing.T) {
	run := func(snapMid bool) Timeline {
		o := NewRecorder("r", Config{Budget: 16, Width: 10})
		o.Capacity(0, 0, 4)
		o.Charge(30, "m1", "small", 1.5)
		o.Capacity(50, 3, 4)
		if snapMid {
			_ = o.Snapshot(75, 3, 4)
		}
		o.Capacity(100, 4, 4)
		o.Finalize(120, 4, 4)
		return o.SnapshotFinal()
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mid-run snapshot perturbed the final export")
	}
}

func TestRecorderCapacityAndLedger(t *testing.T) {
	o := NewRecorder("fleet/seed1", Config{Budget: 16, Width: 3600})
	o.Capacity(0, 0, 6)
	o.Decide(Decision{At: 10, Action: "spot", Market: "us-east-1a/small", Units: 1})
	o.Count(10, CountLaunch)
	o.Capacity(7200, 6, 6)
	o.Finalize(7200, 6, 6)

	ds := o.Ledger()
	if len(ds) != 1 || ds[0].Schema != LedgerSchema {
		t.Fatalf("ledger = %+v, want one schema-stamped decision", ds)
	}
	tl := o.SnapshotFinal()
	if tl.Schema != TimelineSchema || tl.Label != "fleet/seed1" || tl.Decisions != 1 {
		t.Fatalf("timeline header = %+v", tl)
	}
	byName := map[string]SeriesData{}
	for _, sd := range tl.Series {
		byName[sd.Name] = sd
	}
	// Capacity(t, v, ...) credits v over the interval ending at t, the way
	// the controller integrates elapsed intervals: 6 units over [0,7200)
	// is 43200 unit-seconds for both served and target, zero shortfall.
	if got := byName["target_units"].Integral; math.Abs(got-43200) > 1e-6 {
		t.Fatalf("target integral = %g, want 43200", got)
	}
	if got := byName["served_units"].Integral; math.Abs(got-43200) > 1e-6 {
		t.Fatalf("served integral = %g, want 43200", got)
	}
	if got := byName["shortfall_units"].Integral; got != 0 {
		t.Fatalf("shortfall integral = %g, want 0", got)
	}
	if got := byName["launches"].Integral; got != 1 {
		t.Fatalf("launches = %g, want 1", got)
	}
}

func TestLedgerNDJSONRoundTrip(t *testing.T) {
	d := Decision{
		Schema: LedgerSchema, At: 42.5, Action: "reverse",
		Market: "us-east-1a/small", Type: "small", Price: 0.02, Bid: 0.09,
		Units: 1, Rank: 2, ArgminMarket: "us-west-1a/small", ArgminPrice: 0.018,
		Margin: 0.3, TargetUnits: 6, CapacityUnits: 5, QuotaUnits: 16,
		Replaces: "eu-west-1a/small", Note: "consolidate",
	}
	line, err := d.AppendNDJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) || bytes.Count(line, []byte("\n")) != 1 {
		t.Fatalf("not one newline-terminated line: %q", line)
	}
	var back Decision
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}

	var buf bytes.Buffer
	if err := WriteLedger(&buf, []Decision{d, d, d}); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 3 {
		t.Fatalf("WriteLedger emitted %d lines, want 3", n)
	}
}

// A full-outage hour against a 99.9% objective burns hundreds of times
// the budget: both windows must fire exactly once each (one upward
// crossing), and a clean run must not alert.
func TestSLOAlerts(t *testing.T) {
	o := NewRecorder("r", Config{Budget: 64, Width: 600})
	o.Capacity(0, 4, 4)
	o.Capacity(4*3600, 4, 4)  // healthy for 4h
	o.Capacity(5*3600, 0, 4)  // total shortfall for 1h
	o.Capacity(12*3600, 4, 4) // healthy again
	o.Finalize(12*3600, 4, 4)
	tl := o.SnapshotFinal()
	var pages, tickets int
	for _, a := range tl.Alerts {
		switch a.Severity {
		case "page":
			pages++
		case "ticket":
			tickets++
		default:
			t.Fatalf("unknown severity %q", a.Severity)
		}
		if a.Burn < 1 {
			t.Fatalf("alert burn = %g, want >= 1", a.Burn)
		}
	}
	if pages != 1 || tickets != 1 {
		t.Fatalf("alerts = %d pages + %d tickets, want 1 + 1 (%+v)", pages, tickets, tl.Alerts)
	}

	clean := NewRecorder("r", Config{Budget: 64, Width: 600})
	clean.Capacity(0, 4, 4)
	clean.Finalize(12*3600, 4, 4)
	if got := clean.SnapshotFinal().Alerts; len(got) != 0 {
		t.Fatalf("clean run alerted: %+v", got)
	}
}

func TestCollectorScopeAndDedup(t *testing.T) {
	c := NewCollector(Config{Budget: 8, Width: 10})
	sc := c.Scope("shard-0").Scope("acme")
	r1 := sc.Run("web")
	if r1.Label() != "shard-0/acme/web" {
		t.Fatalf("label = %q", r1.Label())
	}
	r1.Finalize(10, 1, 1)
	c.Done(r1)
	r2 := sc.Run("web")
	r2.Finalize(10, 1, 1)
	c.Done(r2)
	tls := c.Timelines()
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	if tls[0].Label != "shard-0/acme/web" || tls[1].Label != "shard-0/acme/web#2" {
		t.Fatalf("labels = %q, %q", tls[0].Label, tls[1].Label)
	}

	var nilC *Collector
	if nilC.Scope("x") != nil || nilC.Run("y") != nil {
		t.Fatal("nil collector minted non-nil")
	}
	nilC.Done(nil) // must not panic
}

func TestAggregateCollectorPrometheus(t *testing.T) {
	c := NewAggregateCollector(Config{Budget: 8, Width: 10})
	r := c.Run("a")
	r.Charge(5, "m", "small", 2.5)
	r.Decide(Decision{Action: "spot"})
	r.Decide(Decision{Action: "bridge"})
	r.Finalize(10, 1, 1)
	c.Done(r)
	if got := c.Timelines(); len(got) != 0 {
		t.Fatalf("aggregate collector retained %d runs", len(got))
	}
	var buf bytes.Buffer
	c.WritePrometheus(&buf, "spotserve")
	out := buf.String()
	for _, want := range []string{
		"spotserve_obs_runs_total 1",
		`spotserve_obs_decisions_total{action="bridge"} 1`,
		`spotserve_obs_decisions_total{action="spot"} 1`,
		"spotserve_obs_cost_dollars_total 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	o := NewRecorder("lbl", Config{Budget: 8, Width: 10})
	o.Charge(5, "m", "small", 1)
	o.Finalize(20, 0, 0)
	var buf bytes.Buffer
	if err := o.SnapshotFinal().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for _, l := range lines {
		if !strings.HasPrefix(l, "lbl,") {
			t.Fatalf("row not label-stamped: %q", l)
		}
		if got := strings.Count(l, ","); got != 5 {
			t.Fatalf("row %q has %d commas, want 5 (matching %q)", l, got, TimelineCSVHeader)
		}
	}
}
