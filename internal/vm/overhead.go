package vm

// Overhead models the nested-hypervisor performance overheads of Section 6:
// I/O paths run at near-native speed through the Xen-Blanket layer, while
// CPU-bound work can be substantially slower under load.
//
// Factors are multipliers on native performance: throughput factors apply
// to I/O rates (1.0 = native), CPUFactor inflates CPU service demand
// (1.0 = native, 1.5 = the paper's worst case of "up to 50% overhead").
type Overhead struct {
	NetworkTxFactor float64
	NetworkRxFactor float64
	DiskReadFactor  float64
	DiskWriteFactor float64
	CPUFactor       float64
}

// DefaultOverhead returns factors matching Table 4 and Fig. 12: network
// throughput indistinguishable from native, disk I/O degraded ~2%, and
// CPU service demand inflated by up to 50% for CPU-bound workloads.
func DefaultOverhead() Overhead {
	return Overhead{
		NetworkTxFactor: 1.00,
		NetworkRxFactor: 0.994,
		DiskReadFactor:  0.977,
		DiskWriteFactor: 0.978,
		CPUFactor:       1.5,
	}
}

// NativeOverhead returns the identity factors of an un-nested VM.
func NativeOverhead() Overhead {
	return Overhead{
		NetworkTxFactor: 1, NetworkRxFactor: 1,
		DiskReadFactor: 1, DiskWriteFactor: 1,
		CPUFactor: 1,
	}
}

// EffectiveCapacityFactor returns the fraction of native capacity a nested
// VM delivers for a workload whose CPU share of total demand is cpuShare
// (0 = pure I/O, 1 = pure CPU). Section 6 uses this to derive the
// worst-case cost savings: halved capacity doubles the servers needed.
func (o Overhead) EffectiveCapacityFactor(cpuShare float64) float64 {
	if cpuShare < 0 {
		cpuShare = 0
	}
	if cpuShare > 1 {
		cpuShare = 1
	}
	io := (o.NetworkTxFactor + o.NetworkRxFactor + o.DiskReadFactor + o.DiskWriteFactor) / 4
	cpu := 1 / o.CPUFactor
	return cpuShare*cpu + (1-cpuShare)*io
}
