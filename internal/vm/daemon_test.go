package vm

import (
	"math"
	"testing"

	"spothost/internal/sim"
)

func newDaemon(t *testing.T, spec Spec) (*sim.Engine, *CheckpointDaemon) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := NewCheckpointDaemon(eng, spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestDaemonValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewCheckpointDaemon(eng, Spec{}, DefaultParams()); err == nil {
		t.Fatal("invalid spec accepted")
	}
	p := DefaultParams()
	p.CheckpointBound = 0
	if _, err := NewCheckpointDaemon(eng, hostedVM, p); err == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestDaemonLifecycleErrors(t *testing.T) {
	_, d := newDaemon(t, hostedVM)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	d.Stop()
	d.Stop() // idempotent
	if err := d.Start(); err == nil {
		t.Fatal("start after stop accepted")
	}
}

// TestDaemonBoundHolds drives the daemon through hours of virtual time and
// checks the Yank invariant at random instants: the final save always
// completes within ~2x the bound (one in-flight write plus the exposed
// increment).
func TestDaemonBoundHolds(t *testing.T) {
	eng, d := newDaemon(t, hostedVM)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	full := hostedVM.MemoryMB() / p.CheckpointWriteMBps
	bound := float64(p.CheckpointBound)

	violations := 0
	checks := 0
	// Sample after the initial full checkpoint has completed.
	for i := 0; i < 500; i++ {
		at := full + 1 + float64(i)*37.3
		eng.Schedule(at, func() {
			checks++
			if d.FinalSaveTime() > 2*bound+1e-9 {
				violations++
			}
		})
	}
	eng.RunUntil(6 * sim.Hour)
	if checks != 500 {
		t.Fatalf("only %d checks ran", checks)
	}
	if violations > 0 {
		t.Fatalf("Yank bound violated at %d/%d instants", violations, checks)
	}
	st := d.Stats()
	if st.FullCheckpoints != 1 {
		t.Fatalf("full checkpoints = %d", st.FullCheckpoints)
	}
	if st.Incrementals < 100 {
		t.Fatalf("too few incrementals: %d", st.Incrementals)
	}
}

// TestDaemonWriteVolume: total bytes written over a window approximate the
// dirty rate (the daemon only writes what was dirtied, plus the initial
// full image).
func TestDaemonWriteVolume(t *testing.T) {
	eng, d := newDaemon(t, hostedVM)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	horizon := 4 * sim.Hour
	eng.RunUntil(horizon)
	st := d.Stats()
	expected := hostedVM.MemoryMB() + hostedVM.DirtyRateMBps*horizon
	if st.BytesWrittenMB < expected*0.8 || st.BytesWrittenMB > expected*1.05 {
		t.Fatalf("bytes written %.0f MB, expected ~%.0f MB", st.BytesWrittenMB, expected)
	}
}

func TestDaemonObserver(t *testing.T) {
	eng, d := newDaemon(t, hostedVM)
	var total float64
	d.OnWrite(func(mb float64) { total += mb })
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * sim.Hour)
	if math.Abs(total-d.Stats().BytesWrittenMB) > 1e-9 {
		t.Fatalf("observer saw %.1f MB, stats say %.1f MB", total, d.Stats().BytesWrittenMB)
	}
	if total <= hostedVM.MemoryMB() {
		t.Fatalf("observer missed incrementals: %.1f", total)
	}
}

func TestDaemonExposureBeforeStart(t *testing.T) {
	_, d := newDaemon(t, hostedVM)
	// Before the daemon runs, everything is exposed.
	if got := d.ExposureMB(); got != hostedVM.MemoryMB() {
		t.Fatalf("pre-start exposure = %v, want full memory", got)
	}
}

func TestDaemonIdleVM(t *testing.T) {
	idle := Spec{MemoryGB: 2, DirtyRateMBps: 0, Units: 1}
	eng, d := newDaemon(t, idle)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * sim.Hour)
	st := d.Stats()
	if st.FullCheckpoints != 1 || st.Incrementals != 0 {
		t.Fatalf("idle VM should checkpoint once: %+v", st)
	}
	if d.ExposureMB() != 0 {
		t.Fatalf("idle exposure = %v", d.ExposureMB())
	}
	if d.FinalSaveTime() != 0 {
		t.Fatalf("idle final save = %v", d.FinalSaveTime())
	}
}

func TestDaemonStopHaltsWrites(t *testing.T) {
	eng, d := newDaemon(t, hostedVM)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Hour)
	d.Stop()
	before := d.Stats().BytesWrittenMB
	eng.RunUntil(3 * sim.Hour)
	if d.Stats().BytesWrittenMB != before {
		t.Fatal("daemon kept writing after Stop")
	}
	// A stopped daemon protects nothing.
	if d.ExposureMB() != hostedVM.MemoryMB() {
		t.Fatalf("stopped exposure = %v", d.ExposureMB())
	}
}

// TestDaemonIntervalMatchesAnalyticModel: the event-driven daemon's cycle
// matches Params.CheckpointInterval.
func TestDaemonIntervalMatchesAnalyticModel(t *testing.T) {
	p := DefaultParams()
	interval := p.CheckpointInterval(hostedVM)
	eng, d := newDaemon(t, hostedVM)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	horizon := 5 * sim.Hour
	eng.RunUntil(horizon)
	st := d.Stats()
	// After the initial full write, increments recur every interval (the
	// write itself overlaps the next interval's accumulation).
	expected := (horizon - hostedVM.MemoryMB()/p.CheckpointWriteMBps) / interval
	if float64(st.Incrementals) < expected*0.9 || float64(st.Incrementals) > expected*1.1 {
		t.Fatalf("incrementals = %d, expected ~%.0f", st.Incrementals, expected)
	}
}
