package vm_test

import (
	"fmt"

	"spothost/internal/vm"
)

// ExampleForcedTimeline computes what a revocation costs a 2 GB service VM
// under the paper's best mechanism: the on-demand replacement is requested
// at the warning (95 s startup, inside the 120 s grace window), the final
// bounded checkpoint increment lands just before termination, and lazy
// restore resumes in 20 s.
func ExampleForcedTimeline() {
	spec := vm.Spec{MemoryGB: 2, DirtyRateMBps: 8, DiskGB: 4, Units: 1}
	p := vm.DefaultParams()

	tl := vm.ForcedTimeline(spec, vm.CKPTLazyLive, p, 120, 95)
	fmt.Printf("downtime=%.0fs memory-lost=%v\n", tl.Downtime, tl.MemoryLost)

	naive := vm.ForcedTimeline(spec, vm.Naive, p, 120, 95)
	fmt.Printf("naive downtime=%.0fs memory-lost=%v\n", naive.Downtime, naive.MemoryLost)
	// Output:
	// downtime=23s memory-lost=false
	// naive downtime=45s memory-lost=true
}

// ExampleLiveMigrationTimeline models pre-copy convergence for the paper's
// 2 GB benchmark VM.
func ExampleLiveMigrationTimeline() {
	spec := vm.Spec{MemoryGB: 2, DirtyRateMBps: 2, DiskGB: 1, Units: 1}
	p := vm.DefaultParams()
	tl := vm.LiveMigrationTimeline(spec, p.LiveBandwidthMBps, p)
	fmt.Printf("duration~60s=%v sub-second-downtime=%v rounds>1=%v\n",
		tl.Duration > 55 && tl.Duration < 66, tl.Downtime < 1, tl.Rounds > 1)
	// Output:
	// duration~60s=true sub-second-downtime=true rounds>1=true
}
