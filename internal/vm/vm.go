// Package vm models the nested-virtualization and migration substrate the
// paper's cloud scheduler is built on: Xen-Blanket-style nested VMs,
// iterative pre-copy live migration, Yank-style bounded incremental memory
// checkpointing, standard (eager) and lazy restore, cross-region disk
// copies, and the nested-hypervisor performance overheads of Section 6.
//
// All mechanisms are modelled analytically: given a VM spec (memory size,
// dirty rate) and calibrated bandwidth/latency constants (Table 2 of the
// paper), each migration class yields a Timeline of total duration, service
// downtime and degraded-mode time. The scheduler turns timelines into
// discrete events.
package vm

import (
	"fmt"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// Spec describes one nested virtual machine.
type Spec struct {
	// MemoryGB is the RAM allocated to the nested VM; it drives every
	// memory-proportional latency.
	MemoryGB float64
	// DirtyRateMBps is the rate at which the running workload dirties
	// memory pages, which determines live-migration convergence and the
	// background checkpointing period.
	DirtyRateMBps float64
	// DiskGB is the disk state size; it matters only for cross-region
	// migrations, where network volumes cannot follow the VM.
	DiskGB float64
	// Units is the capacity (in unit-VM slots) the VM occupies on a
	// server.
	Units int
}

// Validate reports an invalid spec.
func (s Spec) Validate() error {
	switch {
	case s.MemoryGB <= 0:
		return fmt.Errorf("vm: MemoryGB must be positive, got %v", s.MemoryGB)
	case s.DirtyRateMBps < 0:
		return fmt.Errorf("vm: DirtyRateMBps must be non-negative, got %v", s.DirtyRateMBps)
	case s.DiskGB < 0:
		return fmt.Errorf("vm: DiskGB must be non-negative, got %v", s.DiskGB)
	case s.Units <= 0:
		return fmt.Errorf("vm: Units must be positive, got %d", s.Units)
	}
	return nil
}

// MemoryMB returns the VM memory in MB (1 GB = 1024 MB).
func (s Spec) MemoryMB() float64 { return s.MemoryGB * 1024 }

// Mechanism selects the migration-mechanism combination — the four
// variants compared in Fig. 7. Every combination uses bounded incremental
// checkpointing as the forced-migration safety net; they differ in how
// voluntary (planned/reverse) migrations move the VM and in how a
// checkpoint image is brought back to life.
type Mechanism int

const (
	// CKPT: suspend/resume via memory checkpointing with standard (eager,
	// full read-back) restore, for both forced and voluntary migrations.
	CKPT Mechanism = iota
	// CKPTLazy: checkpointing with lazy restore — resume after a small,
	// memory-size-independent read, faulting the rest in on demand.
	CKPTLazy
	// CKPTLive: live migration for voluntary moves; forced migrations use
	// checkpointing with standard restore.
	CKPTLive
	// CKPTLazyLive: live migration for voluntary moves, checkpointing
	// with lazy restore for forced ones — the paper's best combination.
	CKPTLazyLive
	// Naive: the strawman of Fig. 3 — no memory capture at all. Voluntary
	// moves and forced migrations alike reboot from the network disk on
	// the destination, losing memory state.
	Naive
)

// Mechanisms lists the four checkpoint-based combinations in the order
// Fig. 7 presents them.
func Mechanisms() []Mechanism { return []Mechanism{CKPT, CKPTLazy, CKPTLive, CKPTLazyLive} }

// String returns the paper's label for the mechanism.
func (m Mechanism) String() string {
	switch m {
	case CKPT:
		return "CKPT"
	case CKPTLazy:
		return "CKPT LR"
	case CKPTLive:
		return "CKPT + Live"
	case CKPTLazyLive:
		return "CKPT LR + Live"
	default:
		return "Naive"
	}
}

// UsesLive reports whether voluntary migrations use live pre-copy.
func (m Mechanism) UsesLive() bool { return m == CKPTLive || m == CKPTLazyLive }

// LazyRestore reports whether checkpoint images restore lazily.
func (m Mechanism) LazyRestore() bool { return m == CKPTLazy || m == CKPTLazyLive }

// WANLink describes the network path between two region classes: the
// bandwidth live migration achieves over it and the throughput of bulk
// disk-state copies (Table 2's cross-region rows).
type WANLink struct {
	LiveBandwidthMBps float64
	DiskCopyMBps      float64
}

// Params holds the mechanism constants. DefaultParams is calibrated to the
// paper's micro-benchmarks (Table 2 and Section 4.1); PessimisticParams is
// the worst-case set used for the pessimistic bars of Fig. 7.
type Params struct {
	// LiveBandwidthMBps is intra-region pre-copy bandwidth: 2 GB in
	// ~58 s => ~35.3 MB/s.
	LiveBandwidthMBps float64
	// LiveStopCopy is the fixed switch-over cost added to the final
	// stop-and-copy round of a live migration.
	LiveStopCopy sim.Duration
	// LiveMaxRounds bounds pre-copy iterations for non-converging dirty
	// rates.
	LiveMaxRounds int

	// CheckpointWriteMBps is the sequential write rate of memory
	// checkpoints to a network volume: 1 GB in 28 s => ~36.6 MB/s.
	CheckpointWriteMBps float64
	// RestoreReadMBps is the standard-restore read-back rate. The paper's
	// prose calls restore "similar" to the 28 s/GB write rate, but its
	// Fig. 7 unavailability numbers (lazy restore alone beating live
	// migration with eager restore) are only consistent with eager
	// restores running at the disk-file-copy speed it also measured
	// ("the time to copy a 2GB disk file ... is less than 120s inside a
	// region"), i.e. ~17 MB/s. We calibrate to the latter; see
	// EXPERIMENTS.md.
	RestoreReadMBps float64
	// CheckpointBound is the Yank bound tau: the background checkpointer
	// paces itself so the final incremental save always completes within
	// tau seconds.
	CheckpointBound sim.Duration
	// LazyRestoreDowntime is the memory-size-independent resume latency
	// of lazy restore from a cold checkpoint image (20 s, from the
	// post-copy literature the paper cites). It applies to forced
	// migrations and pure-spot re-acquisitions, where the destination
	// first sees the image at restore time.
	LazyRestoreDowntime sim.Duration
	// PreStagedLazyResume is the lazy-restore resume latency when the
	// destination had time to pre-load the base checkpoint image while
	// the source was still running (voluntary migrations): only the final
	// bounded increment needs to be read before execution resumes. This
	// is what makes "CKPT LR" beat "CKPT + Live" in Fig. 7 — voluntary
	// checkpoint hand-offs become nearly free.
	PreStagedLazyResume sim.Duration

	// BootTime is a cold boot from the network disk — the only option
	// when memory state was lost (naive restarts, missed checkpoints).
	BootTime sim.Duration

	// AcquireOverlap: whether a forced migration may overlap destination
	// acquisition with the revocation grace window. True in the typical
	// model; the pessimistic model serializes them.
	AcquireOverlap bool

	// WAN holds per-region-class-pair link constants, keyed by
	// WANKey(a, b); DefaultWAN applies to unknown pairs.
	WAN        map[string]WANLink
	DefaultWAN WANLink
}

// DefaultParams returns constants calibrated to Table 2:
//
//	live migrate 2 GB intra-region  ~58 s
//	live migrate 2 GB east<->west   ~74 s, west<->eu ~140 s
//	checkpoint write                ~28 s/GB
//	disk copy east->west            ~122 s/GB, west->eu ~172 s/GB
//	lazy restore                    20 s regardless of memory size
func DefaultParams() Params {
	return Params{
		LiveBandwidthMBps:   35.3,
		LiveStopCopy:        0.3,
		LiveMaxRounds:       30,
		CheckpointWriteMBps: 36.6,
		RestoreReadMBps:     17.1,
		CheckpointBound:     3,
		LazyRestoreDowntime: 20,
		PreStagedLazyResume: 2,
		BootTime:            45,
		AcquireOverlap:      true,
		WAN: map[string]WANLink{
			WANKey("us-east-1a", "us-west-1a"): {LiveBandwidthMBps: 27.8, DiskCopyMBps: 8.4},
			WANKey("us-east-1a", "eu-west-1a"): {LiveBandwidthMBps: 27.5, DiskCopyMBps: 7.3},
			WANKey("us-west-1a", "eu-west-1a"): {LiveBandwidthMBps: 14.6, DiskCopyMBps: 6.0},
		},
		DefaultWAN: WANLink{LiveBandwidthMBps: 27.7, DiskCopyMBps: 7.5},
	}
}

// PessimisticParams returns the worst-case constants of Fig. 7's
// pessimistic scenario: a 10 s live-migration outage (Clark et al. /
// Salfner et al. worst cases), standard restore at disk-file-copy speed
// (2 GB in ~120 s), and no overlap between the grace window and
// destination acquisition. See EXPERIMENTS.md for how this interpretation
// was chosen.
func PessimisticParams() Params {
	p := DefaultParams()
	p.LiveStopCopy = 10
	p.RestoreReadMBps = 8.5 // eager restores at half the typical rate
	p.PreStagedLazyResume = 10
	p.AcquireOverlap = false
	return p
}

// WANKey normalizes a region pair to a map key (order-independent,
// class-level).
func WANKey(a, b market.Region) string {
	ca, cb := market.RegionClass(a), market.RegionClass(b)
	if ca > cb {
		ca, cb = cb, ca
	}
	return ca + "|" + cb
}

// Link returns the WAN link constants between two regions.
func (p Params) Link(a, b market.Region) WANLink {
	if l, ok := p.WAN[WANKey(a, b)]; ok {
		return l
	}
	return p.DefaultWAN
}

// FullCheckpointTime returns the time to write a complete memory image to
// the network volume.
func (p Params) FullCheckpointTime(s Spec) sim.Duration {
	return s.MemoryMB() / p.CheckpointWriteMBps
}

// FullRestoreTime returns the time of a standard (eager) restore: reading
// the complete image back before resuming.
func (p Params) FullRestoreTime(s Spec) sim.Duration {
	return s.MemoryMB() / p.RestoreReadMBps
}

// CheckpointInterval returns the background checkpointing period the
// Yank-style daemon uses so that the accumulated incremental state always
// writes out within CheckpointBound: interval = bound x writeRate /
// dirtyRate. An idle VM (zero dirty rate) checkpoints once and then only
// on demand.
func (p Params) CheckpointInterval(s Spec) sim.Duration {
	if s.DirtyRateMBps <= 0 {
		return 0 // nothing dirties memory; no periodic checkpoints needed
	}
	return float64(p.CheckpointBound) * p.CheckpointWriteMBps / s.DirtyRateMBps
}
