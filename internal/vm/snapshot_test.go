package vm

import (
	"math"
	"testing"

	"spothost/internal/sim"
)

// TestReplayDaemonMatchesLive verifies that ReplayDaemon reproduces an
// engine-hosted daemon's write sequence and state op-for-op: the same
// writes in the same order with bitwise-equal sizes, and a final state
// equal to the live daemon's Snapshot.
func TestReplayDaemonMatchesLive(t *testing.T) {
	p := DefaultParams()
	// Cutoffs chosen off the write-completion grid so the live run
	// (events at t <= cutoff fire) and the replay (events at t < cutoff
	// fire) agree.
	for _, cutoff := range []sim.Time{10.7, 500.3, 3600.9, 86400.1} {
		eng, d := newDaemon(t, hostedVM)
		var liveWrites []float64
		d.OnWrite(func(mb float64) { liveWrites = append(liveWrites, mb) })
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(cutoff)

		var replayWrites []float64
		st := ReplayDaemon(hostedVM, p, 0, cutoff, func(mb float64) {
			replayWrites = append(replayWrites, mb)
		})

		if len(liveWrites) != len(replayWrites) {
			t.Fatalf("cutoff %v: %d live writes vs %d replayed", cutoff, len(liveWrites), len(replayWrites))
		}
		for i := range liveWrites {
			if liveWrites[i] != replayWrites[i] {
				t.Fatalf("cutoff %v write %d: live %v != replay %v", cutoff, i, liveWrites[i], replayWrites[i])
			}
		}
		if live := d.Snapshot(); live != st {
			t.Fatalf("cutoff %v: live snapshot %+v != replay state %+v", cutoff, live, st)
		}
	}
}

// TestRestoreCheckpointDaemonContinues verifies that a daemon restored
// from a mid-run snapshot finishes the horizon with exactly the same
// writes as the uninterrupted daemon.
func TestRestoreCheckpointDaemonContinues(t *testing.T) {
	p := DefaultParams()
	const cut, horizon = 1000.3, 7200.0

	eng, d := newDaemon(t, hostedVM)
	var fullWrites []float64
	d.OnWrite(func(mb float64) { fullWrites = append(fullWrites, mb) })
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(horizon)

	st := ReplayDaemon(hostedVM, p, 0, cut, nil)
	eng2 := sim.NewEngineAt(cut)
	d2, err := RestoreCheckpointDaemon(eng2, hostedVM, p, st)
	if err != nil {
		t.Fatal(err)
	}
	var tailWrites []float64
	d2.OnWrite(func(mb float64) { tailWrites = append(tailWrites, mb) })
	eng2.RunUntil(horizon)

	var headWrites []float64
	ReplayDaemon(hostedVM, p, 0, cut, func(mb float64) { headWrites = append(headWrites, mb) })
	got := append(headWrites, tailWrites...)
	if len(got) != len(fullWrites) {
		t.Fatalf("%d resumed writes vs %d uninterrupted", len(got), len(fullWrites))
	}
	sum, fullSum := 0.0, 0.0
	for i := range got {
		if got[i] != fullWrites[i] {
			t.Fatalf("write %d: resumed %v != uninterrupted %v", i, got[i], fullWrites[i])
		}
		sum += got[i]
		fullSum += fullWrites[i]
	}
	if math.Abs(sum-fullSum) != 0 {
		t.Fatalf("write totals differ: %v vs %v", sum, fullSum)
	}
	if s1, s2 := d.Stats(), d2.Stats(); s1 != s2 {
		t.Fatalf("stats diverge: uninterrupted %+v vs resumed %+v", s1, s2)
	}
}
