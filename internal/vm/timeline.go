package vm

import (
	"math"

	"spothost/internal/sim"
)

// Timeline summarizes one migration's timing, all relative to its start.
type Timeline struct {
	// Duration is total wall time from migration start until the VM is
	// fully operational on the destination (background page fault-in
	// excluded).
	Duration sim.Duration
	// Downtime is the span during which the service is unavailable.
	Downtime sim.Duration
	// Degraded is the post-resume span during which the VM runs slower
	// because lazy restore is still faulting memory in from disk.
	Degraded sim.Duration
	// Rounds is the number of pre-copy rounds (live migrations only).
	Rounds int
	// MemoryLost reports that memory state could not be preserved and the
	// VM rebooted from disk (naive restarts, or a grace window too short
	// for even the bounded incremental save).
	MemoryLost bool
}

// LiveMigrationTimeline models iterative pre-copy live migration: the full
// memory image is copied while the VM runs, then rounds of
// dirtied-since-last-round pages, until the residue fits in the
// stop-and-copy budget or the round limit is hit. Downtime is the final
// residue transfer plus the fixed switch-over cost.
func LiveMigrationTimeline(s Spec, bwMBps float64, p Params) Timeline {
	mem := s.MemoryMB()
	if bwMBps <= 0 {
		// No bandwidth: degenerate to a stop-and-copy of everything at
		// checkpoint speed (callers should not do this; modelled for
		// safety).
		d := mem / p.CheckpointWriteMBps
		return Timeline{Duration: d, Downtime: d, Rounds: 1}
	}
	budget := bwMBps * float64(p.LiveStopCopy) // residue we stop at, MB
	remaining := mem
	var elapsed sim.Duration
	rounds := 0
	for remaining > budget && rounds < p.LiveMaxRounds {
		t := remaining / bwMBps
		elapsed += t
		rounds++
		dirtied := s.DirtyRateMBps * t
		if dirtied > mem {
			dirtied = mem
		}
		remaining = dirtied
		if s.DirtyRateMBps >= bwMBps {
			// Non-convergent: further rounds cannot shrink the residue.
			break
		}
	}
	down := remaining/bwMBps + float64(p.LiveStopCopy)
	return Timeline{
		Duration: elapsed + down,
		Downtime: down,
		Rounds:   rounds + 1,
	}
}

// restore returns (downtime, degraded) of bringing a checkpoint image back
// to life on a booted destination.
func restore(s Spec, m Mechanism, p Params) (sim.Duration, sim.Duration) {
	if m.LazyRestore() {
		// Resume after a constant-size read; the rest faults in while the
		// VM runs (degraded).
		return p.LazyRestoreDowntime, p.FullRestoreTime(s)
	}
	return p.FullRestoreTime(s), 0
}

// PlannedTimeline models a voluntary (planned or reverse) migration. The
// destination server is already running when the migration starts, so the
// only downtime is the mechanism's hand-off:
//
//   - live: pre-copy rounds while the VM runs; downtime = stop-and-copy.
//   - checkpoint: a full background checkpoint streams while the VM runs,
//     then the VM suspends, the bounded increment is written, and the VM
//     restores on the destination (eagerly or lazily).
//
// Cross-region migrations additionally copy disk state up front (the
// network volume cannot follow the VM); the copy overlaps execution and
// extends Duration but not Downtime.
func PlannedTimeline(s Spec, m Mechanism, p Params, link *WANLink) Timeline {
	var tl Timeline
	switch {
	case m == Naive:
		// Shut down, reboot from disk on the destination.
		tl = Timeline{
			Duration:   p.BootTime,
			Downtime:   p.BootTime,
			MemoryLost: true,
		}
	case m.UsesLive():
		bw := p.LiveBandwidthMBps
		if link != nil {
			bw = link.LiveBandwidthMBps
		}
		tl = LiveMigrationTimeline(s, bw, p)
	default:
		down, degraded := restore(s, m, p)
		if m.LazyRestore() {
			// Voluntary migrations give the destination time to pre-load
			// the base image while the source runs; lazy resume then only
			// reads the final increment, and the degraded fault-in window
			// shrinks to that increment.
			down = p.PreStagedLazyResume
			degraded = float64(p.CheckpointBound) * p.CheckpointWriteMBps / p.RestoreReadMBps
		}
		save := float64(p.CheckpointBound)
		tl = Timeline{
			Duration: p.FullCheckpointTime(s) + save + down,
			Downtime: save + down,
			Degraded: degraded,
		}
		if link != nil {
			// The checkpoint image must cross the WAN before restore; the
			// increment hand-off crosses it too (second bound's worth).
			xfer := s.MemoryMB() / link.DiskCopyMBps
			tl.Duration += xfer
			tl.Downtime += save
		}
	}
	if link != nil {
		// Disk state precedes the VM across regions, concurrent with
		// execution.
		tl.Duration += s.DiskGB * 1024 / link.DiskCopyMBps
	}
	return tl
}

// ForcedTimeline models a forced migration triggered by a revocation
// warning. graceRemaining is the time from now until the provider kills
// the source; destReadyIn is the time from now until the destination
// server is running (0 for a hot standby). Forced migrations are always
// intra-region: the checkpoint volume cannot cross regions.
//
// The VM keeps running as late as possible: it suspends at
// graceRemaining - save (save = the Yank bound), the increment lands just
// before termination, and restore starts once both the image is complete
// and the destination is up. With AcquireOverlap=false the destination
// acquisition only starts at termination (pessimistic model).
//
// If the grace window cannot even fit the bounded incremental save, memory
// state is lost and the VM cold-boots from disk.
func ForcedTimeline(s Spec, m Mechanism, p Params, graceRemaining, destReadyIn sim.Duration) Timeline {
	if graceRemaining < 0 {
		graceRemaining = 0
	}
	destReady := destReadyIn
	if !p.AcquireOverlap {
		destReady = graceRemaining + destReadyIn
	}

	save := float64(p.CheckpointBound)
	if m == Naive || graceRemaining < save {
		// No checkpoint (or no time to complete one): memory lost, boot
		// from disk once the destination is up. The service dies when the
		// source is terminated.
		down := math.Max(0, destReady-graceRemaining) + float64(p.BootTime)
		return Timeline{
			Duration:   math.Max(graceRemaining, destReady) + float64(p.BootTime),
			Downtime:   down,
			MemoryLost: true,
		}
	}

	stopAt := graceRemaining - save // run until the last safe moment
	saveDone := graceRemaining
	restoreStart := math.Max(saveDone, destReady)
	down, degraded := restore(s, m, p)
	return Timeline{
		Duration: restoreStart + down,
		Downtime: (restoreStart - stopAt) + down,
		Degraded: degraded,
	}
}

// NaiveRevocationTimeline is the Fig. 3 strawman: no warning handling at
// all. The service dies at termination, an on-demand server is requested
// only then, and the VM reboots from disk when it arrives. destReadyIn is
// measured from the termination instant.
func NaiveRevocationTimeline(p Params, destReadyIn sim.Duration) Timeline {
	return Timeline{
		Duration:   destReadyIn + p.BootTime,
		Downtime:   destReadyIn + p.BootTime,
		MemoryLost: true,
	}
}
