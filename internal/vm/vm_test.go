package vm

import (
	"math"
	"testing"
	"testing/quick"

	"spothost/internal/sim"
)

// paperVM is the 2 GB VM the paper's micro-benchmarks use, nearly idle
// during measurement.
var paperVM = Spec{MemoryGB: 2, DirtyRateMBps: 2, DiskGB: 2, Units: 1}

// hostedVM is a busier service VM.
var hostedVM = Spec{MemoryGB: 2, DirtyRateMBps: 8, DiskGB: 4, Units: 1}

func TestSpecValidate(t *testing.T) {
	if err := hostedVM.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{MemoryGB: 0, Units: 1},
		{MemoryGB: 1, DirtyRateMBps: -1, Units: 1},
		{MemoryGB: 1, DiskGB: -1, Units: 1},
		{MemoryGB: 1, Units: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMechanismProperties(t *testing.T) {
	cases := []struct {
		m          Mechanism
		live, lazy bool
		name       string
	}{
		{CKPT, false, false, "CKPT"},
		{CKPTLazy, false, true, "CKPT LR"},
		{CKPTLive, true, false, "CKPT + Live"},
		{CKPTLazyLive, true, true, "CKPT LR + Live"},
		{Naive, false, false, "Naive"},
	}
	for _, c := range cases {
		if c.m.UsesLive() != c.live || c.m.LazyRestore() != c.lazy || c.m.String() != c.name {
			t.Errorf("%v: live=%v lazy=%v name=%q", c.m, c.m.UsesLive(), c.m.LazyRestore(), c.m.String())
		}
	}
	if len(Mechanisms()) != 4 {
		t.Fatal("Mechanisms() should list the four Fig. 7 combos")
	}
}

// TestLiveMigrationMatchesTable2 checks the calibration: a 2 GB idle-ish VM
// live-migrates intra-region in ~58 s (Table 2, "Inside US East": 58.5 s).
func TestLiveMigrationMatchesTable2(t *testing.T) {
	p := DefaultParams()
	tl := LiveMigrationTimeline(paperVM, p.LiveBandwidthMBps, p)
	if tl.Duration < 55 || tl.Duration > 66 {
		t.Fatalf("intra-region live migration of 2 GB = %.1f s, want ~58-62 s", tl.Duration)
	}
	if tl.Downtime > 1.5 {
		t.Fatalf("live downtime = %.2f s, want sub-second-ish", tl.Downtime)
	}
	if tl.Rounds < 2 {
		t.Fatalf("rounds = %d, expected iterative pre-copy", tl.Rounds)
	}
	// Cross-region (us-east <-> us-west): ~74 s.
	link := p.Link("us-east-1a", "us-west-1a")
	tl = LiveMigrationTimeline(paperVM, link.LiveBandwidthMBps, p)
	if tl.Duration < 70 || tl.Duration > 85 {
		t.Fatalf("east-west live migration = %.1f s, want ~74-80 s", tl.Duration)
	}
	// us-west <-> eu-west is the slow pair: ~140 s.
	link = p.Link("us-west-1a", "eu-west-1a")
	tl = LiveMigrationTimeline(paperVM, link.LiveBandwidthMBps, p)
	if tl.Duration < 135 || tl.Duration > 170 {
		t.Fatalf("west-eu live migration = %.1f s, want ~140-165 s", tl.Duration)
	}
}

// TestCheckpointMatchesTable2 checks 28 s/GB checkpoint write calibration.
func TestCheckpointMatchesTable2(t *testing.T) {
	p := DefaultParams()
	perGB := p.FullCheckpointTime(Spec{MemoryGB: 1, Units: 1})
	if perGB < 27 || perGB > 29 {
		t.Fatalf("checkpoint = %.1f s/GB, want ~28", perGB)
	}
	// Eager restore of 2 GB runs at disk-file-copy speed: "less than 120s
	// inside a region" (see the RestoreReadMBps doc comment).
	if got := p.FullRestoreTime(paperVM); got < 100 || got > 125 {
		t.Fatalf("eager restore of 2 GB = %.1f s, want ~120 s", got)
	}
}

func TestLiveMigrationNonConvergent(t *testing.T) {
	p := DefaultParams()
	hot := Spec{MemoryGB: 2, DirtyRateMBps: 100, Units: 1} // dirties faster than bw
	tl := LiveMigrationTimeline(hot, p.LiveBandwidthMBps, p)
	if tl.Downtime < 30 {
		t.Fatalf("non-convergent migration should have large downtime, got %.1f", tl.Downtime)
	}
}

func TestLiveMigrationZeroBandwidth(t *testing.T) {
	p := DefaultParams()
	tl := LiveMigrationTimeline(paperVM, 0, p)
	if tl.Downtime != tl.Duration || tl.Downtime <= 0 {
		t.Fatalf("degenerate zero-bw timeline: %+v", tl)
	}
}

func TestLiveMigrationMonotoneInMemory(t *testing.T) {
	p := DefaultParams()
	f := func(g uint8) bool {
		small := Spec{MemoryGB: 1 + float64(g%16), DirtyRateMBps: 5, Units: 1}
		big := Spec{MemoryGB: small.MemoryGB + 1, DirtyRateMBps: 5, Units: 1}
		a := LiveMigrationTimeline(small, p.LiveBandwidthMBps, p)
		b := LiveMigrationTimeline(big, p.LiveBandwidthMBps, p)
		return b.Duration >= a.Duration
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlannedTimelineOrdering(t *testing.T) {
	p := DefaultParams()
	ck := PlannedTimeline(hostedVM, CKPT, p, nil)
	lr := PlannedTimeline(hostedVM, CKPTLazy, p, nil)
	lv := PlannedTimeline(hostedVM, CKPTLive, p, nil)
	lvlr := PlannedTimeline(hostedVM, CKPTLazyLive, p, nil)

	// Live hand-off beats any suspend/resume; lazy restore beats eager.
	if !(lv.Downtime < lr.Downtime && lr.Downtime < ck.Downtime) {
		t.Fatalf("downtime ordering violated: live=%.1f lazy=%.1f eager=%.1f",
			lv.Downtime, lr.Downtime, ck.Downtime)
	}
	if lvlr.Downtime != lv.Downtime {
		t.Fatalf("restore kind should not affect voluntary live migrations: %v vs %v",
			lvlr.Downtime, lv.Downtime)
	}
	// Lazy restore trades downtime for degraded time.
	if lr.Degraded <= 0 || ck.Degraded != 0 {
		t.Fatalf("degraded accounting: lazy=%v eager=%v", lr.Degraded, ck.Degraded)
	}
	// Checkpoint-based planned migration downtime = bound + restore.
	wantCK := float64(p.CheckpointBound) + p.FullRestoreTime(hostedVM)
	if math.Abs(ck.Downtime-wantCK) > 1e-9 {
		t.Fatalf("CKPT planned downtime = %v, want %v", ck.Downtime, wantCK)
	}
	// Voluntary lazy restores are pre-staged: only the bound plus a small
	// increment-resume remain in the downtime.
	wantLR := float64(p.CheckpointBound) + float64(p.PreStagedLazyResume)
	if math.Abs(lr.Downtime-wantLR) > 1e-9 {
		t.Fatalf("CKPT LR planned downtime = %v, want %v", lr.Downtime, wantLR)
	}
}

func TestPlannedTimelineNaive(t *testing.T) {
	p := DefaultParams()
	tl := PlannedTimeline(hostedVM, Naive, p, nil)
	if !tl.MemoryLost || tl.Downtime != float64(p.BootTime) {
		t.Fatalf("naive planned: %+v", tl)
	}
}

func TestPlannedCrossRegionAddsDiskCopy(t *testing.T) {
	p := DefaultParams()
	link := p.Link("us-east-1a", "eu-west-1a")
	lan := PlannedTimeline(hostedVM, CKPTLazyLive, p, nil)
	wan := PlannedTimeline(hostedVM, CKPTLazyLive, p, &link)
	if wan.Duration <= lan.Duration {
		t.Fatal("cross-region migration should take longer overall")
	}
	// Disk copy overlaps execution: live hand-off downtime is unchanged.
	if wan.Downtime < lan.Downtime {
		t.Fatalf("WAN downtime %v < LAN downtime %v", wan.Downtime, lan.Downtime)
	}
	// The added duration covers at least the disk copy.
	minAdd := hostedVM.DiskGB * 1024 / link.DiskCopyMBps
	if wan.Duration-lan.Duration < minAdd*0.5 {
		t.Fatalf("WAN duration increase %.1f too small for a %.1f s disk copy",
			wan.Duration-lan.Duration, minAdd)
	}
}

func TestPlannedCrossRegionCheckpointShipsImage(t *testing.T) {
	p := DefaultParams()
	link := p.Link("us-east-1a", "us-west-1a")
	lan := PlannedTimeline(hostedVM, CKPTLazy, p, nil)
	wan := PlannedTimeline(hostedVM, CKPTLazy, p, &link)
	if wan.Downtime <= lan.Downtime {
		t.Fatal("cross-region checkpoint migration should add increment-transfer downtime")
	}
}

func TestForcedTimelineTypical(t *testing.T) {
	p := DefaultParams()
	grace := 120.0
	destReady := 100.0 // on-demand server up 100 s after warning

	for _, m := range Mechanisms() {
		tl := ForcedTimeline(hostedVM, m, p, grace, destReady)
		if tl.MemoryLost {
			t.Errorf("%v: memory lost despite sufficient grace", m)
		}
		// The bounded save keeps the VM running until grace-save; restore
		// starts at termination (dest is ready before the grace expires).
		var wantDown float64
		if m.LazyRestore() {
			wantDown = float64(p.CheckpointBound) + float64(p.LazyRestoreDowntime)
		} else {
			wantDown = float64(p.CheckpointBound) + p.FullRestoreTime(hostedVM)
		}
		if math.Abs(tl.Downtime-wantDown) > 1e-9 {
			t.Errorf("%v: forced downtime = %.1f, want %.1f", m, tl.Downtime, wantDown)
		}
	}
}

func TestForcedTimelineSlowDestination(t *testing.T) {
	p := DefaultParams()
	// Destination arrives 60 s after the source dies: that wait is downtime.
	tlFast := ForcedTimeline(hostedVM, CKPTLazy, p, 120, 100)
	tlSlow := ForcedTimeline(hostedVM, CKPTLazy, p, 120, 180)
	if got := tlSlow.Downtime - tlFast.Downtime; math.Abs(got-60) > 1e-9 {
		t.Fatalf("slow destination should add 60 s downtime, added %.1f", got)
	}
}

func TestForcedTimelineGraceTooShort(t *testing.T) {
	p := DefaultParams()
	tl := ForcedTimeline(hostedVM, CKPTLazyLive, p, 1, 100)
	if !tl.MemoryLost {
		t.Fatal("1 s grace should lose memory state")
	}
	if tl.Downtime < float64(p.BootTime) {
		t.Fatalf("lost-memory downtime %.1f should include boot %.1f", tl.Downtime, float64(p.BootTime))
	}
}

func TestForcedTimelineNegativeGraceClamped(t *testing.T) {
	p := DefaultParams()
	tl := ForcedTimeline(hostedVM, CKPTLazy, p, -5, 100)
	if !tl.MemoryLost || tl.Downtime <= 0 {
		t.Fatalf("negative grace: %+v", tl)
	}
}

func TestForcedTimelineNoOverlapPessimistic(t *testing.T) {
	typ := DefaultParams()
	pess := PessimisticParams()
	a := ForcedTimeline(hostedVM, CKPTLazy, typ, 120, 100)
	b := ForcedTimeline(hostedVM, CKPTLazy, pess, 120, 100)
	// Without overlap the destination is only ready 120+100 s in: downtime
	// grows by the extra wait.
	if b.Downtime <= a.Downtime {
		t.Fatalf("pessimistic forced downtime %.1f should exceed typical %.1f", b.Downtime, a.Downtime)
	}
}

// TestFig7Ordering reproduces the paper's mechanism ranking with a typical
// proactive migration mix: forced migrations are rarer than voluntary
// ones, so the best combination is live + lazy restore, and lazy restore
// alone beats adding live migration to eager restores (the paper's
// Fig. 7: 0.0177 > 0.0095 > 0.0042 > 0.0022).
func TestFig7Ordering(t *testing.T) {
	p := DefaultParams()
	const rForced, rVoluntary = 0.005, 0.02 // migrations per hour
	unavail := func(m Mechanism) float64 {
		f := ForcedTimeline(hostedVM, m, p, 120, 100)
		v := PlannedTimeline(hostedVM, m, p, nil)
		return rForced*f.Downtime + rVoluntary*v.Downtime
	}
	ck, lr := unavail(CKPT), unavail(CKPTLazy)
	lv, best := unavail(CKPTLive), unavail(CKPTLazyLive)
	if !(ck > lv && lv > lr && lr > best) {
		t.Fatalf("Fig. 7 ordering violated: CKPT=%.3f Live=%.3f LR=%.3f LR+Live=%.3f",
			ck, lv, lr, best)
	}
}

func TestNaiveRevocationTimeline(t *testing.T) {
	p := DefaultParams()
	tl := NaiveRevocationTimeline(p, 95)
	if !tl.MemoryLost {
		t.Fatal("naive revocation preserves memory?")
	}
	if math.Abs(tl.Downtime-(95+float64(p.BootTime))) > 1e-9 {
		t.Fatalf("naive downtime = %v", tl.Downtime)
	}
}

func TestCheckpointInterval(t *testing.T) {
	p := DefaultParams()
	iv := p.CheckpointInterval(hostedVM)
	// interval = bound x writeRate / dirtyRate: dirty accumulated over one
	// interval must write out within the bound.
	dirtyMB := hostedVM.DirtyRateMBps * iv
	writeTime := dirtyMB / p.CheckpointWriteMBps
	if writeTime > float64(p.CheckpointBound)+1e-9 {
		t.Fatalf("Yank bound violated: %v > %v", writeTime, p.CheckpointBound)
	}
	if got := p.CheckpointInterval(Spec{MemoryGB: 1, Units: 1}); got != 0 {
		t.Fatalf("idle VM interval = %v, want 0", got)
	}
}

func TestWANKeySymmetric(t *testing.T) {
	if WANKey("us-east-1a", "us-west-1a") != WANKey("us-west-1b", "us-east-1b") {
		t.Fatal("WANKey should be order- and zone-insensitive")
	}
	p := DefaultParams()
	if p.Link("made-up-1a", "other-2b") != p.DefaultWAN {
		t.Fatal("unknown pair should fall back to DefaultWAN")
	}
}

func TestOverheadFactors(t *testing.T) {
	o := DefaultOverhead()
	// Table 4: nested I/O within ~2% of native.
	for _, f := range []float64{o.NetworkTxFactor, o.NetworkRxFactor, o.DiskReadFactor, o.DiskWriteFactor} {
		if f < 0.97 || f > 1.0 {
			t.Fatalf("I/O factor %v outside Table 4 band", f)
		}
	}
	// Pure-I/O workloads keep near-native capacity; pure-CPU lose up to a
	// third (1/1.5).
	if got := o.EffectiveCapacityFactor(0); got < 0.97 {
		t.Fatalf("I/O capacity factor = %v", got)
	}
	if got := o.EffectiveCapacityFactor(1); math.Abs(got-1/1.5) > 1e-9 {
		t.Fatalf("CPU capacity factor = %v", got)
	}
	// Clamping.
	if o.EffectiveCapacityFactor(-1) != o.EffectiveCapacityFactor(0) {
		t.Fatal("cpuShare not clamped low")
	}
	if o.EffectiveCapacityFactor(2) != o.EffectiveCapacityFactor(1) {
		t.Fatal("cpuShare not clamped high")
	}
	n := NativeOverhead()
	if n.EffectiveCapacityFactor(0.5) != 1 {
		t.Fatal("native overhead should be identity")
	}
}

// TestTimelineInvariants property-checks every mechanism/parameter
// combination: downtime never exceeds duration... (duration counts from
// migration start, downtime is a sub-interval) and both are non-negative.
func TestTimelineInvariants(t *testing.T) {
	params := []Params{DefaultParams(), PessimisticParams()}
	f := func(memQ, dirtyQ, graceQ, destQ uint8) bool {
		s := Spec{
			MemoryGB:      0.5 + float64(memQ%32),
			DirtyRateMBps: float64(dirtyQ % 64),
			DiskGB:        2,
			Units:         1,
		}
		grace := sim.Duration(graceQ)
		dest := sim.Duration(destQ) * 2
		for _, p := range params {
			for _, m := range []Mechanism{CKPT, CKPTLazy, CKPTLive, CKPTLazyLive, Naive} {
				link := p.Link("us-east-1a", "eu-west-1a")
				for _, tl := range []Timeline{
					PlannedTimeline(s, m, p, nil),
					PlannedTimeline(s, m, p, &link),
					ForcedTimeline(s, m, p, grace, dest),
				} {
					if tl.Downtime < 0 || tl.Duration < 0 || tl.Degraded < 0 {
						return false
					}
					if tl.Downtime > tl.Duration+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
