package vm

import (
	"fmt"

	"spothost/internal/sim"
)

// CheckpointDaemon is the event-driven Yank-style background checkpointer.
// It periodically writes the memory dirtied since the previous checkpoint
// to the network volume, pacing itself so that at any instant the
// not-yet-persisted ("exposed") state can be written out within the
// configured bound — which is what lets a forced migration always complete
// its final save inside the revocation grace window.
//
// The analytic models in timeline.go assume this daemon exists; the daemon
// makes the assumption checkable: tests drive it through simulated time
// and verify the exposure bound and the I/O it consumes.
type CheckpointDaemon struct {
	eng  *sim.Engine
	spec Spec
	p    Params

	running   bool
	stopped   bool
	lastStart sim.Time // when the current interval began accumulating
	writing   bool

	fullCheckpoints int
	incrementals    int
	bytesWrittenMB  float64
	busyMB          float64 // dirtied while a write was in flight

	onWrite func(mb float64) // optional observer for I/O accounting

	// Persistent closures for the steady-state incremental cycle, allocated
	// once at construction so the periodic tick posts nothing new.
	incrFn     func()  // arms writeIncrement
	incrDoneFn func()  // completes the in-flight incremental write
	fullDoneFn func()  // completes the initial full checkpoint
	pendingMB  float64 // size of the in-flight incremental write
}

// NewCheckpointDaemon creates a daemon for one VM. Call Start to begin the
// initial full checkpoint.
func NewCheckpointDaemon(eng *sim.Engine, spec Spec, p Params) (*CheckpointDaemon, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p.CheckpointBound <= 0 {
		return nil, fmt.Errorf("vm: checkpoint bound must be positive, got %v", p.CheckpointBound)
	}
	d := &CheckpointDaemon{eng: eng, spec: spec, p: p}
	d.incrFn = d.writeIncrement
	d.incrDoneFn = func() {
		if d.stopped {
			return
		}
		d.writing = false
		d.incrementals++
		d.record(d.pendingMB)
		d.scheduleNext()
	}
	d.fullDoneFn = func() {
		if d.stopped {
			return
		}
		d.writing = false
		d.fullCheckpoints++
		d.record(d.spec.MemoryMB())
		// Pages dirtied during the full write are the first increment's
		// backlog; the accumulation clock restarted at lastStart.
		d.scheduleNext()
	}
	return d, nil
}

// OnWrite registers an observer invoked with the size (MB) of every
// checkpoint write the daemon issues; use it to charge volume I/O.
func (d *CheckpointDaemon) OnWrite(fn func(mb float64)) { d.onWrite = fn }

// Start writes the initial full checkpoint and then begins the periodic
// incremental cycle. Starting an already-started or stopped daemon is an
// error.
func (d *CheckpointDaemon) Start() error {
	if d.running {
		return fmt.Errorf("vm: checkpoint daemon already running")
	}
	if d.stopped {
		return fmt.Errorf("vm: checkpoint daemon already stopped")
	}
	d.running = true
	d.writing = true
	d.lastStart = d.eng.Now()
	d.eng.PostAfter(d.spec.MemoryMB()/d.p.CheckpointWriteMBps, d.fullDoneFn)
	return nil
}

// scheduleNext arms the next incremental write at the Yank interval.
func (d *CheckpointDaemon) scheduleNext() {
	interval := d.p.CheckpointInterval(d.spec)
	if interval <= 0 {
		// Nothing dirties memory: no periodic work (Exposure stays 0).
		return
	}
	target := d.lastStart + interval
	now := d.eng.Now()
	if target <= now {
		target = now
	}
	d.eng.Post(target, d.incrFn)
}

// writeIncrement persists everything dirtied since lastStart.
func (d *CheckpointDaemon) writeIncrement() {
	if d.stopped || !d.running {
		return
	}
	now := d.eng.Now()
	dirtyMB := d.spec.DirtyRateMBps * (now - d.lastStart)
	if max := d.spec.MemoryMB(); dirtyMB > max {
		dirtyMB = max
	}
	d.writing = true
	d.lastStart = now // pages dirtied from now on belong to the next increment
	d.pendingMB = dirtyMB
	d.eng.PostAfter(dirtyMB/d.p.CheckpointWriteMBps, d.incrDoneFn)
}

// record accounts one completed write.
func (d *CheckpointDaemon) record(mb float64) {
	d.bytesWrittenMB += mb
	// The write occupied the volume for mb/rate seconds; feed the run's
	// checkpoint-duration histogram (no-op without a recorder attached).
	d.eng.Recorder().ObserveCheckpoint(mb / d.p.CheckpointWriteMBps)
	if d.onWrite != nil {
		d.onWrite(mb)
	}
}

// ExposureMB returns the amount of memory state that would be lost if the
// VM vanished right now without a final save: everything dirtied since the
// start of the last completed-or-in-flight checkpoint interval.
func (d *CheckpointDaemon) ExposureMB() float64 {
	if !d.running || d.stopped {
		return d.spec.MemoryMB()
	}
	mb := d.spec.DirtyRateMBps * (d.eng.Now() - d.lastStart)
	if max := d.spec.MemoryMB(); mb > max {
		mb = max
	}
	return mb
}

// FinalSaveTime returns how long a final incremental save would take if
// initiated now — the quantity the Yank bound promises stays within
// CheckpointBound (plus one in-flight write that must drain first).
func (d *CheckpointDaemon) FinalSaveTime() sim.Duration {
	t := d.ExposureMB() / d.p.CheckpointWriteMBps
	if d.writing {
		// An in-flight write occupies the volume; the worst case is one
		// full bound's worth of backlog ahead of the final save.
		t += float64(d.p.CheckpointBound)
	}
	return t
}

// Stop halts the daemon (the VM suspended or migrated away). Idempotent.
func (d *CheckpointDaemon) Stop() {
	d.stopped = true
	d.running = false
}

// Stats reports the daemon's activity.
type DaemonStats struct {
	FullCheckpoints int
	Incrementals    int
	BytesWrittenMB  float64
}

// Stats returns a snapshot of the daemon's activity counters.
func (d *CheckpointDaemon) Stats() DaemonStats {
	return DaemonStats{
		FullCheckpoints: d.fullCheckpoints,
		Incrementals:    d.incrementals,
		BytesWrittenMB:  d.bytesWrittenMB,
	}
}
