package vm

import (
	"fmt"

	"spothost/internal/sim"
)

// DaemonEventKind names the single event a checkpoint daemon ever has
// pending. The daemon's schedule is a deterministic function of its write
// clocks, so a snapshot needs only the kind and time of the next event —
// no event-heap walk.
type DaemonEventKind int

const (
	// DaemonIdle means no event is pending (stopped, never started, or a
	// zero dirty rate left nothing to checkpoint).
	DaemonIdle DaemonEventKind = iota
	// DaemonFullDone completes the initial full checkpoint.
	DaemonFullDone
	// DaemonIncrStart begins the next incremental write.
	DaemonIncrStart
	// DaemonIncrDone completes the in-flight incremental write.
	DaemonIncrDone
)

// DaemonState is a serializable snapshot of a checkpoint daemon: its write
// clocks, counters, and the one pending event reconstructed from them.
// RestoreCheckpointDaemon rebuilds a live daemon that continues the exact
// same write schedule on a fresh engine.
type DaemonState struct {
	LastStart       sim.Time
	Writing         bool
	PendingMB       float64
	FullCheckpoints int
	Incrementals    int
	BytesWrittenMB  float64
	Next            DaemonEventKind
	NextAt          sim.Time
}

// Snapshot captures the daemon's current state. The pending event is
// recomputed from the write clocks: the same float arithmetic that armed
// the original event (Start posts full/rate after lastStart; writeIncrement
// posts pendingMB/rate after lastStart; scheduleNext posts lastStart +
// interval), so the reconstructed time is bit-identical to the event
// sitting in the original engine's heap. A clamped scheduleNext target
// (backlog, target <= now) fires immediately, so an event still pending at
// a later quiescent instant was never clamped.
func (d *CheckpointDaemon) Snapshot() DaemonState {
	st := DaemonState{
		LastStart:       d.lastStart,
		Writing:         d.writing,
		PendingMB:       d.pendingMB,
		FullCheckpoints: d.fullCheckpoints,
		Incrementals:    d.incrementals,
		BytesWrittenMB:  d.bytesWrittenMB,
	}
	switch {
	case !d.running || d.stopped:
		st.Next = DaemonIdle
	case d.writing && d.fullCheckpoints == 0:
		st.Next = DaemonFullDone
		st.NextAt = d.lastStart + d.spec.MemoryMB()/d.p.CheckpointWriteMBps
	case d.writing:
		st.Next = DaemonIncrDone
		st.NextAt = d.lastStart + d.pendingMB/d.p.CheckpointWriteMBps
	default:
		interval := d.p.CheckpointInterval(d.spec)
		if interval <= 0 {
			st.Next = DaemonIdle
		} else {
			st.Next = DaemonIncrStart
			st.NextAt = d.lastStart + interval
		}
	}
	return st
}

// ReplayDaemon reproduces, without an engine, the write schedule of a
// daemon Started at start and left running until cutoff (exclusive),
// mirroring the live daemon's float operations op-for-op: callers that sum
// the onWrite amounts in order obtain bit-identical accumulators to a run
// that hosted the real daemon. It returns the daemon's state at cutoff,
// suitable for RestoreCheckpointDaemon.
func ReplayDaemon(spec Spec, p Params, start, cutoff sim.Time, onWrite func(mb float64)) DaemonState {
	st := DaemonState{
		LastStart: start,
		Writing:   true,
		Next:      DaemonFullDone,
		NextAt:    start + spec.MemoryMB()/p.CheckpointWriteMBps,
	}
	interval := p.CheckpointInterval(spec)
	record := func(mb float64) {
		st.BytesWrittenMB += mb
		if onWrite != nil {
			onWrite(mb)
		}
	}
	scheduleNext := func(now sim.Time) {
		if interval <= 0 {
			st.Next = DaemonIdle
			return
		}
		target := st.LastStart + interval
		if target <= now {
			target = now
		}
		st.Next = DaemonIncrStart
		st.NextAt = target
	}
	for st.Next != DaemonIdle && st.NextAt < cutoff {
		now := st.NextAt
		switch st.Next {
		case DaemonFullDone:
			st.Writing = false
			st.FullCheckpoints++
			record(spec.MemoryMB())
			scheduleNext(now)
		case DaemonIncrStart:
			dirty := spec.DirtyRateMBps * (now - st.LastStart)
			if max := spec.MemoryMB(); dirty > max {
				dirty = max
			}
			st.Writing = true
			st.LastStart = now
			st.PendingMB = dirty
			st.Next = DaemonIncrDone
			st.NextAt = now + dirty/p.CheckpointWriteMBps
		case DaemonIncrDone:
			st.Writing = false
			st.Incrementals++
			record(st.PendingMB)
			scheduleNext(now)
		}
	}
	return st
}

// RestoreCheckpointDaemon rebuilds a running daemon from a snapshot on a
// fresh engine whose clock is at or before the snapshot's pending event.
func RestoreCheckpointDaemon(eng *sim.Engine, spec Spec, p Params, st DaemonState) (*CheckpointDaemon, error) {
	d, err := NewCheckpointDaemon(eng, spec, p)
	if err != nil {
		return nil, err
	}
	d.running = true
	d.lastStart = st.LastStart
	d.writing = st.Writing
	d.pendingMB = st.PendingMB
	d.fullCheckpoints = st.FullCheckpoints
	d.incrementals = st.Incrementals
	d.bytesWrittenMB = st.BytesWrittenMB
	if st.Next == DaemonIdle {
		return d, nil
	}
	at := st.NextAt
	if now := eng.Now(); at < now {
		at = now // mirrors scheduleNext's backlog clamp
	}
	switch st.Next {
	case DaemonFullDone:
		eng.Schedule(at, d.fullDoneFn)
	case DaemonIncrStart:
		eng.Schedule(at, d.incrFn)
	case DaemonIncrDone:
		eng.Schedule(at, d.incrDoneFn)
	default:
		return nil, fmt.Errorf("vm: unknown daemon event kind %d", st.Next)
	}
	return d, nil
}
