package slo_test

import (
	"fmt"

	"spothost/internal/sim"
	"spothost/internal/slo"
)

// Example audits two months of downtime episodes against the paper's
// four-nines requirement.
func Example() {
	t := &slo.Tracker{}
	t.Add(2*sim.Day, 2*sim.Day+120)   // a 2-minute outage in month 1
	t.Add(10*sim.Day, 10*sim.Day+90)  // 1.5 minutes more: month 1 total 3.5 min
	t.Add(40*sim.Day, 40*sim.Day+600) // a 10-minute outage in month 2

	for i, w := range t.Windows(slo.FourNines, 30*sim.Day, 60*sim.Day) {
		fmt.Printf("month %d: %.1f min down, burn %.0f%%, compliant=%v\n",
			i+1, w.Downtime/sim.Minute, 100*w.BudgetBurn, w.Compliant)
	}
	// Output:
	// month 1: 3.5 min down, burn 81%, compliant=true
	// month 2: 10.0 min down, burn 231%, compliant=false
}
