package slo

import (
	"math"
	"testing"

	"spothost/internal/metrics"
	"spothost/internal/sim"
)

func TestTargetBudgets(t *testing.T) {
	// The paper: four nines ~ 4.3 minutes per month.
	got := FourNines.MonthlyBudget()
	if got < 4.2*sim.Minute || got > 4.4*sim.Minute {
		t.Fatalf("four-nines monthly budget = %.1f min, want ~4.3", got/sim.Minute)
	}
	if math.Abs(ThreeNines.MaxDowntime(1000)-1) > 1e-9 {
		t.Fatalf("three nines of 1000 s = %v", ThreeNines.MaxDowntime(1000))
	}
	if FourNines.String() != "99.99%" {
		t.Fatalf("target string = %q", FourNines.String())
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := &Tracker{}
	tr.Add(100, 130) // 30 s
	tr.Add(500, 500) // ignored: zero length
	tr.Add(900, 910) // 10 s
	if tr.Episodes() != 2 {
		t.Fatalf("episodes = %d", tr.Episodes())
	}
	if got := tr.DowntimeIn(0, 1000); got != 40 {
		t.Fatalf("downtime = %v", got)
	}
	// Partial overlap with the window.
	if got := tr.DowntimeIn(110, 905); got != 25 {
		t.Fatalf("clipped downtime = %v, want 20+5", got)
	}
	if got := tr.DowntimeIn(200, 100); got != 0 {
		t.Fatalf("inverted window = %v", got)
	}
}

func TestTrackerMergesOverlaps(t *testing.T) {
	tr := &Tracker{}
	tr.Add(100, 200)
	tr.Add(150, 250) // overlaps: merged, extends to 250
	tr.Add(160, 170) // contained: swallowed
	if tr.Episodes() != 1 {
		t.Fatalf("episodes = %d, want merged 1", tr.Episodes())
	}
	if got := tr.DowntimeIn(0, 1000); got != 150 {
		t.Fatalf("merged downtime = %v, want 150", got)
	}
}

func TestAvailabilityAndCompliance(t *testing.T) {
	tr := &Tracker{}
	tr.Add(0, 86.4) // exactly 0.01% of 10 days down
	horizon := sim.Time(10 * sim.Day)
	av := tr.Availability(0, horizon)
	if math.Abs(av-0.9999) > 1e-12 {
		t.Fatalf("availability = %v", av)
	}
	if !tr.Compliant(FourNines, 0, horizon) {
		t.Fatal("exactly-at-target should comply")
	}
	if tr.Compliant(FiveNines, 0, horizon) {
		t.Fatal("five nines should fail")
	}
	if got := tr.BudgetBurn(FourNines, 0, horizon); math.Abs(got-1) > 1e-12 {
		t.Fatalf("budget burn = %v, want 1.0", got)
	}
	// Empty window is trivially available.
	if tr.Availability(5, 5) != 1 {
		t.Fatal("empty window availability != 1")
	}
}

func TestBudgetBurnZeroBudget(t *testing.T) {
	tr := &Tracker{}
	if tr.BudgetBurn(Target(1), 0, 100) != 0 {
		t.Fatal("clean perfect target should burn 0")
	}
	tr.Add(10, 11)
	if tr.BudgetBurn(Target(1), 0, 100) <= 1 {
		t.Fatal("any downtime should bust a perfect target")
	}
}

func TestWindows(t *testing.T) {
	tr := &Tracker{}
	// One bad first month, clean second month.
	tr.Add(100, 100+10*sim.Minute)
	reports := tr.Windows(FourNines, 30*sim.Day, 60*sim.Day)
	if len(reports) != 2 {
		t.Fatalf("windows = %d", len(reports))
	}
	if reports[0].Compliant {
		t.Fatal("10-minute outage should bust a four-nines month")
	}
	if reports[0].BudgetBurn < 2 {
		t.Fatalf("burn = %v, want > 2x", reports[0].BudgetBurn)
	}
	if !reports[1].Compliant || reports[1].Downtime != 0 {
		t.Fatalf("clean month misreported: %+v", reports[1])
	}
	// Partial final window.
	reports = tr.Windows(FourNines, 30*sim.Day, 45*sim.Day)
	if len(reports) != 2 || reports[1].End != 45*sim.Day {
		t.Fatalf("partial window wrong: %+v", reports)
	}
	if tr.Windows(FourNines, 0, 10) != nil {
		t.Fatal("degenerate window accepted")
	}
}

func TestEpisodeDistribution(t *testing.T) {
	tr := &Tracker{}
	if d := tr.EpisodeDistribution(); d.Count != 0 {
		t.Fatalf("empty distribution: %+v", d)
	}
	durations := []sim.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	at := sim.Time(0)
	for _, d := range durations {
		tr.Add(at, at+d)
		at += d + 1000
	}
	d := tr.EpisodeDistribution()
	if d.Count != 10 || d.Max != 100 || d.Total != 550 {
		t.Fatalf("distribution: %+v", d)
	}
	if math.Abs(float64(d.Mean)-55) > 1e-9 {
		t.Fatalf("mean = %v", d.Mean)
	}
	if d.P50 < 40 || d.P50 > 60 {
		t.Fatalf("p50 = %v", d.P50)
	}
	if d.P95 < 80 {
		t.Fatalf("p95 = %v", d.P95)
	}
}

func TestFromLog(t *testing.T) {
	log := []metrics.Interval{{Start: 5, End: 15}, {Start: 100, End: 120}}
	tr := FromLog(log)
	if tr.Episodes() != 2 || tr.DowntimeIn(0, 200) != 30 {
		t.Fatalf("FromLog wrong: %d episodes, %v downtime",
			tr.Episodes(), tr.DowntimeIn(0, 200))
	}
}
