// Package slo evaluates availability objectives over downtime episode
// logs: per-window compliance against N-nines targets, error-budget burn,
// and episode-length distributions. The paper's bar — "a widely-accepted
// industry requirement ... at least four nines (99.99%) of availability
// ... roughly 4.3 minutes of downtime per month" — is the FourNines
// target here.
package slo

import (
	"fmt"
	"sort"

	"spothost/internal/metrics"
	"spothost/internal/sim"
)

// Target is an availability objective as a fraction (0.9999 = four nines).
type Target float64

// Standard targets.
const (
	TwoNines   Target = 0.99
	ThreeNines Target = 0.999
	// FourNines is the paper's always-on service requirement.
	FourNines Target = 0.9999
	FiveNines Target = 0.99999
)

// String renders the target ("99.99%").
func (t Target) String() string { return fmt.Sprintf("%g%%", float64(t)*100) }

// MaxDowntime returns the downtime budget the target allows in a window.
func (t Target) MaxDowntime(window sim.Duration) sim.Duration {
	return (1 - float64(t)) * window
}

// MonthlyBudget returns the budget over a 30-day month (the paper's "4.3
// minutes per month" for four nines).
func (t Target) MonthlyBudget() sim.Duration { return t.MaxDowntime(30 * sim.Day) }

// Tracker evaluates episodes against targets. Build with FromLog or by
// Add-ing episodes in order.
type Tracker struct {
	episodes []metrics.Interval
}

// FromLog builds a tracker from a metrics downtime log.
func FromLog(log []metrics.Interval) *Tracker {
	t := &Tracker{}
	for _, iv := range log {
		t.Add(iv.Start, iv.End)
	}
	return t
}

// Add records one downtime episode. Episodes with non-positive length are
// ignored; out-of-order starts are rejected to keep queries correct.
func (t *Tracker) Add(start, end sim.Time) {
	if end <= start {
		return
	}
	if n := len(t.episodes); n > 0 && start < t.episodes[n-1].End {
		// Overlapping/unsorted input: merge into the previous episode to
		// stay consistent rather than silently double-counting.
		if end > t.episodes[n-1].End {
			t.episodes[n-1].End = end
		}
		return
	}
	t.episodes = append(t.episodes, metrics.Interval{Start: start, End: end})
}

// Episodes returns the number of recorded episodes.
func (t *Tracker) Episodes() int { return len(t.episodes) }

// DowntimeIn returns total downtime intersecting the window [w0, w1).
func (t *Tracker) DowntimeIn(w0, w1 sim.Time) sim.Duration {
	if w1 <= w0 {
		return 0
	}
	total := sim.Duration(0)
	for _, ep := range t.episodes {
		lo, hi := ep.Start, ep.End
		if lo < w0 {
			lo = w0
		}
		if hi > w1 {
			hi = w1
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Availability returns the availability fraction over [w0, w1).
func (t *Tracker) Availability(w0, w1 sim.Time) float64 {
	if w1 <= w0 {
		return 1
	}
	return 1 - float64(t.DowntimeIn(w0, w1))/float64(w1-w0)
}

// Compliant reports whether the window meets the target.
func (t *Tracker) Compliant(target Target, w0, w1 sim.Time) bool {
	return t.Availability(w0, w1) >= float64(target)
}

// BudgetBurn returns the fraction of the window's error budget consumed
// (1.0 = exactly at the target; > 1 = violated).
func (t *Tracker) BudgetBurn(target Target, w0, w1 sim.Time) float64 {
	budget := target.MaxDowntime(w1 - w0)
	if budget <= 0 {
		if t.DowntimeIn(w0, w1) > 0 {
			return 2 // any downtime busts a zero budget
		}
		return 0
	}
	return float64(t.DowntimeIn(w0, w1)) / float64(budget)
}

// WindowReport is one fixed window's compliance summary.
type WindowReport struct {
	Start        sim.Time
	End          sim.Time
	Downtime     sim.Duration
	Availability float64
	Compliant    bool
	BudgetBurn   float64
}

// Windows evaluates consecutive fixed windows of the given length over
// [0, horizon) — e.g. 30-day months.
func (t *Tracker) Windows(target Target, window, horizon sim.Duration) []WindowReport {
	if window <= 0 || horizon <= 0 {
		return nil
	}
	var out []WindowReport
	for w0 := sim.Time(0); w0 < horizon; w0 += window {
		w1 := w0 + window
		if w1 > horizon {
			w1 = horizon
		}
		out = append(out, WindowReport{
			Start:        w0,
			End:          w1,
			Downtime:     t.DowntimeIn(w0, w1),
			Availability: t.Availability(w0, w1),
			Compliant:    t.Compliant(target, w0, w1),
			BudgetBurn:   t.BudgetBurn(target, w0, w1),
		})
	}
	return out
}

// Distribution summarizes episode lengths.
type Distribution struct {
	Count int
	Total sim.Duration
	Mean  sim.Duration
	P50   sim.Duration
	P95   sim.Duration
	Max   sim.Duration
}

// EpisodeDistribution returns the distribution of episode lengths.
func (t *Tracker) EpisodeDistribution() Distribution {
	if len(t.episodes) == 0 {
		return Distribution{}
	}
	lens := make([]float64, len(t.episodes))
	total := 0.0
	for i, ep := range t.episodes {
		lens[i] = float64(ep.Duration())
		total += lens[i]
	}
	sort.Float64s(lens)
	pick := func(p float64) sim.Duration {
		idx := int(p * float64(len(lens)-1))
		return lens[idx]
	}
	return Distribution{
		Count: len(lens),
		Total: total,
		Mean:  total / float64(len(lens)),
		P50:   pick(0.5),
		P95:   pick(0.95),
		Max:   lens[len(lens)-1],
	}
}
