package runpool

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering checks results come back in submission order even when
// tasks finish out of order.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		items := make([]int, 64)
		for i := range items {
			items[i] = i
		}
		rng := rand.New(rand.NewSource(1))
		delays := make([]time.Duration, len(items))
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
		}
		got, err := Map(workers, items, func(i, v int) (int, error) {
			time.Sleep(delays[i])
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapFirstError checks the reported error is the lowest-indexed
// failure, not whichever failed first on the wall clock.
func TestMapFirstError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(4, items, func(i, v int) (int, error) {
		switch i {
		case 2:
			// The higher-indexed failure finishes first.
			return 0, errors.New("fail-2")
		case 5:
			time.Sleep(20 * time.Millisecond)
			return 0, errors.New("fail-5")
		}
		return v, nil
	})
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("want deterministic first error fail-2, got %v", err)
	}
}

// TestMapPanicSafety checks a panicking task surfaces as *PanicError
// instead of crashing the process.
func TestMapPanicSafety(t *testing.T) {
	_, err := Map(2, []int{0, 1, 2}, func(i, v int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return v, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "boom" || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic value not preserved: %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

// TestBoundedConcurrency checks the pool never runs more than `workers`
// tasks at once, including the workers=1 edge case.
func TestBoundedConcurrency(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var inFlight, peak int32
		_, err := Map(workers, make([]struct{}, 32), func(i int, _ struct{}) (int, error) {
			n := atomic.AddInt32(&inFlight, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&inFlight, -1)
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt32(&peak); got > int32(workers) {
			t.Fatalf("workers=%d: peak concurrency %d", workers, got)
		}
	}
}

// TestDefaultWorkers checks non-positive worker counts fall back to
// GOMAXPROCS and still work.
func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
	got, err := Map(0, []int{1, 2, 3}, func(_, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

// TestMapEmpty checks an empty item list returns immediately.
func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(_ int, _ string) (string, error) { return "", nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestPoolSubmitAfterWaitPanics checks pools are single-use.
func TestPoolSubmitAfterWaitPanics(t *testing.T) {
	p := New[int](2)
	p.Submit(func() (int, error) { return 1, nil })
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Wait did not panic")
		}
	}()
	p.Submit(func() (int, error) { return 2, nil })
}

// TestMapDeterministicAcrossWorkerCounts checks the full result set is
// identical for any worker count, which is what the experiment harness
// relies on.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		items := make([]int, 50)
		for i := range items {
			items[i] = i
		}
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v*31 + i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := run(1)
	for _, workers := range []int{2, 7, 50} {
		if fmt.Sprint(run(workers)) != fmt.Sprint(serial) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestPoolConcurrentSubmit checks Submit is safe to call from multiple
// goroutines (each submitter sees a consistent index).
func TestPoolConcurrentSubmit(t *testing.T) {
	p := New[int](4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p.Submit(func() (int, error) { return 1, nil })
			}
		}()
	}
	wg.Wait()
	got, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("got %d results, want 80", len(got))
	}
}
