package runpool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCtxMatchesMap(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	sq := func(i, v int) (int, error) { return v * v, nil }
	want, err := Map(4, items, sq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx(context.Background(), 4, items,
		func(_ context.Context, i, v int) (int, error) { return sq(i, v) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result %d: Map=%d MapCtx=%d", i, want[i], got[i])
		}
	}
}

func TestMapCtxFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	items := make([]int, 200)
	_, err := MapCtx(context.Background(), 2, items, func(ctx context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Well-behaved tasks watch their context.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Millisecond):
			return i, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root-cause error, not a ctx.Err()", err)
	}
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatalf("all %d tasks started; expected most to be skipped after cancel", n)
	}
}

func TestMapCtxCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		<-started
		cancel()
		close(done)
	}()
	items := make([]int, 100)
	_, err := MapCtx(ctx, 2, items, func(ctx context.Context, i, _ int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapCtxPanicCancelsAndSurfaces(t *testing.T) {
	items := make([]int, 50)
	_, err := MapCtx(context.Background(), 2, items, func(ctx context.Context, i, _ int) (int, error) {
		if i == 1 {
			panic("kaboom")
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(2 * time.Millisecond):
			return i, nil
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "kaboom" {
		t.Fatalf("err = %v, want *PanicError(kaboom)", err)
	}
}

func TestMapCtxLowestIndexedRootCause(t *testing.T) {
	// Two real failures: the lower-indexed one must win regardless of
	// finish order. ready gates task 3 so task 1 is provably past the
	// skip check (inside fn) before the cancel lands.
	errA, errB := errors.New("a"), errors.New("b")
	ready := make(chan struct{})
	gate := make(chan struct{})
	_, err := MapCtx(context.Background(), 4, []int{0, 1, 2, 3},
		func(ctx context.Context, i, _ int) (int, error) {
			switch i {
			case 1:
				close(ready)
				<-gate // fails second
				return 0, errA
			case 3:
				<-ready
				defer close(gate)
				return 0, errB // fails first
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-indexed root cause %v", err, errA)
	}
}
