// Package runpool provides a bounded worker pool for fanning independent
// simulation runs out across CPU cores.
//
// The pool is built for the repo's evaluation workloads: every
// (policy x market set x seed) cell is an independent, deterministic,
// single-threaded simulation, so the only way to use more than one core is
// to run many cells at once. The pool guarantees that parallel execution
// is observationally identical to serial execution:
//
//   - results are collected in submission order, regardless of the order
//     tasks finish in;
//   - the error returned by Wait is the error of the lowest-submitted
//     failing task (not whichever task happened to fail first on the
//     clock), so error propagation is deterministic too;
//   - a panic inside a task is recovered and surfaced as a *PanicError
//     rather than tearing down the process from a worker goroutine.
//
// Tasks must be independent: they may not communicate with each other and
// must not share mutable state (shared immutable state, such as a cached
// market universe, is fine).
package runpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes a
// non-positive count: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// PanicError wraps a panic recovered from a pool task.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

// Error describes the recovered panic.
func (p *PanicError) Error() string {
	return fmt.Sprintf("runpool: task panicked: %v\n%s", p.Value, p.Stack)
}

// Pool runs submitted tasks with at most `workers` in flight at once and
// collects their results in submission order. The zero value is not
// usable; construct with New. A Pool is single-use: Submit tasks, then
// call Wait exactly once.
type Pool[R any] struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu      sync.Mutex
	results []R
	errs    []error
	waited  bool
}

// New returns a pool that keeps at most workers tasks in flight. A
// non-positive count means DefaultWorkers.
func New[R any](workers int) *Pool[R] {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool[R]{sem: make(chan struct{}, workers)}
}

// Submit queues fn for execution. Tasks begin running as workers free up;
// Submit itself never blocks on task execution. Submitting after Wait
// panics: the result slices have already been handed to the caller.
func (p *Pool[R]) Submit(fn func() (R, error)) {
	p.mu.Lock()
	if p.waited {
		p.mu.Unlock()
		panic("runpool: Submit after Wait")
	}
	idx := len(p.results)
	var zero R
	p.results = append(p.results, zero)
	p.errs = append(p.errs, nil)
	p.mu.Unlock()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		defer func() {
			if v := recover(); v != nil {
				var zero R
				p.set(idx, zero, &PanicError{Value: v, Stack: debug.Stack()})
			}
		}()
		r, err := fn()
		p.set(idx, r, err)
	}()
}

func (p *Pool[R]) set(idx int, r R, err error) {
	p.mu.Lock()
	p.results[idx] = r
	p.errs[idx] = err
	p.mu.Unlock()
}

// Wait blocks until every submitted task has finished and returns their
// results in submission order. When tasks failed, Wait returns the error
// of the lowest-submitted failure alongside the (partially meaningful)
// results.
func (p *Pool[R]) Wait() ([]R, error) {
	p.wg.Wait()
	p.mu.Lock()
	p.waited = true
	results, errs := p.results, p.errs
	p.mu.Unlock()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Map runs fn over every item with at most workers tasks in flight
// (workers <= 0 means DefaultWorkers) and returns the results in item
// order. On failure it returns the error of the lowest-indexed failing
// item, making the error deterministic across worker counts. Every item
// runs to completion even after another item fails; use MapCtx when
// failures (or the caller) should abort remaining work.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	p := New[R](workers)
	for i, item := range items {
		p.Submit(func() (R, error) { return fn(i, item) })
	}
	return p.Wait()
}

// MapCtx is Map with cancellation: fn receives a context that is canceled
// as soon as any item fails, any item panics, or the caller's ctx is done.
// Items that have not started yet are then skipped (their slot reports the
// context's error), and a well-behaved fn — one that polls its context,
// like a sim.Engine run — returns early, so the first failure or a caller
// cancel drains the pool promptly instead of finishing the whole grid.
//
// With a background context and no failures, MapCtx is observationally
// identical to Map: same results, same order, at any worker count. On
// failure it prefers the lowest-indexed error that is not itself a
// cancellation (the root cause rather than collateral ctx.Err()s); when
// every recorded error is a cancellation it returns the caller context's
// error if set, else the lowest-indexed failure, matching Map's
// deterministic error rule as closely as an aborted run allows.
func MapCtx[T, R any](ctx context.Context, workers int, items []T,
	fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// cause is the lowest-indexed non-cancellation error.
	var (
		causeMu  sync.Mutex
		cause    error
		causeIdx int
	)
	record := func(i int, err error) {
		if isCancellation(err) {
			return
		}
		causeMu.Lock()
		if cause == nil || i < causeIdx {
			cause, causeIdx = err, i
		}
		causeMu.Unlock()
	}

	p := New[R](workers)
	for i, item := range items {
		p.Submit(func() (r R, err error) {
			defer func() {
				if v := recover(); v != nil {
					err = &PanicError{Value: v, Stack: debug.Stack()}
				}
				if err != nil {
					record(i, err)
					cancel()
				}
			}()
			if err := cctx.Err(); err != nil {
				return r, err
			}
			return fn(cctx, i, item)
		})
	}
	results, waitErr := p.Wait()
	causeMu.Lock()
	defer causeMu.Unlock()
	switch {
	case cause != nil:
		return results, cause
	case waitErr != nil && ctx.Err() != nil:
		return results, ctx.Err()
	default:
		return results, waitErr
	}
}

// isCancellation reports whether err only says "a context was canceled"
// rather than naming a root cause.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
