package fleet

import (
	"reflect"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// TestEnvelopeToggleEquivalence is the before/after check for the fleet's
// envelope fast path: LowestPrice and Diversified runs with the envelope on
// and off must produce byte-identical reports, because fastPick reproduces
// the strategies' candidate-scan picks exactly (and declines when it
// cannot, falling back to the scan).
func TestEnvelopeToggleEquivalence(t *testing.T) {
	for _, strat := range []Strategy{LowestPrice{}, Diversified{}} {
		demand, err := NewDiurnalDemand(DefaultDiurnalConfig(15*sim.Day, 0))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Strategy: strat,
			Demand:   demand,
			Planner:  LinearPlanner{PerReplica: 6},
		}
		mcfg := market.DefaultConfig(0)
		seeds := []int64{1, 2, 3}

		useEnvelope = true
		fast, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 15*sim.Day, seeds)
		if err != nil {
			useEnvelope = true
			t.Fatal(err)
		}
		useEnvelope = false
		slow, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 15*sim.Day, seeds)
		useEnvelope = true
		if err != nil {
			t.Fatal(err)
		}
		for i := range seeds {
			if !reflect.DeepEqual(fast[i], slow[i]) {
				t.Fatalf("%s seed %d: envelope on/off reports differ:\n on: %+v\noff: %+v",
					fast[i].Strategy, seeds[i], fast[i], slow[i])
			}
		}
	}
}
