package fleet

import (
	"context"
	"reflect"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// testSet builds a hand-crafted market universe from piecewise price
// steps per market, all with the given on-demand price.
func testSet(t *testing.T, horizon sim.Time, od float64, prices map[market.ID][]market.Point) *market.Set {
	t.Helper()
	var traces []*market.Trace
	odMap := map[market.ID]float64{}
	for id, pts := range prices {
		tr, err := market.NewTrace(id, pts, horizon)
		if err != nil {
			t.Fatalf("trace %s: %v", id, err)
		}
		traces = append(traces, tr)
		odMap[id] = od
	}
	set, err := market.NewSet(traces, odMap)
	if err != nil {
		t.Fatalf("set: %v", err)
	}
	return set
}

// stepDemand is a piecewise-constant load: Loads[i] holds from Times[i].
type stepDemand struct {
	times []sim.Time
	loads []float64
}

func (d stepDemand) At(t sim.Time) float64 {
	load := d.loads[0]
	for i, at := range d.times {
		if t >= at {
			load = d.loads[i]
		}
	}
	return load
}

func baseConfig(strategy Strategy, demand Demand) Config {
	return Config{
		Strategy:    strategy,
		Demand:      demand,
		Planner:     LinearPlanner{PerReplica: 1},
		Tick:        5 * sim.Minute,
		BidMultiple: 1.5,
		MaxReplicas: 20,
	}
}

func TestControllerScalesWithDemand(t *testing.T) {
	set := testSet(t, 1*sim.Day, 0.06, map[market.ID][]market.Point{
		mid("us-east-1a", "small"): {{T: 0, Price: 0.02}},
	})
	demand := stepDemand{
		times: []sim.Time{0, 6 * sim.Hour, 12 * sim.Hour},
		loads: []float64{2, 6, 2},
	}
	rep, err := Run(set, cloud.DefaultParams(1), baseConfig(LowestPrice{}, demand), 1*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakTarget != 6 {
		t.Fatalf("peak target = %d, want 6", rep.PeakTarget)
	}
	if rep.ScaleDowns < 4 {
		t.Fatalf("scale-downs = %d, want >= 4 (6 -> 2)", rep.ScaleDowns)
	}
	if s := rep.CapacityShortfall(); s < 0 || s > 0.05 {
		t.Fatalf("shortfall = %v, want small (startup lag only)", s)
	}
	if rep.OnDemandFallbacks != 0 || rep.OnDemandSeconds != 0 {
		t.Fatalf("stable cheap spot market should never fall back: %+v", rep)
	}
	if rep.NormalizedCost() >= 1 {
		t.Fatalf("spot fleet cost %v not under baseline %v", rep.Cost, rep.BaselineCost)
	}
}

func TestControllerFallsBackToOnDemand(t *testing.T) {
	// Spot permanently above the bid (1.5 x 0.06 = 0.09 < 0.10): every
	// replica must be an on-demand fallback.
	set := testSet(t, 1*sim.Day, 0.06, map[market.ID][]market.Point{
		mid("us-east-1a", "small"): {{T: 0, Price: 0.10}},
	})
	rep, err := Run(set, cloud.DefaultParams(1), baseConfig(LowestPrice{}, ConstantDemand(3)), 1*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnDemandFallbacks != 3 || rep.SpotLaunches != 0 {
		t.Fatalf("want 3 OD fallbacks, 0 spot; got %d/%d", rep.OnDemandFallbacks, rep.SpotLaunches)
	}
	if rep.SpotSeconds != 0 {
		t.Fatalf("spot seconds = %v, want 0", rep.SpotSeconds)
	}
}

func TestControllerReverseReplacement(t *testing.T) {
	// Spot starts unaffordable, recovers far below the hysteresis
	// threshold at 6h: the controller must drain all three on-demand
	// replicas back onto spot, one per tick.
	set := testSet(t, 1*sim.Day, 0.06, map[market.ID][]market.Point{
		mid("us-east-1a", "small"): {{T: 0, Price: 0.10}, {T: 6 * sim.Hour, Price: 0.02}},
	})
	rep, err := Run(set, cloud.DefaultParams(1), baseConfig(LowestPrice{}, ConstantDemand(3)), 1*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnDemandFallbacks != 3 {
		t.Fatalf("OD fallbacks = %d, want 3", rep.OnDemandFallbacks)
	}
	if rep.ReverseReplacements != 3 {
		t.Fatalf("reverse replacements = %d, want 3", rep.ReverseReplacements)
	}
	if rep.SpotSeconds == 0 || rep.OnDemandSeconds == 0 {
		t.Fatalf("want both spot (%v) and on-demand (%v) serving time", rep.SpotSeconds, rep.OnDemandSeconds)
	}
	// During the drain the fleet must never go short: the on-demand
	// replica serves until its spot replacement boots.
	if s := rep.CapacityShortfall(); s > 0.01 {
		t.Fatalf("shortfall = %v, want ~0 (make-before-break drain)", s)
	}
}

func TestControllerSurvivesMassRevocation(t *testing.T) {
	// Market A is cheapest, spikes above the bid at 12h for an hour;
	// market B stays affordable. LowestPrice concentrates all replicas in
	// A, loses them simultaneously, and must rebuild in B.
	spike := []market.Point{
		{T: 0, Price: 0.02}, {T: 12 * sim.Hour, Price: 1.0}, {T: 13 * sim.Hour, Price: 0.02},
	}
	set := testSet(t, 1*sim.Day, 0.06, map[market.ID][]market.Point{
		mid("us-east-1a", "small"): spike,
		mid("us-west-1a", "small"): {{T: 0, Price: 0.04}},
	})
	rep, err := Run(set, cloud.DefaultParams(1), baseConfig(LowestPrice{}, ConstantDemand(3)), 1*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasLost != 3 {
		t.Fatalf("replicas lost = %d, want 3", rep.ReplicasLost)
	}
	if got := rep.MaxSimultaneousLoss(); got != 3 {
		t.Fatalf("max simultaneous loss = %d, want 3 (one spike, one grace deadline)", got)
	}
	s := rep.CapacityShortfall()
	if s <= 0 || s > 0.05 {
		t.Fatalf("shortfall = %v, want small but positive (boot gap after revocation)", s)
	}
	if rep.MarketSeconds[mid("us-west-1a", "small")].SpotSeconds == 0 {
		t.Fatal("replacements should have landed in the surviving market")
	}
	if rep.NormalizedCost() >= 1 {
		t.Fatalf("cost %v not under baseline %v", rep.Cost, rep.BaselineCost)
	}
}

func TestRunCtxCancel(t *testing.T) {
	mcfg := market.DefaultConfig(1)
	mcfg.Horizon = 2 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig(Diversified{}, ConstantDemand(4))
	if _, err := RunCtx(ctx, set, cloud.DefaultParams(1), cfg, 2*sim.Day); err == nil {
		t.Fatal("canceled run should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	mcfg := market.DefaultConfig(7)
	mcfg.Horizon = 3 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(StabilityOptimized{}, ConstantDemand(5))
	a, err := Run(set, cloud.DefaultParams(7), cfg, 3*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(set, cloud.DefaultParams(7), cfg, 3*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	mcfg := market.DefaultConfig(1)
	mcfg.Horizon = 1 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Demand: ConstantDemand(1), Planner: LinearPlanner{1}}, // nil strategy
		{Strategy: LowestPrice{}, Planner: LinearPlanner{1}},   // nil demand
		{Strategy: LowestPrice{}, Demand: ConstantDemand(1)},   // nil planner
		{Strategy: LowestPrice{}, Demand: ConstantDemand(1), Planner: LinearPlanner{1}, // unknown market
			Markets: []market.ID{mid("mars-1a", "small")}},
	}
	for i, cfg := range bad {
		if _, err := Run(set, cloud.DefaultParams(1), cfg, 1*sim.Day); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}

func TestDiurnalDemand(t *testing.T) {
	cfg := DefaultDiurnalConfig(2*sim.Day, 3)
	d, err := NewDiurnalDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := d.At(3 * sim.Hour) // 03:00, off-peak
	on := d.At(14 * sim.Hour) // 14:00, peak
	if on <= off {
		t.Fatalf("peak load %v not above off-peak %v", on, off)
	}
	if off < cfg.Base*0.5 || off > cfg.Base*1.5 {
		t.Fatalf("off-peak load %v far from base %v", off, cfg.Base)
	}
	if on < cfg.Peak*0.5 || on > cfg.Peak*1.5 {
		t.Fatalf("peak load %v far from peak %v", on, cfg.Peak)
	}
	// Same seed, same curve; different seed, different noise.
	d2, _ := NewDiurnalDemand(cfg)
	if d.At(5*sim.Hour) != d2.At(5*sim.Hour) {
		t.Fatal("same-seed demand curves diverged")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	d3, _ := NewDiurnalDemand(cfg2)
	same := true
	for h := 0; h < 48; h++ {
		if d.At(sim.Time(h)*sim.Hour) != d3.At(sim.Time(h)*sim.Hour) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
	if _, err := NewDiurnalDemand(DiurnalConfig{Base: -1}); err == nil {
		t.Fatal("invalid demand config should be rejected")
	}
}

func TestTPCWPlannerMonotoneAndMemoized(t *testing.T) {
	p, err := DefaultTPCWPlanner(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo := p.Replicas(10)
	hi := p.Replicas(80)
	if lo < 1 || hi < lo {
		t.Fatalf("planner not monotone: %d replicas @10 EBs, %d @80", lo, hi)
	}
	if again := p.Replicas(80); again != hi {
		t.Fatalf("memoized lookup diverged: %d vs %d", again, hi)
	}
}
