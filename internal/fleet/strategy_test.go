package fleet

import (
	"testing"

	"spothost/internal/market"
)

func mid(region, typ string) market.ID {
	return market.ID{Region: market.Region(region), Type: market.InstanceType(typ)}
}

func TestLowestPricePicksCheapest(t *testing.T) {
	cands := []Candidate{
		{ID: mid("a", "small"), Spot: 0.05},
		{ID: mid("b", "small"), Spot: 0.02},
		{ID: mid("c", "small"), Spot: 0.04},
	}
	id, ok := LowestPrice{}.Pick(cands, 10)
	if !ok || id != mid("b", "small") {
		t.Fatalf("got %v/%v, want b/small", id, ok)
	}
}

func TestLowestPriceTieBreaksByOrder(t *testing.T) {
	cands := []Candidate{
		{ID: mid("a", "small"), Spot: 0.02},
		{ID: mid("b", "small"), Spot: 0.02},
	}
	id, _ := LowestPrice{}.Pick(cands, 1)
	if id != mid("a", "small") {
		t.Fatalf("tie should pick first candidate, got %v", id)
	}
}

func TestDiversifiedRespectsCap(t *testing.T) {
	// Target 9, MaxShare 0.34 -> cap ceil(3.06) = 4 per market.
	cands := []Candidate{
		{ID: mid("a", "small"), Spot: 0.01, Replicas: 4}, // cheapest but full
		{ID: mid("b", "small"), Spot: 0.03, Replicas: 1},
		{ID: mid("c", "small"), Spot: 0.02, Replicas: 3},
	}
	id, ok := Diversified{}.Pick(cands, 9)
	if !ok || id != mid("c", "small") {
		t.Fatalf("got %v, want c/small (cheapest under cap)", id)
	}
}

func TestDiversifiedFallsBackToLeastOccupied(t *testing.T) {
	// Every market at cap: spread to the least occupied.
	cands := []Candidate{
		{ID: mid("a", "small"), Spot: 0.01, Replicas: 5},
		{ID: mid("b", "small"), Spot: 0.03, Replicas: 4},
	}
	id, ok := Diversified{MaxShare: 0.5}.Pick(cands, 6) // cap = 3
	if !ok || id != mid("b", "small") {
		t.Fatalf("got %v, want b/small (least occupied)", id)
	}
}

func TestStabilityPenalizesVolatility(t *testing.T) {
	cands := []Candidate{
		{ID: mid("a", "small"), Spot: 0.02, Vol: 0.10}, // cheap but jumpy
		{ID: mid("b", "small"), Spot: 0.04, Vol: 0.00}, // pricier, stable
	}
	id, ok := StabilityOptimized{}.Pick(cands, 3)
	if !ok || id != mid("b", "small") {
		t.Fatalf("got %v, want stable b/small", id)
	}
	// Lambda ~ 0 degenerates to lowest price.
	id, _ = StabilityOptimized{Lambda: 1e-9}.Pick(cands, 3)
	if id != mid("a", "small") {
		t.Fatalf("tiny lambda should pick cheapest, got %v", id)
	}
}

func TestStrategyFor(t *testing.T) {
	for _, name := range []string{"lowest-price", "diversified", "stability"} {
		s, ok := StrategyFor(name)
		if !ok || s.Name() != name {
			t.Fatalf("StrategyFor(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := StrategyFor("nope"); ok {
		t.Fatal("unknown strategy should not resolve")
	}
	if n := len(Strategies()); n != 3 {
		t.Fatalf("want 3 built-in strategies, got %d", n)
	}
}
