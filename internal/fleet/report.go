package fleet

import (
	"math"
	"sort"

	"spothost/internal/market"
	"spothost/internal/sim"
)

// LossEvent is one cluster of simultaneous revocations: Lost replicas
// terminated at the same virtual instant (a price spike revoking several
// replicas in one market lands them on the same grace deadline).
type LossEvent struct {
	At   sim.Time
	Lost int
}

// OccupancyPoint is a snapshot of where the fleet's serving replicas ran.
type OccupancyPoint struct {
	At       sim.Time
	Spot     map[market.ID]int
	OnDemand int
}

// MarketUsage is time-integrated occupancy of one market.
type MarketUsage struct {
	SpotSeconds     float64
	OnDemandSeconds float64
}

// Report is the outcome of one fleet run.
type Report struct {
	Strategy string
	Seed     int64
	Horizon  sim.Duration

	// TargetReplicaSeconds integrates the autoscaling target over the
	// run; ServedReplicaSeconds integrates min(alive, target).
	TargetReplicaSeconds float64
	ServedReplicaSeconds float64
	PeakTarget           int

	// Cost is the total billed; BaselineCost is serving the full target
	// from the cheapest on-demand market, billed continuously.
	Cost         float64
	BaselineCost float64

	SpotSeconds     float64
	OnDemandSeconds float64

	Launches            int
	SpotLaunches        int
	OnDemandFallbacks   int
	ReverseReplacements int
	// Downsizes counts make-before-break swaps of an oversized spot box
	// for a smaller one after a scale-down stranded its surplus units.
	// Rebalances counts make-before-break migrations of a spot replica
	// onto a market undercutting it by the hysteresis margin. Both are
	// always zero without a mixed-size catalog.
	Downsizes    int
	Rebalances   int
	ReplicasLost int
	NeverGranted int
	ScaleDowns   int

	// LossEvents clusters revocations by termination instant, in time
	// order. Occupancy is an hourly placement series; MarketSeconds the
	// time-integrated per-market occupancy. Average drops all three.
	LossEvents    []LossEvent
	Occupancy     []OccupancyPoint
	MarketSeconds map[market.ID]MarketUsage
}

// NormalizedCost returns cost as a fraction of the all-on-demand
// baseline; below 1.0 means the fleet beat always-on-demand.
func (r Report) NormalizedCost() float64 {
	if r.BaselineCost == 0 {
		return 0
	}
	return r.Cost / r.BaselineCost
}

// CapacityShortfall returns the capacity-weighted unavailability:
// 1 - served/target replica-seconds. The fleet analogue of the paper's
// availability metric — a mass revocation in one market shows up as a
// partial shortfall, not binary downtime.
func (r Report) CapacityShortfall() float64 {
	if r.TargetReplicaSeconds == 0 {
		return 0
	}
	return 1 - r.ServedReplicaSeconds/r.TargetReplicaSeconds
}

// MaxSimultaneousLoss returns the largest cluster of replicas revoked at
// one instant — the blast radius diversification exists to cap.
func (r Report) MaxSimultaneousLoss() int {
	max := 0
	for _, e := range r.LossEvents {
		if e.Lost > max {
			max = e.Lost
		}
	}
	return max
}

// LossVariance buckets lost replicas into fixed windows over the horizon
// (zero buckets included) and returns the variance of the per-window
// counts. Concentrated strategies lose many replicas in few windows —
// high variance; diversified ones spread smaller losses — low variance.
func (r Report) LossVariance(window sim.Duration) float64 {
	if window <= 0 || r.Horizon <= 0 {
		return 0
	}
	n := int(math.Ceil(float64(r.Horizon) / float64(window)))
	if n == 0 {
		return 0
	}
	counts := make([]float64, n)
	for _, e := range r.LossEvents {
		i := int(float64(e.At) / float64(window))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i] += float64(e.Lost)
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(n)
	var v float64
	for _, c := range counts {
		d := c - mean
		v += d * d
	}
	return v / float64(n)
}

// PooledLossVariance computes LossVariance over the concatenated windows
// of several runs — the cross-seed statistic the Fleet experiment and
// the diversification property test report.
func PooledLossVariance(reports []Report, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	var counts []float64
	for _, r := range reports {
		n := int(math.Ceil(float64(r.Horizon) / float64(window)))
		per := make([]float64, n)
		for _, e := range r.LossEvents {
			i := int(float64(e.At) / float64(window))
			if i < 0 {
				i = 0
			}
			if i >= n {
				i = n - 1
			}
			per[i] += float64(e.Lost)
		}
		counts = append(counts, per...)
	}
	if len(counts) == 0 {
		return 0
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var v float64
	for _, c := range counts {
		d := c - mean
		v += d * d
	}
	return v / float64(len(counts))
}

// Average aggregates per-seed reports: scalar fields are averaged
// (counters become means rounded to nearest), and the per-seed series
// (LossEvents, Occupancy, MarketSeconds) are dropped, mirroring
// metrics.Average. MaxSimultaneousLoss-style statistics must be computed
// from the per-seed reports before averaging.
func Average(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	n := float64(len(reports))
	avg := Report{Strategy: reports[0].Strategy, Horizon: reports[0].Horizon}
	var launches, spotLaunches, odFallbacks, reverses, downsizes, rebalances, lost, never, scaleDowns, peak float64
	for _, r := range reports {
		avg.TargetReplicaSeconds += r.TargetReplicaSeconds / n
		avg.ServedReplicaSeconds += r.ServedReplicaSeconds / n
		avg.Cost += r.Cost / n
		avg.BaselineCost += r.BaselineCost / n
		avg.SpotSeconds += r.SpotSeconds / n
		avg.OnDemandSeconds += r.OnDemandSeconds / n
		launches += float64(r.Launches) / n
		spotLaunches += float64(r.SpotLaunches) / n
		odFallbacks += float64(r.OnDemandFallbacks) / n
		reverses += float64(r.ReverseReplacements) / n
		downsizes += float64(r.Downsizes) / n
		rebalances += float64(r.Rebalances) / n
		lost += float64(r.ReplicasLost) / n
		never += float64(r.NeverGranted) / n
		scaleDowns += float64(r.ScaleDowns) / n
		peak += float64(r.PeakTarget) / n
	}
	round := func(v float64) int { return int(math.Round(v)) }
	avg.Launches = round(launches)
	avg.SpotLaunches = round(spotLaunches)
	avg.OnDemandFallbacks = round(odFallbacks)
	avg.ReverseReplacements = round(reverses)
	avg.Downsizes = round(downsizes)
	avg.Rebalances = round(rebalances)
	avg.ReplicasLost = round(lost)
	avg.NeverGranted = round(never)
	avg.ScaleDowns = round(scaleDowns)
	avg.PeakTarget = round(peak)
	return avg
}

// TopMarkets returns the markets by total occupancy seconds, descending,
// ties broken by ID — for rendering occupancy tables deterministically.
func (r Report) TopMarkets() []market.ID {
	ids := make([]market.ID, 0, len(r.MarketSeconds))
	for id := range r.MarketSeconds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := r.MarketSeconds[ids[i]], r.MarketSeconds[ids[j]]
		ta, tb := a.SpotSeconds+a.OnDemandSeconds, b.SpotSeconds+b.OnDemandSeconds
		if ta != tb {
			return ta > tb
		}
		return ids[i].String() < ids[j].String()
	})
	return ids
}
