package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

func steppedTestConfig(t *testing.T, horizon sim.Duration, seed int64) Config {
	t.Helper()
	demand, err := NewDiurnalDemand(DefaultDiurnalConfig(horizon, seed))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Strategy: Diversified{},
		Demand:   demand,
		Planner:  LinearPlanner{PerReplica: 150},
	}
}

// TestSteppedRunByteIdentity drives the same fleet twice — once in a
// single maximal Step (the Run path) and once in deliberately uneven
// slices with a report snapshot taken after every slice — and requires the
// final reports to be byte-identical under JSON encoding. This is the
// contract the control plane's streaming results rest on: slicing and
// snapshotting must be observationally invisible.
func TestSteppedRunByteIdentity(t *testing.T) {
	const seed = 5
	horizon := 10 * sim.Day
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = horizon
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}

	oneShot, err := Run(set, cloud.DefaultParams(seed), steppedTestConfig(t, horizon, seed), horizon)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSim(set, cloud.DefaultParams(seed), steppedTestConfig(t, horizon, seed), horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uneven, non-day-aligned slices, including a zero-width one.
	slices := []sim.Duration{
		7 * sim.Hour, 30 * sim.Minute, 0, 13 * sim.Hour, sim.Day, 90 * sim.Minute,
	}
	ctx := context.Background()
	var until sim.Time
	steps := 0
	for !s.Done() {
		until += slices[steps%len(slices)]
		done, err := s.Step(ctx, until)
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Report() // mid-run snapshots must not perturb the run
		steps++
		if done && s.Now() != horizon {
			t.Fatalf("finished at %v, want %v", s.Now(), horizon)
		}
	}
	if steps < 10 {
		t.Fatalf("run finished in %d slices; slices too coarse to exercise resume", steps)
	}
	if done, err := s.Step(ctx, until+sim.Day); err != nil || !done {
		t.Fatalf("Step after done = (%v, %v), want (true, nil)", done, err)
	}

	want, err := json.Marshal(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(s.Report())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stepped report differs from one-shot run\n got: %s\nwant: %s", got, want)
	}
}
