package fleet

import (
	"math"

	"spothost/internal/market"
)

// Candidate is one spot market's standing at a placement decision. The
// controller builds the slice, sorted by market ID and filtered down to
// markets whose current spot price does not exceed the fleet's bid (a
// request there would be rejected outright).
type Candidate struct {
	ID market.ID
	// Spot and OnDemand are the market's current prices.
	Spot     float64
	OnDemand float64
	// Mean and Vol are the exponentially-decayed price mean and standard
	// deviation (see forecast.DecayingMoments), maintained online by the
	// controller.
	Mean float64
	Vol  float64
	// Replicas counts the fleet's spot capacity already placed (alive or
	// allocating) in this market — replica count in legacy mode, capacity
	// units in catalog mode.
	Replicas int
	// Units and InvUnits describe the market's instance size in capacity
	// units (InvUnits = exactly 1/Units). Zero values — e.g. a Candidate
	// built by hand without them — mean the legacy one-unit world, where
	// effective prices are the raw ones.
	Units    int
	InvUnits float64
}

// eff returns the candidate's effective price: per capacity unit when the
// candidate carries size information, raw otherwise. Spot*InvUnits is
// bit-identical to Spot when InvUnits is 1, so legacy comparisons are
// unchanged.
func (c Candidate) eff() float64 {
	if c.InvUnits > 0 {
		return c.Spot * c.InvUnits
	}
	return c.Spot
}

// EffectivePrice is the exported view of the ranking key strategies
// compare: the current spot price normalized per capacity unit (raw when
// the candidate carries no size information). Custom Strategy
// implementations should rank by it rather than Spot so mixed-size
// catalogs compare fairly.
func (c Candidate) EffectivePrice() float64 { return c.eff() }

// Strategy chooses the spot market for the next replica. Implementations
// must be deterministic pure functions of their inputs: the controller
// relies on that for byte-identical parallel-vs-serial experiment output.
// ok=false means no candidate is acceptable and the controller should fall
// back to an on-demand replica.
type Strategy interface {
	// Name labels the strategy in reports.
	Name() string
	// Pick selects a market from cands (sorted by ID, never empty) for a
	// fleet whose current capacity target is target — a replica count in
	// legacy mode, capacity units in catalog mode (the controller passes
	// target x anchor units; Candidate.Replicas is measured the same way).
	Pick(cands []Candidate, target int) (market.ID, bool)
}

// LowestPrice is the paper's greedy rule lifted to fleets: every replica
// goes to the currently cheapest spot market. It concentrates the whole
// fleet in one market, so a single price spike there takes every replica
// down at once — the failure mode Diversified exists to cap.
type LowestPrice struct{}

// Name implements Strategy.
func (LowestPrice) Name() string { return "lowest-price" }

// Pick implements Strategy: cheapest current effective (per-unit) spot
// price, ties broken by the candidates' ID order.
func (LowestPrice) Pick(cands []Candidate, _ int) (market.ID, bool) {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].eff() < cands[best].eff() {
			best = i
		}
	}
	return cands[best].ID, true
}

// Diversified caps the fraction of the fleet any single spot market may
// host (AutoSpotting-style allocation): within the cap it places like
// LowestPrice, and when every market is at its cap it falls back to the
// least-occupied market. Capping trades a little cost for bounded blast
// radius — a revocation spike in one market can only take out about
// MaxShare of the fleet.
type Diversified struct {
	// MaxShare is the per-market replica cap as a fraction of the target
	// (0 < MaxShare <= 1). Zero means DefaultMaxShare.
	MaxShare float64
}

// DefaultMaxShare caps one market at roughly a third of the fleet.
const DefaultMaxShare = 0.34

// Name implements Strategy.
func (Diversified) Name() string { return "diversified" }

// Pick implements Strategy.
func (d Diversified) Pick(cands []Candidate, target int) (market.ID, bool) {
	share := d.MaxShare
	if share <= 0 || share > 1 {
		share = DefaultMaxShare
	}
	limit := int(math.Ceil(share * float64(target)))
	if limit < 1 {
		limit = 1
	}
	best := -1
	for i, c := range cands {
		if c.Replicas >= limit {
			continue
		}
		if best < 0 || c.eff() < cands[best].eff() {
			best = i
		}
	}
	if best >= 0 {
		return cands[best].ID, true
	}
	// Every market is at its cap (target exceeds cap x markets): place in
	// the least-occupied one, cheapest first on ties, to stay as spread
	// out as possible.
	best = 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Replicas < cands[best].Replicas ||
			(cands[i].Replicas == cands[best].Replicas && cands[i].eff() < cands[best].eff()) {
			best = i
		}
	}
	return cands[best].ID, true
}

// StabilityOptimized ranks markets by current price plus Lambda times
// their decayed price volatility (forecast.Score): a cheap-but-jumpy
// market loses to a slightly pricier stable one. Lambda = 0 degenerates to
// LowestPrice.
type StabilityOptimized struct {
	// Lambda weights the volatility penalty. Zero means DefaultLambda.
	Lambda float64
}

// DefaultLambda is the volatility weight used when Lambda is unset; one
// standard deviation counts like one dollar of price.
const DefaultLambda = 1.0

// Name implements Strategy.
func (StabilityOptimized) Name() string { return "stability" }

// Pick implements Strategy.
func (s StabilityOptimized) Pick(cands []Candidate, _ int) (market.ID, bool) {
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	best := 0
	bestScore := score(cands[0], lambda)
	for i := 1; i < len(cands); i++ {
		if sc := score(cands[i], lambda); sc < bestScore {
			best, bestScore = i, sc
		}
	}
	return cands[best].ID, true
}

func score(c Candidate, lambda float64) float64 {
	m := c.InvUnits
	if m == 0 {
		m = 1
	}
	return (c.Spot + lambda*c.Vol) * m
}

// StrategyFor returns the named strategy with its default parameters:
// "lowest-price", "diversified" or "stability". ok=false for unknown
// names.
func StrategyFor(name string) (Strategy, bool) {
	switch name {
	case "lowest-price", "lowest", "cheapest":
		return LowestPrice{}, true
	case "diversified", "capped":
		return Diversified{}, true
	case "stability", "stability-optimized", "stable":
		return StabilityOptimized{}, true
	}
	return nil, false
}

// Strategies returns the three built-in strategies in report order.
func Strategies() []Strategy {
	return []Strategy{LowestPrice{}, Diversified{}, StabilityOptimized{}}
}
