package fleet

import (
	"context"
	"fmt"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/runpool"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Run wires up an engine, a provider over the price set and a fleet
// controller, runs to the horizon (clamped to the traces' extent) and
// returns the fleet report.
func Run(set *market.Set, cloudParams cloud.Params, cfg Config, horizon sim.Duration) (Report, error) {
	return RunCtx(context.Background(), set, cloudParams, cfg, horizon)
}

// RunCtx is Run under a context: the engine polls ctx every
// sim.CancelPollInterval events and the run returns ctx's error as soon
// as it is canceled, discarding the partial report.
func RunCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration) (Report, error) {
	return RunTracedCtx(ctx, set, cloudParams, cfg, horizon, nil)
}

// RunTracedCtx is RunCtx with a trace recorder attached to the run's
// engine: replica launches, revocation warnings and losses record into it,
// one track per market (revocation clustering is visible as a burst of
// loss instants in one lane). A nil recorder traces nothing at no cost.
// It is one maximal Step of a Sim; the control plane drives the same
// machinery in bounded slices instead.
func RunTracedCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, rec *trace.Recorder) (Report, error) {
	return RunObsCtx(ctx, set, cloudParams, cfg, horizon, rec, nil)
}

// RunObsCtx is RunTracedCtx with a telemetry recorder attached as well:
// capacity/cost timelines, the decision ledger and SLO alerting record
// into it (finalized at the horizon). Either recorder may be nil
// independently at no cost.
func RunObsCtx(ctx context.Context, set *market.Set, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, rec *trace.Recorder, ob *obs.Recorder) (Report, error) {

	s, err := NewSimObs(set, cloudParams, cfg, horizon, rec, ob)
	if err != nil {
		return Report{}, err
	}
	if _, err := s.Step(ctx, s.Horizon()); err != nil {
		return Report{}, err
	}
	return s.Report(), nil
}

// RunSeeds runs the same fleet configuration against synthetic universes
// for each seed and returns the per-seed reports in seed order, one
// worker per CPU (see RunSeedsParallelCtx).
func RunSeeds(mcfg market.Config, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, seeds []int64) ([]Report, error) {
	return RunSeedsParallelCtx(context.Background(), mcfg, cloudParams, cfg, horizon, seeds, 0)
}

// RunSeedsParallelCtx fans the seeds over a bounded runpool (workers <= 0
// means one per CPU). Each run is an independent single-threaded
// simulation; universes come from the process-wide market.SharedCache and
// results are collected in seed order, so the reports are byte-identical
// for any worker count. Canceling ctx (or any seed failing) cancels every
// in-flight simulation.
func RunSeedsParallelCtx(ctx context.Context, mcfg market.Config, cloudParams cloud.Params,
	cfg Config, horizon sim.Duration, seeds []int64, workers int) ([]Report, error) {

	if len(seeds) == 0 {
		return nil, fmt.Errorf("fleet: no seeds")
	}
	cache := market.SharedCache()
	return runpool.MapCtx(ctx, workers, seeds, func(ctx context.Context, _ int, seed int64) (Report, error) {
		mc := mcfg
		mc.Seed = seed
		set, err := cache.Generate(mc)
		if err != nil {
			return Report{}, err
		}
		cp := cloudParams
		cp.Seed = seed
		return RunCtx(ctx, set, cp, cfg, horizon)
	})
}
